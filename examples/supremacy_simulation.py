#!/usr/bin/env python
"""Random-circuit (quantum-supremacy) simulation: the Fig. 8/9 scenario.

Google-style random circuits drive state DDs towards exponential size while
every gate DD stays linear -- exactly the regime where combining operations
with matrix-matrix multiplication pays off.  This example sweeps the
``k-operations`` and ``max-size`` parameters on one instance and prints the
speed-up curves of the paper's Fig. 8 and Fig. 9 in miniature.

Run:  python examples/supremacy_simulation.py
"""

from repro import (KOperationsStrategy, MaxSizeStrategy, SequentialStrategy,
                   SimulationEngine)
from repro.algorithms import supremacy_circuit

ROWS, COLS, DEPTH, SEED = 3, 4, 10, 1


def run(circuit, strategy):
    return SimulationEngine().simulate(circuit, strategy).statistics


def sweep(circuit, label, values, make_strategy, baseline_time):
    print(f"\n{label}:")
    print(f"{'param':>8} {'time':>9} {'speedup':>8} {'MxV':>6} {'MxM':>6} "
          f"{'peak matrix DD':>15}")
    for value in values:
        stats = run(circuit, make_strategy(value))
        speedup = baseline_time / stats.wall_time_seconds
        print(f"{value:>8} {stats.wall_time_seconds:8.3f}s {speedup:7.2f}x "
              f"{stats.matrix_vector_mults:6d} "
              f"{stats.matrix_matrix_mults:6d} "
              f"{stats.peak_matrix_nodes:15d}")


def main() -> None:
    instance = supremacy_circuit(ROWS, COLS, DEPTH, SEED)
    circuit = instance.circuit
    print(f"instance : {instance.name} ({ROWS}x{COLS} grid, depth {DEPTH})")
    print(f"gates    : {circuit.num_operations()}")

    baseline = run(circuit, SequentialStrategy())
    print(f"\nsota (one MxV per gate): {baseline.wall_time_seconds:.3f}s, "
          f"peak state DD {baseline.peak_state_nodes} nodes "
          f"(dense vector: {2 ** circuit.num_qubits:,} amplitudes)")

    sweep(circuit, "Fig. 8 in miniature -- k-operations",
          (2, 4, 8, 16, 32, 64), KOperationsStrategy,
          baseline.wall_time_seconds)
    sweep(circuit, "Fig. 9 in miniature -- max-size",
          (4, 16, 64, 256, 1024), MaxSizeStrategy,
          baseline.wall_time_seconds)

    print("\nreading: moderate combining beats the extremes on both axes -- "
          "the paper's central observation.")


if __name__ == "__main__":
    main()
