#!/usr/bin/env python
"""A complete compile-and-verify pipeline on decision diagrams.

Takes an algorithm circuit with big multi-controlled gates (Grover) through
the full chain a hardware target would need:

1. decompose every multi-controlled gate to 1- and 2-qubit gates
   (ancillas appended as needed);
2. peephole-optimise the result;
3. route it onto linear nearest-neighbour coupling;
4. verify each step with the DD equivalence checker / simulation.

Run:  python examples/compile_pipeline.py
"""

import numpy as np

from repro.algorithms import grover_circuit
from repro.circuit import decompose_to_two_qubit, map_to_line, optimise
from repro.dd import vector_to_numpy
from repro.simulation import SimulationEngine


def describe(label: str, circuit) -> None:
    two_qubit = sum(1 for op in circuit.operations()
                    if len(op.qubits()) == 2)
    print(f"{label:>12}: {circuit.num_qubits:2d} qubits, "
          f"{circuit.num_operations():5d} ops "
          f"({two_qubit} two-qubit), depth {circuit.depth()}")


def main() -> None:
    instance = grover_circuit(6, 45, mark_repetition=False)
    original = instance.circuit
    describe("algorithm", original)

    decomposed = decompose_to_two_qubit(original)
    describe("decomposed", decomposed)

    optimised = optimise(decomposed)
    describe("optimised", optimised)

    routed = map_to_line(optimised)
    describe("routed", routed.circuit)
    print(f"{'':>12}  ({routed.swaps_inserted} SWAPs inserted, final "
          f"layout {routed.final_layout})")

    # end-to-end verification: simulate both ends of the pipeline
    engine = SimulationEngine()
    reference = engine.simulate(original)
    compiled_engine = SimulationEngine()
    compiled = compiled_engine.simulate(routed.circuit)
    logical = routed.unpermuted_state(compiled_engine.package,
                                      compiled.state)
    reference_dense = vector_to_numpy(reference.state, original.num_qubits)
    compiled_dense = vector_to_numpy(logical, routed.circuit.num_qubits)
    # the compiled register is wider (ancillas); compare the original slice
    size = 1 << original.num_qubits
    agree = np.allclose(compiled_dense[:size], reference_dense, atol=1e-7)
    leftover = np.linalg.norm(compiled_dense[size:])
    print(f"\nverification: states agree on the algorithm register: {agree}")
    print(f"residual amplitude outside it (ancillas not |0>): "
          f"{leftover:.2e}")
    print(f"P(marked = {instance.marked[0]}) compiled: "
          f"{abs(compiled_dense[instance.marked[0]]) ** 2:.4f} "
          f"(expected {instance.expected_success_probability():.4f})")


if __name__ == "__main__":
    main()
