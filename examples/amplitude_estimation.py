#!/usr/bin/env python
"""Quantum amplitude estimation: counting solutions without searching.

QAE runs phase estimation on the Grover operator, estimating the fraction
of marked database entries quadratically faster than classical sampling.
The controlled powers of the Grover operator are repeated blocks, so the
*DD-repeating* strategy shines: each ``c-Q^(2^j)`` block is combined once
and re-used.

Run:  python examples/amplitude_estimation.py
"""

from repro.algorithms import (amplitude_estimation_circuit,
                              estimate_from_distribution)
from repro.simulation import (RepeatingBlockStrategy, SequentialStrategy,
                              SimulationEngine)

NUM_DATA_QUBITS = 4
MARKED = (3, 7, 12)
COUNTING = 6


def main() -> None:
    instance = amplitude_estimation_circuit(NUM_DATA_QUBITS, MARKED,
                                            COUNTING)
    print(f"database          : {2 ** NUM_DATA_QUBITS} entries, "
          f"{len(MARKED)} marked")
    print(f"true fraction     : {instance.true_probability:.4f}")
    print(f"counting qubits   : {COUNTING} "
          f"(grid resolution ~{3.1416 / 2 ** COUNTING:.4f})")
    print(f"total gates       : {instance.circuit.num_operations():,}")

    for label, strategy in [("sequential", SequentialStrategy()),
                            ("DD-repeating", RepeatingBlockStrategy())]:
        engine = SimulationEngine()
        result = engine.simulate(instance.circuit, strategy)
        estimate = estimate_from_distribution(instance, result)
        stats = result.statistics
        print(f"\n{label}:")
        print(f"  estimate        : {estimate:.4f} "
              f"(error {abs(estimate - instance.true_probability):.4f})")
        print(f"  multiplications : {stats.matrix_vector_mults} MxV + "
              f"{stats.matrix_matrix_mults} MxM "
              f"({stats.reused_block_applications} block re-uses)")
        print(f"  time            : {stats.wall_time_seconds:.3f}s")


if __name__ == "__main__":
    main()
