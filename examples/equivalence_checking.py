#!/usr/bin/env python
"""Equivalence checking: matrix-matrix multiplication as a verifier.

The paper studies MxM multiplication as a *simulation* accelerator; its
other classic role is *verification*: multiplying all gates of a circuit
yields its complete unitary as one canonical DD, so checking two circuits
boils down to a pointer comparison.  This example verifies that

* peephole-optimised circuits still implement the original unitary,
* a line-routed circuit equals the original up to the tracked layout,
* a deliberately corrupted circuit is caught.

Run:  python examples/equivalence_checking.py
"""

from repro.algorithms import grover_circuit, qft_circuit
from repro.circuit import QuantumCircuit
from repro.circuit.optimization import optimise
from repro.simulation import SimulationEngine
from repro.verification import check_equivalence, circuit_unitary_dd


def main() -> None:
    # 1. optimisation safety: pad a circuit with redundancy, shrink it back,
    #    and prove nothing changed
    grover = grover_circuit(5, 19, mark_repetition=False).circuit
    padded = QuantumCircuit(grover.num_qubits, name="padded")
    for op in grover.operations():
        padded.append(op)
        padded.h(0)
        padded.h(0)           # cancelling pair
        padded.rz(0.4, 1)
        padded.rz(-0.4, 1)    # merges to rz(0), then drops
    optimised = optimise(padded)
    verdict = check_equivalence(grover, optimised)
    print(f"padded grover vs optimised ({padded.num_operations()} -> "
          f"{optimised.num_operations()} gates): "
          f"{'EQUIVALENT' if verdict.equivalent else 'BROKEN'}")

    # 2. the full-circuit unitary as a DD (pure Eq. 2)
    engine = SimulationEngine()
    qft = qft_circuit(6)
    unitary = circuit_unitary_dd(engine, qft)
    print(f"qft_6 unitary DD: {engine.package.count_nodes(unitary)} nodes "
          f"(dense form would hold {4 ** 6:,} entries)")

    # 3. catching a real bug: swap two gates that do NOT commute
    correct = QuantumCircuit(2, name="correct")
    correct.h(0).cx(0, 1).t(1)
    broken = QuantumCircuit(2, name="broken")
    broken.cx(0, 1).h(0).t(1)
    verdict = check_equivalence(correct, broken)
    print(f"correct vs gate-swapped: "
          f"{'EQUIVALENT (!!)' if verdict.equivalent else 'caught: NOT equivalent'}")

    # 4. global phases are recognised as physically irrelevant
    import math
    a = QuantumCircuit(1)
    a.rz(math.pi, 0)
    b = QuantumCircuit(1)
    b.z(0)
    verdict = check_equivalence(a, b)
    print(f"rz(pi) vs z: equivalent={verdict.equivalent}, "
          f"global phase={verdict.global_phase:.3f}")


if __name__ == "__main__":
    main()
