#!/usr/bin/env python
"""Noisy simulation via quantum trajectories.

Applies a stochastic Pauli noise model to a GHZ-preparation circuit and
shows how the GHZ signature (only all-zeros / all-ones outcomes) decays
with the per-gate error rate.  Every trajectory is an ordinary circuit, so
the combining strategies work unchanged under noise.

Run:  python examples/noisy_simulation.py
"""

from repro.circuit import QuantumCircuit
from repro.simulation import (MaxSizeStrategy, NoiseModel, noisy_counts)

NUM_QUBITS = 6
TRAJECTORIES = 300


def ghz(n: int) -> QuantumCircuit:
    circuit = QuantumCircuit(n, name=f"ghz_{n}")
    circuit.h(0)
    for qubit in range(n - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def main() -> None:
    circuit = ghz(NUM_QUBITS)
    all_ones = (1 << NUM_QUBITS) - 1
    print(f"circuit: GHZ preparation on {NUM_QUBITS} qubits, "
          f"{TRAJECTORIES} trajectories per noise level\n")
    print(f"{'gate error':>11} {'readout err':>12} {'P(GHZ outcomes)':>16} "
          f"{'distinct outcomes':>18}")
    for gate_error, flip in [(0.0, 0.0), (0.01, 0.0), (0.05, 0.0),
                             (0.15, 0.0), (0.0, 0.05), (0.05, 0.05)]:
        noise = NoiseModel(gate_error=gate_error, measurement_flip=flip)
        counts = noisy_counts(circuit, noise, trajectories=TRAJECTORIES,
                              seed=7, strategy=MaxSizeStrategy(32))
        total = sum(counts.values())
        ghz_mass = (counts.get(0, 0) + counts.get(all_ones, 0)) / total
        print(f"{gate_error:>11.2f} {flip:>12.2f} {ghz_mass:>16.3f} "
              f"{len(counts):>18}")
    print("\nthe GHZ signature decays smoothly with the error rate -- "
          "trajectory noise composes with any simulation strategy.")


if __name__ == "__main__":
    main()
