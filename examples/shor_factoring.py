#!/usr/bin/env python
"""Factor integers with Shor's algorithm, both simulation styles (Table II).

Runs semiclassical order finding for N = 15 and N = 21:

* ``gates``        -- Beauregard's 2n+3-qubit circuit built from thousands
  of elementary gates (the paper's ``t_sota`` / ``t_general`` columns);
* ``DD-construct`` -- the same quantum process on n+1 qubits, with each
  modular-multiplication oracle built *directly* as a permutation DD
  (the paper's right-hand column; orders of magnitude faster).

Run:  python examples/shor_factoring.py
"""

import time

from repro.algorithms import ShorOrderFinder, factor
from repro.simulation import SequentialStrategy


def compare_styles(modulus: int, base: int, seed: int = 3) -> None:
    print(f"\n=== order finding: N={modulus}, a={base} ===")
    rows = []
    for label, kwargs in [
            ("gates (sota)", dict(mode="gates",
                                  strategy=SequentialStrategy())),
            ("DD-construct", dict(mode="construct"))]:
        started = time.perf_counter()
        result = ShorOrderFinder(modulus, base, seed=seed, **kwargs).run()
        elapsed = time.perf_counter() - started
        rows.append((label, result, elapsed))
        print(f"{label:>14}: qubits={result.statistics.num_qubits:2d} "
              f"ops={result.statistics.operations_applied:6d} "
              f"MxV={result.statistics.matrix_vector_mults:6d} "
              f"time={elapsed:7.3f}s "
              f"-> phase {result.measured_value}/"
              f"{1 << result.precision_bits}, order={result.order}, "
              f"factors={result.factors}")
    gates_result, construct_result = rows[0][1], rows[1][1]
    assert gates_result.phase_bits == construct_result.phase_bits, \
        "same seed must give identical measurement records"
    print(f"{'':>14}  identical measured bits in both styles; "
          f"speedup {rows[0][2] / rows[1][2]:,.0f}x")


def main() -> None:
    compare_styles(15, 7)
    compare_styles(21, 2)

    print("\n=== full factoring pipeline (random bases, DD-construct) ===")
    for n in (15, 21, 33, 35):
        started = time.perf_counter()
        outcome = factor(n, mode="construct", seed=11)
        elapsed = time.perf_counter() - started
        print(f"factor({n}) = {outcome.factors} "
              f"({len(outcome.attempts)} quantum attempt(s), "
              f"{elapsed:.2f}s"
              + (f", shortcut: {outcome.classical_shortcut}"
                 if outcome.classical_shortcut else "") + ")")


if __name__ == "__main__":
    main()
