#!/usr/bin/env python
"""Look inside the decision diagrams (the paper's Fig. 2/5 visualised).

Builds the states and operators from the paper's running examples, prints
their node structure, and exports Graphviz dot files you can render with
``dot -Tpdf``.  Then reproduces the Example 3 / Fig. 5 observation on a
random circuit: the combined gate matrix is tiny next to the intermediate
state vector it replaces.

Run:  python examples/dd_inspection.py
"""

import math
from pathlib import Path

from repro import Package, QuantumCircuit, SimulationEngine
from repro.analysis.experiments import run_fig5_study
from repro.analysis.reporting import format_result
from repro.dd import level_histogram, size_report, to_dot, vector_from_numpy

OUT_DIR = Path("dd_exports")


def paper_figure_2_state(package: Package):
    """The 3-qubit state of the paper's Fig. 2: amplitudes (0, 0, 0, 0,
    1/2, -1/2, 1/2, 1/2) over |q0 q1 q2>."""
    amplitudes = [0, 0, 0, 0, 0.5, -0.5, 0.5, 0.5]
    # the paper orders |q0 q1 q2| with q0 most significant; our qubit 2 is
    # the most significant bit, so the list maps directly.
    return vector_from_numpy(package, amplitudes)


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    package = Package()

    state = paper_figure_2_state(package)
    print("Fig. 2c state:", size_report(state, "psi"))
    print("  level histogram:", level_histogram(state))
    (OUT_DIR / "fig2_state.dot").write_text(to_dot(state, "fig2_state"))

    bell = QuantumCircuit(2, name="bell")
    bell.h(0).cx(0, 1)
    result = SimulationEngine(package).simulate(bell)
    print("\nBell state:", size_report(result.state, "bell"))
    (OUT_DIR / "bell_state.dot").write_text(to_dot(result.state, "bell"))

    identity = package.identity(8)
    print("\n8-qubit identity:", size_report(identity, "I_8"),
          "(one node per qubit -- the asymmetry the paper exploits)")
    (OUT_DIR / "identity.dot").write_text(to_dot(identity, "identity"))

    print(f"\ndot files written to {OUT_DIR}/ "
          "(render with: dot -Tpdf <file> -o <file>.pdf)")

    print("\n" + format_result(run_fig5_study(rows=3, cols=3, depth=10,
                                              seed=1)))


if __name__ == "__main__":
    main()
