#!/usr/bin/env python
"""Quickstart: simulate a small circuit on decision diagrams.

Builds a GHZ-state circuit, simulates it with the sequential baseline and
with an operation-combining strategy, and shows that decision diagrams keep
this highly structured state *linear* in size while a dense statevector
would need 2^20 amplitudes.

Run:  python examples/quickstart.py
"""

from repro import (KOperationsStrategy, QuantumCircuit, SequentialStrategy,
                   SimulationEngine)

NUM_QUBITS = 20


def build_ghz_circuit(num_qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def main() -> None:
    circuit = build_ghz_circuit(NUM_QUBITS)
    print(f"circuit: {circuit!r}")

    engine = SimulationEngine()
    result = engine.simulate(circuit, SequentialStrategy())

    print(f"\nGHZ state on {NUM_QUBITS} qubits "
          f"(dense vector would hold {2 ** NUM_QUBITS:,} amplitudes):")
    print(f"  state DD nodes : {result.state_nodes()}")
    print(f"  P(|00...0>)    : {result.probability(0):.4f}")
    print(f"  P(|11...1>)    : {result.probability(2 ** NUM_QUBITS - 1):.4f}")
    print(f"  amplitude(0)   : {result.amplitude(0):.4f}")

    print("\nmeasurement histogram (20 shots):")
    for outcome, count in sorted(result.sample(20).items()):
        print(f"  |{outcome:0{NUM_QUBITS}b}> x{count}")

    # The same circuit, now combining 4 operations per simulation step
    # (matrix-matrix multiplication before touching the state -- the
    # strategy this library exists to study).
    combined = engine.simulate(circuit, KOperationsStrategy(4))
    print("\nwork distribution:")
    for stats in (result.statistics, combined.statistics):
        print(f"  {stats.strategy:>20}: "
              f"{stats.matrix_vector_mults} matrix-vector + "
              f"{stats.matrix_matrix_mults} matrix-matrix multiplications, "
              f"{stats.wall_time_seconds * 1000:.1f} ms")
    assert result.fidelity_with(combined) > 1 - 1e-9
    print("\nboth strategies produced the same state (fidelity 1) -- "
          "they always do.")


if __name__ == "__main__":
    main()
