#!/usr/bin/env python
"""QAOA for MaxCut on decision diagrams.

QAOA states are dense superpositions -- the DD worst case -- so this is
also a stress demonstration: gate DDs stay tiny while the state DD
approaches ``2^n`` nodes, the regime where the paper's combining strategies
matter.  The cost function is evaluated with linear-sized Pauli-string DDs.

Run:  python examples/qaoa_maxcut.py
"""

from repro.algorithms import (classical_maxcut_optimum, maxcut_expectation,
                              optimise_qaoa_angles, qaoa_maxcut_circuit,
                              ring_graph)
from repro.simulation import KOperationsStrategy, SimulationEngine

NUM_VERTICES = 8


def main() -> None:
    edges = ring_graph(NUM_VERTICES)
    optimum = classical_maxcut_optimum(edges, NUM_VERTICES)
    print(f"graph          : ring C_{NUM_VERTICES} ({len(edges)} edges)")
    print(f"MaxCut optimum : {optimum} (brute force)")

    print("\ngrid search over (gamma, beta), p = 1:")
    instance, best = optimise_qaoa_angles(edges, NUM_VERTICES, layers=1,
                                          grid_points=6,
                                          strategy=KOperationsStrategy(8))
    print(f"  best <cut> = {best:.4f} "
          f"({best / optimum:.1%} of optimum) at gamma={instance.gammas[0]:.3f}, "
          f"beta={instance.betas[0]:.3f}")

    print("\nre-optimised at each depth p (coarse shared-angle grid):")
    for layers in (1, 2):
        deeper, value = optimise_qaoa_angles(edges, NUM_VERTICES,
                                             layers=layers, grid_points=6)
        print(f"  p={layers}: best <cut> = {value:.4f} "
              f"({value / optimum:.1%} of optimum)")

    print("\nnote: unlocking higher p needs independent per-layer angles "
          "and a finer optimiser than this deterministic grid -- the "
          "simulation side (dense states, tiny gate DDs) is the point "
          "demonstrated here.")


if __name__ == "__main__":
    main()
