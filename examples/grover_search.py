#!/usr/bin/env python
"""Grover's database search under the paper's strategies (Table I scenario).

Searches a 2^12-entry database for one marked element and compares:

* ``sota``         -- one matrix-vector multiplication per gate,
* ``max-size``     -- the general combining strategy of Sec. IV-A,
* ``DD-repeating`` -- the knowledge-based strategy of Sec. IV-B, which
  combines the Grover iteration once and re-uses its matrix DD for all
  further iterations.

Run:  python examples/grover_search.py
"""

from random import Random

from repro import (MaxSizeStrategy, RepeatingBlockStrategy,
                   SequentialStrategy, SimulationEngine)
from repro.algorithms import grover_circuit
from repro.dd import sample_counts

NUM_DATA_QUBITS = 12
MARKED = 0b10110111001


def main() -> None:
    instance = grover_circuit(NUM_DATA_QUBITS, MARKED)
    print(f"database size   : {2 ** NUM_DATA_QUBITS:,} entries")
    print(f"marked element  : {MARKED} (0b{MARKED:b})")
    print(f"iterations      : {instance.iterations}")
    print(f"total gates     : {instance.circuit.num_operations():,}")
    print(f"expected P(hit) : {instance.expected_success_probability():.4f}")

    strategies = [
        ("sota (sequential)", SequentialStrategy()),
        ("max-size(64)", MaxSizeStrategy(64)),
        ("DD-repeating", RepeatingBlockStrategy()),
    ]
    print(f"\n{'strategy':>20} {'time':>9} {'MxV':>6} {'MxM':>6} "
          f"{'reused':>6} {'P(hit)':>8}")
    baseline_time = None
    for label, strategy in strategies:
        engine = SimulationEngine()
        result = engine.simulate(instance.circuit, strategy)
        stats = result.statistics
        if baseline_time is None:
            baseline_time = stats.wall_time_seconds
        speedup = baseline_time / stats.wall_time_seconds
        probability = instance.measured_success_probability(result)
        print(f"{label:>20} {stats.wall_time_seconds:8.3f}s "
              f"{stats.matrix_vector_mults:6d} "
              f"{stats.matrix_matrix_mults:6d} "
              f"{stats.reused_block_applications:6d} "
              f"{probability:8.4f}   (speedup {speedup:.2f}x)")

    engine = SimulationEngine()
    result = engine.simulate(instance.circuit, RepeatingBlockStrategy())
    counts = sample_counts(result.package, result.state, 10, Random(1))
    print("\n10 measurement shots:", dict(sorted(counts.items())))
    print("the marked element dominates, as Grover promises.")


if __name__ == "__main__":
    main()
