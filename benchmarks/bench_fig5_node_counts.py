"""Fig. 5 / Example 3 -- the size observation driving the whole paper.

Benchmarks the two parenthesisations of ``v_{i+2} = M_{i+2} M_{i+1} v_i``
at the point of a supremacy-circuit simulation where the state DD is
largest:

* Eq. 1: two matrix-vector multiplications, each touching the big state DD;
* Eq. 2: one (cheap) matrix-matrix multiplication of two small gate DDs,
  then a single matrix-vector multiplication.

The DD sizes involved are attached as ``extra_info`` so the benchmark output
documents the asymmetry (tiny combined matrix vs. large intermediate state).
"""

import pytest

from repro.algorithms.supremacy import supremacy_circuit
from repro.dd import Package
from repro.simulation import SimulationEngine

ROWS, COLS, DEPTH, SEED = 3, 3, 10, 1


def _prepare(package: Package):
    """Replay the circuit to the largest intermediate state; return pieces."""
    circuit = supremacy_circuit(ROWS, COLS, DEPTH, SEED).circuit
    operations = list(circuit.operations())
    engine = SimulationEngine(package)
    state = package.basis_state(circuit.num_qubits, 0)
    sizes = []
    states = []
    for op in operations:
        state = package.multiply_matrix_vector(
            engine.gate_dd(op, circuit.num_qubits), state)
        states.append(state)
        sizes.append(package.count_nodes(state))
    split = max(range(len(sizes) - 2), key=sizes.__getitem__)
    v_i = states[split]
    m1 = engine.gate_dd(operations[split + 1], circuit.num_qubits)
    m2 = engine.gate_dd(operations[split + 2], circuit.num_qubits)
    return v_i, m1, m2


@pytest.mark.parametrize("order", ["eq1_matrix_vector", "eq2_matrix_matrix"])
def test_fig5_parenthesisation(benchmark, order):
    benchmark.group = "fig5"

    def once():
        package = Package()
        v_i, m1, m2 = _prepare(package)
        package.clear_compute_tables()  # time the multiplications honestly
        if order == "eq1_matrix_vector":
            v_mid = package.multiply_matrix_vector(m1, v_i)
            final = package.multiply_matrix_vector(m2, v_mid)
            intermediate = package.count_nodes(v_mid)
        else:
            combined = package.multiply_matrix_matrix(m2, m1)
            final = package.multiply_matrix_vector(combined, v_i)
            intermediate = package.count_nodes(combined)
        return {
            "v_i": package.count_nodes(v_i),
            "intermediate": intermediate,
            "final": package.count_nodes(final),
        }

    sizes = benchmark.pedantic(once, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(sizes)
