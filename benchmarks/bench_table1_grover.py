"""Table I -- Grover benchmarks: t_sota vs. t_general vs. t_DD-repeating.

The paper's Table I columns map to the three strategies benchmarked here;
``general`` uses a representative good parameter from the Fig. 8/9 sweeps
(the paper's ``t_general`` is the best such value).  DD-repeating must win:
it combines the Grover iteration once and re-uses the matrix DD for all
further iterations.
"""

import pytest

from repro.analysis.instances import grover_suite
from repro.simulation import (KOperationsStrategy, MaxSizeStrategy,
                              RepeatingBlockStrategy, SequentialStrategy)

from .conftest import run_instance_benchmark

INSTANCES = {instance.name: instance for instance in grover_suite("quick")}

STRATEGIES = {
    "sota": SequentialStrategy,
    "general_k16": lambda: KOperationsStrategy(16),
    "general_smax64": lambda: MaxSizeStrategy(64),
    "dd_repeating": RepeatingBlockStrategy,
}


@pytest.mark.parametrize("strategy_name", sorted(STRATEGIES))
@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_table1_grover(benchmark, name, strategy_name):
    run_instance_benchmark(benchmark, INSTANCES[name],
                           STRATEGIES[strategy_name],
                           group=f"table1:{name}", rounds=2)
