"""Ablation micro-benchmarks of the DD primitives.

Not a paper artifact, but the cost model behind its argument: matrix-vector
multiplication cost scales with the *state* DD size, matrix-matrix
multiplication of gate DDs does not.  These benchmarks pin that down at the
primitive level and track the gate-DD construction cost (which must stay
linear in the qubit count).
"""

import pytest

from repro.algorithms.supremacy import supremacy_circuit
from repro.circuit import Operation
from repro.dd import Package, build_gate_dd
from repro.simulation import SimulationEngine

H = [[2 ** -0.5, 2 ** -0.5], [2 ** -0.5, -(2 ** -0.5)]]


def _large_state(package: Package, rows=3, cols=3, depth=10, seed=1):
    circuit = supremacy_circuit(rows, cols, depth, seed).circuit
    engine = SimulationEngine(package)
    return engine.simulate(circuit).state, circuit.num_qubits


@pytest.mark.parametrize("num_qubits", [8, 16, 32])
def test_gate_dd_construction(benchmark, num_qubits):
    """Gate-DD construction is linear in the qubit count."""
    benchmark.group = "primitives:gate-construction"
    package = Package()
    controls = {0: 1, num_qubits - 1: 1}

    def once():
        return build_gate_dd(package, H, num_qubits, num_qubits // 2,
                             controls)

    edge = benchmark.pedantic(once, rounds=20, iterations=5)
    benchmark.extra_info["nodes"] = package.count_nodes(edge)


def test_matrix_vector_on_large_state(benchmark):
    """MxV cost tracks the (large) state DD size."""
    benchmark.group = "primitives:multiplication"
    package = Package()
    state, num_qubits = _large_state(package)
    gate = build_gate_dd(package, H, num_qubits, num_qubits // 2)

    def once():
        package.clear_compute_tables()
        return package.multiply_matrix_vector(gate, state)

    benchmark.pedantic(once, rounds=10, iterations=1)
    benchmark.extra_info["state_nodes"] = package.count_nodes(state)


def test_matrix_matrix_of_gate_dds(benchmark):
    """MxM of two gate DDs ignores the state entirely -- and is cheap."""
    benchmark.group = "primitives:multiplication"
    package = Package()
    state, num_qubits = _large_state(package)  # present but untouched
    gate_a = build_gate_dd(package, H, num_qubits, 2)
    gate_b = build_gate_dd(package, [[0, 1], [1, 0]], num_qubits, 5, {2: 1})

    def once():
        package.clear_compute_tables()
        return package.multiply_matrix_matrix(gate_a, gate_b)

    product = benchmark.pedantic(once, rounds=10, iterations=1)
    benchmark.extra_info["product_nodes"] = package.count_nodes(product)


def test_sequential_gate_cache_effect(benchmark):
    """Applying the same operation repeatedly hits the engine's gate cache."""
    benchmark.group = "primitives:gate-cache"
    engine = SimulationEngine()
    op = Operation("h", 3)

    def once():
        return engine.gate_dd(op, 16)

    benchmark.pedantic(once, rounds=20, iterations=50)
