"""Shared helpers for the benchmark suite.

Every benchmark runs a *fresh* engine per measurement round (circuits are
cached inside each instance, so timing covers simulation, not circuit
generation).  Instances come from the ``quick`` profile so the whole suite
regenerates every paper artifact in a few minutes; use
``python -m repro.analysis <artifact> --profile full`` for larger runs.
"""

from __future__ import annotations

import pytest

from repro.analysis.instances import BenchmarkInstance


def run_instance_benchmark(benchmark, instance: BenchmarkInstance,
                           strategy_factory, group: str,
                           rounds: int = 1) -> None:
    """Benchmark one (instance, strategy) pair and attach DD statistics."""
    benchmark.group = group
    stats_holder = {}

    def once():
        stats_holder["stats"] = instance.run(strategy_factory())
        return stats_holder["stats"]

    benchmark.pedantic(once, rounds=rounds, iterations=1, warmup_rounds=0)
    stats = stats_holder["stats"]
    benchmark.extra_info.update({
        "benchmark": instance.name,
        "strategy": stats.strategy,
        "operations": stats.operations_applied,
        "matrix_vector_mults": stats.matrix_vector_mults,
        "matrix_matrix_mults": stats.matrix_matrix_mults,
        "peak_state_nodes": stats.peak_state_nodes,
        "peak_matrix_nodes": stats.peak_matrix_nodes,
        "recursions": stats.counters.total_recursions(),
    })
