"""Extension benchmarks: equivalence checking and variable reordering.

Neither is a paper artifact, but both are classic applications of the same
machinery the paper studies:

* equivalence checking is *pure Eq. 2* (multiply every gate matrix), with
  the canonical comparison for free;
* sifting shows how strongly DD sizes depend on the variable order, the
  context in which node-count-sensitive strategies like max-size operate.
"""

import numpy as np
import pytest

from repro.algorithms.grover import grover_circuit
from repro.algorithms.qft import qft_circuit
from repro.circuit.optimization import optimise
from repro.dd import Package, sift, vector_from_numpy
from repro.verification import check_equivalence


@pytest.mark.parametrize("method", ["miter", "pointer"])
def test_equivalence_grover_vs_optimised(benchmark, method):
    benchmark.group = "verification:equivalence"
    circuit = grover_circuit(6, 13, mark_repetition=False).circuit
    optimised = optimise(circuit)

    def once():
        return check_equivalence(circuit, optimised, method=method)

    result = benchmark.pedantic(once, rounds=3, iterations=1)
    assert result.equivalent
    benchmark.extra_info["gates"] = circuit.num_operations()


def test_equivalence_qft_against_itself(benchmark):
    benchmark.group = "verification:equivalence"
    circuit = qft_circuit(7)

    def once():
        return check_equivalence(circuit, circuit, method="miter")

    result = benchmark.pedantic(once, rounds=3, iterations=1)
    assert result.equivalent


def _paired_state(package: Package, half: int):
    size = 1 << (2 * half)
    vec = np.zeros(size)
    for x in range(1 << half):
        vec[x | (x << half)] = 1.0
    vec /= np.linalg.norm(vec)
    return vector_from_numpy(package, vec)


@pytest.mark.parametrize("half", [3, 4, 5])
def test_sifting_paired_state(benchmark, half):
    """Sifting collapses the exponential paired state to linear size."""
    benchmark.group = "reordering:sifting"

    def once():
        package = Package()
        state = _paired_state(package, half)
        before = package.count_nodes(state)
        sifted, _ = sift(package, state)
        return before, package.count_nodes(sifted)

    before, after = benchmark.pedantic(once, rounds=2, iterations=1)
    assert after < before
    benchmark.extra_info.update({"nodes_before": before,
                                 "nodes_after": after})
