#!/usr/bin/env python
"""Standalone entry point for the kernel benchmark harness.

Equivalent to ``python -m repro bench``; kept next to the pytest-benchmark
modules so the whole measurement story lives under ``benchmarks/``.  Run
from the repository root::

    python benchmarks/runner.py                 # full suite -> BENCH_kernel.json
    python benchmarks/runner.py --smoke         # CI-sized suite (<60s)
    python benchmarks/runner.py --output -      # print JSON to stdout

All workloads use fixed seeds; see ``repro.bench`` for the definitions and
the JSON schema.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
