"""Fig. 9 -- speed-up of the *max-size* strategy over ``s_max``.

``s_max = 0`` denotes the sequential baseline (``t_sota``); the figure's
series is ``time[baseline] / time[s_max]`` per instance.  The paper reports
speed-ups of up to 4.5 with the same unimodal shape as Fig. 8.
"""

import pytest

from repro.analysis.instances import quick_suite
from repro.simulation import MaxSizeStrategy, SequentialStrategy

from .conftest import run_instance_benchmark

SMAX_VALUES = (0, 4, 16, 64, 256, 1024)
INSTANCES = {instance.name: instance for instance in quick_suite()}


@pytest.mark.parametrize("s_max", SMAX_VALUES)
@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_fig9_max_size(benchmark, name, s_max):
    strategy_factory = (SequentialStrategy if s_max == 0
                        else lambda: MaxSizeStrategy(s_max))
    run_instance_benchmark(benchmark, INSTANCES[name], strategy_factory,
                           group=f"fig9:{name}")
