"""Ablation benchmarks for design choices beyond the paper's figures.

* **adaptive-vs-fixed**: the cost-model-driven ``AdaptiveStrategy`` (this
  repo's extension) against the paper's fixed parametrisations, on the
  workload class where combining matters most (random circuits).
* **complex-table tolerance**: the paper's companion work (ref. [21]) shows
  node sharing depends on snapping numerically-close edge weights; sweeping
  the tolerance here shows how final/peak DD sizes react.
* **gate-DD cache**: how much re-using gate DDs across identical operations
  saves on a circuit with heavy gate repetition (Grover).
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.algorithms.supremacy import supremacy_circuit
from repro.dd import Package
from repro.simulation import (AdaptiveStrategy, KOperationsStrategy,
                              MaxSizeStrategy, SequentialStrategy,
                              SimulationEngine)

SUPREMACY = supremacy_circuit(3, 3, 10, seed=1).circuit

STRATEGIES = {
    "sequential": SequentialStrategy,
    "k16": lambda: KOperationsStrategy(16),
    "smax64": lambda: MaxSizeStrategy(64),
    "adaptive": AdaptiveStrategy,
}


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_ablation_adaptive_vs_fixed(benchmark, name):
    benchmark.group = "ablation:adaptive-vs-fixed"

    def once():
        engine = SimulationEngine()
        return engine.simulate(SUPREMACY, STRATEGIES[name]()).statistics

    stats = benchmark.pedantic(once, rounds=3, iterations=1)
    benchmark.extra_info.update({
        "strategy": stats.strategy,
        "matrix_vector_mults": stats.matrix_vector_mults,
        "matrix_matrix_mults": stats.matrix_matrix_mults,
        "recursions": stats.counters.total_recursions(),
    })


@pytest.mark.parametrize("tolerance", [1e-13, 1e-10, 1e-6])
def test_ablation_complex_tolerance(benchmark, tolerance):
    benchmark.group = "ablation:tolerance"

    def once():
        package = Package(tolerance=tolerance)
        engine = SimulationEngine(package)
        result = engine.simulate(SUPREMACY)
        return result

    result = benchmark.pedantic(once, rounds=3, iterations=1)
    benchmark.extra_info.update({
        "tolerance": tolerance,
        "final_state_nodes": result.statistics.final_state_nodes,
        "peak_state_nodes": result.statistics.peak_state_nodes,
        "complex_entries": len(result.package.complex_table),
    })


GROVER = grover_circuit(10, 311).circuit


@pytest.mark.parametrize("cache", ["shared-engine", "fresh-engine-per-run"])
def test_ablation_gate_cache(benchmark, cache):
    benchmark.group = "ablation:gate-cache"
    shared = SimulationEngine()

    def once():
        engine = shared if cache == "shared-engine" else SimulationEngine()
        return engine.simulate(GROVER).statistics

    benchmark.pedantic(once, rounds=3, iterations=1)
