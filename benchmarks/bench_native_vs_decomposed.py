"""Ablation: native multi-controlled gates vs. two-qubit decompositions.

The DD simulator the paper builds on applies multi-controlled gates as
*single operations* (one linear-sized DD, one multiplication) -- unlike
hardware-facing simulators that first decompose to two-qubit gates.  This
benchmark quantifies that modelling choice on Grover (whose oracle and
diffusion are big MCZ/MCX gates): the decomposed circuit has an order of
magnitude more operations and extra ancilla qubits.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.circuit import decompose_to_two_qubit
from repro.simulation import SequentialStrategy, SimulationEngine

INSTANCE = grover_circuit(8, 77, mark_repetition=False)
NATIVE = INSTANCE.circuit
DECOMPOSED = decompose_to_two_qubit(NATIVE)


@pytest.mark.parametrize("form", ["native-multi-controlled",
                                  "decomposed-two-qubit"])
def test_grover_native_vs_decomposed(benchmark, form):
    benchmark.group = "ablation:native-vs-decomposed"
    circuit = NATIVE if form.startswith("native") else DECOMPOSED

    def once():
        engine = SimulationEngine()
        return engine.simulate(circuit, SequentialStrategy()).statistics

    stats = benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "qubits": circuit.num_qubits,
        "operations": stats.operations_applied,
        "peak_state_nodes": stats.peak_state_nodes,
    })
