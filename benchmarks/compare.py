#!/usr/bin/env python
"""Compare two kernel benchmark reports and gate on wall-clock regressions.

Usage::

    python benchmarks/compare.py BASELINE.json CURRENT.json [--threshold PCT]

Exits non-zero when any workload/arm's ``wall_seconds_best`` in CURRENT
exceeds BASELINE by more than the threshold (default 25%).  This is the
same comparison ``python -m repro bench --compare BASELINE.json`` runs
in-process after measuring; this entry point exists for comparing two
already-written reports (e.g. a CI artifact against the checked-in
baseline).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench_compare import (  # noqa: E402
    compare_reports, format_comparison, load_report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/compare.py",
        description="Compare two bench reports; fail on wall-clock "
                    "regressions beyond the threshold.")
    parser.add_argument("baseline", help="baseline report JSON")
    parser.add_argument("current", help="current report JSON")
    parser.add_argument("--threshold", type=float, default=25.0,
                        metavar="PCT",
                        help="regression threshold in percent (default 25)")
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    result = compare_reports(baseline, current,
                             threshold_pct=args.threshold)
    print(format_comparison(result))
    return 0 if result["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
