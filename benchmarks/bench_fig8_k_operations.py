"""Fig. 8 -- speed-up of the *k-operations* strategy over ``k``.

One benchmark per (instance, k) pair; ``k = 1`` is the sequential baseline
(``t_sota``), so the figure's speed-up series is
``time[k=1] / time[k]`` per instance.  The paper reports speed-ups of up to
a factor of 3 with a unimodal shape over ``k``; the reproduced shape is the
claim, not the absolute numbers.
"""

import pytest

from repro.analysis.instances import quick_suite
from repro.simulation import KOperationsStrategy, SequentialStrategy

from .conftest import run_instance_benchmark

K_VALUES = (1, 2, 4, 8, 16, 32)
INSTANCES = {instance.name: instance for instance in quick_suite()}


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_fig8_k_operations(benchmark, name, k):
    strategy_factory = (SequentialStrategy if k == 1
                        else lambda: KOperationsStrategy(k))
    run_instance_benchmark(benchmark, INSTANCES[name], strategy_factory,
                           group=f"fig8:{name}")
