"""Table II -- Shor benchmarks: t_sota vs. t_general vs. t_DD-construct.

``sota`` and ``general`` simulate Beauregard's 2n+3-qubit elementary-gate
circuit; ``dd_construct`` runs the same semiclassical order finding on n+1
qubits with directly constructed modular-multiplication permutation DDs.
The paper's claim reproduced here: DD-construct is orders of magnitude
faster than either gate-level simulation.
"""

import pytest

from repro.algorithms.shor import ShorOrderFinder
from repro.analysis.instances import shor_suite
from repro.simulation import (KOperationsStrategy, MaxSizeStrategy,
                              SequentialStrategy)

from .conftest import run_instance_benchmark

INSTANCES = {instance.name: instance for instance in shor_suite("quick")}

GATE_STRATEGIES = {
    "sota": SequentialStrategy,
    "general_k16": lambda: KOperationsStrategy(16),
    "general_smax64": lambda: MaxSizeStrategy(64),
}


@pytest.mark.parametrize("strategy_name", sorted(GATE_STRATEGIES))
@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_table2_shor_gate_level(benchmark, name, strategy_name):
    run_instance_benchmark(benchmark, INSTANCES[name],
                           GATE_STRATEGIES[strategy_name],
                           group=f"table2:{name}")


@pytest.mark.parametrize("name", sorted(INSTANCES))
def test_table2_shor_dd_construct(benchmark, name):
    instance = INSTANCES[name]
    benchmark.group = f"table2:{name}"
    modulus = instance.metadata["modulus"]
    base = instance.metadata["base"]
    seed = instance.metadata["seed"]

    def once():
        finder = ShorOrderFinder(modulus, base, mode="construct", seed=seed)
        return finder.run()

    result = benchmark.pedantic(once, rounds=3, iterations=1,
                                warmup_rounds=0)
    benchmark.extra_info.update({
        "benchmark": instance.name,
        "strategy": "dd-construct",
        "order": result.order,
        "factors": str(result.factors),
        "matrix_vector_mults": result.statistics.matrix_vector_mults,
        "direct_constructions": result.statistics.direct_constructions,
    })
