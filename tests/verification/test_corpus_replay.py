"""Replay every pinned reproducer in the regression corpus.

Each entry in ``tests/verification/corpus/`` is a minimized reproducer of
a bug a past fuzzing campaign (or a past PR's post-mortem) found.  Replay
runs the entry's option plan against the dense oracle and the flat
circuit through **all registered backends** -- so a regression in any
backend or engine option trips the exact circuit that exposed it last
time, already minimized.
"""

import os

import pytest

from repro.backends import available_backends
from repro.verification import (BrokenReorderEngine, check_case,
                                load_corpus, replay_entry)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_carries_seeded_reproducers():
    # The corpus must keep pinning (at least) the three historical bugs
    # it was seeded with; shrinking it silently would gut the harness.
    assert len(ENTRIES) >= 3
    names = {entry.name for entry in ENTRIES}
    assert {"pr1-add-cancellation", "pr6-identity-edge-gap-swap",
            "pr7-checkpoint-truncation"} <= names


def test_corpus_entries_documented():
    for entry in ENTRIES:
        assert entry.description, f"{entry.name} lacks a description"
        assert entry.schema >= 1


@pytest.mark.parametrize("entry", ENTRIES,
                         ids=[entry.name for entry in ENTRIES])
def test_replay_passes_across_all_backends(entry):
    failures = replay_entry(entry, backends=available_backends())
    assert failures == []


def test_block_cache_entry_still_pins_the_bug():
    # The reorder-notify entry is only a regression test if it actually
    # fails on an engine that skips reorder notifications: replaying it
    # under BrokenReorderEngine must collapse fidelity.
    entry = next(e for e in ENTRIES
                 if e.name == "reorder-notify-block-cache")
    assert entry.case is not None
    verdict = check_case(entry.case, engine_cls=BrokenReorderEngine)
    assert verdict.failed
