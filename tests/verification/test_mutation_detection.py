"""Mutation testing of the equivalence checker.

A verifier is only trustworthy if it *catches* bugs, not just confirms
correct circuits.  These tests inject single-point mutations -- dropped
gates, perturbed angles, swapped non-commuting neighbours, retargeted
controls -- into real circuits and require the checker to flag every one.
"""

from random import Random

import pytest

from repro.algorithms import grover_circuit, qft_circuit
from repro.circuit import Operation, QuantumCircuit
from repro.verification import check_equivalence


def copy_ops(circuit: QuantumCircuit) -> list[Operation]:
    return list(circuit.operations())


def circuit_from(operations, num_qubits: int) -> QuantumCircuit:
    result = QuantumCircuit(num_qubits)
    result.extend(operations)
    return result


@pytest.fixture(scope="module")
def reference():
    return qft_circuit(4)


class TestMutationsAreCaught:
    def test_dropped_gate(self, reference):
        ops = copy_ops(reference)
        for drop_index in range(0, len(ops), 3):
            mutated = circuit_from(ops[:drop_index] + ops[drop_index + 1:],
                                   4)
            assert not check_equivalence(reference, mutated).equivalent, \
                f"dropping op {drop_index} went unnoticed"

    def test_perturbed_angles(self, reference):
        ops = copy_ops(reference)
        for index, op in enumerate(ops):
            if not op.params:
                continue
            perturbed = Operation(op.gate, op.target, op.controls,
                                  (op.params[0] + 1e-3,))
            mutated = circuit_from(ops[:index] + [perturbed]
                                   + ops[index + 1:], 4)
            assert not check_equivalence(reference, mutated).equivalent

    def test_swapped_non_commuting_neighbours(self, reference):
        from repro.baseline import simulate_statevector
        import numpy as np
        ops = copy_ops(reference)
        caught = 0
        attempted = 0
        for index in range(len(ops) - 1):
            swapped = ops[:index] + [ops[index + 1], ops[index]] \
                + ops[index + 2:]
            mutated = circuit_from(swapped, 4)
            # only count swaps that actually change the unitary
            if np.allclose(simulate_statevector(mutated),
                           simulate_statevector(reference), atol=1e-12):
                continue
            attempted += 1
            if not check_equivalence(reference, mutated).equivalent:
                caught += 1
        assert attempted > 0
        assert caught == attempted

    def test_retargeted_control(self):
        base = QuantumCircuit(3)
        base.h(0).cx(0, 1).t(1).cx(1, 2)
        mutated = QuantumCircuit(3)
        mutated.h(0).cx(0, 2).t(1).cx(1, 2)  # second gate retargeted
        assert not check_equivalence(base, mutated).equivalent

    def test_flipped_control_polarity(self):
        base = QuantumCircuit(2)
        base.h(0).cx(0, 1)
        mutated = QuantumCircuit(2)
        mutated.h(0)
        mutated.add_operation("x", 1, controls=((0, 0),))
        assert not check_equivalence(base, mutated).equivalent

    def test_grover_marked_element_mutation(self):
        a = grover_circuit(4, 5, iterations=2,
                           mark_repetition=False).circuit
        b = grover_circuit(4, 6, iterations=2,
                           mark_repetition=False).circuit
        assert not check_equivalence(a, b).equivalent

    def test_random_fuzz_mutations(self):
        rng = Random(4)
        reference = qft_circuit(3)
        ops = copy_ops(reference)
        for _ in range(15):
            index = rng.randrange(len(ops))
            op = ops[index]
            if op.params:
                mutated_op = Operation(op.gate, op.target, op.controls,
                                       (op.params[0] * 1.01 + 0.01,))
            else:
                new_target = (op.target + 1) % 3
                if any(q == new_target for q, _ in op.controls):
                    continue
                mutated_op = Operation(op.gate, new_target, op.controls,
                                       op.params)
            mutated = circuit_from(ops[:index] + [mutated_op]
                                   + ops[index + 1:], 3)
            assert not check_equivalence(reference, mutated).equivalent


class TestNoFalsePositives:
    def test_commuting_reorder_still_equivalent(self):
        a = QuantumCircuit(3)
        a.t(0).z(1).cz(0, 1).s(2)
        b = QuantumCircuit(3)
        b.s(2).cz(0, 1).z(1).t(0)  # all diagonal: any order works
        assert check_equivalence(a, b).equivalent

    def test_disjoint_reorder_still_equivalent(self):
        a = QuantumCircuit(4)
        a.h(0).x(2).cx(0, 1).sx(3)
        b = QuantumCircuit(4)
        b.x(2).sx(3).h(0).cx(0, 1)
        assert check_equivalence(a, b).equivalent
