"""Functional verification of reversible blocks against specifications."""

import pytest

from repro.algorithms import beauregard_layout, controlled_ua_circuit
from repro.algorithms.arithmetic import append_add_const
from repro.circuit import QuantumCircuit
from repro.verification import check_implements_function


class TestSimpleBlocks:
    def test_increment_circuit(self):
        m = 3
        qc = QuantumCircuit(m)
        append_add_const(qc, list(range(m)), 1)
        result = check_implements_function(
            qc, lambda x: (x + 1) % 8, input_qubits=range(m))
        assert result
        assert result.inputs_checked == 8

    def test_xor_constant_circuit(self):
        qc = QuantumCircuit(3)
        qc.x(0).x(2)
        result = check_implements_function(
            qc, lambda x: x ^ 0b101, input_qubits=[0, 1, 2])
        assert result

    def test_wrong_function_detected(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        result = check_implements_function(
            qc, lambda x: x, input_qubits=[0, 1])
        assert not result
        assert len(result.failures) == 4  # every input moves

    def test_superposition_output_detected(self):
        qc = QuantumCircuit(1)
        qc.h(0)  # not a classical function at all
        result = check_implements_function(qc, lambda x: x,
                                           input_qubits=[0])
        assert not result

    def test_sampled_inputs(self):
        m = 4
        qc = QuantumCircuit(m)
        append_add_const(qc, list(range(m)), 5)
        result = check_implements_function(
            qc, lambda x: (x + 5) % 16, input_qubits=range(m),
            inputs=[0, 3, 9, 15])
        assert result
        assert result.inputs_checked == 4

    def test_overlapping_fixed_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            check_implements_function(qc, lambda x: x, input_qubits=[0],
                                      fixed={0: 1})


class TestBeauregardOracle:
    """The paper's DD-construct premise: the gate-level oracle and the
    functional specification agree exactly."""

    def test_controlled_ua_implements_modular_multiplication(self):
        modulus, multiplier = 15, 7
        layout = beauregard_layout(modulus)
        circuit = controlled_ua_circuit(modulus, multiplier)
        result = check_implements_function(
            circuit,
            lambda x: (multiplier * x) % modulus,
            input_qubits=layout.x_register,
            fixed={layout.control: 1},
            inputs=range(modulus),  # the residue subspace
        )
        assert result, result.failures

    def test_control_off_is_identity(self):
        modulus, multiplier = 15, 7
        layout = beauregard_layout(modulus)
        circuit = controlled_ua_circuit(modulus, multiplier)
        result = check_implements_function(
            circuit, lambda x: x,
            input_qubits=layout.x_register,
            fixed={layout.control: 0},
            inputs=range(1 << len(layout.x_register)),
        )
        assert result

    def test_ancillas_verified_clean(self):
        """A block that leaves an ancilla dirty must fail the check."""
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.cx(0, 1)  # copies the flipped input bit into 'ancilla' 1
        result = check_implements_function(qc, lambda x: x ^ 1,
                                           input_qubits=[0])
        assert not result
