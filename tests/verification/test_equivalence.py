"""DD-based equivalence checking."""

import math

import numpy as np
import pytest
from hypothesis import given

from repro.circuit import QuantumCircuit, from_qasm, to_qasm
from repro.dd import matrix_to_numpy
from repro.simulation import SimulationEngine
from repro.verification import (EquivalenceResult, check_equivalence,
                                circuit_unitary_dd)

from ..conftest import circuits


class TestCircuitUnitary:
    def test_empty_circuit_is_identity(self):
        engine = SimulationEngine()
        unitary = circuit_unitary_dd(engine, QuantumCircuit(3))
        assert unitary.node is engine.package.identity(3).node

    def test_matches_dense_composition(self):
        from repro.baseline import simulate_statevector
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).t(2).ccx(0, 2, 1)
        engine = SimulationEngine()
        unitary = matrix_to_numpy(circuit_unitary_dd(engine, qc), 3)
        for column in range(8):
            assert np.allclose(unitary[:, column],
                               simulate_statevector(qc, column))

    def test_unitary_of_unitary_circuit_is_unitary(self):
        qc = QuantumCircuit(2)
        qc.h(0).sx(1).cp(0.7, 0, 1)
        engine = SimulationEngine()
        dense = matrix_to_numpy(circuit_unitary_dd(engine, qc), 2)
        assert np.allclose(dense @ dense.conj().T, np.eye(4))


class TestEquivalent:
    @pytest.mark.parametrize("method", ["miter", "pointer"])
    def test_identical_circuits(self, method):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        result = check_equivalence(qc, qc, method=method)
        assert result.equivalent
        assert result.global_phase == pytest.approx(1.0)

    @pytest.mark.parametrize("method", ["miter", "pointer"])
    def test_hxh_equals_z(self, method):
        a = QuantumCircuit(1)
        a.h(0).x(0).h(0)
        b = QuantumCircuit(1)
        b.z(0)
        assert check_equivalence(a, b, method=method).equivalent

    def test_swap_decompositions(self):
        a = QuantumCircuit(2)
        a.swap(0, 1)
        b = QuantumCircuit(2)
        b.cx(1, 0).cx(0, 1).cx(1, 0)
        assert check_equivalence(a, b).equivalent

    def test_global_phase_detected(self):
        a = QuantumCircuit(1)
        a.rz(math.pi, 0)       # diag(-i, i) = -i * Z
        b = QuantumCircuit(1)
        b.z(0)
        up_to_phase = check_equivalence(a, b)
        assert up_to_phase.equivalent
        assert up_to_phase.global_phase == pytest.approx(-1j)
        exact = check_equivalence(a, b, up_to_global_phase=False)
        assert not exact.equivalent

    def test_qasm_round_trip_equivalence(self):
        qc = QuantumCircuit(3)
        qc.h(0).cp(math.pi / 8, 0, 2).ccx(0, 1, 2).sdg(1)
        assert check_equivalence(qc, from_qasm(to_qasm(qc))).equivalent

    @given(circuits(max_qubits=3, max_operations=8))
    def test_circuit_equivalent_to_double_inverse(self, qc):
        assert check_equivalence(qc, qc.inverse().inverse(),
                                 method="pointer").equivalent


class TestNotEquivalent:
    @pytest.mark.parametrize("method", ["miter", "pointer"])
    def test_different_gates(self, method):
        a = QuantumCircuit(1)
        a.x(0)
        b = QuantumCircuit(1)
        b.y(0)
        assert not check_equivalence(a, b, method=method).equivalent

    def test_different_qubit_counts(self):
        assert not check_equivalence(QuantumCircuit(2),
                                     QuantumCircuit(3)).equivalent

    def test_close_but_not_equal_rotations(self):
        a = QuantumCircuit(1)
        a.rz(0.5, 0)
        b = QuantumCircuit(1)
        b.rz(0.5001, 0)
        assert not check_equivalence(a, b).equivalent

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            check_equivalence(QuantumCircuit(1), QuantumCircuit(1),
                              method="telepathy")

    def test_result_is_falsy_when_not_equivalent(self):
        a = QuantumCircuit(1)
        a.x(0)
        result = check_equivalence(a, QuantumCircuit(1))
        assert not result
