"""Option-surface fuzzing: plans, cases, coverage, mutation.

The option surface (kernel choice, identity edges, dense blocks, strategy,
reordering cadence, memory budgets, checkpoint/resume) is where bugs have
historically hidden -- each past PR's post-mortem bug lived in an option
*interaction*, not in a single gate path.  These tests pin the fuzzing
machinery itself plus the acceptance property: a planted reorder-path bug
is caught and minimized to a tiny reproducer.
"""

import math
from random import Random

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.operation import Operation
from repro.verification import (BrokenReorderEngine, CoverageMap,
                                FuzzCase, FuzzConfig, RunPlan, check_case,
                                coverage_signature, dense_fidelity,
                                draw_case, draw_plan, engine_class,
                                execute_plan, mutate_case, run_mutation,
                                run_plans)


def entangler(num_qubits=5):
    circuit = QuantumCircuit(num_qubits, name="entangler")
    for qubit in range(num_qubits):
        circuit.append(Operation("h", qubit))
    for qubit in range(num_qubits - 1):
        circuit.append(Operation("x", qubit + 1, ((qubit, 1),)))
    for qubit in range(num_qubits):
        circuit.append(Operation("t", qubit))
    for qubit in range(num_qubits - 1):
        circuit.append(Operation("x", 0, ((qubit + 1, 1),)))
    return circuit


# -- RunPlan: the option schedule as data ------------------------------


class TestRunPlan:
    def test_defaults_are_the_plain_path(self):
        plan = RunPlan()
        assert plan.options() == []
        assert plan.describe() == "plain"

    def test_options_and_without_are_inverse(self):
        plan = RunPlan(kernel="iterative", reorder="every=2",
                       max_nodes=96)
        assert len(plan.options()) == 3
        for option in plan.options():
            shrunk = plan.without(option)
            assert len(shrunk.options()) == 2
            assert option not in shrunk.options()

    def test_round_trip(self):
        plan = RunPlan(kernel="iterative", identity_edges=True,
                       strategy="repeating:k=2", reorder="governor",
                       max_nodes=48, checkpoint_at=7)
        assert RunPlan.from_dict(plan.as_dict()) == plan

    @pytest.mark.parametrize("payload", [
        {"kernel": "vectorised"},
        {"strategy": "no-such-strategy"},
        {"reorder": "sometimes"},
        {"max_nodes": 0},
        {"checkpoint_at": -3},
    ])
    def test_validate_rejects_bad_options(self, payload):
        with pytest.raises(ValueError):
            RunPlan.from_dict(payload)

    def test_without_unknown_option_raises(self):
        with pytest.raises(ValueError):
            RunPlan().without("tolerance=0")

    def test_draw_plan_always_valid(self):
        rng = Random(5)
        for _ in range(200):
            draw_plan(rng).validate()
            draw_plan(rng, block=True).validate()


# -- execute_plan: outcomes of the option schedule ---------------------


class TestExecutePlan:
    def test_plain_plan_matches_oracle(self):
        outcome = execute_plan(entangler(), RunPlan())
        assert outcome.ok and not outcome.resumed
        assert dense_fidelity(outcome.result, entangler()) == \
            pytest.approx(1.0)

    def test_option_heavy_plan_still_matches_oracle(self):
        plan = RunPlan(kernel="iterative", identity_edges=True,
                       strategy="repeating:k=2", reorder="every=2",
                       max_nodes=96)
        outcome = execute_plan(entangler(), plan)
        assert outcome.ok
        assert dense_fidelity(outcome.result, entangler()) == \
            pytest.approx(1.0)

    def test_checkpoint_resumes_through_a_second_engine(self):
        outcome = execute_plan(entangler(), RunPlan(checkpoint_at=4))
        assert outcome.ok and outcome.resumed
        assert dense_fidelity(outcome.result, entangler()) == \
            pytest.approx(1.0)

    def test_tiny_budget_aborts_instead_of_failing(self):
        outcome = execute_plan(entangler(), RunPlan(max_nodes=8))
        assert outcome.budget_aborted
        assert not outcome.ok and outcome.error is None

    def test_crash_is_reported_not_raised(self):
        circuit = QuantumCircuit(2, name="bad")
        circuit.append(Operation("h", 0))

        class ExplodingEngine(engine_class("default")):
            def simulate(self, *args, **kwargs):
                raise RuntimeError("boom")

        outcome = execute_plan(circuit, RunPlan(),
                               engine_cls=ExplodingEngine)
        assert outcome.error == "RuntimeError: boom"
        assert not outcome.ok

    def test_engine_registry(self):
        assert engine_class("broken-reorder") is BrokenReorderEngine
        with pytest.raises(ValueError):
            engine_class("no-such-engine")


# -- FuzzCase: structural cases with blocks and plans ------------------


class TestFuzzCase:
    def test_round_trip_preserves_everything(self):
        case = draw_case(Random(17), seed=17)
        again = FuzzCase.from_dict(case.as_dict())
        assert again == case

    def test_drawn_cases_are_valid_and_runnable(self):
        rng = Random(3)
        for _ in range(30):
            case = draw_case(rng)
            case.validate()
            circuit = case.circuit()
            assert circuit.num_qubits == case.num_qubits

    def test_block_again_appends_the_same_block_object(self):
        operations = (Operation("h", 0), Operation("x", 1, ((0, 1),)),
                      Operation("t", 1))
        case = FuzzCase(num_qubits=2, operations=operations,
                        plan=RunPlan(), block=(0, 2, 2),
                        block_again=True)
        blocks = [instr for instr in case.circuit().instructions
                  if not isinstance(instr, Operation)]
        assert len(blocks) == 2
        assert blocks[0] is blocks[1]

    def test_check_case_passes_on_default_engine(self):
        case = draw_case(Random(23), seed=23)
        verdict = check_case(case)
        assert not verdict.failed


# -- coverage signatures: the novelty signal ---------------------------


class TestCoverage:
    def test_signature_reflects_plan_and_outcome(self):
        plan = RunPlan(kernel="iterative", reorder="every=1")
        outcome = execute_plan(entangler(), plan)
        signature = coverage_signature(plan, outcome)
        assert "kernel:iterative" in signature
        assert "reorder-mode:every" in signature
        assert any(bucket.startswith("mxv-band:")
                   for bucket in signature)

    def test_budget_abort_short_circuits_the_signature(self):
        plan = RunPlan(max_nodes=8)
        outcome = execute_plan(entangler(), plan)
        signature = coverage_signature(plan, outcome)
        assert "budget-aborted" in signature
        assert not any(bucket.startswith("mxv-band:")
                       for bucket in signature)

    def test_map_reports_novelty_once(self):
        coverage = CoverageMap()
        signature = frozenset({"kernel:recursive", "mxv-band:3"})
        assert coverage.observe(signature)
        assert not coverage.observe(signature)
        assert coverage.observe(signature | {"reorders:1"})
        assert len(coverage) == 3


# -- mutation: structure-preserving case perturbation ------------------


class TestMutation:
    def test_mutants_stay_valid(self):
        rng = Random(9)
        case = draw_case(rng)
        for _ in range(150):
            case = mutate_case(case, rng)
            case.validate()    # raises on any structural corruption
            case.circuit()     # and the circuit must still build

    def test_mutation_changes_the_case(self):
        rng = Random(4)
        case = draw_case(rng)
        changed = sum(mutate_case(case, Random(i)) != case
                      for i in range(20))
        assert changed == 20

    def test_rotation_angles_stay_finite(self):
        rng = Random(12)
        case = draw_case(rng, rotation_probability=1.0)
        for _ in range(60):
            case = mutate_case(case, rng)
        for operation in case.operations:
            for param in operation.params:
                assert math.isfinite(param)


# -- campaigns: the acceptance property --------------------------------


class TestCampaigns:
    def test_clean_engine_campaign_finds_nothing(self):
        report = run_plans(FuzzConfig(seed=6), max_cases=25)
        assert report.ok
        assert report.circuits_checked + report.cases_skipped == 25

    def test_mutation_campaign_accumulates_coverage(self):
        report = run_mutation(FuzzConfig(seed=6), max_cases=30)
        assert report.ok
        assert report.coverage_buckets > 10
        assert report.novel_cases > 0

    def test_planted_reorder_bug_is_caught_and_minimized(self):
        # The acceptance criterion: an engine that skips reorder
        # notifications (stale block cache, uncleared extra roots) must
        # be caught by the option-surface campaign and minimized to a
        # <=5-gate circuit under a <=2-step option plan.
        config = FuzzConfig(seed=11, max_failures=1,
                            plan_engine="broken-reorder")
        report = run_plans(config, max_cases=400)
        assert not report.ok
        failure = report.failures[0]
        assert failure.case is not None
        assert failure.engine == "broken-reorder"
        case = FuzzCase.from_dict(failure.case)
        assert case.gate_count() <= 5
        assert len(case.plan.options()) <= 2
        # the minimized reproducer must still fail on the broken engine
        # and pass on the default one -- it pins the bug, not noise
        assert check_case(case, engine_cls=BrokenReorderEngine).failed
        assert not check_case(case).failed
