"""The differential fuzzer: campaign driver, minimizer, corpus, sweep cell."""

import json

import pytest

from repro.backends import available_backends
from repro.verification.fuzz import (DifferentialFuzzer, FuzzConfig,
                                     FuzzMismatch, fuzz_circuit,
                                     register_broken_backend, run_fuzz_cell,
                                     unregister_broken_backend, write_corpus)


@pytest.fixture
def broken_pool():
    """Register the deliberately-broken backend, always clean up."""
    name = register_broken_backend()
    try:
        yield name
    finally:
        unregister_broken_backend()


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = fuzz_circuit(4, 20, seed=9)
        b = fuzz_circuit(4, 20, seed=9)
        assert [str(op) for op in a.operations()] == \
            [str(op) for op in b.operations()]
        assert a.num_operations() == 20

    def test_rotation_probability_zero_stays_clifford_t(self):
        circuit = fuzz_circuit(4, 40, seed=1, rotation_probability=0.0)
        assert all(not op.params for op in circuit.operations())


class TestCleanCampaign:
    def test_all_builtins_agree(self):
        config = FuzzConfig(max_qubits=4, max_operations=20, seed=42)
        report = DifferentialFuzzer(config).run(max_circuits=6)
        assert report.ok
        assert report.circuits_checked == 6
        # every non-reference backend compared on every circuit
        pool = len(report.backends)
        assert pool >= 3
        assert report.comparisons == 6 * (pool - 1)

    def test_budget_checks_at_least_one_circuit(self):
        config = FuzzConfig(max_qubits=3, max_operations=8, seed=1)
        report = DifferentialFuzzer(config).run(budget_seconds=0.0)
        assert report.circuits_checked >= 1

    def test_needs_two_backends(self):
        with pytest.raises(ValueError, match=">= 2 backends"):
            DifferentialFuzzer(FuzzConfig(backends=("dense",),
                                          reference="dense"))


class TestBrokenBackend:
    def test_caught_and_minimized_quickly(self, broken_pool):
        """The planted T-phase bug must be found in well under 200
        circuits and shrink to a tiny reproducer."""
        config = FuzzConfig(seed=3, max_failures=1)
        report = DifferentialFuzzer(config).run(max_circuits=200)
        assert not report.ok
        assert report.circuits_checked < 200
        failure = report.failures[0]
        assert failure.backend == broken_pool
        assert failure.kind == "fidelity"
        assert failure.fidelity < 1 - 1e-9
        assert failure.minimized_operations <= 5
        assert failure.minimized_qubits <= 3
        assert "OPENQASM" in failure.minimized_qasm

    def test_minimized_reproducer_still_fails(self, broken_pool):
        from repro.circuit.qasm import from_qasm
        config = FuzzConfig(seed=3, max_failures=1)
        report = DifferentialFuzzer(config).run(max_circuits=200)
        fuzzer = DifferentialFuzzer(config)
        minimized = from_qasm(report.failures[0].minimized_qasm)
        assert fuzzer._disagreement(minimized, broken_pool) is not None

    def test_broken_backend_not_left_registered(self):
        assert "broken-phase" not in available_backends()


class TestCorpus:
    def test_roundtrip(self, broken_pool, tmp_path):
        config = FuzzConfig(seed=3, max_failures=1)
        report = DifferentialFuzzer(config).run(max_circuits=200)
        paths = write_corpus(report, str(tmp_path / "corpus"))
        assert any(path.endswith("summary.json") for path in paths)
        reproducers = [path for path in paths
                       if not path.endswith("summary.json")]
        assert len(reproducers) == len(report.failures) == 1
        payload = json.load(open(reproducers[0]))
        assert payload["schema"] == 1
        assert payload["backend"] == broken_pool
        assert "OPENQASM" in payload["minimized_qasm"]
        summary = json.load(open(str(tmp_path / "corpus" / "summary.json")))
        assert summary["ok"] is False

    def test_clean_campaign_writes_summary_only(self, tmp_path):
        config = FuzzConfig(max_qubits=3, max_operations=10, seed=7)
        report = DifferentialFuzzer(config).run(max_circuits=2)
        paths = write_corpus(report, str(tmp_path / "corpus"))
        assert len(paths) == 1 and paths[0].endswith("summary.json")


class TestSweepCell:
    def test_clean_cell_returns_statistics(self):
        metadata = {"max_qubits": 3, "max_operations": 10,
                    "max_circuits": 3}
        statistics = run_fuzz_cell(metadata, seed=5)
        assert statistics.strategy == "fuzz"
        assert statistics.operations_applied == 3
        assert statistics.matrix_vector_mults > 0
        assert "dense" in statistics.backend

    def test_cell_seed_fills_unpinned_config(self):
        a = run_fuzz_cell({"max_circuits": 1}, seed=5)
        assert a.circuit_name == "fuzz-seed-5"

    def test_broken_cell_raises_mismatch(self):
        metadata = {"register_broken": True, "max_circuits": 200,
                    "seed": 3, "max_failures": 1}
        try:
            with pytest.raises(FuzzMismatch, match="broken-phase"):
                run_fuzz_cell(metadata)
        finally:
            unregister_broken_backend()


class TestConfig:
    def test_dict_roundtrip(self):
        config = FuzzConfig(backends=("dd", "dense"), seed=4,
                            max_qubits=5)
        assert FuzzConfig.from_dict(config.as_dict()) == config

    def test_reference_always_in_pool(self):
        config = FuzzConfig(backends=("dd",), reference="dense")
        assert config.resolved_backends() == ["dd", "dense"]
