"""The dense numpy comparator itself must be trustworthy."""

from random import Random

import numpy as np
import pytest

from repro.baseline import (StatevectorSimulator, apply_operation,
                            simulate_statevector)
from repro.circuit import Operation, QuantumCircuit


class TestApplyOperation:
    def test_x_flips_target(self):
        state = np.zeros(4, dtype=complex)
        state[0] = 1
        apply_operation(state, Operation("x", 1), 2)
        assert state[2] == 1

    def test_controlled_gate_respects_control(self):
        state = np.zeros(4, dtype=complex)
        state[0] = 1
        apply_operation(state, Operation("x", 1, controls=(0,)), 2)
        assert state[0] == 1  # control off: unchanged
        state = np.zeros(4, dtype=complex)
        state[1] = 1
        apply_operation(state, Operation("x", 1, controls=(0,)), 2)
        assert state[3] == 1

    def test_negative_control(self):
        state = np.zeros(4, dtype=complex)
        state[0] = 1
        apply_operation(state, Operation("x", 1, controls=((0, 0),)), 2)
        assert state[2] == 1

    def test_hadamard_normalisation(self):
        state = np.zeros(2, dtype=complex)
        state[0] = 1
        apply_operation(state, Operation("h", 0), 1)
        assert np.allclose(np.abs(state), [2 ** -0.5] * 2)


class TestSimulator:
    def test_bell_state(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        state = simulate_statevector(qc)
        assert np.allclose(np.abs(state) ** 2, [0.5, 0, 0, 0.5])

    def test_initial_basis_state(self):
        qc = QuantumCircuit(3)
        qc.x(0)
        state = simulate_statevector(qc, initial_index=0b100)
        assert abs(state[0b101]) == pytest.approx(1.0)

    def test_size_mismatch_rejected(self):
        simulator = StatevectorSimulator(2)
        qc = QuantumCircuit(3)
        with pytest.raises(ValueError):
            simulator.run(qc)

    def test_probabilities(self):
        simulator = StatevectorSimulator(1)
        simulator.apply(Operation("h", 0))
        assert np.allclose(simulator.probabilities(), [0.5, 0.5])

    def test_measure_collapses(self):
        simulator = StatevectorSimulator(2)
        simulator.apply(Operation("h", 0))
        simulator.apply(Operation("x", 1, controls=(0,)))
        outcome = simulator.measure_qubit(0, Random(5))
        expected_index = 3 if outcome else 0
        assert abs(simulator.state[expected_index]) == pytest.approx(1.0)

    def test_measure_statistics(self):
        ones = 0
        for seed in range(100):
            simulator = StatevectorSimulator(1)
            simulator.apply(Operation("h", 0))
            ones += simulator.measure_qubit(0, Random(seed))
        assert 25 < ones < 75

    def test_sample(self):
        simulator = StatevectorSimulator(2)
        simulator.apply(Operation("h", 0))
        counts = simulator.sample(100, Random(2))
        assert sum(counts.values()) == 100
        assert set(counts) <= {0, 1}

    def test_norm_preserved_through_circuit(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).t(2).ccx(0, 1, 2).sx(1)
        state = simulate_statevector(qc)
        assert np.linalg.norm(state) == pytest.approx(1.0)
