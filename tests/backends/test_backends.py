"""The backend protocol, registry, and cross-backend agreement."""

import numpy as np
import pytest

from repro.backends import (ArrayResult, Backend, BackendCapabilities,
                            available_backends, backend_description,
                            create_backend, register_backend,
                            unregister_backend)
from repro.baseline import simulate_statevector
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.qasm import from_qasm

FIDELITY_FLOOR = 1 - 1e-9

GHZ_QASM = """
OPENQASM 2.0;
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
"""

MIXED_QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[1];
rz(0.7) q[1];
t q[2];
ccx q[0],q[1],q[3];
ry(1.1) q[2];
cz q[2],q[3];
sdg q[0];
"""

BUILTINS = ("dd", "dd-iterative", "dd-matrix", "dense", "tensor-slot")


def fidelity_to_dense(result, circuit) -> float:
    dense = simulate_statevector(circuit)
    inner = sum(result.amplitude(i).conjugate() * dense[i]
                for i in range(1 << circuit.num_qubits))
    return abs(inner) ** 2


class TestRegistry:
    def test_builtins_registered(self):
        for name in BUILTINS:
            assert name in available_backends()
            assert backend_description(name)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="dd-iterative"):
            create_backend("no-such-backend")

    def test_duplicate_registration_refused_without_replace(self):
        from repro.backends import DenseBackend
        with pytest.raises(ValueError, match="already registered"):
            register_backend("dense", DenseBackend)

    def test_unknown_factory_option_names_backend(self):
        with pytest.raises(ValueError, match="dense"):
            create_backend("dense", bogus_option=1)

    def test_register_unregister_roundtrip(self):
        from repro.backends import DenseBackend
        register_backend("temp-dense", DenseBackend)
        try:
            assert "temp-dense" in available_backends()
            backend = create_backend("temp-dense")
            # an alias resolves, but the adapter keeps its own identity
            assert backend.name == "dense"
        finally:
            unregister_backend("temp-dense")
        assert "temp-dense" not in available_backends()


class TestProtocol:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_agrees_with_dense_baseline(self, name):
        circuit = from_qasm(MIXED_QASM)
        result = create_backend(name).run(circuit)
        assert fidelity_to_dense(result, circuit) >= FIDELITY_FLOOR
        assert result.statistics.backend == name
        assert result.statistics.circuit_name == circuit.name

    @pytest.mark.parametrize("name", BUILTINS)
    def test_streaming_protocol(self, name):
        circuit = from_qasm(GHZ_QASM)
        backend = create_backend(name)
        backend.prepare(circuit.num_qubits)
        for operation in circuit.operations():
            backend.apply(operation)
        result = backend.finalize()
        assert abs(result.probability(0b000) - 0.5) < 1e-9
        assert abs(result.probability(0b111) - 0.5) < 1e-9

    @pytest.mark.parametrize("name", BUILTINS)
    def test_initial_basis_state(self, name):
        circuit = QuantumCircuit(2, name="idle")
        circuit.x(0)
        result = create_backend(name).run(circuit, initial_index=0b10)
        assert abs(result.probability(0b11) - 1.0) < 1e-9

    def test_probabilities_normalise(self):
        circuit = from_qasm(MIXED_QASM)
        for name in BUILTINS:
            probabilities = create_backend(name).run(circuit).probabilities()
            assert abs(sum(probabilities) - 1.0) < 1e-9

    def test_sampling_identical_across_backends(self):
        from random import Random
        circuit = from_qasm(MIXED_QASM)
        counts = [create_backend(name).run(circuit).sample(64, Random(5))
                  for name in ("dense", "tensor-slot", "dd")]
        assert counts[0] == counts[1] == counts[2]

    def test_fidelity_with_cross_backend(self):
        circuit = from_qasm(GHZ_QASM)
        a = create_backend("dd").run(circuit)
        b = create_backend("tensor-slot").run(circuit)
        assert a.fidelity_with(b) >= FIDELITY_FLOOR
        assert b.fidelity_with(a) >= FIDELITY_FLOOR


class TestCapabilityValidation:
    def test_strategy_rejected_on_streaming_backends(self):
        circuit = from_qasm(GHZ_QASM)
        for name in ("dense", "tensor-slot", "dd", "dd-iterative"):
            with pytest.raises(ValueError, match="strateg"):
                create_backend(name).run(circuit, strategy="k=2")

    def test_dd_matrix_honours_strategy(self):
        circuit = from_qasm(MIXED_QASM)
        result = create_backend("dd-matrix").run(circuit, strategy="k=2")
        assert result.statistics.matrix_matrix_mults > 0
        assert fidelity_to_dense(result, circuit) >= FIDELITY_FLOOR

    def test_reorder_rejected_on_dense(self):
        circuit = from_qasm(GHZ_QASM)
        with pytest.raises(ValueError, match="reorder"):
            create_backend("dense").run(circuit, reorder="governor")

    def test_qubit_cap_enforced(self):
        circuit = QuantumCircuit(30, name="too-wide")
        circuit.h(0)
        with pytest.raises(ValueError, match="capped"):
            create_backend("dense").run(circuit)

    def test_capabilities_descriptor(self):
        for name in BUILTINS:
            capabilities = create_backend(name).capabilities()
            assert isinstance(capabilities, BackendCapabilities)
            assert capabilities.description
            payload = capabilities.as_dict()
            assert set(payload) >= {"strategies", "reorder", "checkpoint",
                                    "max_qubits"}


class TestArrayResult:
    def test_shape_validated(self):
        from repro.simulation.statistics import SimulationStatistics
        with pytest.raises(ValueError, match="does not match"):
            ArrayResult(np.zeros(3, dtype=complex), 2,
                        SimulationStatistics())

    def test_qubit_mismatch_in_fidelity(self):
        ghz = from_qasm(GHZ_QASM)
        small = QuantumCircuit(2, name="small")
        small.h(0)
        a = create_backend("dense").run(ghz)
        b = create_backend("dense").run(small)
        with pytest.raises(ValueError, match="mismatch"):
            a.fidelity_with(b)


class TestCustomBackend:
    """Registration of out-of-tree backends (the extension point)."""

    def test_custom_backend_joins_pool(self):
        class Stub(Backend):
            name = "stub"

            def capabilities(self):
                return BackendCapabilities(description="stub")

            def prepare(self, num_qubits, initial_index=0):
                self._n = num_qubits

            def apply(self, operation):
                pass

            def finalize(self):
                from repro.simulation.statistics import SimulationStatistics
                vector = np.zeros(1 << self._n, dtype=complex)
                vector[0] = 1.0
                return ArrayResult(vector, self._n, SimulationStatistics())

        register_backend("stub", Stub, replace=True)
        try:
            circuit = QuantumCircuit(2, name="noop")
            result = create_backend("stub").run(circuit)
            assert result.probability(0) == 1.0
        finally:
            unregister_backend("stub")

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            Backend()
