"""The ``auto`` selector: cheap predictors pick the right simulator."""

import pytest

from repro.algorithms.supremacy import supremacy_circuit
from repro.backends import (DenseBackend, resolve_backend, score_backends,
                            select_backend)
from repro.circuit.circuit import QuantumCircuit
from repro.verification.fuzz import fuzz_circuit


def ghz(num_qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


class TestSelection:
    def test_ghz_stays_on_dd(self):
        """Structured, lightly-entangling -> the DD family."""
        selection = select_backend(ghz(8))
        assert selection.backend in ("dd", "dd-iterative")
        assert selection.features.num_qubits == 8
        assert selection.features.rotation_fraction == 0.0

    def test_rotation_dense_8q_goes_to_flat_arrays(self):
        """Heavily-entangling rotation circuit on a small register ->
        tensor-slot (or dense, the runner-up of the same family)."""
        circuit = fuzz_circuit(8, 40, seed=11, rotation_probability=0.6)
        selection = select_backend(circuit)
        assert selection.backend in ("tensor-slot", "dense")
        assert selection.features.rotation_fraction > 0.2

    def test_supremacy_slice_goes_to_iterative_kernel(self):
        """Wide and deep: dense arrays do not fit, the gate stream is
        long -> the iterative flat DD kernel."""
        circuit = supremacy_circuit(3, 4, 10, seed=3).circuit
        selection = select_backend(circuit)
        assert selection.backend == "dd-iterative"
        # 12 qubits is beyond the dense family's width cutoff
        assert selection.scores["dense"] == 0.0
        assert selection.scores["tensor-slot"] == 0.0

    def test_matrix_pathway_never_wins(self):
        for circuit in (ghz(4), fuzz_circuit(5, 30, seed=2),
                        supremacy_circuit(2, 3, 8, seed=1).circuit):
            assert select_backend(circuit).backend != "dd-matrix"

    def test_selection_record_is_loggable(self):
        selection = select_backend(ghz(4))
        payload = selection.as_dict()
        assert payload["backend"] == selection.backend
        assert payload["reason"]
        assert set(payload["scores"]) >= {"dd", "dd-iterative", "dense"}
        assert payload["features"]["num_qubits"] == 4


class TestResolve:
    def test_explicit_override_beats_auto(self):
        """An explicit ``backend="dense"`` wins even where auto picks DD."""
        circuit = ghz(8)
        assert select_backend(circuit).backend != "dense"
        backend, selection = resolve_backend("dense", circuit)
        assert isinstance(backend, DenseBackend)
        assert selection is None  # no auto decision was made

    def test_auto_returns_decision_record(self):
        backend, selection = resolve_backend("auto", ghz(8))
        assert selection is not None
        assert backend.name == selection.backend

    def test_unknown_name_propagates(self):
        with pytest.raises(ValueError, match="no-such"):
            resolve_backend("no-such", ghz(2))


class TestScores:
    def test_scores_cover_registered_builtins(self):
        from repro.analysis.predictors import circuit_features
        scores = score_backends(circuit_features(ghz(6)))
        assert set(scores) == {"dd", "dd-iterative", "dd-matrix",
                               "dense", "tensor-slot"}
        assert all(0.0 <= score <= 1.5 for score in scores.values())

    def test_gate_count_flips_dd_to_iterative(self):
        from repro.analysis.predictors import circuit_features
        short = score_backends(circuit_features(ghz(6)))
        long_chain = ghz(6)
        for _ in range(40):
            long_chain.cx(0, 1)
            long_chain.cx(1, 2)
        long = score_backends(circuit_features(long_chain))
        assert short["dd"] > short["dd-iterative"]
        assert long["dd-iterative"] > long["dd"]
