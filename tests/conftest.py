"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.circuit import GATES, Operation, QuantumCircuit
from repro.dd import Package

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def package() -> Package:
    return Package()


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------

def amplitudes(num_qubits: int):
    """Non-zero complex amplitude vectors of length 2^num_qubits."""
    size = 1 << num_qubits
    component = st.floats(min_value=-1.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False, width=32)
    return st.lists(
        st.tuples(component, component), min_size=size, max_size=size,
    ).map(
        lambda pairs: np.array([complex(re, im) for re, im in pairs])
    ).filter(lambda v: np.linalg.norm(v) > 1e-3)


def unit_vectors(num_qubits: int):
    """Normalised random state vectors."""
    return amplitudes(num_qubits).map(lambda v: v / np.linalg.norm(v))


def square_matrices(num_qubits: int):
    """Random dense complex matrices of side 2^num_qubits."""
    size = 1 << num_qubits
    component = st.floats(min_value=-1.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False, width=32)
    return st.lists(
        st.tuples(component, component),
        min_size=size * size, max_size=size * size,
    ).map(lambda pairs: np.array(
        [complex(re, im) for re, im in pairs]).reshape(size, size))


_PARAMETRIC = {"rx", "ry", "rz", "p"}
_SIMPLE_GATES = sorted(set(GATES) - {"u", "gu", "id"})


@st.composite
def operations(draw, num_qubits: int, max_controls: int = 2):
    """A random (multi-)controlled single-qubit operation."""
    gate = draw(st.sampled_from(_SIMPLE_GATES))
    target = draw(st.integers(0, num_qubits - 1))
    available = [q for q in range(num_qubits) if q != target]
    control_count = draw(st.integers(0, min(max_controls, len(available))))
    control_qubits = draw(st.permutations(available)) if control_count else []
    controls = tuple(
        (qubit, draw(st.integers(0, 1)))
        for qubit in control_qubits[:control_count])
    params = ()
    if gate in _PARAMETRIC:
        params = (draw(st.floats(min_value=-math.pi, max_value=math.pi,
                                 allow_nan=False)),)
    return Operation(gate, target, controls, params)


@st.composite
def circuits(draw, min_qubits: int = 1, max_qubits: int = 4,
             max_operations: int = 12):
    """A random circuit of random elementary operations."""
    num_qubits = draw(st.integers(min_qubits, max_qubits))
    count = draw(st.integers(0, max_operations))
    circuit = QuantumCircuit(num_qubits, name="random")
    for _ in range(count):
        circuit.append(draw(operations(num_qubits)))
    return circuit
