"""Differential harness: every DD strategy against the dense baseline.

The DD simulator's correctness claim is strategy-independent: sequential
(Eq. 1), every combining strategy (Eq. 2), adaptive and DD-repeating must
all produce the state the conventional array-based simulator produces.
This suite drives seeded random circuits (Clifford+T and parameterised
rotations, <= 8 qubits) and small paper instances (Grover, QFT, Draper
arithmetic) through *every* strategy on the paper-literal pathway and
checks fidelity >= 1 - 1e-9 plus identical measurement distributions.

``DIFFERENTIAL_SEED`` (environment) varies the random-circuit seeds; CI
derives it from the run number so successive runs explore fresh circuits
while any failure stays reproducible from the logged seed.
"""

import os
from random import Random

import numpy as np
import pytest

from repro.baseline import simulate_statevector
from repro.circuit import QuantumCircuit
from repro.dd import sample_counts
from repro.dd.package import Package
from repro.simulation import (MemoryGovernor, SimulationEngine,
                              strategy_from_spec)

DIFFERENTIAL_SEED = int(os.environ.get("DIFFERENTIAL_SEED", "7"))
FIDELITY_FLOOR = 1 - 1e-9

#: every strategy family the engine implements, with the combining ones at
#: both extremes of their parameter
ALL_STRATEGY_SPECS = ("sequential", "k=2", "k=3", "k=4", "k=16", "smax=4",
                      "smax=256", "adaptive", "repeating:sequential",
                      "repeating:k=3")

#: DD-core configurations the kernel grid crosses with every strategy:
#: both arithmetic kernels, identity-skipping matrix edges on and off, and
#: (for the iterative kernel) the dense-block fast path on and off.  Every
#: cell must land on the same dense-baseline state.
KERNEL_CONFIGS = {
    "recursive": dict(kernel="recursive"),
    "recursive-noshortcut": dict(kernel="recursive",
                                 identity_shortcut=False),
    "iterative": dict(kernel="iterative"),
    "iterative-idedges": dict(kernel="iterative", identity_edges=True),
    "iterative-idedges-nodense": dict(kernel="iterative",
                                      identity_edges=True,
                                      dense_blocks=False),
}

_ONE_QUBIT = ("h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx")
_ROTATIONS = ("rx", "ry", "rz", "p")


def random_circuit(num_qubits: int, num_operations: int, seed: int,
                   rotations: bool) -> QuantumCircuit:
    """Seeded random circuit: Clifford+T, optionally with rotations."""
    rng = Random(seed)
    kind = "rot" if rotations else "cliffT"
    qc = QuantumCircuit(num_qubits, name=f"random_{kind}_{num_qubits}_{seed}")
    for _ in range(num_operations):
        roll = rng.random()
        if roll < 0.45:
            getattr(qc, rng.choice(_ONE_QUBIT))(rng.randrange(num_qubits))
        elif rotations and roll < 0.65:
            angle = rng.uniform(0, 2 * np.pi)
            getattr(qc, rng.choice(_ROTATIONS))(angle,
                                                rng.randrange(num_qubits))
        elif roll < 0.9 or num_qubits < 3:
            control, target = rng.sample(range(num_qubits), 2)
            (qc.cx if roll < 0.8 else qc.cz)(control, target)
        else:
            a, b, c = rng.sample(range(num_qubits), 3)
            qc.ccx(a, b, c)
    return qc


def paper_engine() -> SimulationEngine:
    """The paper-literal pathway: explicit gate DDs, one MxV per gate,
    no identity shortcut -- the pathway the strategies actually schedule."""
    return SimulationEngine(package=Package(identity_shortcut=False),
                            use_local_apply=False)


def dd_fidelity(result, dense: np.ndarray) -> float:
    """|<dd|dense>|^2 by amplitude enumeration (small systems)."""
    inner = sum(result.amplitude(i).conjugate() * dense[i]
                for i in range(len(dense)))
    return abs(inner) ** 2


def assert_matches_dense(circuit: QuantumCircuit, spec: str,
                         engine: SimulationEngine | None = None) -> None:
    engine = engine or paper_engine()
    result = engine.simulate(circuit, strategy_from_spec(spec))
    dense = simulate_statevector(circuit)
    fidelity = dd_fidelity(result, dense)
    assert fidelity >= FIDELITY_FLOOR, \
        (f"{circuit.name} under {spec}: fidelity {fidelity!r} "
         f"(seed base {DIFFERENTIAL_SEED})")


RANDOM_CASES = [
    # (qubits, operations, rotations); <= 8 qubits so the dense baseline
    # and amplitude enumeration stay trivial
    (3, 25, False),
    (5, 35, False),
    (8, 40, False),
    (3, 25, True),
    (5, 35, True),
    (8, 40, True),
]


class TestRandomCircuits:
    @pytest.mark.parametrize("spec", ALL_STRATEGY_SPECS)
    @pytest.mark.parametrize("num_qubits,num_operations,rotations",
                             RANDOM_CASES)
    def test_matches_dense(self, num_qubits, num_operations, rotations,
                           spec):
        circuit = random_circuit(
            num_qubits, num_operations,
            seed=DIFFERENTIAL_SEED * 1000 + num_qubits, rotations=rotations)
        assert_matches_dense(circuit, spec)

    @pytest.mark.parametrize("spec", ["sequential", "k=4", "smax=64"])
    def test_fast_path_matches_dense_too(self, spec):
        # the local-gate fast path is an optimisation, not a semantics
        # change: same ground truth as the paper-literal pathway
        circuit = random_circuit(6, 40, seed=DIFFERENTIAL_SEED + 17,
                                 rotations=True)
        assert_matches_dense(circuit, spec, engine=SimulationEngine())


class TestMeasurementDistributions:
    def test_probabilities_match_dense(self):
        circuit = random_circuit(5, 30, seed=DIFFERENTIAL_SEED + 5,
                                 rotations=True)
        dense = simulate_statevector(circuit)
        for spec in ALL_STRATEGY_SPECS:
            result = paper_engine().simulate(circuit,
                                             strategy_from_spec(spec))
            probabilities = result.probabilities()
            assert np.allclose(probabilities, np.abs(dense) ** 2,
                               atol=1e-9), spec

    def test_identical_samples_across_strategies(self):
        # same canonical state + same sampling seed -> the exact same shot
        # sequence, whatever strategy produced the state
        circuit = random_circuit(4, 25, seed=DIFFERENTIAL_SEED + 9,
                                 rotations=True)
        reference = None
        for spec in ALL_STRATEGY_SPECS:
            result = paper_engine().simulate(circuit,
                                             strategy_from_spec(spec))
            counts = sample_counts(result.package, result.state, 200,
                                   Random(DIFFERENTIAL_SEED))
            if reference is None:
                reference = counts
            else:
                assert counts == reference, spec


class TestKernelGrid:
    """Every strategy x kernel x identity-edge configuration vs dense.

    The iterative worklist kernel and identity-skipping matrix edges are
    performance work, not semantics: whatever the strategy schedules and
    whichever core executes it, the state must match the dense baseline
    and the resulting DD (identity-edge gaps included) must pass the
    structural audit.
    """

    @pytest.mark.parametrize("config", sorted(KERNEL_CONFIGS))
    @pytest.mark.parametrize("spec", ALL_STRATEGY_SPECS)
    def test_matches_dense_and_audits(self, spec, config):
        circuit = random_circuit(6, 35, seed=DIFFERENTIAL_SEED + 23,
                                 rotations=True)
        package = Package(**KERNEL_CONFIGS[config])
        engine = SimulationEngine(package=package, use_local_apply=False)
        result = engine.simulate(circuit, strategy_from_spec(spec))
        dense = simulate_statevector(circuit)
        fidelity = dd_fidelity(result, dense)
        assert fidelity >= FIDELITY_FLOOR, \
            (f"{config} under {spec}: fidelity {fidelity!r} "
             f"(seed base {DIFFERENTIAL_SEED})")
        # the final state -- and, for identity-edge configurations, the
        # gap-carrying gate DDs the run interned -- must audit clean
        package.assert_invariants([result.state])

    @pytest.mark.parametrize("config",
                             [c for c in sorted(KERNEL_CONFIGS)
                              if c.startswith("iterative")])
    @pytest.mark.parametrize("spec", ["sequential", "k=4", "smax=64"])
    def test_local_apply_pathway(self, spec, config):
        # same grid through the local-gate fast path: apply_gate (and the
        # dense-block cutover, where enabled) instead of explicit gate DDs
        circuit = random_circuit(6, 40, seed=DIFFERENTIAL_SEED + 17,
                                 rotations=True)
        package = Package(**KERNEL_CONFIGS[config])
        engine = SimulationEngine(package=package, use_local_apply=True)
        result = engine.simulate(circuit, strategy_from_spec(spec))
        dense = simulate_statevector(circuit)
        assert dd_fidelity(result, dense) >= FIDELITY_FLOOR, (config, spec)
        package.assert_invariants([result.state])

    @pytest.mark.parametrize("config", sorted(KERNEL_CONFIGS))
    @pytest.mark.parametrize("reorder", ["every=5", "governor"])
    @pytest.mark.parametrize("spec", ["sequential", "k=3", "adaptive"])
    def test_reorder_axis_matches_dense(self, spec, config, reorder):
        # Mid-run sifting crossed with every kernel configuration: the
        # state (and the iterative kernel's materialized flat state) must
        # still land on the dense baseline, with amplitudes transparently
        # remapped through the recorded permutation, and the final DD must
        # audit clean after every sift.  The governor arm uses a tiny GC
        # threshold with no hard budget: collections go futile almost
        # immediately (pressure -> sift) but nothing can abort the run.
        circuit = random_circuit(6, 35, seed=DIFFERENTIAL_SEED + 29,
                                 rotations=True)
        package = Package(**KERNEL_CONFIGS[config])
        governor = (MemoryGovernor(node_limit=12, max_nodes=None)
                    if reorder == "governor" else None)
        engine = SimulationEngine(package=package, use_local_apply=False,
                                  governor=governor)
        result = engine.simulate(circuit, strategy_from_spec(spec),
                                 reorder=reorder)
        dense = simulate_statevector(circuit)
        fidelity = dd_fidelity(result, dense)
        assert fidelity >= FIDELITY_FLOOR, \
            (f"{config} under {spec} with reorder={reorder}: "
             f"fidelity {fidelity!r} (seed base {DIFFERENTIAL_SEED})")
        package.assert_invariants([result.state])


class TestPaperInstances:
    """The paper's workload families at differential-testable sizes."""

    @pytest.mark.parametrize("spec", ALL_STRATEGY_SPECS)
    def test_grover(self, spec):
        from repro.algorithms.grover import grover_circuit
        # mark_repetition=True (the default) emits a RepeatedBlock, so
        # DD-repeating actually reuses the iteration DD here
        circuit = grover_circuit(5, 11).circuit
        assert_matches_dense(circuit, spec)

    @pytest.mark.parametrize("spec", ALL_STRATEGY_SPECS)
    def test_qft(self, spec):
        from repro.algorithms.qft import qft_circuit
        circuit = qft_circuit(5)
        # start from a non-trivial basis state so the spectrum is not flat
        engine = paper_engine()
        initial = engine.initial_state(5, 0b10110)
        result = engine.simulate(circuit, strategy_from_spec(spec),
                                 initial_state=initial)
        dense = simulate_statevector(circuit, initial_index=0b10110)
        assert dd_fidelity(result, dense) >= FIDELITY_FLOOR

    @pytest.mark.parametrize("spec", ALL_STRATEGY_SPECS)
    def test_arithmetic_adder(self, spec):
        from repro.algorithms.arithmetic import append_add_const
        register = list(range(4))
        circuit = QuantumCircuit(4, name="add_const_4")
        # prepare |0110>, add 7 (mod 16) -> |1101>
        circuit.x(1).x(2)
        append_add_const(circuit, register, 7)
        result = paper_engine().simulate(circuit, strategy_from_spec(spec))
        dense = simulate_statevector(circuit)
        assert dd_fidelity(result, dense) >= FIDELITY_FLOOR
        assert result.probability(0b0110 + 7) == pytest.approx(1.0,
                                                               abs=1e-9)


class TestBackendGrid:
    """Every registered backend against the dense oracle -- the inner
    comparison of the continuous fuzz ratchet, pinned at CI's rotated
    seed so failures here reproduce locally with DIFFERENTIAL_SEED."""

    def test_fault_injected_backends_never_leak_into_the_suite(self):
        from repro.backends import available_backends
        assert "broken-phase" not in available_backends()

    @pytest.mark.parametrize("num_qubits,num_operations,rotations",
                             RANDOM_CASES)
    def test_every_backend_matches_dense(self, num_qubits, num_operations,
                                         rotations):
        from repro.backends import available_backends, create_backend
        circuit = random_circuit(
            num_qubits, num_operations,
            seed=DIFFERENTIAL_SEED * 3000 + num_qubits, rotations=rotations)
        dense = simulate_statevector(circuit)
        for name in available_backends():
            result = create_backend(name).run(circuit)
            fidelity = dd_fidelity(result, dense)
            assert fidelity >= FIDELITY_FLOOR, \
                (f"backend {name} on {circuit.name}: fidelity {fidelity!r} "
                 f"(seed base {DIFFERENTIAL_SEED})")

    def test_auto_selection_matches_dense(self):
        from repro.backends import resolve_backend
        circuit = random_circuit(6, 35, seed=DIFFERENTIAL_SEED + 41,
                                 rotations=True)
        backend, selection = resolve_backend("auto", circuit)
        result = backend.run(circuit)
        dense = simulate_statevector(circuit)
        assert selection is not None and selection.backend == backend.name
        assert dd_fidelity(result, dense) >= FIDELITY_FLOOR
