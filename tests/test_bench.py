"""Benchmark harness: report schema, thrash scenario, trace, CLI plumbing."""

import json

import pytest

from repro.bench import (SMOKE_WORKLOADS, THRASH_CONFIG, WORKLOADS, main,
                         run_bench, thrash_circuit)
from repro.simulation import load_trace

REQUIRED_WORKLOAD_KEYS = {"name", "description", "num_qubits",
                          "num_operations", "fast_path", "matrix_path",
                          "iterative_path", "speedup_fast_vs_matrix",
                          "speedup_iterative_vs_fast",
                          "fidelity_iterative_vs_fast"}
REQUIRED_MEASURE_KEYS = {"wall_seconds_best", "wall_seconds_median",
                         "matrix_vector_mults", "local_gate_applications",
                         "peak_state_nodes", "final_state_nodes",
                         "counters", "cache", "gc"}
REQUIRED_GC_KEYS = {"collections", "nodes_freed", "pause_seconds",
                    "compute_entries_dropped", "ineffective"}
REQUIRED_THRASH_KEYS = {"name", "description", "num_qubits",
                        "num_operations", "node_limit", "ungoverned",
                        "fixed_threshold", "governed",
                        "speedup_governed_vs_fixed",
                        "fidelity_governed_vs_ungoverned",
                        "fidelity_fixed_vs_ungoverned"}
REQUIRED_REORDER_KEYS = {"name", "description", "num_qubits",
                         "num_operations", "ordered", "sifted",
                         "node_ratio_ordered_vs_sifted",
                         "final_permutation",
                         "fidelity_sifted_vs_ordered"}


class TestWorkloadCatalogue:
    def test_four_workloads_per_profile(self):
        # acceptance criterion: Grover, QFT, supremacy, random Clifford
        for suite in (WORKLOADS, SMOKE_WORKLOADS):
            prefixes = {w.name.split("_")[0] for w in suite}
            assert prefixes == {"grover", "qft", "supremacy", "clifford"}

    def test_builders_are_deterministic(self):
        workload = SMOKE_WORKLOADS[3]  # seeded random Clifford circuit
        assert workload.build() == workload.build()


class TestRunBench:
    def test_report_schema(self):
        report = run_bench(smoke=True, repeats=1, workload_names=["qft_10"])
        assert report["schema"] == 4
        assert report["profile"] == "smoke"
        (entry,) = report["workloads"]
        assert REQUIRED_WORKLOAD_KEYS <= set(entry)
        for path in ("fast_path", "matrix_path", "iterative_path"):
            assert REQUIRED_MEASURE_KEYS <= set(entry[path])
            assert REQUIRED_GC_KEYS <= set(entry[path]["gc"])
        for path in ("fast_path", "matrix_path"):
            assert entry[path]["counters"]["total_recursions"] > 0
        # fast path applies gates locally; matrix path never does
        assert entry["fast_path"]["local_gate_applications"] > 0
        assert entry["matrix_path"]["local_gate_applications"] == 0
        assert entry["speedup_fast_vs_matrix"] > 0
        assert entry["speedup_iterative_vs_fast"] > 0
        # the iterative arm is measured against the recursive fast path's
        # final state on every bench run -- the receipt for correctness
        assert entry["fidelity_iterative_vs_fast"] >= 1 - 1e-9
        assert "dense" in entry["iterative_path"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_bench(smoke=True, workload_names=["nope"])

    def test_parallel_jobs_preserve_order_and_schema(self):
        report = run_bench(smoke=True, repeats=1,
                           workload_names=["grover_8", "qft_10"], jobs=2)
        assert report["jobs"] == 2
        # suite order, not completion order
        assert [w["name"] for w in report["workloads"]] == \
            ["grover_8", "qft_10"]
        for entry in report["workloads"]:
            assert REQUIRED_WORKLOAD_KEYS <= set(entry)
            # per-workload wall clock was measured in the worker
            assert entry["fast_path"]["wall_seconds_best"] > 0

    def test_parallel_counters_match_serial(self):
        serial = run_bench(smoke=True, repeats=1,
                           workload_names=["qft_10"])
        parallel = run_bench(smoke=True, repeats=1,
                             workload_names=["grover_8", "qft_10"], jobs=2)
        a = serial["workloads"][0]["matrix_path"]
        b = parallel["workloads"][1]["matrix_path"]
        # machine-independent fields are process-independent too
        assert a["matrix_vector_mults"] == b["matrix_vector_mults"]
        assert a["peak_state_nodes"] == b["peak_state_nodes"]
        assert a["final_state_nodes"] == b["final_state_nodes"]

    def test_trace_with_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs=1"):
            run_bench(smoke=True, trace_path="x.jsonl", jobs=2)

    def test_tight_gc_limit_records_collections(self):
        report = run_bench(smoke=True, repeats=1,
                           workload_names=["grover_8"], gc_limit=64)
        assert report["gc_limit"] == 64
        (entry,) = report["workloads"]
        assert entry["fast_path"]["gc"]["collections"] > 0

    def test_trace_file_parses_and_summary_present(self, tmp_path):
        trace_path = str(tmp_path / "bench_trace.jsonl")
        report = run_bench(smoke=True, repeats=1,
                           workload_names=["qft_10"], trace_path=trace_path)
        assert report["trace_file"] == trace_path
        events = load_trace(trace_path)
        assert events, "traced run must emit events"
        assert all(e["workload"] == "qft_10" for e in events)
        (entry,) = report["workloads"]
        summary = entry["trace_summary"]
        assert summary["steps"] > 0
        assert summary["peak_state_nodes"] >= summary["final_state_nodes"]


class TestThrashScenario:
    def test_thrash_circuit_is_deterministic(self):
        rows, cols, depth, tail, seed, _ = THRASH_CONFIG["smoke"]
        assert thrash_circuit(rows, cols, depth, tail, seed) == \
            thrash_circuit(rows, cols, depth, tail, seed)

    def test_thrash_section_schema_and_fidelity(self):
        # no timing assertions here (wall-clock ratios are machine noise in
        # CI); the >= 5x receipt lives in the checked-in BENCH_kernel.json
        report = run_bench(smoke=True, repeats=1,
                           workload_names=["grover_8"])
        thrash = report["thrash"]
        assert REQUIRED_THRASH_KEYS <= set(thrash)
        assert thrash["fidelity_governed_vs_ungoverned"] >= 1 - 1e-10
        assert thrash["fidelity_fixed_vs_ungoverned"] >= 1 - 1e-10
        # the fixed-threshold arm must actually thrash: far more
        # collections than the governed arm on the same circuit
        fixed_gc = thrash["fixed_threshold"]["gc"]["collections"]
        governed_gc = thrash["governed"]["gc"]["collections"]
        assert fixed_gc > 10 * max(governed_gc, 1)
        assert thrash["governed"]["governor"]["limit_growths"] >= 1


class TestReorderScenario:
    def test_reorder_section_schema_and_collapse(self):
        # again no wall-clock assertions; the receipt is the node-count
        # collapse and the in-harness fidelity gate at 1 - 1e-9
        report = run_bench(smoke=True, repeats=1,
                           workload_names=["grover_8"])
        reorder = report["reorder"]
        assert REQUIRED_REORDER_KEYS <= set(reorder)
        assert reorder["fidelity_sifted_vs_ordered"] >= 1 - 1e-9
        assert reorder["sifted"]["reorders"] >= 1
        assert reorder["ordered"]["reorders"] == 0
        # the whole point: sifting collapses the pairing worst case
        assert reorder["sifted"]["final_state_nodes"] \
            < reorder["ordered"]["final_state_nodes"]
        assert reorder["node_ratio_ordered_vs_sifted"] > 1
        num_qubits = reorder["num_qubits"]
        assert sorted(reorder["final_permutation"]) == list(range(num_qubits))


class TestCli:
    def test_writes_json_file(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        code = main(["--smoke", "--repeats", "1",
                     "--workload", "grover_8", "--output", str(output)])
        assert code == 0
        report = json.loads(output.read_text())
        assert [w["name"] for w in report["workloads"]] == ["grover_8"]
        assert "wrote" in capsys.readouterr().out

    def test_stdout_mode(self, capsys):
        code = main(["--smoke", "--repeats", "1",
                     "--workload", "qft_10", "--output", "-"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["profile"] == "smoke"


class TestAuditFlag:
    def test_audited_run_sets_flag_and_passes(self):
        report = run_bench(smoke=True, repeats=1, workload_names=["qft_10"],
                           audit=True)
        assert report["audited"] is True

    def test_unaudited_run_records_false(self):
        report = run_bench(smoke=True, repeats=1, workload_names=["qft_10"])
        assert report["audited"] is False
