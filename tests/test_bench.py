"""Benchmark harness: report schema and CLI plumbing."""

import json

import pytest

from repro.bench import SMOKE_WORKLOADS, WORKLOADS, main, run_bench

REQUIRED_WORKLOAD_KEYS = {"name", "description", "num_qubits",
                          "num_operations", "fast_path", "matrix_path",
                          "speedup_fast_vs_matrix"}
REQUIRED_MEASURE_KEYS = {"wall_seconds_best", "wall_seconds_median",
                         "matrix_vector_mults", "local_gate_applications",
                         "peak_state_nodes", "final_state_nodes",
                         "counters", "cache"}


class TestWorkloadCatalogue:
    def test_four_workloads_per_profile(self):
        # acceptance criterion: Grover, QFT, supremacy, random Clifford
        for suite in (WORKLOADS, SMOKE_WORKLOADS):
            prefixes = {w.name.split("_")[0] for w in suite}
            assert prefixes == {"grover", "qft", "supremacy", "clifford"}

    def test_builders_are_deterministic(self):
        workload = SMOKE_WORKLOADS[3]  # seeded random Clifford circuit
        assert workload.build() == workload.build()


class TestRunBench:
    def test_report_schema(self):
        report = run_bench(smoke=True, repeats=1, workload_names=["qft_10"])
        assert report["schema"] == 1
        assert report["profile"] == "smoke"
        (entry,) = report["workloads"]
        assert REQUIRED_WORKLOAD_KEYS <= set(entry)
        for path in ("fast_path", "matrix_path"):
            assert REQUIRED_MEASURE_KEYS <= set(entry[path])
            assert entry[path]["counters"]["total_recursions"] > 0
        # fast path applies gates locally; matrix path never does
        assert entry["fast_path"]["local_gate_applications"] > 0
        assert entry["matrix_path"]["local_gate_applications"] == 0
        assert entry["speedup_fast_vs_matrix"] > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_bench(smoke=True, workload_names=["nope"])


class TestCli:
    def test_writes_json_file(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        code = main(["--smoke", "--repeats", "1",
                     "--workload", "grover_8", "--output", str(output)])
        assert code == 0
        report = json.loads(output.read_text())
        assert [w["name"] for w in report["workloads"]] == ["grover_8"]
        assert "wrote" in capsys.readouterr().out

    def test_stdout_mode(self, capsys):
        code = main(["--smoke", "--repeats", "1",
                     "--workload", "qft_10", "--output", "-"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["profile"] == "smoke"
