"""Quantum teleportation: a mid-circuit-measurement integration test.

Teleportation uses everything at once -- state preparation, entanglement,
intermediate measurement with collapse, and classically conditioned
corrections -- so it is a strong end-to-end witness that the measurement
machinery composes correctly with the simulation engine.
"""

import math
from random import Random

import pytest

from repro.circuit import Operation, QuantumCircuit
from repro.dd import Package, measure_qubit, product_state, qubit_probability
from repro.simulation import SimulationEngine


def teleport(alpha: complex, beta: complex, seed: int) -> tuple:
    """Teleport ``alpha|0> + beta|1>`` from qubit 0 to qubit 2.

    Returns ``(package, final_state, measured_bits)``.
    """
    package = Package()
    engine = SimulationEngine(package)
    # input state on qubit 0, fresh |0> on qubits 1 and 2
    message = product_state(package, [(alpha, beta), (1, 0), (1, 0)])
    circuit = QuantumCircuit(3, name="teleport_entangle")
    circuit.h(1)
    circuit.cx(1, 2)       # Bell pair between 1 (Alice) and 2 (Bob)
    circuit.cx(0, 1)       # Bell measurement basis change
    circuit.h(0)
    state = engine.simulate(circuit, initial_state=message).state

    rng = Random(seed)
    bit0, state, _ = measure_qubit(package, state, 0, rng)
    bit1, state, _ = measure_qubit(package, state, 1, rng)

    corrections = QuantumCircuit(3, name="teleport_corrections")
    if bit1:
        corrections.x(2)
    if bit0:
        corrections.z(2)
    state = engine.simulate(corrections, initial_state=state).state
    return package, state, (bit0, bit1)


def normalised(alpha: complex, beta: complex) -> tuple[complex, complex]:
    norm = math.sqrt(abs(alpha) ** 2 + abs(beta) ** 2)
    return alpha / norm, beta / norm


class TestTeleportation:
    @pytest.mark.parametrize("alpha,beta", [
        (1, 0), (0, 1), (1, 1), (0.6, 0.8j), (1, -1j), (0.3 + 0.4j, 0.5),
    ])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_state_arrives_intact(self, alpha, beta, seed):
        alpha, beta = normalised(alpha, beta)
        package, state, _ = teleport(alpha, beta, seed)
        # expected final state: qubits 0,1 collapsed, qubit 2 = message
        expected_p1 = abs(beta) ** 2
        assert qubit_probability(package, state, 2) == pytest.approx(
            expected_p1, abs=1e-9)
        # full fidelity check: build the expected state explicitly
        bits_state = state  # compare amplitudes of qubit 2 relative phase
        amp0 = amp1 = None
        for index in range(8):
            amplitude = package.amplitude(state, index)
            if abs(amplitude) > 1e-12:
                if (index >> 2) & 1:
                    amp1 = amplitude
                else:
                    amp0 = amplitude
        if abs(beta) < 1e-12:
            assert amp1 is None
        elif abs(alpha) < 1e-12:
            assert amp0 is None
        else:
            # relative phase must match beta/alpha exactly
            assert amp1 / amp0 == pytest.approx(beta / alpha, abs=1e-9)

    def test_all_four_measurement_branches_occur(self):
        seen = set()
        for seed in range(40):
            _, _, bits = teleport(*normalised(1, 1j), seed)
            seen.add(bits)
        assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_measurement_statistics_uniform(self):
        counts = {}
        for seed in range(120):
            _, _, bits = teleport(*normalised(0.6, 0.8), seed)
            counts[bits] = counts.get(bits, 0) + 1
        for value in counts.values():
            assert 12 <= value <= 50  # ~30 each, generous bounds
