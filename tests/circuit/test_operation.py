"""Operation dataclass: normalisation, inverses, hashing."""

import numpy as np
import pytest

from repro.circuit import Operation


class TestConstruction:
    def test_controls_normalised_and_sorted(self):
        op = Operation("x", 0, controls=(3, (1, 0), 2))
        assert op.controls == ((1, 0), (2, 1), (3, 1))

    def test_bare_control_defaults_positive(self):
        op = Operation("x", 0, controls=(5,))
        assert op.controls == ((5, 1),)

    def test_duplicate_controls_rejected(self):
        with pytest.raises(ValueError):
            Operation("x", 0, controls=(1, (1, 0)))

    def test_target_in_controls_rejected(self):
        with pytest.raises(ValueError):
            Operation("x", 2, controls=(2,))

    def test_bad_control_value_rejected(self):
        with pytest.raises(ValueError):
            Operation("x", 0, controls=((1, 5),))

    def test_qubits_lists_controls_then_target(self):
        op = Operation("x", 0, controls=(2, 1))
        assert op.qubits() == (1, 2, 0)
        assert op.max_qubit() == 2

    def test_params_become_tuple(self):
        op = Operation("rx", 0, params=[0.5])
        assert op.params == (0.5,)


class TestBehaviour:
    def test_matrix_delegates_to_registry(self):
        op = Operation("h", 0)
        assert np.allclose(op.matrix(),
                           np.array([[1, 1], [1, -1]]) / np.sqrt(2))

    def test_inverse_keeps_controls(self):
        op = Operation("s", 1, controls=(0,))
        inv = op.inverse()
        assert inv.gate == "sdg"
        assert inv.controls == op.controls
        assert inv.target == op.target

    def test_inverse_negates_rotation(self):
        assert Operation("rz", 0, params=(0.3,)).inverse().params == (-0.3,)

    def test_double_inverse_is_identity(self):
        op = Operation("t", 2, controls=((1, 0),))
        assert op.inverse().inverse() == op

    def test_hashable_and_equal(self):
        a = Operation("x", 0, controls=(1,), params=())
        b = Operation("x", 0, controls=((1, 1),))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_control_map(self):
        op = Operation("x", 0, controls=((1, 0), 2))
        assert op.control_map() == {1: 0, 2: 1}

    def test_str_mentions_gate_and_qubits(self):
        op = Operation("rx", 3, controls=((1, 0),), params=(0.5,))
        text = str(op)
        assert "rx" in text and "q3" in text and "!1" in text
