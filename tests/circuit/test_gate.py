"""Gate registry: matrices, unitarity, inverses, diagonality."""

import numpy as np
import pytest

from repro.circuit import GATES, gate_matrix, inverse_gate, is_diagonal_gate


class TestMatrices:
    @pytest.mark.parametrize("name", sorted(set(GATES) - {"rx", "ry", "rz",
                                                          "p", "u", "gu"}))
    def test_fixed_gates_are_unitary(self, name):
        u = gate_matrix(name)
        assert np.allclose(u @ u.conj().T, np.eye(2))

    def test_gu_gate_is_unitary_and_phased(self):
        u = gate_matrix("gu", (0.3, 0.5, 0.7, 0.9))
        assert np.allclose(u @ u.conj().T, np.eye(2))
        bare = gate_matrix("u", (0.3, 0.5, 0.7))
        assert np.allclose(u, np.exp(0.9j) * bare)

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p"])
    @pytest.mark.parametrize("theta", [0.0, 0.3, np.pi / 2, -1.7])
    def test_parametric_gates_are_unitary(self, name, theta):
        u = gate_matrix(name, (theta,))
        assert np.allclose(u @ u.conj().T, np.eye(2))

    def test_x_matrix(self):
        assert np.allclose(gate_matrix("x"), [[0, 1], [1, 0]])

    def test_hadamard_matrix(self):
        h = gate_matrix("h")
        assert np.allclose(h, np.array([[1, 1], [1, -1]]) / np.sqrt(2))

    def test_sx_squares_to_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_sy_squares_to_y(self):
        sy = gate_matrix("sy")
        assert np.allclose(sy @ sy, gate_matrix("y"))

    def test_s_squares_to_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_t_squares_to_s(self):
        t = gate_matrix("t")
        assert np.allclose(t @ t, gate_matrix("s"))

    def test_rz_equals_phase_up_to_global_phase(self):
        theta = 0.7
        rz = gate_matrix("rz", (theta,))
        p = gate_matrix("p", (theta,))
        ratio = p[0, 0] / rz[0, 0]
        assert np.allclose(rz * ratio, p)

    def test_u_gate_generalises(self):
        assert np.allclose(gate_matrix("u", (np.pi, 0, np.pi)),
                           gate_matrix("x"))

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError):
            gate_matrix("frobnicate")

    def test_wrong_param_count_rejected(self):
        with pytest.raises(ValueError):
            gate_matrix("rx", ())


class TestInverses:
    @pytest.mark.parametrize("name", sorted(set(GATES) - {"u", "gu"}))
    def test_inverse_composes_to_identity(self, name):
        params = (0.37,) * GATES[name].num_params
        inv_name, inv_params = inverse_gate(name, params)
        product = gate_matrix(inv_name, inv_params) @ gate_matrix(name, params)
        assert np.allclose(product, np.eye(2))

    def test_u_inverse(self):
        params = (0.3, 0.5, 0.7)
        inv_name, inv_params = inverse_gate("u", params)
        product = gate_matrix(inv_name, inv_params) @ gate_matrix("u", params)
        assert np.allclose(product, np.eye(2))

    def test_s_inverse_is_sdg(self):
        assert inverse_gate("s") == ("sdg", ())
        assert inverse_gate("sdg") == ("s", ())

    def test_rotation_inverse_negates(self):
        assert inverse_gate("ry", (0.4,)) == ("ry", (-0.4,))

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError):
            inverse_gate("nope")


class TestDiagonality:
    @pytest.mark.parametrize("name,expected", [
        ("z", True), ("s", True), ("t", True), ("rz", True), ("p", True),
        ("x", False), ("h", False), ("sx", False), ("ry", False),
    ])
    def test_flag_matches_matrix(self, name, expected):
        assert is_diagonal_gate(name) is expected
        params = (0.3,) * GATES[name].num_params
        u = gate_matrix(name, params)
        actually_diagonal = bool(np.allclose(u, np.diag(np.diag(u))))
        assert actually_diagonal is expected

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError):
            is_diagonal_gate("nope")


def test_gu_inverse_composes_to_identity():
    params = (0.3, 0.5, 0.7, 0.9)
    inv_name, inv_params = inverse_gate("gu", params)
    product = gate_matrix(inv_name, inv_params) @ gate_matrix("gu", params)
    assert np.allclose(product, np.eye(2))
