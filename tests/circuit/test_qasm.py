"""OpenQASM subset reader/writer: round trips and error handling."""

import math

import numpy as np
import pytest

from repro.baseline import simulate_statevector
from repro.circuit import (Operation, QasmError, QuantumCircuit, from_qasm,
                           to_qasm)


def round_trip(circuit: QuantumCircuit) -> QuantumCircuit:
    return from_qasm(to_qasm(circuit))


class TestWriter:
    def test_header_and_register(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        text = to_qasm(qc)
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_controlled_names(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1).cz(1, 2).ccx(0, 1, 2).cp(math.pi / 2, 0, 3)
        text = to_qasm(qc)
        assert "cx q[0],q[1];" in text
        assert "cz q[1],q[2];" in text
        assert "ccx q[0],q[1],q[2];" in text
        assert "cp(pi/2) q[0],q[3];" in text

    def test_multi_controlled_use_mc_names(self):
        qc = QuantumCircuit(4)
        qc.mcx([0, 1, 2], 3)
        assert "mcx q[0],q[1],q[2],q[3];" in to_qasm(qc)

    def test_pi_multiples_formatted(self):
        qc = QuantumCircuit(1)
        qc.rz(math.pi, 0).rz(-math.pi / 4, 0).rz(3 * math.pi / 8, 0)
        text = to_qasm(qc)
        assert "rz(pi)" in text
        assert "rz(-pi/4)" in text
        assert "rz(3*pi/8)" in text

    def test_negative_controls_rejected(self):
        qc = QuantumCircuit(2)
        qc.append(Operation("x", 1, controls=((0, 0),)))
        with pytest.raises(QasmError):
            to_qasm(qc)

    def test_repeated_block_unrolled_with_comment(self):
        qc = QuantumCircuit(1)
        body = QuantumCircuit(1)
        body.x(0)
        qc.add_repeated_block(body, 2, label="loop")
        text = to_qasm(qc)
        assert "// repeat loop x2" in text
        assert text.count("x q[0];") == 2


class TestReader:
    def test_basic_parse(self):
        qc = from_qasm("""
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            h q[0];
            cx q[0],q[1];
        """)
        assert qc.num_qubits == 2
        assert [op.gate for op in qc.operations()] == ["h", "x"]

    def test_parameter_expressions(self):
        qc = from_qasm("qreg q[1]; rz(pi/2) q[0]; rx(-3*pi/4) q[0]; "
                       "p(0.25) q[0];")
        ops = list(qc.operations())
        assert ops[0].params[0] == pytest.approx(math.pi / 2)
        assert ops[1].params[0] == pytest.approx(-3 * math.pi / 4)
        assert ops[2].params[0] == pytest.approx(0.25)

    def test_multiple_registers_are_concatenated(self):
        qc = from_qasm("qreg a[2]; qreg b[1]; x a[1]; h b[0];")
        assert qc.num_qubits == 3
        ops = list(qc.operations())
        assert ops[0].target == 1
        assert ops[1].target == 2

    def test_u1_maps_to_phase(self):
        qc = from_qasm("qreg q[1]; u1(pi/8) q[0];")
        assert list(qc.operations())[0].gate == "p"

    def test_swap_expanded(self):
        qc = from_qasm("qreg q[2]; swap q[0],q[1];")
        assert qc.num_operations() == 3

    def test_comments_and_ignorable_statements(self):
        qc = from_qasm("""
            OPENQASM 2.0;
            qreg q[1]; creg c[1];
            // a comment
            x q[0]; barrier q[0]; measure q[0] -> c[0];
        """)
        assert qc.num_operations() == 1

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1]; warp q[0];")

    def test_custom_gate_definition_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1]; gate foo a { x a; }")

    def test_missing_register_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("x q[0];")

    def test_index_out_of_range_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1]; x q[3];")

    def test_unsafe_expression_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1]; rz(__import__('os')) q[0];")

    def test_wrong_arity_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[2]; cx q[0];")


class TestRoundTrip:
    def test_structure_round_trip(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).t(2).rz(0.5, 1).ccx(0, 1, 2).sdg(2)
        qc.mcx([0, 1], 2).cp(math.pi / 8, 1, 0)
        recovered = round_trip(qc)
        assert list(recovered.operations()) == list(qc.operations())

    def test_semantic_round_trip(self):
        qc = QuantumCircuit(3)
        qc.h(0).sx(1).cx(0, 2).rz(1.234567, 1).cp(0.777, 2, 0)
        recovered = round_trip(qc)
        assert np.allclose(simulate_statevector(qc),
                           simulate_statevector(recovered))

    def test_mc_gates_round_trip(self):
        qc = QuantumCircuit(5)
        qc.mcx([0, 1, 2, 3], 4).mcz([0, 1], 4).mcp(0.5, [1, 2], 3)
        recovered = round_trip(qc)
        assert list(recovered.operations()) == list(qc.operations())


class TestExtendedGates:
    def test_u2_maps_to_u(self):
        qc = from_qasm("qreg q[1]; u2(0, pi) q[0];")
        op = list(qc.operations())[0]
        assert op.gate == "u"
        assert op.params[0] == pytest.approx(math.pi / 2)
        # u2(0, pi) is the Hadamard up to global phase
        from repro.circuit import gate_matrix
        u = gate_matrix("u", op.params)
        h = gate_matrix("h")
        ratio = u[0, 0] / h[0, 0]
        assert np.allclose(u, ratio * h)

    def test_u2_wrong_arity_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1]; u2(0) q[0];")

    def test_u3_three_params(self):
        qc = from_qasm("qreg q[1]; u3(pi/2, 0, pi) q[0];")
        op = list(qc.operations())[0]
        assert op.gate == "u"
        assert len(op.params) == 3
