"""Circuit IR: builders, repeated blocks, inversion, composition, metrics."""

import numpy as np
import pytest
from hypothesis import given

from repro.baseline import simulate_statevector
from repro.circuit import Operation, QuantumCircuit, RepeatedBlock

from ..conftest import circuits


class TestBuilding:
    def test_gate_helpers_append_operations(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).ccx(0, 1, 2).rz(0.5, 2).p(0.3, 1)
        assert qc.num_operations() == 5
        assert qc.instructions[1] == Operation("x", 1, controls=(0,))

    def test_qubit_range_checked(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.x(2)
        with pytest.raises(ValueError):
            qc.cx(0, 5)

    def test_zero_qubit_circuit_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_append_rejects_garbage(self):
        qc = QuantumCircuit(1)
        with pytest.raises(TypeError):
            qc.append("h 0")

    def test_swap_is_three_cx(self):
        qc = QuantumCircuit(2)
        qc.swap(0, 1)
        assert qc.count_gates() == {"x": 3}
        # and it actually swaps
        out = simulate_statevector(qc, 0b01)
        assert abs(out[0b10]) == pytest.approx(1.0)

    def test_cswap_swaps_only_when_control_set(self):
        qc = QuantumCircuit(3)
        qc.cswap(2, 0, 1)
        swapped = simulate_statevector(qc, 0b101)
        assert abs(swapped[0b110]) == pytest.approx(1.0)
        untouched = simulate_statevector(qc, 0b001)
        assert abs(untouched[0b001]) == pytest.approx(1.0)

    def test_mcx_mcz_mcp(self):
        qc = QuantumCircuit(4)
        qc.mcx([0, 1, 2], 3).mcz([0, 1], 2).mcp(0.5, [3], 0)
        ops = list(qc.operations())
        assert ops[0].controls == ((0, 1), (1, 1), (2, 1))
        assert ops[1].gate == "z"
        assert ops[2].params == (0.5,)


class TestRepeatedBlocks:
    def test_block_unrolls_in_operations(self):
        qc = QuantumCircuit(2)
        body = QuantumCircuit(2)
        body.h(0).cx(0, 1)
        qc.add_repeated_block(body, 3)
        assert qc.num_operations() == 6
        assert len(qc.instructions) == 1

    def test_block_equivalent_to_unrolled_simulation(self):
        blocked = QuantumCircuit(2)
        body = QuantumCircuit(2)
        body.h(0).cx(0, 1).t(1)
        blocked.add_repeated_block(body, 4)
        unrolled = QuantumCircuit(2)
        for _ in range(4):
            unrolled.compose(body)
        assert np.allclose(simulate_statevector(blocked),
                           simulate_statevector(unrolled))

    def test_nested_blocks_unroll(self):
        inner = RepeatedBlock((Operation("x", 0),), 2)
        outer = RepeatedBlock((inner, Operation("h", 1)), 3)
        qc = QuantumCircuit(2)
        qc.append(outer)
        gates = [op.gate for op in qc.operations()]
        assert gates == ["x", "x", "h"] * 3

    def test_zero_repetitions_allowed(self):
        qc = QuantumCircuit(1)
        qc.add_repeated_block([Operation("x", 0)], 0)
        assert qc.num_operations() == 0

    def test_negative_repetitions_rejected(self):
        with pytest.raises(ValueError):
            RepeatedBlock((Operation("x", 0),), -1)

    def test_block_qubits_validated(self):
        qc = QuantumCircuit(1)
        with pytest.raises(ValueError):
            qc.add_repeated_block([Operation("x", 5)], 2)

    def test_repeated_helper(self):
        body = QuantumCircuit(2, name="body")
        body.h(0)
        block = body.repeated(5)
        assert block.repetitions == 5
        assert block.label == "body"


class TestInversion:
    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(2)
        qc.h(0).s(1).cx(0, 1)
        inv = qc.inverse()
        gates = [op.gate for op in inv.operations()]
        assert gates == ["x", "sdg", "h"]

    def test_circuit_times_inverse_is_identity(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).t(2).rz(0.7, 1).ccx(0, 1, 2).sx(2)
        qc.compose(qc.inverse())
        out = simulate_statevector(qc, 5)
        assert abs(out[5]) == pytest.approx(1.0, abs=1e-9)

    def test_inverse_of_repeated_block(self):
        qc = QuantumCircuit(2)
        body = QuantumCircuit(2)
        body.h(0).s(0).cx(0, 1)
        qc.add_repeated_block(body, 3)
        qc.compose(qc.inverse())
        out = simulate_statevector(qc, 1)
        assert abs(out[1]) == pytest.approx(1.0, abs=1e-9)

    @given(circuits(max_qubits=3, max_operations=8))
    def test_inverse_property(self, qc):
        qc_and_back = QuantumCircuit(qc.num_qubits)
        qc_and_back.compose(qc)
        qc_and_back.compose(qc.inverse())
        out = simulate_statevector(qc_and_back, 0)
        assert abs(out[0]) == pytest.approx(1.0, abs=1e-6)


class TestStructureQueries:
    def test_count_gates(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1).cx(0, 1).t(0)
        assert qc.count_gates() == {"h": 2, "t": 1, "x": 1}

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).h(2).h(3)   # all parallel -> depth 1
        qc.cx(0, 1).cx(2, 3)     # parallel -> depth 2
        qc.cx(1, 2)              # depth 3
        assert qc.depth() == 3

    def test_depth_empty(self):
        assert QuantumCircuit(2).depth() == 0

    def test_compose_size_check(self):
        small = QuantumCircuit(2)
        big = QuantumCircuit(3)
        big.x(2)
        with pytest.raises(ValueError):
            small.compose(big)

    def test_compose_smaller_into_larger(self):
        big = QuantumCircuit(3)
        small = QuantumCircuit(2)
        small.h(0)
        big.compose(small)
        assert big.num_operations() == 1

    def test_equality(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.h(0)
        assert a == b
        b.x(1)
        assert a != b

    def test_repr_mentions_counts(self):
        qc = QuantumCircuit(2, name="demo")
        qc.h(0)
        assert "demo" in repr(qc)
        assert "operations=1" in repr(qc)
