"""Peephole optimisation passes, verified with the equivalence checker."""

import math

import pytest
from hypothesis import given

from repro.circuit import Operation, QuantumCircuit
from repro.circuit.optimization import (cancel_adjacent_inverses,
                                        drop_identity_gates, merge_rotations,
                                        optimise)
from repro.verification import check_equivalence

from ..conftest import circuits


class TestCancellation:
    def test_adjacent_hh_cancels(self):
        qc = QuantumCircuit(1)
        qc.h(0).h(0)
        assert cancel_adjacent_inverses(qc).num_operations() == 0

    def test_cx_pair_cancels(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).cx(0, 1)
        assert cancel_adjacent_inverses(qc).num_operations() == 0

    def test_s_sdg_cancels(self):
        qc = QuantumCircuit(1)
        qc.s(0).sdg(0)
        assert cancel_adjacent_inverses(qc).num_operations() == 0

    def test_different_controls_do_not_cancel(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2).cx(1, 2)
        assert cancel_adjacent_inverses(qc).num_operations() == 2

    def test_cancellation_through_commuting_gate(self):
        qc = QuantumCircuit(2)
        qc.h(0).x(1).h(0)  # X(1) is on a disjoint qubit
        optimised = cancel_adjacent_inverses(qc)
        assert [op.gate for op in optimised.operations()] == ["x"]

    def test_cancellation_through_diagonal_gate(self):
        qc = QuantumCircuit(2)
        qc.z(0).cz(0, 1).z(0)  # all diagonal: Zs meet and cancel
        optimised = cancel_adjacent_inverses(qc)
        assert [op.gate for op in optimised.operations()] == ["z"]
        assert list(optimised.operations())[0].controls  # the CZ survived

    def test_blocked_by_non_commuting_gate(self):
        qc = QuantumCircuit(1)
        qc.h(0).t(0).h(0)
        assert cancel_adjacent_inverses(qc).num_operations() == 3

    def test_cascading_cancellation(self):
        qc = QuantumCircuit(1)
        qc.x(0).h(0).h(0).x(0)  # inner pair exposes the outer pair
        assert cancel_adjacent_inverses(qc).num_operations() == 0


class TestRotationMerging:
    def test_same_axis_merge(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0).rz(0.4, 0)
        merged = merge_rotations(qc)
        ops = list(merged.operations())
        assert len(ops) == 1
        assert ops[0].params[0] == pytest.approx(0.7)

    def test_different_axes_not_merged(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0).rx(0.4, 0)
        assert merge_rotations(qc).num_operations() == 2

    def test_controlled_phases_merge(self):
        qc = QuantumCircuit(2)
        qc.cp(0.2, 0, 1).cp(0.5, 0, 1)
        ops = list(merge_rotations(qc).operations())
        assert len(ops) == 1
        assert ops[0].params[0] == pytest.approx(0.7)

    def test_different_controls_not_merged(self):
        qc = QuantumCircuit(3)
        qc.cp(0.2, 0, 2).cp(0.5, 1, 2)
        assert merge_rotations(qc).num_operations() == 2


class TestIdentityDropping:
    def test_id_gate_dropped(self):
        qc = QuantumCircuit(1)
        qc.add_operation("id", 0)
        assert drop_identity_gates(qc).num_operations() == 0

    def test_zero_rotation_dropped(self):
        qc = QuantumCircuit(1)
        qc.rz(0.0, 0).p(0.0, 0).rx(0.0, 0)
        assert drop_identity_gates(qc).num_operations() == 0

    def test_full_period_phase_dropped(self):
        qc = QuantumCircuit(1)
        qc.p(2 * math.pi, 0)
        assert drop_identity_gates(qc).num_operations() == 0

    def test_rz_two_pi_not_dropped(self):
        # rz(2 pi) = -I: a global phase for a bare gate, but a REAL phase
        # for a controlled one -- it must survive.
        qc = QuantumCircuit(2)
        qc.add_operation("rz", 1, controls=(0,), params=(2 * math.pi,))
        assert drop_identity_gates(qc).num_operations() == 1

    def test_nonzero_rotation_kept(self):
        qc = QuantumCircuit(1)
        qc.rz(0.001, 0)
        assert drop_identity_gates(qc).num_operations() == 1


class TestOptimise:
    def test_pipeline_reduces_and_preserves(self):
        qc = QuantumCircuit(3)
        qc.h(0).h(0).rz(0.3, 1).rz(-0.3, 1).cx(0, 2).t(2).tdg(2).cx(0, 2)
        optimised = optimise(qc)
        assert optimised.num_operations() == 0

    def test_semantics_preserved_on_real_circuit(self):
        from repro.algorithms import grover_circuit
        circuit = grover_circuit(4, 9, mark_repetition=False).circuit
        optimised = optimise(circuit)
        assert check_equivalence(circuit, optimised).equivalent

    def test_repeated_blocks_preserved_and_optimised(self):
        qc = QuantumCircuit(2)
        body = QuantumCircuit(2)
        body.h(0).h(0).cx(0, 1)  # the HH pair should vanish from the body
        qc.add_repeated_block(body, 3)
        optimised = optimise(qc)
        from repro.circuit import RepeatedBlock
        block = optimised.instructions[0]
        assert isinstance(block, RepeatedBlock)
        assert block.repetitions == 3
        assert sum(1 for _ in block.operations()) == 1
        assert check_equivalence(qc, optimised).equivalent

    @given(circuits(max_qubits=3, max_operations=10))
    def test_property_optimise_preserves_unitary(self, qc):
        optimised = optimise(qc)
        assert optimised.num_operations() <= qc.num_operations()
        assert check_equivalence(qc, optimised, method="pointer").equivalent
