"""Gate synthesis: ZYZ angles, controlled-U, Toffoli chains, full pass."""

import numpy as np
import pytest
from hypothesis import given

from repro.baseline import simulate_statevector
from repro.circuit import Operation, QuantumCircuit, gate_matrix
from repro.circuit.decomposition import (decompose_ccu,
                                         decompose_controlled_u,
                                         decompose_mcx,
                                         decompose_to_two_qubit,
                                         matrix_sqrt_2x2, zyz_angles)

from ..conftest import circuits, operations


def random_unitary(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    z = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, r = np.linalg.qr(z)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def ops_unitary(operations_list, num_qubits: int) -> np.ndarray:
    circuit = QuantumCircuit(num_qubits)
    circuit.extend(operations_list)
    size = 1 << num_qubits
    unitary = np.zeros((size, size), dtype=complex)
    for column in range(size):
        unitary[:, column] = simulate_statevector(circuit, column)
    return unitary


class TestZyz:
    @pytest.mark.parametrize("name,params", [
        ("x", ()), ("h", ()), ("s", ()), ("t", ()), ("sx", ()),
        ("rz", (0.7,)), ("ry", (-1.2,)), ("p", (2.5,)),
    ])
    def test_reconstructs_standard_gates(self, name, params):
        matrix = gate_matrix(name, params)
        assert np.allclose(gate_matrix("gu", zyz_angles(matrix)), matrix)

    @pytest.mark.parametrize("seed", range(8))
    def test_reconstructs_random_unitaries(self, seed):
        matrix = random_unitary(seed)
        assert np.allclose(gate_matrix("gu", zyz_angles(matrix)), matrix,
                           atol=1e-9)

    def test_identity(self):
        assert np.allclose(gate_matrix("gu", zyz_angles(np.eye(2))),
                           np.eye(2))

    def test_non_unitary_rejected(self):
        with pytest.raises(ValueError):
            zyz_angles([[1, 0], [0, 2]])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            zyz_angles(np.eye(3))


class TestMatrixSqrt:
    @pytest.mark.parametrize("seed", range(5))
    def test_square_of_sqrt(self, seed):
        matrix = random_unitary(seed + 100)
        root = matrix_sqrt_2x2(matrix)
        assert np.allclose(root @ root, matrix, atol=1e-9)

    def test_sqrt_of_x_known(self):
        root = matrix_sqrt_2x2(gate_matrix("x"))
        assert np.allclose(root @ root, gate_matrix("x"))


class TestControlledU:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_native_controlled_gate(self, seed):
        matrix = random_unitary(seed + 50)
        decomposed = decompose_controlled_u(matrix, control=0, target=1)
        native = ops_unitary(
            [Operation("gu", 1, controls=(0,), params=zyz_angles(matrix))],
            2)
        assert np.allclose(ops_unitary(decomposed, 2), native, atol=1e-9)

    def test_only_two_qubit_gates(self):
        decomposed = decompose_controlled_u(random_unitary(1), 0, 1)
        assert all(len(op.qubits()) <= 2 for op in decomposed)

    def test_phase_gate_gets_control_phase(self):
        decomposed = decompose_controlled_u(gate_matrix("t"), 0, 1)
        native = ops_unitary([Operation("t", 1, controls=(0,))], 2)
        assert np.allclose(ops_unitary(decomposed, 2), native, atol=1e-9)


class TestCcu:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_native_doubly_controlled(self, seed):
        matrix = random_unitary(seed + 30)
        decomposed = decompose_ccu(matrix, 0, 1, 2)
        native = ops_unitary(
            [Operation("gu", 2, controls=(0, 1), params=zyz_angles(matrix))],
            3)
        assert np.allclose(ops_unitary(decomposed, 3), native, atol=1e-9)

    def test_toffoli_via_ccu(self):
        decomposed = decompose_ccu(gate_matrix("x"), 0, 1, 2)
        native = ops_unitary([Operation("x", 2, controls=(0, 1))], 3)
        assert np.allclose(ops_unitary(decomposed, 3), native, atol=1e-9)
        assert all(len(op.qubits()) <= 2 for op in decomposed)


class TestMcxChain:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_v_chain_matches_mcx_on_clean_ancillas(self, k):
        controls = list(range(k))
        target = k
        ancillas = list(range(k + 1, k + 1 + k - 2))
        total = k + 1 + k - 2
        decomposed = decompose_mcx(controls, target, ancillas)
        circuit = QuantumCircuit(total)
        circuit.extend(decomposed)
        for pattern in range(1 << k):
            initial = pattern
            out = simulate_statevector(circuit, initial)
            expected = pattern | (1 << target) \
                if pattern == (1 << k) - 1 else pattern
            assert abs(out[expected]) == pytest.approx(1.0, abs=1e-9), \
                f"pattern {pattern:b}"

    def test_small_arities_pass_through(self):
        assert decompose_mcx([0], 1, []) == [Operation("x", 1,
                                                       controls=(0,))]
        assert len(decompose_mcx([0, 1], 2, [])) == 1

    def test_insufficient_ancillas_rejected(self):
        with pytest.raises(ValueError):
            decompose_mcx([0, 1, 2, 3], 4, [5])


class TestFullPass:
    def test_output_is_two_qubit_only(self):
        qc = QuantumCircuit(5)
        qc.h(0).mcx([0, 1, 2, 3], 4).mcz([0, 1], 2).ccx(1, 2, 3)
        decomposed = decompose_to_two_qubit(qc)
        assert all(len(op.qubits()) <= 2
                   for op in decomposed.operations())

    def test_semantics_preserved_on_original_qubits(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).h(2).mcx([0, 1, 2], 3).t(3).ccx(0, 2, 1)
        decomposed = decompose_to_two_qubit(qc)
        original = simulate_statevector(qc)
        wide = simulate_statevector(decomposed)
        # ancillas end in |0>: the amplitudes on the original subspace match
        size = 1 << qc.num_qubits
        assert np.allclose(wide[:size], original, atol=1e-9)
        assert np.allclose(wide[size:], 0, atol=1e-9)

    def test_negative_controls_handled(self):
        qc = QuantumCircuit(3)
        qc.add_operation("z", 2, controls=((0, 0), (1, 1)))
        decomposed = decompose_to_two_qubit(qc)
        original = simulate_statevector(qc, 0b010)
        wide = simulate_statevector(decomposed, 0b010)
        assert np.allclose(wide[:8], original, atol=1e-9)

    def test_multi_controlled_phase_gate(self):
        qc = QuantumCircuit(4)
        qc.mcp(0.77, [0, 1, 2], 3)
        decomposed = decompose_to_two_qubit(qc)
        original = simulate_statevector(qc, 0b1111)
        wide = simulate_statevector(decomposed, 0b1111)
        assert np.allclose(wide[:16], original, atol=1e-9)

    def test_no_multi_controls_is_identity_transform(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        decomposed = decompose_to_two_qubit(qc)
        assert decomposed.num_qubits == 2
        assert list(decomposed.operations()) == list(qc.operations())

    def test_repeated_blocks_survive(self):
        qc = QuantumCircuit(3)
        body = QuantumCircuit(3)
        body.ccx(0, 1, 2)
        qc.add_repeated_block(body, 2)
        decomposed = decompose_to_two_qubit(qc)
        from repro.circuit import RepeatedBlock
        assert any(isinstance(i, RepeatedBlock)
                   for i in decomposed.instructions)

    def test_route_after_decomposition(self):
        """The full compiler chain: decompose, then route to a line."""
        from repro.circuit.mapping import map_to_line
        qc = QuantumCircuit(4)
        qc.h(0).mcx([0, 1, 2], 3).t(2)
        decomposed = decompose_to_two_qubit(qc)
        mapped = map_to_line(decomposed)
        for op in mapped.circuit.operations():
            qubits = op.qubits()
            if len(qubits) == 2:
                assert abs(qubits[0] - qubits[1]) == 1
