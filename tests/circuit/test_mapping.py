"""Linear nearest-neighbour routing."""

import numpy as np
import pytest
from hypothesis import given

from repro.circuit import QuantumCircuit
from repro.circuit.mapping import (line_distance_cost, map_to_line,
                                   MappedCircuit)
from repro.dd import vector_to_numpy
from repro.simulation import SimulationEngine

from ..conftest import circuits


def assert_all_gates_local(circuit: QuantumCircuit) -> None:
    for op in circuit.operations():
        qubits = op.qubits()
        if len(qubits) == 2:
            assert abs(qubits[0] - qubits[1]) == 1, f"non-local: {op}"


def simulate_logical(circuit: QuantumCircuit) -> np.ndarray:
    engine = SimulationEngine()
    return vector_to_numpy(engine.simulate(circuit).state,
                           circuit.num_qubits)


def simulate_mapped(mapped: MappedCircuit) -> np.ndarray:
    engine = SimulationEngine()
    result = engine.simulate(mapped.circuit)
    logical = mapped.unpermuted_state(engine.package, result.state)
    return vector_to_numpy(logical, mapped.circuit.num_qubits)


class TestRouting:
    def test_adjacent_gates_untouched(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(1, 2)
        mapped = map_to_line(qc)
        assert mapped.swaps_inserted == 0
        assert mapped.final_layout == [0, 1, 2]

    def test_distant_gate_gets_swaps(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3)
        mapped = map_to_line(qc)
        assert mapped.swaps_inserted == 2
        assert_all_gates_local(mapped.circuit)

    def test_single_qubit_gates_follow_layout(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)   # moves qubit 0 next to 2
        qc.h(0)       # must land on qubit 0's new physical position
        mapped = map_to_line(qc)
        h_ops = [op for op in mapped.circuit.operations() if op.gate == "h"]
        assert h_ops[0].target == mapped.physical_of(0)

    def test_semantics_preserved_simple(self):
        qc = QuantumCircuit(4)
        qc.h(0).cx(0, 3).t(3).cx(3, 1).sx(2).cx(1, 0)
        mapped = map_to_line(qc)
        assert_all_gates_local(mapped.circuit)
        assert np.allclose(simulate_logical(qc), simulate_mapped(mapped),
                           atol=1e-9)

    def test_multi_controlled_rejected(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        with pytest.raises(ValueError):
            map_to_line(qc)

    @given(circuits(min_qubits=2, max_qubits=5, max_operations=10))
    def test_property_routing_preserves_state(self, qc):
        try:
            mapped = map_to_line(qc)
        except ValueError:
            return  # random circuit contained a multi-controlled gate
        assert_all_gates_local(mapped.circuit)
        assert np.allclose(simulate_logical(qc), simulate_mapped(mapped),
                           atol=1e-6)


class TestBookkeeping:
    def test_logical_index_translation(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        mapped = map_to_line(qc)
        for physical_index in range(8):
            logical = mapped.logical_index(physical_index)
            # re-applying the layout must invert the translation
            rebuilt = 0
            for logical_qubit in range(3):
                if (logical >> logical_qubit) & 1:
                    rebuilt |= 1 << mapped.physical_of(logical_qubit)
            assert rebuilt == physical_index

    def test_line_distance_cost(self):
        qc = QuantumCircuit(5)
        qc.cx(0, 4).cx(1, 2)
        assert line_distance_cost(qc) == 3

    def test_router_not_worse_than_three_times_lower_bound(self):
        qc = QuantumCircuit(6)
        qc.cx(0, 5).cx(5, 0).cx(2, 4)
        mapped = map_to_line(qc)
        assert mapped.swaps_inserted <= 3 * max(line_distance_cost(qc), 1)
