"""Hypothesis property tests at the circuit level."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baseline import simulate_statevector
from repro.circuit import QuantumCircuit, from_qasm, to_qasm
from repro.circuit.optimization import optimise
from repro.verification import check_equivalence

from ..conftest import circuits


class TestStructuralProperties:
    @given(circuits(max_qubits=3, max_operations=8))
    def test_double_inverse_is_original(self, qc):
        assert qc.inverse().inverse() == qc

    @given(circuits(max_qubits=3, max_operations=8))
    def test_inverse_preserves_operation_count(self, qc):
        assert qc.inverse().num_operations() == qc.num_operations()

    @given(circuits(max_qubits=3, max_operations=6),
           circuits(max_qubits=3, max_operations=6))
    def test_compose_concatenates(self, a, b):
        target = QuantumCircuit(3)
        target.compose(_widen(a, 3))
        count_after_a = target.num_operations()
        target.compose(_widen(b, 3))
        assert target.num_operations() \
            == count_after_a + b.num_operations()

    @given(circuits(max_qubits=3, max_operations=8),
           st.integers(min_value=0, max_value=4))
    def test_repeated_block_operation_count(self, qc, repetitions):
        host = QuantumCircuit(qc.num_qubits)
        host.add_repeated_block(qc, repetitions)
        assert host.num_operations() \
            == qc.num_operations() * repetitions

    @given(circuits(max_qubits=3, max_operations=8))
    def test_depth_at_most_operations(self, qc):
        assert qc.depth() <= qc.num_operations()


class TestSemanticProperties:
    @given(circuits(max_qubits=3, max_operations=8))
    def test_optimise_is_idempotent(self, qc):
        once = optimise(qc)
        twice = optimise(once)
        assert list(once.operations()) == list(twice.operations())

    @given(circuits(max_qubits=3, max_operations=6))
    def test_inverse_undoes_circuit_semantically(self, qc):
        combined = QuantumCircuit(qc.num_qubits)
        combined.compose(qc)
        combined.compose(qc.inverse())
        for index in (0, (1 << qc.num_qubits) - 1):
            out = simulate_statevector(combined, index)
            assert abs(out[index]) == pytest.approx(1.0, abs=1e-6)

    @given(circuits(max_qubits=3, max_operations=8))
    def test_qasm_round_trip_equivalence(self, qc):
        try:
            text = to_qasm(qc)
        except Exception:
            return  # circuits with features outside the QASM subset
        recovered = from_qasm(text)
        assert np.allclose(simulate_statevector(qc),
                           simulate_statevector(recovered), atol=1e-7)

    @given(circuits(max_qubits=3, max_operations=8))
    def test_unitarity_of_every_random_circuit(self, qc):
        size = 1 << qc.num_qubits
        unitary = np.zeros((size, size), dtype=complex)
        for column in range(size):
            unitary[:, column] = simulate_statevector(qc, column)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(size),
                           atol=1e-7)

    @given(circuits(max_qubits=3, max_operations=6))
    def test_miter_and_pointer_methods_agree(self, qc):
        mutated = QuantumCircuit(qc.num_qubits)
        mutated.compose(qc)
        mutated.x(0)
        for other in (qc, mutated):
            miter = check_equivalence(qc, other, method="miter").equivalent
            pointer = check_equivalence(qc, other,
                                        method="pointer").equivalent
            assert miter == pointer


def _widen(circuit: QuantumCircuit, num_qubits: int) -> QuantumCircuit:
    wide = QuantumCircuit(num_qubits, name=circuit.name)
    wide.extend(circuit.instructions)
    return wide
