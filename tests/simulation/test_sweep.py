"""Fault injection and determinism for the parallel sweep runner.

The runner's contract: a blown-up cell (raise, budget, timeout) never
kills the sweep, a killed *worker* costs at most that cell, results come
back in task order whatever the worker scheduling did, and the
schedule-determined fields are identical between serial and parallel runs.
"""

import json
import os
import signal

import pytest

from repro.simulation.sweep import (SweepRunner, SweepTask, run_cell,
                                    task_seed)

BELL_QASM = """
OPENQASM 2.0;
qreg q[2];
h q[0];
cx q[0],q[1];
"""

# enough structure that a tiny max_nodes budget genuinely trips
DENSE_QASM = """
OPENQASM 2.0;
qreg q[4];
h q[0]; h q[1]; h q[2]; h q[3];
cx q[0],q[1];
t q[1];
cx q[1],q[2];
t q[2];
cx q[2],q[3];
h q[0];
ccx q[0],q[1],q[3];
"""


def qasm_task(name: str, **overrides) -> SweepTask:
    defaults = dict(name=name, strategy="sequential", kind="qasm",
                    qasm=BELL_QASM)
    defaults.update(overrides)
    return SweepTask(**defaults)


def four_tasks() -> list[SweepTask]:
    return [qasm_task(f"cell_{i}", strategy=spec)
            for i, spec in enumerate(["sequential", "k=2", "smax=4",
                                      "sequential"])]


class TestTaskSeed:
    def test_deterministic(self):
        assert task_seed(0, "a", "k=2", 1) == task_seed(0, "a", "k=2", 1)

    def test_sensitive_to_every_component(self):
        base = task_seed(0, "a", "k=2", 1)
        assert task_seed(1, "a", "k=2", 1) != base
        assert task_seed(0, "b", "k=2", 1) != base
        assert task_seed(0, "a", "k=3", 1) != base
        assert task_seed(0, "a", "k=2", 2) != base


class TestOrderingAndParity:
    def test_inline_results_in_task_order(self):
        report = SweepRunner(jobs=1).run(four_tasks())
        assert [c.key() for c in report.cells] == \
            [t.key() for t in four_tasks()]
        assert report.all_ok
        assert report.jobs == 1

    def test_parallel_results_in_task_order(self):
        report = SweepRunner(jobs=2).run(four_tasks())
        assert [c.key() for c in report.cells] == \
            [t.key() for t in four_tasks()]
        assert report.all_ok

    def test_parallel_cells_ran_in_worker_processes(self):
        report = SweepRunner(jobs=2).run(four_tasks())
        assert all(c.worker_pid != os.getpid() for c in report.cells)

    def test_serial_and_parallel_deterministic_reports_identical(self):
        serial = SweepRunner(jobs=1).run(four_tasks())
        parallel = SweepRunner(jobs=2).run(four_tasks())
        assert serial.as_dict(deterministic=True) == \
            parallel.as_dict(deterministic=True)

    def test_deterministic_dict_drops_volatile_fields(self):
        report = SweepRunner(jobs=1).run(four_tasks())
        cell = report.as_dict(deterministic=True)["cells"][0]
        assert "wall_seconds" not in cell
        assert "worker_pid" not in cell
        assert "total_recursions" not in cell["statistics"]
        assert cell["statistics"]["matrix_vector_mults"] == 2


class TestFaultInjection:
    def test_raising_cell_is_recorded_not_fatal(self):
        tasks = four_tasks()
        tasks[1] = qasm_task("boom", fault="raise")
        report = SweepRunner(jobs=1).run(tasks)
        assert not report.all_ok
        boom = report.cells[1]
        assert boom.status == "failed"
        assert boom.error["type"] == "RuntimeError"
        assert "injected" in boom.error["message"]
        assert [c.status for i, c in enumerate(report.cells) if i != 1] \
            == ["ok", "ok", "ok"]

    def test_max_nodes_budget_blowup_is_recorded(self):
        task = qasm_task("budget", qasm=DENSE_QASM, max_nodes=1, gc_limit=2)
        report = SweepRunner(jobs=1).run([task] + four_tasks())
        assert report.cells[0].status == "failed"
        assert report.cells[0].error["type"] == "MemoryBudgetExceeded"
        assert all(c.ok for c in report.cells[1:])

    @pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                        reason="timeouts need SIGALRM")
    def test_hanging_cell_times_out(self):
        task = qasm_task("hang", fault="hang", timeout=0.3)
        report = SweepRunner(jobs=1).run([task] + four_tasks())
        assert report.cells[0].status == "timeout"
        assert report.cells[0].error["type"] == "CellTimeout"
        assert all(c.ok for c in report.cells[1:])
        assert report.status_counts() == {"timeout": 1, "ok": 4}

    def test_killed_worker_costs_only_its_cell(self):
        tasks = four_tasks()
        tasks[2] = qasm_task("killer", fault="os._exit")
        report = SweepRunner(jobs=2, retries=0).run(tasks)
        killer = report.cells[2]
        assert killer.status == "failed"
        assert killer.error["type"] == "WorkerDied"
        assert killer.attempts >= 2  # first pass + isolated retry
        # innocents (including casualties of the broken pool) completed
        assert [c.status for i, c in enumerate(report.cells) if i != 2] \
            == ["ok", "ok", "ok"]
        # and order is still task order
        assert [c.key() for c in report.cells] == [t.key() for t in tasks]

    def test_os_exit_is_neutered_inline(self):
        # jobs=1 runs in the caller's process: the fault must surface as a
        # failure record, never as an actual process exit
        report = SweepRunner(jobs=1).run(
            [qasm_task("killer", fault="os._exit")])
        assert report.cells[0].status == "failed"
        assert report.cells[0].error["type"] == "RuntimeError"

    def test_run_cell_rejects_unknown_fault(self):
        result = run_cell(qasm_task("x", fault="nonsense"), in_worker=False)
        assert result.status == "failed"
        assert result.error["type"] == "ValueError"

    def test_op_scoped_budget_fault_is_recorded(self):
        result = run_cell(qasm_task("b", fault="budget@1"), in_worker=False)
        assert result.status == "failed"
        assert result.error["type"] == "InjectedBudgetFault"
        assert "operation 1" in result.error["message"]

    def test_op_scoped_kill_is_neutered_inline(self):
        result = run_cell(qasm_task("k", fault="kill@0"), in_worker=False)
        assert result.status == "failed"
        assert "would have killed" in result.error["message"]


class TestCooperativeDeadline:
    """Timeouts on platforms without SIGALRM (satellite: run_cell falls
    back to a per-op cooperative deadline instead of losing timeouts)."""

    def test_deadline_fires_without_sigalrm(self, monkeypatch):
        monkeypatch.delattr(signal, "SIGALRM")
        # 0.2s of injected latency per op against a 0.05s budget: the
        # deadline must trip at the first operation boundary
        task = qasm_task("slow", fault="latency=0.2", timeout=0.05)
        result = run_cell(task, in_worker=False)
        assert result.status == "timeout"
        assert result.error["type"] == "CellTimeout"
        assert "exceeded 0.05s" in result.error["message"]

    def test_fast_cell_unaffected_without_sigalrm(self, monkeypatch):
        monkeypatch.delattr(signal, "SIGALRM")
        result = run_cell(qasm_task("quick", timeout=30.0), in_worker=False)
        assert result.status == "ok"

    def test_deadline_chains_after_an_op_scoped_fault(self, monkeypatch):
        # both hooks installed at once: the injector's op schedule must
        # not mask the deadline, nor vice versa
        monkeypatch.delattr(signal, "SIGALRM")
        task = qasm_task("both", fault="latency=0.2", timeout=10.0)
        result = run_cell(task, in_worker=False)
        assert result.status == "ok"  # generous budget: latency only

    @pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                        reason="contrast case needs SIGALRM")
    def test_sigalrm_path_still_preferred_when_available(self):
        # a hang makes no op progress, so only the alarm can interrupt it
        task = qasm_task("hang", fault="hang", timeout=0.3)
        result = run_cell(task, in_worker=False)
        assert result.status == "timeout"


class TestRetryExhaustion:
    """A worker that dies on *every* attempt (satellite: the sweep ends
    with a failed record carrying the retry count -- it never hangs)."""

    def test_poison_cell_fails_after_retries_run_out(self):
        tasks = four_tasks()
        tasks[1] = qasm_task("poison", fault="os._exit")
        report = SweepRunner(jobs=2, retries=1).run(tasks)
        poison = report.cells[1]
        assert poison.status == "failed"
        assert poison.error["type"] == "WorkerDied"
        # broken first pass + (retries + 1) isolated attempts
        assert poison.attempts == 3
        assert "3 time(s)" in poison.error["message"]
        assert [c.status for i, c in enumerate(report.cells) if i != 1] \
            == ["ok", "ok", "ok"]
        assert [c.key() for c in report.cells] == [t.key() for t in tasks]

    def test_zero_retries_still_terminates(self):
        report = SweepRunner(jobs=2, retries=0).run(
            [qasm_task("poison", fault="os._exit"), qasm_task("ok")])
        assert report.cells[0].status == "failed"
        assert report.cells[0].error["type"] == "WorkerDied"
        assert report.cells[0].attempts == 2
        assert report.cells[1].status == "ok"
        assert not report.all_ok


class TestRunnerValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_retries_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            SweepRunner(retries=-1)

    def test_stats_by_key_skips_failed_cells(self):
        tasks = [qasm_task("ok_cell"), qasm_task("bad", fault="raise")]
        report = SweepRunner(jobs=1).run(tasks)
        stats = report.stats_by_key()
        assert ("ok_cell", "sequential", 0) in stats
        assert ("bad", "sequential", 0) not in stats


class TestSweepCli:
    def _write_spec(self, tmp_path, spec: dict):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        return str(path)

    def _qasm_file(self, tmp_path):
        path = tmp_path / "bell.qasm"
        path.write_text(BELL_QASM, encoding="utf-8")
        return str(path)

    def test_exit_zero_when_all_cells_ok(self, tmp_path, capsys):
        from repro.__main__ import main
        spec = self._write_spec(tmp_path, {
            "circuits": [self._qasm_file(tmp_path)],
            "strategies": ["sequential", "k=2"],
        })
        out_path = str(tmp_path / "report.json")
        assert main(["sweep", spec, "--output", out_path]) == 0
        out = capsys.readouterr().out
        assert "2 ok" in out
        report = json.loads(open(out_path, encoding="utf-8").read())
        assert report["status_counts"] == {"ok": 2}
        assert [c["strategy"] for c in report["cells"]] == \
            ["sequential", "k=2"]

    def test_exit_nonzero_when_any_cell_failed(self, tmp_path, capsys):
        from repro.__main__ import main
        qasm = self._qasm_file(tmp_path)
        spec = self._write_spec(tmp_path, {
            "circuits": [qasm, {"qasm": qasm, "name": "boom",
                                "fault": "raise"}],
        })
        assert main(["sweep", spec]) == 1
        out = capsys.readouterr().out
        assert "1 failed" in out and "1 ok" in out

    def test_registry_instance_and_overrides(self, tmp_path, capsys):
        from repro.__main__ import main
        spec = self._write_spec(tmp_path, {
            "circuits": ["grover_8"],
            "strategies": ["sequential"],
        })
        assert main(["sweep", spec, "--strategy", "k=4",
                     "--repetitions", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("k=4") == 2          # override replaced the spec's
        assert "sequential" not in out.replace("k=4", "")

    def test_deterministic_output_identical_across_jobs(self, tmp_path,
                                                        capsys):
        from repro.__main__ import main
        spec = self._write_spec(tmp_path, {
            "circuits": [self._qasm_file(tmp_path)],
            "strategies": ["sequential", "k=2", "smax=4"],
        })
        payloads = []
        for jobs in ("1", "2"):
            out_path = str(tmp_path / f"report_{jobs}.json")
            assert main(["sweep", spec, "--jobs", jobs, "--deterministic",
                         "--output", out_path]) == 0
            with open(out_path, encoding="utf-8") as handle:
                payloads.append(json.load(handle))
        capsys.readouterr()
        assert payloads[0] == payloads[1]

    def test_bad_spec_exits_two(self, tmp_path, capsys):
        from repro.__main__ import main
        missing = str(tmp_path / "nope.json")
        assert main(["sweep", missing]) == 2
        assert "cannot read sweep spec" in capsys.readouterr().err


class TestBackendAxis:
    """Cells routed through registered backends instead of the engine."""

    def test_qasm_cell_through_dense(self):
        result = run_cell(qasm_task("bell@dense", backend="dense"),
                          in_worker=False)
        assert result.status == "ok"
        assert result.statistics["backend"] == "dense"
        assert result.statistics["matrix_vector_mults"] == 2

    def test_instance_cell_rebuilt_from_metadata(self):
        from repro.analysis.instances import (get_instance,
                                              instance_task_spec)
        instance = get_instance("grover_8")
        task = SweepTask(name="grover_8@tensor-slot",
                         strategy="sequential", kind="instance",
                         metadata=instance_task_spec(instance),
                         backend="tensor-slot")
        result = run_cell(task, in_worker=False)
        assert result.status == "ok"
        assert result.statistics["backend"] == "tensor-slot"

    def test_instance_cell_falls_back_to_registry_name(self):
        task = SweepTask(name="grover_8@dd", strategy="sequential",
                         kind="instance", backend="dd")
        result = run_cell(task, in_worker=False)
        assert result.status == "ok"

    def test_shor_instance_is_rejected_on_the_backend_axis(self):
        task = SweepTask(name="shor_15@dd", strategy="sequential",
                         kind="instance", metadata={"kind": "shor"},
                         backend="dd")
        result = run_cell(task, in_worker=False)
        assert result.status == "failed"
        assert "not circuit-backed" in result.error["message"]

    def test_unknown_backend_is_a_recorded_failure(self):
        result = run_cell(qasm_task("bell@nope", backend="nope"),
                          in_worker=False)
        assert result.status == "failed"
        assert "nope" in result.error["message"]

    def test_strategy_rides_the_matrix_backend(self):
        task = qasm_task("bell@dd-matrix", strategy="k=2",
                         backend="dd-matrix")
        result = run_cell(task, in_worker=False)
        assert result.status == "ok"
        assert result.statistics["matrix_matrix_mults"] > 0


class TestFuzzCells:
    """kind="fuzz" cells run a whole differential campaign per cell."""

    def test_clean_fuzz_cell(self):
        task = SweepTask(name="fuzz_0", strategy="fuzz", kind="fuzz",
                         seed=5,
                         metadata={"max_qubits": 3, "max_operations": 10,
                                   "max_circuits": 2})
        result = run_cell(task, in_worker=False)
        assert result.status == "ok"
        assert result.statistics["operations_applied"] == 2

    def test_broken_fuzz_cell_records_reproducer(self):
        from repro.verification.fuzz import unregister_broken_backend
        task = SweepTask(name="fuzz_broken", strategy="fuzz", kind="fuzz",
                         metadata={"register_broken": True, "seed": 3,
                                   "max_circuits": 200, "max_failures": 1})
        try:
            result = run_cell(task, in_worker=False)
        finally:
            unregister_broken_backend()
        assert result.status == "failed"
        assert "broken-phase" in result.error["message"]
        assert "OPENQASM" in result.error["message"]  # reproducer

    def test_parallel_fuzz_cells_in_workers(self):
        tasks = [SweepTask(name=f"fuzz_{i}", strategy="fuzz", kind="fuzz",
                           seed=i,
                           metadata={"max_qubits": 3, "max_operations": 8,
                                     "max_circuits": 1})
                 for i in range(2)]
        report = SweepRunner(jobs=2).run(tasks)
        assert [cell.status for cell in report.cells] == ["ok", "ok"]
