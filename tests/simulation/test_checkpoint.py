"""Checkpoint/resume: kill-and-resume exactness, atomicity, validation.

The headline guarantee: killing a run at an arbitrary operation boundary
and resuming from the checkpoint reproduces the uninterrupted run's final
state -- for the sequential strategy and for combining strategies whose
pending gate product must survive the round trip.  "Reproduces" means
fidelity 1.0 to (well past) 9 decimal digits: the package's compute-table
slots hash on node ids, so even two identical fresh runs only agree to the
complex table's canonicalisation tolerance, and a resumed run cannot beat
the substrate's own reproducibility envelope.
"""

import json
import os

import pytest

from repro.algorithms.grover import grover_circuit
from repro.simulation import (Checkpoint, MaxSizeStrategy,
                              MemoryBudgetExceeded, MemoryGovernor,
                              SequentialStrategy, SimulationEngine,
                              circuit_fingerprint, load_checkpoint,
                              save_checkpoint)


@pytest.fixture(scope="module")
def grover10():
    return grover_circuit(10, 0b1011011011, mark_repetition=False).circuit


@pytest.fixture(scope="module")
def reference(grover10):
    """Uninterrupted sequential run to compare resumed runs against."""
    return SimulationEngine().simulate(grover10, SequentialStrategy())


def cross_fidelity(a, b, num_qubits):
    """|<a|b>|^2 for results living in different packages."""
    inner = sum(a.amplitude(i).conjugate() * b.amplitude(i)
                for i in range(1 << num_qubits))
    return abs(inner) ** 2


class Killer:
    """Trace callback that raises KeyboardInterrupt at the Nth step."""

    def __init__(self, at_step):
        self.at_step = at_step
        self.steps = 0

    def __call__(self, event):
        if event.get("event") == "step":
            self.steps += 1
            if self.steps >= self.at_step:
                raise KeyboardInterrupt


class TestKillAndResume:
    def test_sequential_kill_resume_is_exact(self, grover10, reference,
                                             tmp_path):
        path = str(tmp_path / "seq.ckpt")
        with pytest.raises(KeyboardInterrupt):
            SimulationEngine().simulate(grover10, SequentialStrategy(),
                                        trace=Killer(300),
                                        checkpoint_path=path)
        checkpoint = load_checkpoint(path)
        assert checkpoint.reason == "KeyboardInterrupt"
        assert 0 < checkpoint.op_index < checkpoint.total_ops

        resumed = SimulationEngine().resume(checkpoint, grover10)
        fid = cross_fidelity(resumed, reference, 10)
        assert round(fid, 9) == 1.0
        # the resumed run's merged statistics cover the whole circuit
        assert resumed.statistics.operations_applied == \
            reference.statistics.operations_applied
        assert resumed.statistics.matrix_vector_mults == \
            reference.statistics.matrix_vector_mults

    def test_maxsize_kill_resume_restores_pending_product(self, grover10,
                                                          tmp_path):
        """A combining strategy's accumulated gate product survives the
        checkpoint, and the resumed schedule matches the uninterrupted
        one (same matrix-vector / matrix-matrix split)."""
        uninterrupted = SimulationEngine().simulate(
            grover10, MaxSizeStrategy(64))

        path = str(tmp_path / "smax.ckpt")
        with pytest.raises(KeyboardInterrupt):
            SimulationEngine().simulate(grover10, MaxSizeStrategy(64),
                                        trace=Killer(7),
                                        checkpoint_path=path)
        checkpoint = load_checkpoint(path)
        assert checkpoint.strategy_spec == "smax=64"
        assert checkpoint.pending is not None  # mid-accumulation kill

        resumed = SimulationEngine().resume(checkpoint, grover10)
        fid = cross_fidelity(resumed, uninterrupted, 10)
        assert round(fid, 9) == 1.0
        assert resumed.statistics.matrix_vector_mults == \
            uninterrupted.statistics.matrix_vector_mults
        assert resumed.statistics.matrix_matrix_mults == \
            uninterrupted.statistics.matrix_matrix_mults
        assert resumed.statistics.operations_applied == \
            uninterrupted.statistics.operations_applied


class TestPeriodicCheckpoints:
    def test_checkpoint_every_writes_and_resumes(self, grover10, reference,
                                                 tmp_path):
        path = str(tmp_path / "periodic.ckpt")
        result = SimulationEngine().simulate(grover10, SequentialStrategy(),
                                             checkpoint_path=path,
                                             checkpoint_every=400)
        # 1210 ops / 400 -> checkpoints at 400, 800, 1200 (none at the end)
        assert result.statistics.checkpoints_written == 3
        checkpoint = load_checkpoint(path)
        assert checkpoint.reason == "periodic"
        assert checkpoint.op_index == 1200

        resumed = SimulationEngine().resume(checkpoint, grover10)
        assert round(cross_fidelity(resumed, reference, 10), 9) == 1.0

    def test_checkpoint_every_requires_path(self, grover10):
        with pytest.raises(ValueError, match="checkpoint_path"):
            SimulationEngine().simulate(grover10, SequentialStrategy(),
                                        checkpoint_every=100)

    def test_checkpoint_every_must_be_positive(self, grover10, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            SimulationEngine().simulate(
                grover10, SequentialStrategy(),
                checkpoint_path=str(tmp_path / "x.ckpt"), checkpoint_every=0)


class TestBudgetAbortCheckpoint:
    def test_budget_exceeded_carries_checkpoint_path(self, grover10,
                                                     tmp_path):
        path = str(tmp_path / "oom.ckpt")
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=15, max_nodes=30))
        with pytest.raises(MemoryBudgetExceeded) as info:
            engine.simulate(grover10, SequentialStrategy(),
                            checkpoint_path=path)
        assert info.value.checkpoint_path == path
        checkpoint = load_checkpoint(path)
        assert checkpoint.reason == "MemoryBudgetExceeded"

        # a roomier engine picks the run back up and finishes it
        resumed = SimulationEngine().resume(checkpoint, grover10)
        assert resumed.statistics.operations_applied == 1210

    def test_budget_exceeded_without_path_has_no_checkpoint(self, grover10):
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=15, max_nodes=30))
        with pytest.raises(MemoryBudgetExceeded) as info:
            engine.simulate(grover10, SequentialStrategy(), audit_every=100)
        assert info.value.checkpoint_path is None


class TestAtomicity:
    def test_save_leaves_no_tmp_file(self, grover10, tmp_path):
        path = str(tmp_path / "clean.ckpt")
        SimulationEngine().simulate(grover10, SequentialStrategy(),
                                    checkpoint_path=path,
                                    checkpoint_every=600)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_crash_mid_write_preserves_previous_checkpoint(self, grover10,
                                                           tmp_path):
        """A stray .tmp from a crashed write never shadows the completed
        checkpoint: loads go through the real path only."""
        path = str(tmp_path / "victim.ckpt")
        SimulationEngine().simulate(grover10, SequentialStrategy(),
                                    checkpoint_path=path,
                                    checkpoint_every=600)
        before = load_checkpoint(path)
        with open(path + ".tmp", "w", encoding="utf-8") as handle:
            handle.write('{"version": 1, "op_in')  # truncated mid-write
        after = load_checkpoint(path)
        assert after.op_index == before.op_index
        assert after.circuit_fingerprint == before.circuit_fingerprint

    def test_truncated_checkpoint_is_a_clean_error(self, tmp_path):
        path = tmp_path / "truncated.ckpt"
        path.write_text('{"version": 1, "op_index": 4')
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_checkpoint(str(path))

    def test_damage_error_names_file_and_byte_offset(self, tmp_path):
        from repro.simulation.checkpoint import CheckpointError
        path = tmp_path / "damaged.ckpt"
        payload = '{"version": 2, "op_index": 4}'
        path.write_text(payload[:12])  # truncate mid-token
        with pytest.raises(CheckpointError) as info:
            load_checkpoint(str(path))
        message = str(info.value)
        assert str(path) in message
        assert "at byte" in message
        # CheckpointError is a ValueError, so pre-existing callers that
        # catch ValueError keep working
        assert isinstance(info.value, ValueError)

    def test_schema_violation_is_a_checkpoint_error(self, tmp_path):
        from repro.simulation.checkpoint import CheckpointError
        path = tmp_path / "foreign.ckpt"
        path.write_text('{"version": 2, "op_index": "garbage"}')
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))


class TestValidation:
    def test_fingerprint_mismatch_rejected(self, grover10, tmp_path):
        path = str(tmp_path / "fp.ckpt")
        SimulationEngine().simulate(grover10, SequentialStrategy(),
                                    checkpoint_path=path,
                                    checkpoint_every=600)
        other = grover_circuit(10, 0b0000000001,
                               mark_repetition=False).circuit
        with pytest.raises(ValueError, match="fingerprint"):
            SimulationEngine().resume(load_checkpoint(path), other)

    def test_fingerprint_ignores_name_but_not_params(self, grover10):
        renamed = grover10.copy() if hasattr(grover10, "copy") else None
        fp = circuit_fingerprint(grover10)
        assert fp == circuit_fingerprint(grover10)  # deterministic
        if renamed is not None:
            renamed.name = "something-else"
            assert circuit_fingerprint(renamed) == fp

    def test_version_mismatch_rejected(self, grover10, tmp_path):
        path = str(tmp_path / "v.ckpt")
        SimulationEngine().simulate(grover10, SequentialStrategy(),
                                    checkpoint_path=path,
                                    checkpoint_every=600)
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["version"] = 999
        path2 = str(tmp_path / "v2.ckpt")
        with open(path2, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path2)

    @pytest.mark.parametrize("field", ["circuit_fingerprint", "op_index",
                                       "state", "statistics"])
    def test_missing_required_field_named(self, grover10, tmp_path, field):
        path = str(tmp_path / "m.ckpt")
        SimulationEngine().simulate(grover10, SequentialStrategy(),
                                    checkpoint_path=path,
                                    checkpoint_every=600)
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        del payload[field]
        path2 = str(tmp_path / "m2.ckpt")
        with open(path2, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match=field):
            load_checkpoint(path2)

    def test_op_index_beyond_total_rejected(self):
        with pytest.raises(ValueError, match="op_index"):
            Checkpoint.from_dict({
                "version": 1, "circuit_fingerprint": "ab", "num_qubits": 2,
                "op_index": 7, "total_ops": 3, "strategy_spec": "sequential",
                "strategy_state": {}, "state": {}, "pending": None,
                "statistics": {},
            })

    def test_save_load_round_trip(self, grover10, tmp_path):
        path = str(tmp_path / "rt.ckpt")
        SimulationEngine().simulate(grover10, SequentialStrategy(),
                                    checkpoint_path=path,
                                    checkpoint_every=600)
        checkpoint = load_checkpoint(path)
        path2 = str(tmp_path / "rt2.ckpt")
        save_checkpoint(checkpoint, path2)
        again = load_checkpoint(path2)
        assert again.as_dict() == checkpoint.as_dict()
