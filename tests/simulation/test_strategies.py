"""The core claim of the library: every strategy computes the same state,
with the work distributed between MxV and MxM multiplications as designed."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baseline import simulate_statevector
from repro.circuit import QuantumCircuit
from repro.dd import vector_to_numpy
from repro.simulation import (KOperationsStrategy, MaxSizeStrategy,
                              RepeatingBlockStrategy, SequentialStrategy,
                              SimulationEngine, strategy_from_spec)

from ..conftest import circuits


def all_strategies():
    return [SequentialStrategy(), KOperationsStrategy(1),
            KOperationsStrategy(3), KOperationsStrategy(16),
            MaxSizeStrategy(1), MaxSizeStrategy(8), MaxSizeStrategy(512),
            RepeatingBlockStrategy(),
            RepeatingBlockStrategy(inner=KOperationsStrategy(4))]


def bell_plus_circuit() -> QuantumCircuit:
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).cx(1, 2).t(2).h(1)
    return qc


class TestAgreement:
    @pytest.mark.parametrize("strategy", all_strategies(),
                             ids=lambda s: s.describe())
    def test_matches_dense_baseline(self, strategy):
        circuit = bell_plus_circuit()
        engine = SimulationEngine()
        result = engine.simulate(circuit, strategy)
        assert np.allclose(vector_to_numpy(result.state, 3),
                           simulate_statevector(circuit), atol=1e-9)

    @given(circuits(max_qubits=4, max_operations=10),
           st.sampled_from(["sequential", "k=2", "k=5", "smax=4",
                            "smax=64", "repeating", "repeating:k=3"]))
    def test_property_all_strategies_agree(self, circuit, spec):
        engine = SimulationEngine()
        result = engine.simulate(circuit, strategy_from_spec(spec))
        dense = simulate_statevector(circuit)
        assert np.allclose(vector_to_numpy(result.state, circuit.num_qubits),
                           dense, atol=1e-6)

    def test_repeated_block_strategies_agree(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        body = QuantumCircuit(3)
        body.cx(0, 1).t(1).cx(1, 2).h(2)
        qc.add_repeated_block(body, 5)
        qc.x(0)
        dense = simulate_statevector(qc)
        for strategy in all_strategies():
            engine = SimulationEngine()
            result = engine.simulate(qc, strategy)
            assert np.allclose(vector_to_numpy(result.state, 3), dense,
                               atol=1e-8), strategy.describe()

    def test_empty_circuit_returns_initial_state(self):
        engine = SimulationEngine()
        circuit = QuantumCircuit(2)
        result = engine.simulate(circuit, KOperationsStrategy(4))
        assert result.probability(0) == pytest.approx(1.0)


class TestWorkDistribution:
    def test_sequential_does_only_mv(self):
        engine = SimulationEngine()
        stats = engine.simulate(bell_plus_circuit(),
                                SequentialStrategy()).statistics
        assert stats.matrix_vector_mults == 5
        assert stats.matrix_matrix_mults == 0
        assert stats.operations_applied == 5

    def test_k_operations_groups(self):
        engine = SimulationEngine()
        stats = engine.simulate(bell_plus_circuit(),
                                KOperationsStrategy(2)).statistics
        # 5 ops in groups of 2: 3 MxV applications, 2 MxM combinations
        assert stats.matrix_vector_mults == 3
        assert stats.matrix_matrix_mults == 2

    def test_k_equals_one_is_sequential(self):
        engine = SimulationEngine()
        stats = engine.simulate(bell_plus_circuit(),
                                KOperationsStrategy(1)).statistics
        assert stats.matrix_vector_mults == 5
        assert stats.matrix_matrix_mults == 0

    def test_k_larger_than_circuit_is_single_application(self):
        engine = SimulationEngine()
        stats = engine.simulate(bell_plus_circuit(),
                                KOperationsStrategy(100)).statistics
        assert stats.matrix_vector_mults == 1
        assert stats.matrix_matrix_mults == 4

    def test_max_size_one_applies_every_gate(self):
        engine = SimulationEngine()
        stats = engine.simulate(bell_plus_circuit(),
                                MaxSizeStrategy(1)).statistics
        # every single-gate DD already exceeds 1 node -> degenerates to
        # (roughly) sequential application
        assert stats.matrix_vector_mults == 5

    def test_max_size_huge_combines_everything(self):
        engine = SimulationEngine()
        stats = engine.simulate(bell_plus_circuit(),
                                MaxSizeStrategy(10 ** 6)).statistics
        assert stats.matrix_vector_mults == 1
        assert stats.matrix_matrix_mults == 4

    def test_repeating_block_combines_once(self):
        qc = QuantumCircuit(2)
        body = QuantumCircuit(2)
        body.h(0).cx(0, 1).t(1)
        qc.add_repeated_block(body, 10)
        engine = SimulationEngine()
        stats = engine.simulate(qc, RepeatingBlockStrategy()).statistics
        assert stats.matrix_matrix_mults == 2       # combine 3 ops once
        assert stats.matrix_vector_mults == 10      # one apply per repetition
        assert stats.reused_block_applications == 9
        assert stats.operations_applied == 30

    def test_identical_blocks_reuse_cache(self):
        qc = QuantumCircuit(2)
        body = QuantumCircuit(2)
        body.h(0).cx(0, 1)
        block = body.repeated(3)
        qc.append(block)
        qc.x(0)
        qc.append(block)  # the same block object appears twice
        engine = SimulationEngine()
        stats = engine.simulate(qc, RepeatingBlockStrategy()).statistics
        assert stats.matrix_matrix_mults == 1  # combined exactly once
        assert stats.reused_block_applications == 2 + 3

    def test_peak_matrix_nodes_tracked(self):
        engine = SimulationEngine()
        stats = engine.simulate(bell_plus_circuit(),
                                KOperationsStrategy(5)).statistics
        assert stats.peak_matrix_nodes > 0

    def test_wall_time_recorded(self):
        engine = SimulationEngine()
        stats = engine.simulate(bell_plus_circuit()).statistics
        assert stats.wall_time_seconds > 0


class TestValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KOperationsStrategy(0)

    def test_smax_must_be_positive(self):
        with pytest.raises(ValueError):
            MaxSizeStrategy(0)

    def test_nested_repeating_rejected(self):
        with pytest.raises(ValueError):
            RepeatingBlockStrategy(inner=RepeatingBlockStrategy())

    def test_describe_mentions_parameters(self):
        assert "k=7" in KOperationsStrategy(7).describe()
        assert "s_max=42" in MaxSizeStrategy(42).describe()
        assert "sequential" in RepeatingBlockStrategy().describe()


class TestSpecParsing:
    @pytest.mark.parametrize("spec,expected_type", [
        ("sequential", SequentialStrategy),
        ("sota", SequentialStrategy),
        ("k=8", KOperationsStrategy),
        ("smax=64", MaxSizeStrategy),
        ("repeating", RepeatingBlockStrategy),
    ])
    def test_specs(self, spec, expected_type):
        assert isinstance(strategy_from_spec(spec), expected_type)

    def test_repeating_with_inner(self):
        strategy = strategy_from_spec("repeating:smax=32")
        assert isinstance(strategy.inner, MaxSizeStrategy)
        assert strategy.inner.s_max == 32

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            strategy_from_spec("magic")

    @pytest.mark.parametrize("spec", ["k=abc", "smax=", "adaptive=x",
                                      "k=", "smax=4.5", "repeating:k=abc"])
    def test_malformed_parameter_names_the_spec(self, spec):
        # regression: these used to surface as bare int()/float() errors
        # that never mentioned which spec was wrong
        with pytest.raises(ValueError, match="malformed strategy spec"):
            strategy_from_spec(spec)

    def test_adaptive_specs(self):
        from repro.simulation import AdaptiveStrategy
        assert isinstance(strategy_from_spec("adaptive"), AdaptiveStrategy)
        assert strategy_from_spec("adaptive=0.25").ratio == 0.25


class _CheckedMaxSize(MaxSizeStrategy):
    """MaxSizeStrategy that re-counts the product on every feed and asserts
    the memoised size (what decisions are now based on) is exact."""

    def feed(self, run, operation):
        super().feed(run, operation)
        if self._product is not None:
            assert self._product_nodes == \
                run.package.count_nodes(self._product)


class TestMemoisedProductCounts:
    def test_memo_matches_exact_count_throughout(self):
        engine = SimulationEngine()
        engine.simulate(bell_plus_circuit(), _CheckedMaxSize(4))

    def test_decisions_unchanged_on_tier1_circuits(self):
        # the memoised count must produce the same apply/combine schedule
        # as the exact re-count it replaced, on the suite's own circuits
        from repro.algorithms.grover import grover_circuit
        from repro.algorithms.qft import qft_circuit
        for circuit in (bell_plus_circuit(), qft_circuit(5),
                        grover_circuit(4, 5).circuit):
            for s_max in (1, 8, 64):
                checked = SimulationEngine().simulate(
                    circuit, _CheckedMaxSize(s_max)).statistics
                plain = SimulationEngine().simulate(
                    circuit, MaxSizeStrategy(s_max)).statistics
                assert checked.matrix_vector_mults == \
                    plain.matrix_vector_mults
                assert checked.matrix_matrix_mults == \
                    plain.matrix_matrix_mults

    def test_adaptive_uses_memoised_count(self):
        from repro.simulation import AdaptiveStrategy
        engine = SimulationEngine()
        result = engine.simulate(bell_plus_circuit(), AdaptiveStrategy())
        assert result.statistics.matrix_vector_mults > 0


class TestMetamorphicEquivalence:
    """Metamorphic relations across strategies: the strategy is a free
    variable of the simulation (states agree to fidelity 1 - 1e-9 inside a
    shared package), and the MxV/MxM split follows Eq. 1 / Eq. 2 exactly."""

    SPECS = ["sequential", "k=2", "k=3", "k=4", "smax=4", "smax=256",
             "adaptive", "repeating:sequential"]

    @staticmethod
    def _random_circuit(seed: int, rotations: bool = True):
        from ..test_differential import random_circuit
        return random_circuit(5, 30, seed=seed, rotations=rotations)

    @pytest.mark.parametrize("seed", [101, 202])
    def test_all_strategies_agree_in_shared_package(self, seed):
        from repro.dd.package import Package
        circuit = self._random_circuit(seed)
        package = Package()
        reference = None
        for spec in self.SPECS:
            engine = SimulationEngine(package=package)
            state = engine.simulate(circuit, strategy_from_spec(spec)).state
            if reference is None:
                reference = state
            else:
                # shared unique tables make the states directly comparable
                assert package.fidelity(reference, state) >= 1 - 1e-9, spec

    def test_eq1_accounting_sequential(self):
        # Eq. 1: |G| matrix-vector multiplications, no matrix-matrix
        circuit = self._random_circuit(303, rotations=False)
        g = circuit.num_operations()
        stats = SimulationEngine().simulate(
            circuit, SequentialStrategy()).statistics
        assert stats.matrix_vector_mults == g
        assert stats.matrix_matrix_mults == 0
        assert stats.operations_applied == g

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_eq2_accounting_k_operations(self, k):
        # Eq. 2: ceil(|G|/k) MxV and |G| - ceil(|G|/k) MxM
        circuit = self._random_circuit(404, rotations=False)
        g = circuit.num_operations()
        stats = SimulationEngine().simulate(
            circuit, KOperationsStrategy(k)).statistics
        expected_mxv = math.ceil(g / k)
        assert stats.matrix_vector_mults == expected_mxv
        assert stats.matrix_matrix_mults == g - expected_mxv
        assert stats.operations_applied == g

    @pytest.mark.parametrize("spec", ["sequential", "k=2", "k=3", "k=4",
                                      "smax=4", "smax=256", "adaptive"])
    def test_every_operation_enters_exactly_one_multiplication(self, spec):
        # invariant behind both equations for every non-reusing strategy:
        # each gate is multiplied in exactly once, either into the state
        # (MxV) or into a combined matrix (MxM)
        circuit = self._random_circuit(505)
        g = circuit.num_operations()
        stats = SimulationEngine().simulate(
            circuit, strategy_from_spec(spec)).statistics
        assert stats.matrix_vector_mults + stats.matrix_matrix_mults == g


class TestCheckpointInterfaces:
    """spec()/state_dict(): the strategy side of the checkpoint contract."""

    @pytest.mark.parametrize("spec", ["sequential", "k=5", "smax=64",
                                      "adaptive=0.5", "repeating:k=3"])
    def test_spec_round_trips_through_parser(self, spec):
        strategy = strategy_from_spec(spec)
        again = strategy_from_spec(strategy.spec())
        assert type(again) is type(strategy)
        assert again.spec() == strategy.spec()

    def test_k_operations_state_dict_round_trip(self):
        strategy = KOperationsStrategy(4)
        strategy._pending_count = 3
        restored = strategy_from_spec(strategy.spec())
        restored.load_state_dict(strategy.state_dict())
        assert restored.state_dict() == strategy.state_dict()

    def test_adaptive_state_dict_round_trip(self):
        from repro.simulation import AdaptiveStrategy

        strategy = AdaptiveStrategy(ratio=0.25)
        strategy._state_nodes = 17
        restored = strategy_from_spec(strategy.spec())
        assert isinstance(restored, AdaptiveStrategy)
        restored.load_state_dict(strategy.state_dict())
        assert restored.state_dict() == strategy.state_dict()

    def test_repeating_delegates_to_inner(self):
        strategy = RepeatingBlockStrategy(inner=KOperationsStrategy(4))
        strategy.inner._pending_count = 2
        state = strategy.state_dict()
        restored = strategy_from_spec(strategy.spec())
        restored.load_state_dict(state)
        assert restored.state_dict() == state

    def test_sequential_state_dict_is_empty(self):
        assert SequentialStrategy().state_dict() == {}

    def test_sequential_rejects_pending_restore(self):
        with pytest.raises(ValueError, match="does not accumulate"):
            SequentialStrategy().restore_pending(None, None)
