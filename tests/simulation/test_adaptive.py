"""The adaptive combining strategy (cost-model extension)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import grover_circuit, supremacy_circuit
from repro.baseline import simulate_statevector
from repro.dd import vector_to_numpy
from repro.simulation import (AdaptiveStrategy, SequentialStrategy,
                              SimulationEngine, strategy_from_spec)

from ..conftest import circuits


class TestCorrectness:
    def test_matches_dense_on_random_circuit(self):
        instance = supremacy_circuit(2, 3, 8, seed=17)
        result = SimulationEngine().simulate(instance.circuit,
                                             AdaptiveStrategy())
        assert np.allclose(
            vector_to_numpy(result.state, instance.num_qubits),
            simulate_statevector(instance.circuit), atol=1e-8)

    @given(circuits(max_qubits=4, max_operations=10),
           st.floats(min_value=0.1, max_value=4.0))
    def test_property_agrees_with_sequential(self, qc, ratio):
        adaptive = SimulationEngine().simulate(qc, AdaptiveStrategy(ratio))
        dense = simulate_statevector(qc)
        assert np.allclose(vector_to_numpy(adaptive.state, qc.num_qubits),
                           dense, atol=1e-6)

    def test_grover_repeated_blocks_handled(self):
        instance = grover_circuit(6, 5)
        adaptive = SimulationEngine().simulate(instance.circuit,
                                               AdaptiveStrategy())
        sequential = SimulationEngine().simulate(instance.circuit,
                                                 SequentialStrategy())
        pa = instance.measured_success_probability(adaptive)
        ps = instance.measured_success_probability(sequential)
        assert pa == pytest.approx(ps, abs=1e-9)


class TestBehaviour:
    def test_combines_on_large_state(self):
        """Once the state DD is large, the adaptive threshold rises and the
        strategy combines multiple operations per application."""
        instance = supremacy_circuit(3, 3, 10, seed=1)
        stats = SimulationEngine().simulate(instance.circuit,
                                            AdaptiveStrategy()).statistics
        assert stats.matrix_matrix_mults > 0
        assert stats.matrix_vector_mults < stats.operations_applied

    def test_competitive_with_sequential_in_recursions(self):
        instance = supremacy_circuit(3, 3, 10, seed=1)
        sequential = SimulationEngine().simulate(
            instance.circuit, SequentialStrategy()).statistics
        adaptive = SimulationEngine().simulate(
            instance.circuit, AdaptiveStrategy()).statistics
        assert adaptive.counters.total_recursions() \
            < 1.2 * sequential.counters.total_recursions()

    def test_threshold_clamping(self):
        strategy = AdaptiveStrategy(ratio=100.0, floor=4, ceiling=16)
        strategy._state_nodes = 10 ** 9
        assert strategy._threshold() == 16
        strategy._state_nodes = 0
        assert strategy._threshold() == 4

    def test_describe(self):
        assert "0.5" in AdaptiveStrategy(0.5).describe()


class TestValidation:
    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveStrategy(ratio=0)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveStrategy(floor=10, ceiling=5)
        with pytest.raises(ValueError):
            AdaptiveStrategy(floor=0)

    def test_spec_parsing(self):
        assert isinstance(strategy_from_spec("adaptive"), AdaptiveStrategy)
        parsed = strategy_from_spec("adaptive=1.5")
        assert isinstance(parsed, AdaptiveStrategy)
        assert parsed.ratio == pytest.approx(1.5)
