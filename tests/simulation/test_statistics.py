"""SimulationStatistics bookkeeping."""

from repro.dd.package import OperationCounters
from repro.simulation import SimulationStatistics


class TestRecording:
    def test_record_state_size_keeps_peak(self):
        stats = SimulationStatistics()
        stats.record_state_size(10)
        stats.record_state_size(5)
        stats.record_state_size(20)
        assert stats.peak_state_nodes == 20

    def test_record_matrix_size_keeps_peak(self):
        stats = SimulationStatistics()
        stats.record_matrix_size(7)
        stats.record_matrix_size(3)
        assert stats.peak_matrix_nodes == 7


class TestMerge:
    def test_merge_accumulates(self):
        a = SimulationStatistics(matrix_vector_mults=3,
                                 matrix_matrix_mults=1,
                                 operations_applied=4,
                                 wall_time_seconds=0.5,
                                 peak_state_nodes=10)
        b = SimulationStatistics(matrix_vector_mults=2,
                                 matrix_matrix_mults=5,
                                 operations_applied=7,
                                 wall_time_seconds=0.25,
                                 peak_state_nodes=30,
                                 final_state_nodes=9)
        a.merge(b)
        assert a.matrix_vector_mults == 5
        assert a.matrix_matrix_mults == 6
        assert a.operations_applied == 11
        assert a.wall_time_seconds == 0.75
        assert a.peak_state_nodes == 30
        assert a.final_state_nodes == 9

    def test_merge_counters(self):
        a = SimulationStatistics(
            counters=OperationCounters(add_recursions=5))
        b = SimulationStatistics(
            counters=OperationCounters(add_recursions=3,
                                       mult_mv_recursions=2))
        a.merge(b)
        assert a.counters.add_recursions == 8
        assert a.counters.mult_mv_recursions == 2


class TestCounters:
    def test_total_recursions(self):
        counters = OperationCounters(add_recursions=1, mult_mv_recursions=2,
                                     mult_mm_recursions=3, kron_recursions=4)
        assert counters.total_recursions() == 10

    def test_delta(self):
        before = OperationCounters(add_recursions=5, nodes_created=2)
        after = OperationCounters(add_recursions=9, nodes_created=6,
                                  mult_mm_recursions=1)
        delta = after.delta(before)
        assert delta.add_recursions == 4
        assert delta.nodes_created == 4
        assert delta.mult_mm_recursions == 1

    def test_snapshot_is_independent(self):
        counters = OperationCounters(add_recursions=1)
        snap = counters.snapshot()
        counters.add_recursions = 100
        assert snap.add_recursions == 1


def test_summary_is_informative():
    stats = SimulationStatistics(strategy="k-operations(k=4)",
                                 circuit_name="grover_10",
                                 operations_applied=100,
                                 matrix_vector_mults=25,
                                 matrix_matrix_mults=75,
                                 peak_state_nodes=42,
                                 wall_time_seconds=1.5)
    text = stats.summary()
    assert "grover_10" in text
    assert "25 MxV" in text
    assert "75 MxM" in text
    assert "42" in text
