"""Density-matrix simulation and its agreement with trajectories."""

import math
from random import Random

import numpy as np
import pytest

from repro.circuit import Operation, QuantumCircuit
from repro.simulation import NoiseModel, SimulationEngine, noisy_counts
from repro.simulation.density import (DensityMatrixSimulator,
                                      amplitude_damping_kraus,
                                      bit_flip_kraus, depolarizing_kraus,
                                      phase_flip_kraus)


def bell_circuit() -> QuantumCircuit:
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    return qc


class TestKrausSets:
    @pytest.mark.parametrize("factory,param", [
        (depolarizing_kraus, 0.1), (bit_flip_kraus, 0.25),
        (phase_flip_kraus, 0.4), (amplitude_damping_kraus, 0.3),
    ])
    def test_completeness(self, factory, param):
        kraus = factory(param)
        total = sum(np.conj(k).T @ k for k in kraus)
        assert np.allclose(total, np.eye(2))

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            depolarizing_kraus(1.5)


class TestUnitaryEvolution:
    def test_matches_statevector_probabilities(self):
        from repro.baseline import simulate_statevector
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).t(1).ccx(0, 1, 2).sx(2)
        simulator = DensityMatrixSimulator(3)
        simulator.run(qc)
        dense = simulate_statevector(qc)
        assert np.allclose(simulator.probabilities(),
                           np.abs(dense) ** 2, atol=1e-9)

    def test_trace_preserved(self):
        simulator = DensityMatrixSimulator(2)
        simulator.run(bell_circuit())
        assert simulator.trace() == pytest.approx(1.0)

    def test_pure_state_has_unit_purity(self):
        simulator = DensityMatrixSimulator(2)
        simulator.run(bell_circuit())
        assert simulator.purity() == pytest.approx(1.0)

    def test_initial_basis_state(self):
        simulator = DensityMatrixSimulator(2)
        simulator.set_basis_state(3)
        assert simulator.probability(3) == pytest.approx(1.0)
        assert simulator.probability(0) == pytest.approx(0.0)

    def test_size_mismatch_rejected(self):
        simulator = DensityMatrixSimulator(2)
        with pytest.raises(ValueError):
            simulator.run(QuantumCircuit(3))


class TestChannels:
    def test_depolarising_mixes(self):
        simulator = DensityMatrixSimulator(1)
        simulator.apply_operation(Operation("h", 0))
        simulator.apply_kraus(depolarizing_kraus(0.75), 0)  # fully mixing
        assert simulator.probability(0) == pytest.approx(0.5, abs=1e-9)
        assert simulator.purity() == pytest.approx(0.5, abs=1e-9)

    def test_bit_flip_on_zero(self):
        simulator = DensityMatrixSimulator(1)
        simulator.apply_kraus(bit_flip_kraus(0.2), 0)
        assert simulator.probability(1) == pytest.approx(0.2)

    def test_phase_flip_leaves_populations(self):
        simulator = DensityMatrixSimulator(1)
        simulator.apply_operation(Operation("h", 0))
        before = simulator.probabilities()
        simulator.apply_kraus(phase_flip_kraus(0.3), 0)
        assert np.allclose(simulator.probabilities(), before)
        assert simulator.purity() < 1.0  # but coherence decayed

    def test_amplitude_damping_decays_excited_state(self):
        simulator = DensityMatrixSimulator(1)
        simulator.apply_operation(Operation("x", 0))
        simulator.apply_kraus(amplitude_damping_kraus(0.4), 0)
        assert simulator.probability(0) == pytest.approx(0.4)
        assert simulator.probability(1) == pytest.approx(0.6)

    def test_channel_preserves_trace(self):
        simulator = DensityMatrixSimulator(2)
        simulator.run(bell_circuit(), channel=depolarizing_kraus(0.1))
        assert simulator.trace() == pytest.approx(1.0, abs=1e-9)

    def test_incomplete_kraus_rejected(self):
        simulator = DensityMatrixSimulator(1)
        with pytest.raises(ValueError):
            simulator.apply_kraus([np.eye(2) * 0.5], 0)

    def test_empty_kraus_rejected(self):
        simulator = DensityMatrixSimulator(1)
        with pytest.raises(ValueError):
            simulator.apply_kraus([], 0)


class TestAgreementWithTrajectories:
    def test_trajectory_average_converges_to_density(self):
        """The trajectory sampler and the exact channel must agree: same
        circuit, same per-gate depolarising rate."""
        probability = 0.1
        qc = bell_circuit()
        exact = DensityMatrixSimulator(2)
        exact.run(qc, channel=depolarizing_kraus(probability))
        counts = noisy_counts(qc, NoiseModel(gate_error=probability),
                              trajectories=3000, seed=11)
        total = sum(counts.values())
        for outcome in range(4):
            sampled = counts.get(outcome, 0) / total
            assert sampled == pytest.approx(exact.probability(outcome),
                                            abs=0.05)

    def test_noiseless_channel_matches_pure_evolution(self):
        qc = bell_circuit()
        exact = DensityMatrixSimulator(2)
        exact.run(qc, channel=depolarizing_kraus(0.0))
        assert exact.probability(0) == pytest.approx(0.5)
        assert exact.purity() == pytest.approx(1.0)


class TestDiagnostics:
    def test_expectation_diagonal(self):
        simulator = DensityMatrixSimulator(2)
        simulator.run(bell_circuit())
        parity = simulator.expectation_diagonal(
            lambda x: 1 - 2 * (bin(x).count("1") % 2))
        assert parity == pytest.approx(1.0)  # Bell state has even parity

    def test_nodes_reported(self):
        simulator = DensityMatrixSimulator(3)
        assert simulator.nodes() == 3  # |000><000| is a chain


class TestPartialTrace:
    def test_bell_half_is_maximally_mixed(self):
        from repro.simulation.density import partial_trace
        simulator = DensityMatrixSimulator(2)
        simulator.run(bell_circuit())
        reduced = partial_trace(simulator.package, simulator.rho, 1)
        from repro.dd import matrix_to_numpy
        dense = matrix_to_numpy(reduced, 1)
        assert np.allclose(dense, np.eye(2) / 2)

    def test_product_state_reduces_cleanly(self):
        from repro.simulation.density import partial_trace
        from repro.dd import matrix_to_numpy
        simulator = DensityMatrixSimulator(2)
        simulator.apply_operation(Operation("h", 0))
        simulator.apply_operation(Operation("x", 1))
        reduced = partial_trace(simulator.package, simulator.rho, 1)
        dense = matrix_to_numpy(reduced, 1)
        assert np.allclose(dense, np.full((2, 2), 0.5))  # |+><+|

    def test_trace_preserved_by_partial_trace(self):
        from repro.simulation.density import partial_trace
        simulator = DensityMatrixSimulator(3)
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).t(1).cx(1, 2)
        simulator.run(qc)
        reduced = partial_trace(simulator.package, simulator.rho, 0)
        inner = DensityMatrixSimulator(2, package=simulator.package)
        inner.rho = reduced
        assert inner.trace() == pytest.approx(1.0, abs=1e-9)

    def test_tracing_all_qubits_yields_trace(self):
        from repro.simulation.density import partial_trace
        simulator = DensityMatrixSimulator(2)
        simulator.run(bell_circuit())
        once = partial_trace(simulator.package, simulator.rho, 1)
        twice = partial_trace(simulator.package, once, 0)
        assert twice.weight == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        from repro.simulation.density import partial_trace
        simulator = DensityMatrixSimulator(2)
        with pytest.raises(ValueError):
            partial_trace(simulator.package, simulator.rho, 5)

    def test_entanglement_detected_by_reduced_purity(self):
        from repro.simulation.density import partial_trace
        # Bell: reduced purity 1/2 (entangled); product: purity 1
        entangled = DensityMatrixSimulator(2)
        entangled.run(bell_circuit())
        reduced = partial_trace(entangled.package, entangled.rho, 1)
        holder = DensityMatrixSimulator(1, package=entangled.package)
        holder.rho = reduced
        assert holder.purity() == pytest.approx(0.5, abs=1e-9)
