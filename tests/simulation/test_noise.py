"""Trajectory-based Pauli noise."""

from random import Random

import pytest

from repro.circuit import QuantumCircuit
from repro.simulation import (KOperationsStrategy, NoiseModel, SimulationEngine,
                              noisy_counts, noisy_trajectory_circuit,
                              simulate_trajectory)


def ghz_circuit(n: int) -> QuantumCircuit:
    qc = QuantumCircuit(n, name="ghz")
    qc.h(0)
    for q in range(n - 1):
        qc.cx(q, q + 1)
    return qc


class TestNoiseModel:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(gate_error=1.5)
        with pytest.raises(ValueError):
            NoiseModel(measurement_flip=-0.1)

    def test_noiseless_flag(self):
        assert NoiseModel().is_noiseless
        assert not NoiseModel(gate_error=0.01).is_noiseless
        assert not NoiseModel(measurement_flip=0.01).is_noiseless


class TestTrajectoryCircuits:
    def test_zero_noise_reproduces_circuit_ops(self):
        circuit = ghz_circuit(4)
        trajectory = noisy_trajectory_circuit(circuit, NoiseModel(),
                                              Random(0))
        assert list(trajectory.operations()) == list(circuit.operations())

    def test_errors_inserted_at_high_rate(self):
        circuit = ghz_circuit(4)
        trajectory = noisy_trajectory_circuit(
            circuit, NoiseModel(gate_error=1.0), Random(0))
        # every op touches >= 1 qubit, each inserts exactly one Pauli
        assert trajectory.num_operations() > circuit.num_operations() * 1.9

    def test_inserted_gates_are_paulis(self):
        circuit = ghz_circuit(3)
        trajectory = noisy_trajectory_circuit(
            circuit, NoiseModel(gate_error=1.0), Random(1))
        extra = [op.gate for op in trajectory.operations()
                 if not op.controls and op.gate not in ("h",)]
        assert set(extra) <= {"x", "y", "z"}

    def test_deterministic_given_rng(self):
        circuit = ghz_circuit(3)
        a = noisy_trajectory_circuit(circuit, NoiseModel(gate_error=0.3),
                                     Random(42))
        b = noisy_trajectory_circuit(circuit, NoiseModel(gate_error=0.3),
                                     Random(42))
        assert a == b


class TestTrajectorySimulation:
    def test_noiseless_trajectory_matches_ideal(self):
        circuit = ghz_circuit(4)
        noisy = simulate_trajectory(circuit, NoiseModel(), Random(0))
        assert noisy.probability(0) == pytest.approx(0.5)
        assert noisy.probability(15) == pytest.approx(0.5)

    def test_trajectory_state_stays_normalised(self):
        circuit = ghz_circuit(4)
        result = simulate_trajectory(circuit, NoiseModel(gate_error=0.5),
                                     Random(3))
        assert result.package.squared_norm(result.state) \
            == pytest.approx(1.0)

    def test_composes_with_strategies(self):
        circuit = ghz_circuit(4)
        rng_state = Random(5)
        a = simulate_trajectory(circuit, NoiseModel(gate_error=0.2),
                                Random(5))
        b = simulate_trajectory(circuit, NoiseModel(gate_error=0.2),
                                rng_state, strategy=KOperationsStrategy(3))
        # identical trajectory (same rng seed), identical state
        for index in range(16):
            assert a.probability(index) == pytest.approx(
                b.probability(index), abs=1e-9)


class TestNoisyCounts:
    def test_noiseless_counts_match_ideal_distribution(self):
        circuit = ghz_circuit(3)
        counts = noisy_counts(circuit, NoiseModel(), trajectories=100,
                              shots_per_trajectory=2, seed=1)
        assert sum(counts.values()) == 200
        assert set(counts) <= {0, 7}

    def test_gate_noise_leaks_probability(self):
        circuit = ghz_circuit(3)
        counts = noisy_counts(circuit, NoiseModel(gate_error=0.2),
                              trajectories=150, seed=2)
        ghz_mass = counts.get(0, 0) + counts.get(7, 0)
        assert ghz_mass < sum(counts.values())  # some mass left GHZ support

    def test_more_noise_means_less_ghz_mass(self):
        circuit = ghz_circuit(3)

        def ghz_fraction(p):
            counts = noisy_counts(circuit, NoiseModel(gate_error=p),
                                  trajectories=200, seed=3)
            total = sum(counts.values())
            return (counts.get(0, 0) + counts.get(7, 0)) / total

        assert ghz_fraction(0.02) > ghz_fraction(0.4)

    def test_measurement_flips_only(self):
        qc = QuantumCircuit(4)  # state stays |0000>
        counts = noisy_counts(qc, NoiseModel(measurement_flip=0.5),
                              trajectories=100, seed=4)
        assert len(counts) > 1  # flips scatter the readout

    def test_invalid_trajectories(self):
        with pytest.raises(ValueError):
            noisy_counts(ghz_circuit(2), NoiseModel(), trajectories=0)
