"""Engine-level behaviour: gate caching, GC, initial states, results."""

from random import Random

import numpy as np
import pytest

from repro.circuit import Operation, QuantumCircuit
from repro.dd import Package, vector_to_numpy
from repro.simulation import (SequentialStrategy, SimulationEngine,
                              SimulationResult)


class TestGateCache:
    def test_same_operation_reuses_dd(self):
        engine = SimulationEngine()
        op = Operation("h", 1)
        first = engine.gate_dd(op, 3)
        second = engine.gate_dd(op, 3)
        assert first is second

    def test_different_width_builds_new_dd(self):
        engine = SimulationEngine()
        op = Operation("h", 1)
        assert engine.gate_dd(op, 3) is not engine.gate_dd(op, 4)

    def test_clear_caches(self):
        engine = SimulationEngine()
        op = Operation("h", 0)
        first = engine.gate_dd(op, 2)
        engine.clear_caches()
        # rebuilding gives an equal DD (same unique node) fetched fresh
        second = engine.gate_dd(op, 2)
        assert second.node is first.node

    def test_clear_caches_also_clears_local_gate_cache(self):
        # regression: clear_caches() used to leave _local_gate_cache
        # populated, keeping stale per-operation specs alive
        engine = SimulationEngine()
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        engine.simulate(qc)
        assert engine._local_gate_cache, "fast path should populate cache"
        engine.clear_caches()
        assert not engine._gate_cache
        assert not engine._local_gate_cache


class TestSimulate:
    def test_defaults_to_zero_state_and_sequential(self):
        engine = SimulationEngine()
        qc = QuantumCircuit(2)
        qc.x(0)
        result = engine.simulate(qc)
        assert result.probability(1) == pytest.approx(1.0)
        assert result.statistics.strategy == "sequential"

    def test_custom_initial_state(self):
        engine = SimulationEngine()
        qc = QuantumCircuit(2)
        qc.x(0)
        initial = engine.initial_state(2, basis_index=2)
        result = engine.simulate(qc, initial_state=initial)
        assert result.probability(3) == pytest.approx(1.0)

    def test_shared_package_allows_fidelity_comparison(self):
        package = Package()
        engine_a = SimulationEngine(package)
        engine_b = SimulationEngine(package)
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        result_a = engine_a.simulate(qc)
        result_b = engine_b.simulate(qc)
        assert result_a.fidelity_with(result_b) == pytest.approx(1.0)

    def test_cross_package_fidelity_rejected(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        result_a = SimulationEngine().simulate(qc)
        result_b = SimulationEngine().simulate(qc)
        with pytest.raises(ValueError):
            result_a.fidelity_with(result_b)

    def test_statistics_metadata(self):
        engine = SimulationEngine()
        qc = QuantumCircuit(3, name="meta_test")
        qc.h(0).h(1)
        stats = engine.simulate(qc).statistics
        assert stats.circuit_name == "meta_test"
        assert stats.num_qubits == 3
        assert stats.final_state_nodes > 0


class TestGarbageCollection:
    def test_gc_triggers_and_preserves_state(self):
        engine = SimulationEngine(gc_node_limit=50)
        qc = QuantumCircuit(4)
        rng = Random(3)
        for _ in range(60):
            qc.h(rng.randrange(4))
            control = rng.randrange(4)
            target = (control + 1 + rng.randrange(3)) % 4
            qc.cx(control, target)
        # build an equivalent run without GC to compare
        reference = SimulationEngine(gc_node_limit=None).simulate(qc)
        collected = engine.simulate(qc)
        assert np.allclose(vector_to_numpy(collected.state, 4),
                           vector_to_numpy(reference.state, 4), atol=1e-9)

    def test_gc_clears_compute_tables_and_resimulation_agrees(self):
        # stale compute-table entries pin nodes; garbage_collect must drop
        # them so a freed node can never be resurrected through a cache hit
        from repro.algorithms import supremacy_circuit
        instance = supremacy_circuit(2, 3, 8, seed=3)
        package = Package()
        engine = SimulationEngine(package, gc_node_limit=None)
        first = engine.simulate(instance.circuit)
        package.garbage_collect([first.state])
        for name, stats in package.cache_stats()["compute"].items():
            assert stats["filled"] == 0, f"{name} not cleared by GC"
        live_after_gc = package.live_node_count()
        assert live_after_gc >= package.count_nodes(first.state)
        second = engine.simulate(instance.circuit)
        assert package.fidelity(first.state, second.state) \
            == pytest.approx(1.0, abs=1e-10)
        # re-simulation re-interned into the same unique tables: the live
        # count may grow with intermediates but the final DDs are shared
        assert second.state.node is first.state.node
        assert package.live_node_count() >= live_after_gc

    def test_gc_disabled(self):
        engine = SimulationEngine(gc_node_limit=None)
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        result = engine.simulate(qc)
        assert result.probability(0) == pytest.approx(0.5)


class TestLocalApplyFastPath:
    def _random_circuit(self, seed=13, n=5, layers=12):
        qc = QuantumCircuit(n)
        rng = Random(seed)
        for _ in range(layers):
            gate = rng.choice(["h", "t", "sx", "rz"])
            if gate == "rz":
                qc.rz(rng.random() * 3.0, rng.randrange(n))
            else:
                getattr(qc, gate)(rng.randrange(n))
            control = rng.randrange(n)
            target = (control + 1 + rng.randrange(n - 1)) % n
            qc.cx(control, target)
        qc.ccx(0, 1, 2)
        return qc

    def test_fast_and_matrix_paths_agree(self):
        qc = self._random_circuit()
        fast = SimulationEngine(use_local_apply=True).simulate(qc)
        matrix = SimulationEngine(use_local_apply=False).simulate(qc)
        assert np.allclose(vector_to_numpy(fast.state, 5),
                           vector_to_numpy(matrix.state, 5), atol=1e-9)

    def test_fast_path_reports_local_applications(self):
        qc = self._random_circuit()
        stats = SimulationEngine(use_local_apply=True).simulate(qc).statistics
        assert stats.local_gate_applications == qc.num_operations()
        assert stats.counters.apply_gate_recursions > 0

    def test_matrix_path_reports_none(self):
        qc = self._random_circuit()
        stats = SimulationEngine(use_local_apply=False).simulate(qc).statistics
        assert stats.local_gate_applications == 0
        assert stats.counters.mult_mv_recursions > 0

    def test_fast_path_skips_gate_dd_construction(self):
        engine = SimulationEngine(use_local_apply=True)
        engine.simulate(self._random_circuit())
        assert not engine._gate_cache


class TestSimulationResult:
    def _result(self) -> SimulationResult:
        engine = SimulationEngine()
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        return engine.simulate(qc)

    def test_amplitude_and_probability(self):
        result = self._result()
        assert result.amplitude(0) == pytest.approx(2 ** -0.5)
        assert result.probability(3) == pytest.approx(0.5)
        assert result.probability(1) == pytest.approx(0.0)

    def test_probabilities_sum_to_one(self):
        result = self._result()
        assert sum(result.probabilities()) == pytest.approx(1.0)

    def test_sampling(self):
        result = self._result()
        counts = result.sample(200, Random(1))
        assert set(counts) <= {0, 3}
        assert sum(counts.values()) == 200

    def test_state_nodes(self):
        result = self._result()
        # Bell state: root node plus the two distinct level-0 children.
        assert result.state_nodes() == 3

    def test_num_qubits(self):
        assert self._result().num_qubits == 2


class TestResultConvenience:
    def test_expectation_shortcut(self):
        engine = SimulationEngine()
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        result = engine.simulate(qc)
        assert result.expectation({0: "Z", 1: "Z"}) == pytest.approx(1.0)
        assert result.expectation({0: "Z"}) == pytest.approx(0.0)

    def test_entropy_shortcut(self):
        engine = SimulationEngine()
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        result = engine.simulate(qc)
        assert result.entanglement_entropy([0]) == pytest.approx(1.0)

    def test_entropy_of_product_state(self):
        engine = SimulationEngine()
        qc = QuantumCircuit(2)
        qc.h(0).h(1)
        result = engine.simulate(qc)
        assert result.entanglement_entropy([0]) == pytest.approx(0.0,
                                                                 abs=1e-9)
