"""Memory governor: adaptive GC policy, thrash regression, hard budget."""

import numpy as np
import pytest

from repro.baseline import simulate_statevector
from repro.circuit import QuantumCircuit
from repro.dd import vector_to_numpy
from repro.simulation import (MemoryBudgetExceeded, MemoryGovernor,
                              SequentialStrategy, SimulationEngine)


def dense_circuit(num_qubits: int, layers: int = 3) -> QuantumCircuit:
    """Entangling circuit whose state DD stays large and fully reachable."""
    qc = QuantumCircuit(num_qubits)
    for layer in range(layers):
        for q in range(num_qubits):
            qc.h(q)
        for q in range(num_qubits - 1):
            qc.cx(q, q + 1)
        for q in range(num_qubits):
            qc.t(q) if (q + layer) % 2 else qc.rz(0.37 * (q + 1), q)
    return qc


class TestGovernorPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryGovernor(node_limit=0)
        with pytest.raises(ValueError):
            MemoryGovernor(growth_factor=0.5)
        with pytest.raises(ValueError):
            MemoryGovernor(max_nodes=0)
        with pytest.raises(ValueError):
            MemoryGovernor(min_headroom=-1)

    def test_should_collect(self):
        governor = MemoryGovernor(node_limit=100)
        assert not governor.should_collect(100)
        assert governor.should_collect(101)
        assert not MemoryGovernor(node_limit=None).should_collect(10 ** 9)

    def test_effective_collection_keeps_limit(self):
        governor = MemoryGovernor(node_limit=100)
        assert governor.note_collection(freed=500, surviving=40) is False
        assert governor.limit == 100
        assert governor.limit_growths == 0

    def test_ineffective_collection_grows_limit(self):
        governor = MemoryGovernor(node_limit=100, growth_factor=1.5,
                                  min_headroom=0)
        assert governor.note_collection(freed=0, surviving=100_000) is True
        assert governor.limit == 150_000
        assert governor.limit_growths == 1

    def test_min_headroom_floor(self):
        # geometric growth on a tiny working set leaves only a handful of
        # nodes of slack; the floor guarantees a proportional buffer
        governor = MemoryGovernor(node_limit=16, min_headroom=4096)
        governor.note_collection(freed=2, surviving=30)
        assert governor.limit >= 30 + 4096

    def test_legacy_fixed_threshold_mode(self):
        governor = MemoryGovernor(node_limit=100, growth_factor=1.0)
        assert governor.note_collection(freed=0, surviving=100_000) is False
        assert governor.limit == 100
        assert governor.limit_growths == 0

    def test_reset_restores_initial_limit(self):
        governor = MemoryGovernor(node_limit=100)
        governor.note_collection(freed=0, surviving=10_000)
        assert governor.limit > 100
        governor.reset()
        assert governor.limit == 100

    def test_budget_check(self):
        governor = MemoryGovernor(node_limit=None, max_nodes=1000)
        governor.check_budget(1000)  # at the budget: fine
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            governor.check_budget(1001)
        assert excinfo.value.live_nodes == 1001
        assert excinfo.value.max_nodes == 1000
        assert "1001" in str(excinfo.value)

    def test_stats_and_describe(self):
        governor = MemoryGovernor(node_limit=64, max_nodes=9000)
        stats = governor.stats()
        assert stats["initial_limit"] == 64
        assert stats["max_nodes"] == 9000
        assert "max_nodes=9000" in governor.describe()


class TestThrashRegression:
    """A fully-reachable state above the node limit must not trigger a
    mark-sweep + compute-table wipe on every subsequent step."""

    def test_governed_engine_stops_recollecting(self):
        # a quasi-reduced 8-qubit state never has fewer than 8 nodes, so a
        # limit of 4 is below the reachable working set from step one: the
        # very first collection is futile and must grow the threshold
        circuit = dense_circuit(8)
        engine = SimulationEngine(gc_node_limit=4)
        result = engine.simulate(circuit, SequentialStrategy())
        gc = result.statistics.gc
        steps = result.statistics.matrix_vector_mults
        # the limit grew past the working set, so collections stay far
        # below one-per-step (the pre-governor behaviour)
        assert gc.collections < steps / 4
        assert engine.governor.limit_growths >= 1
        assert engine.governor.limit > 4

    def test_fixed_threshold_thrashes_for_contrast(self):
        # the legacy mode really does collect on every step once the
        # working set exceeds the limit -- the behaviour under test above
        # is a fix, not an artifact of the workload
        circuit = dense_circuit(8)
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=4, growth_factor=1.0))
        result = engine.simulate(circuit, SequentialStrategy())
        gc = result.statistics.gc
        assert gc.collections > result.statistics.matrix_vector_mults / 2

    def test_ineffective_collection_keeps_compute_tables(self):
        # when nothing is freed, the compute tables are provably still
        # consistent (no node died, so no id can be re-used) and survive
        engine = SimulationEngine(gc_node_limit=4)
        circuit = dense_circuit(6)
        result = engine.simulate(circuit, SequentialStrategy())
        gc = result.statistics.gc
        assert gc.ineffective >= 0
        if gc.ineffective:
            # an ineffective collection drops no compute entries; total
            # drops must come from the effective ones only
            assert gc.compute_entries_dropped >= 0

    def test_governed_and_ungoverned_states_agree(self):
        circuit = dense_circuit(7)
        dense = simulate_statevector(circuit)
        engine = SimulationEngine(gc_node_limit=8)
        result = engine.simulate(circuit, SequentialStrategy())
        assert np.allclose(vector_to_numpy(result.state, 7), dense,
                           atol=1e-9)


class TestGcPreservesResults:
    def test_collect_mid_run_then_continue(self):
        """Node ids freed by GC are re-used by later allocations; results
        after an explicit mid-run collection must still match the dense
        baseline (the compute tables may not resurrect stale entries)."""
        prefix = dense_circuit(6, layers=2)
        suffix = QuantumCircuit(6)
        for q in range(6):
            suffix.h(q)
        suffix.cx(0, 5).t(3).cx(2, 4)
        engine = SimulationEngine()
        first = engine.simulate(prefix, SequentialStrategy())
        # explicit collection with only the state live: frees the run's
        # intermediates and wipes the compute tables
        freed = engine.package.garbage_collect([first.state])
        assert freed > 0
        second = engine.simulate(suffix, SequentialStrategy(),
                                 initial_state=first.state)
        combined = QuantumCircuit(6)
        combined.extend(prefix.instructions)
        combined.extend(suffix.instructions)
        assert np.allclose(vector_to_numpy(second.state, 6),
                           simulate_statevector(combined), atol=1e-9)

    def test_gc_stats_accumulate_on_package(self):
        engine = SimulationEngine(gc_node_limit=8)
        result = engine.simulate(dense_circuit(7), SequentialStrategy())
        package_stats = engine.package.gc_stats
        run_stats = result.statistics.gc
        assert package_stats.collections == run_stats.collections
        assert package_stats.as_dict()["nodes_freed"] == \
            run_stats.nodes_freed
        assert engine.package.cache_stats()["gc"]["collections"] == \
            run_stats.collections


class TestHardBudget:
    def test_budget_exceeded_raises_cleanly(self):
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=4, max_nodes=8))
        with pytest.raises(MemoryBudgetExceeded):
            engine.simulate(dense_circuit(8), SequentialStrategy())

    def test_generous_budget_does_not_fire(self):
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=8, max_nodes=10 ** 9))
        result = engine.simulate(dense_circuit(6), SequentialStrategy())
        assert result.statistics.final_state_nodes > 0

    def test_budget_is_a_memory_error(self):
        # callers can catch the generic MemoryError if they want to
        assert issubclass(MemoryBudgetExceeded, MemoryError)


class TestBudgetPathways:
    """The hard budget fires on both multiplication pathways -- while
    applying gates to the state (matrix-vector) and while combining gate
    products (matrix-matrix) -- and leaves the package auditable."""

    def test_mid_apply_budget_exceeded(self):
        events = []
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=30, max_nodes=40))
        with pytest.raises(MemoryBudgetExceeded):
            engine.simulate(dense_circuit(8), SequentialStrategy(),
                            trace=events.append)
        # the state had been advancing: the abort came from the apply path
        assert any(event.get("event") == "step" for event in events)
        assert engine.package.check_invariants() == []

    def test_mid_combine_budget_exceeded(self):
        from repro.simulation import MaxSizeStrategy

        events = []
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=30, max_nodes=40))
        with pytest.raises(MemoryBudgetExceeded):
            # an effectively unbounded s_max keeps multiplying gate DDs
            # into one growing product; the budget must fire *there*,
            # before the first application to the state
            engine.simulate(dense_circuit(8), MaxSizeStrategy(1 << 20),
                            trace=events.append)
        assert not any(event.get("event") == "step" for event in events)
        assert engine.package.check_invariants() == []

    def test_package_audit_passes_after_interrupt(self, tmp_path):
        """A KeyboardInterrupt checkpoint leaves tables consistent."""

        class Killer:
            steps = 0

            def __call__(self, event):
                if event.get("event") == "step":
                    Killer.steps += 1
                    if Killer.steps >= 20:
                        raise KeyboardInterrupt

        engine = SimulationEngine()
        with pytest.raises(KeyboardInterrupt):
            engine.simulate(dense_circuit(8), SequentialStrategy(),
                            trace=Killer(),
                            checkpoint_path=str(tmp_path / "int.ckpt"))
        assert engine.package.check_invariants() == []
