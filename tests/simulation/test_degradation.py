"""Graceful degradation under a hard node budget.

The workload here is a "fringe" circuit: small-angle rotations plus a CNOT
ladder produce a dense 255-node state whose amplitude mass stays
concentrated near |0...0> -- exactly the shape fidelity-bounded pruning can
compress.  Under a budget below the working set, a degrading run must
finish by climbing the ladder (collect -> shrink tables -> prune) instead
of aborting, while a floor close to 1 must make it abort rather than lie
about its fidelity.
"""

import pytest

from repro.circuit import QuantumCircuit
from repro.simulation import (DegradationPolicy, MemoryBudgetExceeded,
                              MemoryGovernor, SequentialStrategy,
                              SimulationEngine, load_trace, trace_summary)


def fringe_circuit(num_qubits: int = 8, layers: int = 3) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name="fringe")
    for layer in range(layers):
        for qubit in range(num_qubits):
            circuit.ry(0.12 + 0.01 * qubit + 0.007 * layer, qubit)
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
    return circuit


def tight_engine(max_nodes: int = 100) -> SimulationEngine:
    return SimulationEngine(
        governor=MemoryGovernor(node_limit=50, max_nodes=max_nodes))


def action_kinds(statistics) -> dict:
    kinds: dict = {}
    for action in statistics.degradation_actions:
        kinds[action["action"]] = kinds.get(action["action"], 0) + 1
    return kinds


class TestDegradationLadder:
    def test_completes_under_budget_via_pruning(self):
        circuit = fringe_circuit()
        reference = SimulationEngine().simulate(circuit,
                                                SequentialStrategy())
        assert reference.statistics.peak_state_nodes > 200  # needs degrading

        policy = DegradationPolicy(fidelity_floor=0.9)
        result = tight_engine().simulate(circuit, SequentialStrategy(),
                                         degradation=policy)
        kinds = action_kinds(result.statistics)
        # all three rungs of the ladder fired
        assert kinds.get("collect", 0) > 0
        assert kinds.get("shrink-tables", 0) == 1  # one-shot rung
        assert kinds.get("prune", 0) > 0
        # tracked cumulative fidelity respected the floor ...
        assert policy.cumulative_fidelity >= 0.9
        assert result.statistics.cumulative_fidelity == \
            policy.cumulative_fidelity
        # ... and the per-prune product tracks the true end-to-end
        # fidelity closely on this shallow circuit
        inner = sum(reference.amplitude(i).conjugate() * result.amplitude(i)
                    for i in range(1 << circuit.num_qubits))
        true_fidelity = abs(inner) ** 2
        assert true_fidelity >= 0.9
        assert abs(true_fidelity - policy.cumulative_fidelity) < 0.01

    def test_tight_floor_aborts_instead_of_lying(self):
        """When pruning cannot stay above the floor, the run raises
        MemoryBudgetExceeded -- after having tried the cheap rungs."""
        policy = DegradationPolicy(fidelity_floor=0.9999)
        with pytest.raises(MemoryBudgetExceeded):
            tight_engine().simulate(fringe_circuit(), SequentialStrategy(),
                                    degradation=policy)
        assert policy.cumulative_fidelity >= 0.9999
        kinds = {action["action"] for action in policy.actions}
        assert "collect" in kinds  # ladder was climbed before giving up

    def test_inert_without_hard_budget(self):
        """No max_nodes -> the policy is never consulted."""
        policy = DegradationPolicy()
        result = SimulationEngine().simulate(
            fringe_circuit(), SequentialStrategy(), degradation=policy)
        assert result.statistics.degradation_actions == []
        assert policy.cumulative_fidelity == 1.0

    def test_degrade_events_traced(self, tmp_path):
        from repro.simulation import JsonlTraceSink

        trace_path = str(tmp_path / "degrade.jsonl")
        sink = JsonlTraceSink(trace_path)
        try:
            tight_engine().simulate(fringe_circuit(), SequentialStrategy(),
                                    degradation=DegradationPolicy(
                                        fidelity_floor=0.9),
                                    trace=sink)
        finally:
            sink.close()
        events = load_trace(trace_path)
        degrades = [e for e in events if e.get("event") == "degrade"]
        assert degrades
        for event in degrades:
            assert event["action"] in {"collect", "shrink-tables", "prune"}
            assert 0.0 < event["cumulative_fidelity"] <= 1.0
        prunes = [e for e in degrades if e["action"] == "prune"]
        assert prunes and all(e["edges_cut"] > 0 for e in prunes)
        summary = trace_summary(events)
        assert summary["degrade_events"] == len(degrades)
        assert summary["degrade_fidelity"] >= 0.9


class TestDegradationAcrossResume:
    def test_cumulative_floor_survives_checkpoint(self, tmp_path):
        """The fidelity already spent before a crash still counts against
        the floor after resuming."""
        from repro.simulation import load_checkpoint

        circuit = fringe_circuit()
        path = str(tmp_path / "degraded.ckpt")
        policy = DegradationPolicy(fidelity_floor=0.9)
        tight_engine().simulate(circuit, SequentialStrategy(),
                                degradation=policy,
                                checkpoint_path=path, checkpoint_every=10)
        checkpoint = load_checkpoint(path)
        assert checkpoint.degradation is not None
        stored = checkpoint.degradation["cumulative_fidelity"]
        assert 0.0 < stored <= 1.0

        fresh = DegradationPolicy(fidelity_floor=0.9)
        tight_engine().resume(checkpoint, circuit, degradation=fresh)
        # the resumed policy started from the stored fidelity, not from 1.0
        assert fresh.cumulative_fidelity <= stored
        assert fresh.cumulative_fidelity >= 0.9


class TestDegradationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(fidelity_floor=0.0)
        with pytest.raises(ValueError):
            DegradationPolicy(fidelity_floor=1.5)
        with pytest.raises(ValueError):
            DegradationPolicy(prune_target_fraction=0.0)
        with pytest.raises(ValueError):
            DegradationPolicy(compute_table_slots=0)

    def test_state_dict_round_trip(self):
        policy = DegradationPolicy(fidelity_floor=0.8)
        policy.record({"action": "prune", "fidelity": 0.95})
        policy.record({"action": "collect"})
        policy.tables_shrunk = True

        state = policy.state_dict()
        restored = DegradationPolicy(fidelity_floor=0.8)
        restored.load_state_dict(state)
        assert restored.cumulative_fidelity == policy.cumulative_fidelity
        assert restored.tables_shrunk is True

    def test_allows_prune_tracks_floor(self):
        policy = DegradationPolicy(fidelity_floor=0.9)
        assert policy.allows_prune()
        policy.record({"action": "prune", "fidelity": 0.85})
        assert not policy.allows_prune()
