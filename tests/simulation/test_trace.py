"""Per-step trace hook: event schema, JSONL sink, summarisation."""

import json

import pytest

from repro.circuit import QuantumCircuit
from repro.simulation import (JsonlTraceSink, SequentialStrategy,
                              SimulationEngine, load_trace, trace_summary)

STEP_FIELDS = {"event", "op_index", "gate", "state_nodes", "product_nodes",
               "live_nodes", "apply_gate_hit_rate", "mult_mv_hit_rate"}
GC_FIELDS = {"event", "op_index", "nodes_freed", "surviving_nodes",
             "compute_entries_dropped", "pause_seconds", "limit"}


def ghz_circuit(n: int = 4) -> QuantumCircuit:
    qc = QuantumCircuit(n)
    qc.h(0)
    for q in range(n - 1):
        qc.cx(q, q + 1)
    return qc


class TestTraceCallback:
    def test_one_step_event_per_state_update(self):
        events = []
        engine = SimulationEngine()
        result = engine.simulate(ghz_circuit(), SequentialStrategy(),
                                 trace=events.append)
        steps = [e for e in events if e["event"] == "step"]
        assert len(steps) == result.statistics.matrix_vector_mults
        assert all(STEP_FIELDS <= set(e) for e in steps)
        assert [e["op_index"] for e in steps] == list(range(len(steps)))
        assert steps[0]["gate"] == "h"

    def test_gc_events_under_tight_limit(self):
        events = []
        engine = SimulationEngine(gc_node_limit=2)
        engine.simulate(ghz_circuit(5), SequentialStrategy(),
                        trace=events.append)
        gc_events = [e for e in events if e["event"] == "gc"]
        assert gc_events, "a 2-node limit must trigger collections"
        assert all(GC_FIELDS <= set(e) for e in gc_events)

    def test_no_trace_means_no_overhead_fields(self):
        # the default path must not require a trace consumer
        engine = SimulationEngine()
        result = engine.simulate(ghz_circuit(), SequentialStrategy())
        assert result.statistics.matrix_vector_mults == 4


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        engine = SimulationEngine()
        with JsonlTraceSink(path) as sink:
            engine.simulate(ghz_circuit(), SequentialStrategy(), trace=sink)
        assert sink.events_written == 4
        events = load_trace(path)
        assert len(events) == 4
        assert all(e["event"] == "step" for e in events)

    def test_wraps_existing_handle(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            sink = JsonlTraceSink(handle)
            sink({"event": "step", "op_index": 0})
            sink.close()  # must not close a caller-owned handle
            assert not handle.closed

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"event": "step"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2:"):
            load_trace(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"event": "step", "state_nodes": 3}\n\n')
        assert len(load_trace(str(path))) == 1


class TestTraceSummary:
    def test_summary_from_events(self):
        events = []
        engine = SimulationEngine(gc_node_limit=2)
        engine.simulate(ghz_circuit(5), SequentialStrategy(),
                        trace=events.append)
        summary = trace_summary(events)
        assert summary["steps"] == 5
        assert summary["peak_state_nodes"] >= summary["final_state_nodes"]
        assert summary["gc_events"] > 0
        assert summary["gc_pause_seconds"] >= 0

    def test_summary_from_path(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        engine = SimulationEngine()
        with JsonlTraceSink(path) as sink:
            engine.simulate(ghz_circuit(), SequentialStrategy(), trace=sink)
        summary = trace_summary(path)
        assert summary["steps"] == 4
        assert summary["final_state_nodes"] > 0

    def test_rendering_in_analysis_layer(self, tmp_path):
        from repro.analysis import format_trace_summary
        path = str(tmp_path / "run.jsonl")
        engine = SimulationEngine()
        with JsonlTraceSink(path) as sink:
            engine.simulate(ghz_circuit(), SequentialStrategy(), trace=sink)
        text = format_trace_summary(path, title="ghz trace")
        assert "ghz trace" in text
        assert "steps" in text

    def test_events_are_json_serialisable(self):
        events = []
        engine = SimulationEngine(gc_node_limit=2)
        engine.simulate(ghz_circuit(5), SequentialStrategy(),
                        trace=events.append)
        for event in events:
            json.dumps(event)
