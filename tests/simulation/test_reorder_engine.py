"""Runtime variable reordering: policy, engine wiring, result remapping.

The headline guarantee: on the qubit-pairing worst case (every qubit
entangled with a partner half the register away -- exponential DDs under
the natural order, linear once pairs interleave) a governed run that sifts
under memory pressure completes within a hard node budget that *aborts*
the unsifted run, and the result still matches the dense baseline at
fidelity >= 1 - 1e-9 -- amplitudes, probabilities, samples and checkpoints
all transparently remapped through the recorded permutation.
"""

import json
from random import Random

import numpy as np
import pytest

from repro.algorithms.pairing import (PairingInstance, interleaved_order,
                                      pairing_circuit)
from repro.baseline import simulate_statevector
from repro.dd.package import Package
from repro.simulation import (Checkpoint, MemoryBudgetExceeded,
                              MemoryGovernor, ReorderPolicy,
                              SequentialStrategy, SimulationEngine,
                              load_checkpoint, reorder_from_spec,
                              strategy_from_spec)

FIDELITY_FLOOR = 1 - 1e-9


def dd_fidelity(result, dense) -> float:
    """|<dd|dense>|^2 -- ``result.amplitude`` already remaps through the
    run's permutation, so this is order-independent by construction."""
    inner = sum(result.amplitude(i).conjugate() * dense[i]
                for i in range(len(dense)))
    return abs(inner) ** 2


class TestPairingWorkload:
    def test_circuit_shape(self):
        instance = pairing_circuit(3, tail_layers=2)
        assert isinstance(instance, PairingInstance)
        assert instance.num_qubits == 6
        assert instance.circuit.name == "pairing_3"
        # 3 H + 3 CX + 2 layers of 6 T gates
        assert instance.circuit.num_operations() == 18

    def test_interleaved_order_pairs_partners(self):
        order = interleaved_order(3)
        # qubit i and qubit i + pairs land on adjacent levels
        for i in range(3):
            assert abs(order[i] - order[i + 3]) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            pairing_circuit(0)
        with pytest.raises(ValueError):
            pairing_circuit(2, tail_layers=-1)


class TestReorderPolicy:
    def test_spec_parsing(self):
        assert reorder_from_spec(None) is None
        assert reorder_from_spec("off") is None
        assert reorder_from_spec("none") is None
        assert reorder_from_spec("  ") is None
        assert reorder_from_spec("governor").mode == "governor"
        assert reorder_from_spec("pressure").mode == "governor"
        policy = reorder_from_spec("every=7")
        assert (policy.mode, policy.every) == ("every", 7)
        ready = ReorderPolicy(mode="every", every=3)
        assert reorder_from_spec(ready) is ready
        assert reorder_from_spec(policy.spec()).every == 7

    @pytest.mark.parametrize("spec", ["sometimes", "every=", "every=x",
                                      "every=0", "every=-2"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            reorder_from_spec(spec)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ReorderPolicy(mode="always")
        with pytest.raises(ValueError):
            ReorderPolicy(mode="every")  # missing every=
        with pytest.raises(ValueError):
            ReorderPolicy(mode="governor", every=4)
        with pytest.raises(ValueError):
            ReorderPolicy(max_growth=0.5)
        with pytest.raises(ValueError):
            ReorderPolicy(min_interval=-1)

    def test_cadence_trigger(self):
        policy = ReorderPolicy(mode="every", every=5)
        assert not policy.should_reorder(4, pressure=False)
        assert policy.should_reorder(5, pressure=False)
        policy.note_sift(5, 100, 50)
        assert not policy.should_reorder(9, pressure=True)  # pressure ignored
        assert policy.should_reorder(10, pressure=False)

    def test_pressure_trigger_and_cooldown(self):
        policy = ReorderPolicy(mode="governor", min_interval=10)
        assert not policy.should_reorder(100, pressure=False)
        assert policy.should_reorder(100, pressure=True)
        policy.note_sift(100, 80, 40)
        assert not policy.should_reorder(105, pressure=True)  # cooling down
        assert policy.should_reorder(111, pressure=True)

    def test_engine_rejects_bad_spec(self):
        circuit = pairing_circuit(2).circuit
        with pytest.raises(ValueError, match="reorder"):
            SimulationEngine().simulate(circuit, SequentialStrategy(),
                                        reorder="sometimes")


class TestGovernorTriggeredSift:
    """The acceptance scenario: a node budget only the sifted run fits."""

    BUDGET = MemoryGovernor  # constructed per test; instances are stateful

    @pytest.fixture(scope="class")
    def circuit(self):
        return pairing_circuit(5, tail_layers=2).circuit

    @pytest.fixture(scope="class")
    def dense(self, circuit):
        return simulate_statevector(circuit)

    def test_unsifted_run_exceeds_budget(self, circuit):
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=40, max_nodes=120))
        with pytest.raises(MemoryBudgetExceeded):
            engine.simulate(circuit, SequentialStrategy())

    def test_sifted_run_completes_under_budget(self, circuit, dense):
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=40, max_nodes=120))
        result = engine.simulate(circuit, SequentialStrategy(),
                                 reorder="governor")
        assert result.statistics.reorders >= 1
        assert result.statistics.reorder_nodes_saved > 0
        # sifting must discover the interleaved pairing order
        assert result.permutation == interleaved_order(5)
        assert dd_fidelity(result, dense) >= FIDELITY_FLOOR
        assert result.statistics.final_state_nodes <= 2 * circuit.num_qubits
        engine.package.assert_invariants([result.state])

    def test_trace_records_reorder_events(self, circuit):
        events = []
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=40, max_nodes=120))
        engine.simulate(circuit, SequentialStrategy(), reorder="governor",
                        trace=events.append)
        reorders = [e for e in events if e["event"] == "reorder"]
        assert reorders
        for event in reorders:
            assert event["reason"] == "pressure"
            assert event["nodes_after"] < event["nodes_before"]
            assert json.dumps(event)  # JSONL-serialisable
        # at least one sift must report the non-identity permutation
        assert any(event["permutation"] is not None for event in reorders)


class TestCadenceSift:
    @pytest.mark.parametrize("spec", ["sequential", "k=3", "smax=16",
                                      "adaptive", "repeating:sequential"])
    def test_every_k_matches_dense(self, spec):
        circuit = pairing_circuit(4, tail_layers=2).circuit
        dense = simulate_statevector(circuit)
        engine = SimulationEngine()
        result = engine.simulate(
            circuit, strategy_from_spec(spec),
            reorder=ReorderPolicy(mode="every", every=6, min_nodes=2))
        assert result.statistics.reorders >= 1
        assert dd_fidelity(result, dense) >= FIDELITY_FLOOR
        engine.package.assert_invariants([result.state])

    @pytest.mark.parametrize("config", [
        dict(kernel="iterative"),
        dict(kernel="iterative", identity_edges=True),
        dict(kernel="iterative", identity_edges=True, dense_blocks=False),
    ])
    def test_iterative_kernel_materializes_and_sifts(self, config):
        # the sift only understands the recursive node graph; the engine
        # must solidify/convert the flat state first and keep simulating
        circuit = pairing_circuit(4, tail_layers=2).circuit
        dense = simulate_statevector(circuit)
        engine = SimulationEngine(package=Package(**config))
        result = engine.simulate(
            circuit, SequentialStrategy(),
            reorder=ReorderPolicy(mode="every", every=6, min_nodes=2))
        assert result.statistics.reorders >= 1
        assert dd_fidelity(result, dense) >= FIDELITY_FLOOR

    def test_min_nodes_skips_but_advances_clock(self):
        # default min_nodes=8 never fires on a 2-qubit state, yet the
        # cadence clock keeps ticking: no sift is ever *recorded*
        circuit = pairing_circuit(1, tail_layers=4).circuit
        result = SimulationEngine().simulate(circuit, SequentialStrategy(),
                                             reorder="every=2")
        assert result.statistics.reorders == 0
        assert result.permutation is None


class TestResultRemapping:
    @pytest.fixture(scope="class")
    def runs(self):
        circuit = pairing_circuit(4, tail_layers=1).circuit
        # one shared package so fidelity_with can compare the two results
        package = Package()
        plain = SimulationEngine(package=package).simulate(
            circuit, SequentialStrategy())
        sifted = SimulationEngine(package=package).simulate(
            circuit, SequentialStrategy(),
            reorder=ReorderPolicy(mode="every", every=8, min_nodes=2))
        dense = simulate_statevector(circuit)
        return plain, sifted, dense

    def test_probabilities_match_dense(self, runs):
        _, sifted, dense = runs
        assert sifted.permutation is not None
        probs = sifted.probabilities()
        assert np.allclose(probs, np.abs(dense) ** 2, atol=1e-9)

    def test_samples_land_in_dense_support(self, runs):
        _, sifted, dense = runs
        support = {i for i, amp in enumerate(dense) if abs(amp) > 1e-12}
        counts = sifted.sample(200, Random(13))
        assert set(counts) <= support

    def test_fidelity_with_across_permutations(self, runs):
        plain, sifted, _ = runs
        assert plain.permutation is None
        assert sifted.fidelity_with(plain) == pytest.approx(1.0, abs=1e-9)

    def test_logical_state_restores_natural_order(self, runs):
        plain, sifted, dense = runs
        logical = sifted.logical_state()
        package = sifted.package
        for index in range(len(dense)):
            assert package.amplitude(logical, index) \
                == pytest.approx(dense[index], abs=1e-9)


class TestCheckpointResume:
    def test_permutation_survives_checkpoint_roundtrip(self, tmp_path):
        circuit = pairing_circuit(5, tail_layers=2).circuit
        dense = simulate_statevector(circuit)
        path = str(tmp_path / "reorder.ckpt")
        engine = SimulationEngine(
            governor=MemoryGovernor(node_limit=40, max_nodes=120))
        result = engine.simulate(circuit, SequentialStrategy(),
                                 reorder="governor", checkpoint_path=path,
                                 checkpoint_every=25)
        assert result.permutation == interleaved_order(5)

        checkpoint = load_checkpoint(path)
        assert checkpoint.version == 2
        assert checkpoint.permutation == interleaved_order(5)

        # resume on a completely fresh engine; budget stays in force
        resumed = SimulationEngine(
            governor=MemoryGovernor(node_limit=40, max_nodes=120)).resume(
                checkpoint, circuit, reorder="governor")
        assert resumed.permutation == interleaved_order(5)
        assert dd_fidelity(resumed, dense) >= FIDELITY_FLOOR
        assert resumed.statistics.operations_applied == \
            circuit.num_operations()

    def test_version1_checkpoint_loads_without_permutation(self, tmp_path):
        circuit = pairing_circuit(2).circuit
        path = str(tmp_path / "v1.ckpt")
        SimulationEngine().simulate(circuit, SequentialStrategy(),
                                    checkpoint_path=path, checkpoint_every=3)
        payload = json.loads(open(path).read())
        payload["version"] = 1
        del payload["permutation"]
        path1 = str(tmp_path / "downgraded.ckpt")
        with open(path1, "w") as handle:
            json.dump(payload, handle)
        checkpoint = load_checkpoint(path1)
        assert checkpoint.version == 1
        assert checkpoint.permutation is None
        resumed = SimulationEngine().resume(checkpoint, circuit)
        assert resumed.permutation is None

    def test_corrupt_permutation_rejected(self, tmp_path):
        circuit = pairing_circuit(2).circuit
        path = str(tmp_path / "ok.ckpt")
        SimulationEngine().simulate(circuit, SequentialStrategy(),
                                    checkpoint_path=path, checkpoint_every=3)
        payload = json.loads(open(path).read())
        payload["permutation"] = [0, 0, 1, 2]
        bad = str(tmp_path / "bad.ckpt")
        with open(bad, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="permutation"):
            load_checkpoint(bad)


class TestAxisPlumbing:
    def test_construct_sweep_cell_rejects_reorder(self):
        from repro.simulation.sweep import SweepTask, _simulate_task
        task = SweepTask(name="shor_construct", kind="construct",
                         metadata={"modulus": 15, "base": 7},
                         reorder="governor")
        with pytest.raises(ValueError, match="construct"):
            _simulate_task(task)

    def test_shor_instance_rejects_reorder(self):
        from repro.analysis.instances import shor_suite
        instance = shor_suite("quick")[0]
        with pytest.raises(ValueError, match="reorder"):
            instance.run(SequentialStrategy(), reorder="governor")

    def test_qasm_sweep_cell_accepts_reorder(self):
        from repro.circuit.qasm import to_qasm
        from repro.simulation.sweep import SweepTask, _simulate_task
        circuit = pairing_circuit(3, tail_layers=1).circuit
        task = SweepTask(name="pairing_3", kind="qasm",
                         qasm=to_qasm(circuit), reorder="every=4")
        stats = _simulate_task(task)
        assert stats.operations_applied == circuit.num_operations()
