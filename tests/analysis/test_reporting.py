"""Report rendering (ASCII and Markdown)."""

from repro.analysis.experiments import ExperimentResult
from repro.analysis.reporting import (format_result, format_rows,
                                      write_markdown_table)


def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment="demo",
        title="Demo table",
        headers=["benchmark", "speedup"],
        rows=[{"benchmark": "grover_8", "speedup": 2.5},
              {"benchmark": "average", "speedup": None}],
        notes="a note",
    )


class TestAsciiTable:
    def test_contains_headers_and_cells(self):
        text = format_rows(["a", "b"], [{"a": 1, "b": "x"}])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "-" in lines[1]
        assert "1" in lines[2] and "x" in lines[2]

    def test_none_rendered_as_dash(self):
        text = format_rows(["v"], [{"v": None}])
        assert "-" in text.splitlines()[-1]

    def test_empty_rows(self):
        text = format_rows(["col"], [])
        assert "col" in text

    def test_format_result_includes_notes(self):
        text = format_result(sample_result())
        assert "Demo table" in text
        assert "note: a note" in text
        assert "grover_8" in text


class TestMarkdown:
    def test_markdown_table_shape(self):
        text = write_markdown_table(sample_result())
        lines = text.splitlines()
        assert lines[0].startswith("### Demo table")
        assert lines[2].startswith("| benchmark | speedup |")
        assert lines[3].startswith("|---")
        assert "| grover_8 | 2.5 |" in text

    def test_markdown_notes_italicised(self):
        assert "*a note*" in write_markdown_table(sample_result())


def test_cli_main_runs_quick_fig5(capsys):
    from repro.analysis.__main__ import main

    assert main(["fig5"]) == 0
    output = capsys.readouterr().out
    assert "Fig. 5" in output
    assert "nodes" in output


def test_cli_markdown_flag(capsys):
    from repro.analysis.__main__ import main

    assert main(["fig5", "--markdown"]) == 0
    assert "###" in capsys.readouterr().out
