"""Structural circuit predictors feeding the backend auto-selector."""

from repro.analysis.predictors import (CircuitFeatures, circuit_features,
                                       cut_crossing_bound)
from repro.circuit.circuit import QuantumCircuit


def ghz(num_qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


class TestCutCrossingBound:
    def test_ghz_chain_crosses_once(self):
        # only cx(3,4) spans the middle cut of an 8-qubit chain
        assert cut_crossing_bound(ghz(8), 4) == 1

    def test_capped_by_smaller_side(self):
        circuit = QuantumCircuit(6, name="heavy")
        for _ in range(20):
            for qubit in range(3):
                circuit.cx(qubit, qubit + 3)
        # 60 crossings, but 3 qubits hold at most 3 ebits
        assert cut_crossing_bound(circuit, 3) == 3

    def test_degenerate_cuts_are_zero(self):
        circuit = ghz(4)
        assert cut_crossing_bound(circuit, 0) == 0
        assert cut_crossing_bound(circuit, 4) == 0

    def test_single_qubit_gates_never_cross(self):
        circuit = QuantumCircuit(4, name="local")
        for qubit in range(4):
            circuit.h(qubit)
            circuit.t(qubit)
        assert cut_crossing_bound(circuit, 2) == 0


class TestCircuitFeatures:
    def test_ghz_features(self):
        features = circuit_features(ghz(8))
        assert features.num_qubits == 8
        assert features.num_operations == 8
        assert features.two_qubit_fraction == 7 / 8
        assert features.rotation_fraction == 0.0
        assert features.nonclifford_fraction == 0.0
        assert features.entanglement_estimate == 1
        assert not features.has_repeated_blocks

    def test_rotations_counted_as_nonclifford(self):
        circuit = QuantumCircuit(2, name="rot")
        circuit.rx(0.3, 0)
        circuit.t(1)
        circuit.h(0)
        circuit.cx(0, 1)
        features = circuit_features(circuit)
        assert features.rotation_fraction == 0.25
        assert features.nonclifford_fraction == 0.5

    def test_interaction_density(self):
        circuit = QuantumCircuit(4, name="pairs")
        circuit.cx(0, 1)
        circuit.cx(0, 1)  # repeated pair counted once
        circuit.cz(2, 3)
        features = circuit_features(circuit)
        assert features.interaction_density == 2 / 6

    def test_repeated_blocks_detected(self):
        circuit = QuantumCircuit(3, name="rep")
        block = QuantumCircuit(3, name="body")
        block.h(0)
        block.cx(0, 1)
        circuit.append(block.repeated(4))
        assert circuit_features(circuit).has_repeated_blocks

    def test_empty_circuit(self):
        features = circuit_features(QuantumCircuit(3, name="empty"))
        assert features.num_operations == 0
        assert features.two_qubit_fraction == 0.0
        assert features.entanglement_estimate == 0

    def test_as_dict_is_json_ready(self):
        import json
        payload = circuit_features(ghz(4)).as_dict()
        assert set(payload) == set(
            CircuitFeatures.__dataclass_fields__)
        json.dumps(payload)  # must not raise
