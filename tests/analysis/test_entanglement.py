"""Outer products, reduced density matrices, entanglement entropies."""

import math

import numpy as np
import pytest

from repro.analysis.entanglement import (entanglement_entropy,
                                         reduced_density_matrix,
                                         schmidt_coefficients)
from repro.dd import (Package, ghz_state, matrix_to_numpy, product_state,
                      uniform_superposition, vector_from_numpy, w_state)


class TestOuterProduct:
    def test_matches_dense_outer_product(self, package):
        rng = np.random.default_rng(3)
        v = rng.normal(size=8) + 1j * rng.normal(size=8)
        w = rng.normal(size=8) + 1j * rng.normal(size=8)
        result = package.outer_product(vector_from_numpy(package, v),
                                       vector_from_numpy(package, w))
        assert np.allclose(matrix_to_numpy(result, 3), np.outer(v, w.conj()))

    def test_zero_operand(self, package):
        v = package.basis_state(2, 1)
        assert package.outer_product(v, package.zero).weight == 0

    def test_size_mismatch_rejected(self, package):
        with pytest.raises(ValueError):
            package.outer_product(package.basis_state(2, 0),
                                  package.basis_state(3, 0))

    def test_density_matrix_of_basis_state(self, package):
        v = package.basis_state(2, 2)
        rho = package.outer_product(v, v)
        dense = matrix_to_numpy(rho, 2)
        expected = np.zeros((4, 4))
        expected[2, 2] = 1
        assert np.allclose(dense, expected)


class TestReducedDensity:
    def test_product_state_reduction_is_pure(self, package):
        state = product_state(package, [(0.6, 0.8), (1, 0), (0, 1)])
        rho = reduced_density_matrix(package, state, keep=[0])
        dense = matrix_to_numpy(rho, 1)
        expected = np.outer([0.6, 0.8], [0.6, 0.8])
        assert np.allclose(dense, expected)

    def test_ghz_reduction_is_classical_mixture(self, package):
        state = ghz_state(package, 4)
        rho = reduced_density_matrix(package, state, keep=[0, 1])
        dense = matrix_to_numpy(rho, 2)
        expected = np.zeros((4, 4))
        expected[0, 0] = expected[3, 3] = 0.5
        assert np.allclose(dense, expected)

    def test_empty_keep_rejected(self, package):
        with pytest.raises(ValueError):
            reduced_density_matrix(package, package.basis_state(2, 0), [])

    def test_out_of_range_rejected(self, package):
        with pytest.raises(ValueError):
            reduced_density_matrix(package, package.basis_state(2, 0), [5])


class TestEntropy:
    def test_product_state_has_zero_entropy(self, package):
        state = uniform_superposition(package, 4)
        assert entanglement_entropy(package, state, [0, 1]) \
            == pytest.approx(0.0, abs=1e-9)

    def test_ghz_has_one_bit_across_any_cut(self, package):
        state = ghz_state(package, 5)
        for cut in ([0], [0, 1], [0, 1, 2]):
            assert entanglement_entropy(package, state, cut) \
                == pytest.approx(1.0, abs=1e-9)

    def test_bell_state_maximal_for_one_qubit(self, package):
        state = vector_from_numpy(package,
                                  np.array([1, 0, 0, 1]) / math.sqrt(2))
        assert entanglement_entropy(package, state, [0]) \
            == pytest.approx(1.0)

    def test_w_state_entropy_known_value(self, package):
        # one qubit of W_n: eigenvalues 1/n and (n-1)/n
        n = 4
        state = w_state(package, n)
        expected = -(1 / n) * math.log2(1 / n) \
            - ((n - 1) / n) * math.log2((n - 1) / n)
        assert entanglement_entropy(package, state, [0]) \
            == pytest.approx(expected, abs=1e-9)

    def test_schmidt_coefficients_sum_to_one(self, package):
        state = ghz_state(package, 3)
        coefficients = schmidt_coefficients(package, state, [0, 1])
        assert sum(coefficients) == pytest.approx(1.0, abs=1e-9)

    def test_random_circuit_grows_entanglement(self, package):
        from repro.algorithms import supremacy_circuit
        from repro.simulation import SimulationEngine
        instance = supremacy_circuit(2, 3, 8, seed=4)
        result = SimulationEngine(package).simulate(instance.circuit)
        entropy = entanglement_entropy(package, result.state, [0, 1, 2])
        assert entropy > 1.0  # well entangled across the cut

    def test_natural_log_base(self, package):
        state = ghz_state(package, 2)
        nats = entanglement_entropy(package, state, [0], base=math.e)
        assert nats == pytest.approx(math.log(2), abs=1e-9)
