"""The one-call strategy comparison utility."""

import pytest

from repro.analysis import compare_strategies, default_strategy_lineup
from repro.algorithms import grover_circuit
from repro.circuit import QuantumCircuit
from repro.simulation import KOperationsStrategy, SequentialStrategy


def small_circuit() -> QuantumCircuit:
    qc = QuantumCircuit(3, name="bell_plus")
    qc.h(0).cx(0, 1).t(1).cx(1, 2).h(2)
    return qc


class TestCompare:
    def test_default_lineup_runs(self):
        result = compare_strategies(small_circuit())
        assert len(result.rows) == len(default_strategy_lineup())
        assert result.rows[0]["strategy"] == "sequential"
        assert all(row["MxV"] >= 1 for row in result.rows)

    def test_custom_lineup(self):
        result = compare_strategies(
            small_circuit(),
            strategies=[SequentialStrategy(), KOperationsStrategy(2)])
        assert len(result.rows) == 2
        assert result.rows[1]["MxM"] == 2

    def test_speedup_relative_to_first(self):
        result = compare_strategies(
            small_circuit(),
            strategies=[SequentialStrategy(), KOperationsStrategy(5)])
        assert result.rows[0]["speedup"] == pytest.approx(1.0)

    def test_verification_on_structured_circuit(self):
        instance = grover_circuit(5, 7)
        result = compare_strategies(instance.circuit)
        assert "verified" in result.notes

    def test_verification_can_be_disabled(self):
        result = compare_strategies(small_circuit(),
                                    verify_agreement=False)
        assert "disabled" in result.notes

    def test_empty_lineup_rejected(self):
        with pytest.raises(ValueError):
            compare_strategies(small_circuit(), strategies=[])

    def test_title_mentions_circuit(self):
        result = compare_strategies(small_circuit())
        assert "bell_plus" in result.title
