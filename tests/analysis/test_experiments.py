"""Experiment runners: structure and the paper's qualitative claims.

These tests run the real experiment harness on miniature instances, so they
validate the shapes the reproduction must preserve (combining helps, the
extremes lose, DD-repeating and DD-construct win) without taking benchmark-
scale time.
"""

import pytest

from repro.analysis.experiments import (ExperimentResult, run_fig5_study,
                                        run_fig8, run_fig9,
                                        run_schedule_report, run_table1,
                                        run_table2)
from repro.analysis.instances import (_grover_instance, _shor_instance,
                                      _supremacy_instance)


@pytest.fixture(scope="module")
def mini_instances():
    return [_grover_instance(6, 13), _supremacy_instance(2, 3, 8, 1)]


class TestFig8:
    def test_structure(self, mini_instances):
        result = run_fig8(instances=mini_instances, k_values=(1, 2, 4))
        assert result.experiment == "fig8"
        benchmarks = {row["benchmark"] for row in result.rows}
        assert "grover_6" in benchmarks
        assert "average" in benchmarks
        # one row per (instance, k) plus one average row per k
        assert len(result.rows) == 3 * (len(mini_instances) + 1)

    def test_speedups_positive(self, mini_instances):
        result = run_fig8(instances=mini_instances, k_values=(2,))
        for row in result.rows:
            if row["benchmark"] != "average":
                assert row["speedup"] > 0
                assert row["t_sota"] > 0

    def test_recursion_speedup_of_combining(self, mini_instances):
        """Machine-independent version of the Fig. 8 claim on the random
        circuit: moderate k reduces total recursive work."""
        result = run_fig8(instances=[_supremacy_instance(3, 3, 10, 1)],
                          k_values=(8,))
        row = result.rows[0]
        assert row["recursion_speedup"] > 1.0


class TestFig9:
    def test_structure(self, mini_instances):
        result = run_fig9(instances=mini_instances, smax_values=(4, 64))
        assert result.experiment == "fig9"
        assert any(row["s_max"] == 64 for row in result.rows)

    def test_column_accessor(self, mini_instances):
        result = run_fig9(instances=mini_instances, smax_values=(4,))
        speedups = result.column("speedup")
        assert len(speedups) == len(result.rows)


class TestTable1:
    def test_dd_repeating_beats_general_on_grover(self):
        # timing jitter on ~50 ms runs occasionally flips single-run
        # comparisons; take the best of two runs, as a benchmarker would
        rows = [run_table1(instances=[_grover_instance(10, 77)]).rows[0]
                for _ in range(2)]
        t_rep = min(row["t_dd_repeating"] for row in rows)
        t_general = min(row["t_general"] for row in rows)
        t_sota = min(row["t_sota"] for row in rows)
        assert t_rep < t_general
        assert t_rep < t_sota

    def test_headers_match_paper_columns(self):
        result = run_table1(instances=[_grover_instance(6, 3)])
        for column in ("t_sota", "t_general", "t_dd_repeating"):
            assert column in result.headers


class TestTable2:
    def test_dd_construct_orders_of_magnitude_faster(self):
        result = run_table2(instances=[_shor_instance(15, 7)])
        row = result.rows[0]
        # the typical margin is ~100x; the loose thresholds absorb CI
        # timing jitter (dd-construct runs take only milliseconds)
        assert row["t_dd_construct"] < row["t_sota"] / 5
        assert row["speedup_vs_general"] > 5

    def test_headers_match_paper_columns(self):
        result = run_table2(instances=[_shor_instance(15, 7)])
        for column in ("t_sota", "t_general", "t_dd_construct"):
            assert column in result.headers


class TestRowOrder:
    """Regression: row order is an explicit sorted key, not execution
    order -- serial and parallel runs must render identical reports."""

    def test_sort_rows_by_columns(self):
        result = ExperimentResult(experiment="x", title="x",
                                  headers=["benchmark", "k"])
        result.rows = [{"benchmark": "b", "k": 2}, {"benchmark": "a", "k": 2},
                       {"benchmark": "b", "k": 1}, {"benchmark": "a", "k": 1}]
        result.sort_rows("k", "benchmark")
        assert [(r["k"], r["benchmark"]) for r in result.rows] == \
            [(1, "a"), (1, "b"), (2, "a"), (2, "b")]

    def test_sort_rows_pins_tail_rows_last_per_group(self):
        result = ExperimentResult(experiment="x", title="x",
                                  headers=["benchmark", "k"])
        result.rows = [{"benchmark": "average", "k": 1},
                       {"benchmark": "zz", "k": 1},
                       {"benchmark": "average", "k": 2},
                       {"benchmark": "aa", "k": 2}]
        result.sort_rows("k", "benchmark", tail=("benchmark", "average"))
        assert [r["benchmark"] for r in result.rows] == \
            ["zz", "average", "aa", "average"]

    def test_fig8_rows_sorted_by_k_then_benchmark(self, mini_instances):
        result = run_fig8(instances=mini_instances, k_values=(4, 2))
        keys = [(row["k"], row["benchmark"]) for row in result.rows]
        # averages pinned last per k group, k ascending regardless of the
        # order values were requested in
        assert keys == [(2, "grover_6"), (2, "supremacy_8_6"),
                        (2, "average"), (4, "grover_6"),
                        (4, "supremacy_8_6"), (4, "average")]

    def test_table_rows_sorted_by_benchmark(self):
        result = run_table1(instances=[_grover_instance(7, 3),
                                       _grover_instance(6, 3)])
        assert [row["benchmark"] for row in result.rows] == \
            ["grover_6", "grover_7"]


class TestScheduleReport:
    def test_schedule_accounting(self, mini_instances):
        result = run_schedule_report(instances=mini_instances,
                                     strategies=("sequential", "k=4"))
        by_key = {(r["benchmark"], r["strategy"]): r for r in result.rows}
        for instance in mini_instances:
            seq = by_key[(instance.name, "sequential")]
            k4 = by_key[(instance.name, "k=4")]
            g = seq["ops"]
            assert seq["mxv"] == g and seq["mxm"] == 0       # Eq. 1
            expected_mxv = -(-g // 4)
            assert k4["mxv"] == expected_mxv                  # Eq. 2
            assert k4["mxm"] == g - expected_mxv
            assert k4["final_nodes"] == seq["final_nodes"]    # canonical DD

    def test_identical_across_job_counts(self, mini_instances):
        serial = run_schedule_report(instances=mini_instances,
                                     strategies=("sequential", "k=4"),
                                     jobs=1)
        parallel = run_schedule_report(instances=mini_instances,
                                       strategies=("sequential", "k=4"),
                                       jobs=2)
        assert serial.rows == parallel.rows
        assert serial.headers == parallel.headers

    def test_rows_sorted(self, mini_instances):
        result = run_schedule_report(instances=mini_instances,
                                     strategies=("sequential", "k=2"))
        keys = [(r["benchmark"], r["strategy"]) for r in result.rows]
        assert keys == sorted(keys)

    def test_byte_identical_across_repeated_runs_and_job_counts(
            self, mini_instances):
        # The schedule report is the artifact CI diffs between serial and
        # parallel execution, so its guarantee is byte-identity, not just
        # row equality -- and not just once: scheduling nondeterminism
        # shows up intermittently, so compare repeated runs.
        import json

        def payload(jobs):
            result = run_schedule_report(instances=mini_instances,
                                         strategies=("sequential", "k=4"),
                                         jobs=jobs)
            return json.dumps({"headers": result.headers,
                               "rows": result.rows,
                               "notes": result.notes}, sort_keys=True)

        reference = payload(jobs=1)
        for _ in range(5):
            assert payload(jobs=1) == reference
            assert payload(jobs=2) == reference


class TestParallelParity:
    def test_fig8_jobs_param_accepted_and_rows_complete(self,
                                                        mini_instances):
        result = run_fig8(instances=mini_instances, k_values=(2,), jobs=2)
        assert len(result.rows) == len(mini_instances) + 1
        for row in result.rows:
            if row["benchmark"] != "average":
                assert row["t_strategy"] > 0


class TestFig5Study:
    def test_combined_matrix_smaller_than_intermediate_state(self):
        result = run_fig5_study(rows=3, cols=3, depth=8, seed=1)
        by_quantity = {row["quantity"]: row for row in result.rows}
        intermediate = by_quantity["intermediate DD (nodes)"]
        # Eq. 2's intermediate (combined gate matrix) is far smaller than
        # Eq. 1's (the intermediate state vector) -- the Fig. 5 observation.
        assert intermediate["eq2 (MxM first)"] \
            < intermediate["eq1 (MxV twice)"]

    def test_final_states_have_equal_size(self):
        result = run_fig5_study(rows=3, cols=3, depth=8, seed=1)
        by_quantity = {row["quantity"]: row for row in result.rows}
        final = by_quantity["final state DD (nodes)"]
        assert final["eq1 (MxV twice)"] == final["eq2 (MxM first)"]

    def test_too_shallow_circuit_rejected(self):
        with pytest.raises(ValueError):
            run_fig5_study(rows=1, cols=1, depth=1)
