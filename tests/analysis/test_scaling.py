"""The scaling-study runner."""

import pytest

from repro.analysis import run_scaling_study
from repro.simulation import KOperationsStrategy


class TestScalingStudy:
    def test_grover_family(self):
        result = run_scaling_study("grover", sizes=(4, 6))
        assert len(result.rows) == 2
        assert result.rows[0]["qubits"] == 4
        assert result.rows[1]["operations"] > result.rows[0]["operations"]

    def test_supremacy_family(self):
        result = run_scaling_study("supremacy", sizes=(4, 6))
        assert len(result.rows) == 2
        assert all(row["qubits"] == 9 for row in result.rows)

    def test_growth_column(self):
        result = run_scaling_study("grover", sizes=(4, 6, 8))
        assert result.rows[0]["growth"] is None
        assert all(row["growth"] is not None for row in result.rows[1:])

    def test_supremacy_peak_nodes_grow(self):
        result = run_scaling_study("supremacy", sizes=(4, 10))
        assert result.rows[1]["peak_state_nodes"] \
            > result.rows[0]["peak_state_nodes"]

    def test_custom_strategy(self):
        result = run_scaling_study("grover", sizes=(4,),
                                   strategy=KOperationsStrategy(4))
        assert result.rows[0]["time_s"] >= 0

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            run_scaling_study("teleportation")


def test_cli_scaling_command(capsys):
    from repro.analysis.__main__ import main

    assert main(["scaling"]) == 0
    assert "Scaling study" in capsys.readouterr().out
