"""Cross-entropy benchmarking utilities."""

import math
from random import Random

import pytest

from repro.algorithms import supremacy_circuit
from repro.analysis.xeb import (linear_xeb_fidelity, log_xeb_fidelity,
                                porter_thomas_statistic, xeb_from_samples)
from repro.simulation import SimulationEngine


class TestLinearXeb:
    def test_uniform_probabilities_score_zero(self):
        dimension = 64
        probabilities = [1 / dimension] * 100
        assert linear_xeb_fidelity(probabilities, dimension) \
            == pytest.approx(0.0)

    def test_porter_thomas_expectation(self):
        # under PT, E[D p] = 2 -> F = 1
        assert linear_xeb_fidelity([2 / 64] * 10, 64) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            linear_xeb_fidelity([], 4)


class TestLogXeb:
    def test_positive_for_pt_like_probabilities(self):
        dimension = 256
        # samples at exactly 2/D would give log 2 - (1 - gamma) > 0-ish
        value = log_xeb_fidelity([2 / dimension] * 5, dimension)
        assert value == pytest.approx(math.log(2) + 0.5772156649015329,
                                      abs=1e-9)

    def test_zero_probability_rejected(self):
        with pytest.raises(ValueError):
            log_xeb_fidelity([0.0], 4)


class TestPorterThomas:
    def test_uniform_second_moment_is_one(self):
        dimension = 32
        assert porter_thomas_statistic([1 / dimension] * dimension,
                                       dimension) == pytest.approx(1.0)

    def test_needs_full_distribution(self):
        with pytest.raises(ValueError):
            porter_thomas_statistic([0.5, 0.5], 4)

    def test_random_circuit_approaches_two(self):
        instance = supremacy_circuit(3, 3, 10, seed=1)
        result = SimulationEngine().simulate(instance.circuit)
        statistic = porter_thomas_statistic(
            result.probabilities(), 1 << instance.num_qubits)
        # deep random circuits converge towards 2 (Porter-Thomas); at this
        # small dimension (512) finite-size fluctuation is substantial
        assert 1.2 < statistic < 3.2


class TestEndToEnd:
    def test_self_samples_score_near_one(self):
        instance = supremacy_circuit(3, 3, 10, seed=2)
        result = SimulationEngine().simulate(instance.circuit)
        fidelity = xeb_from_samples(result.package, result.state,
                                    instance.num_qubits, num_samples=400,
                                    rng=Random(7))
        # ideal self-sampling scores (second moment - 1): near 1 for a
        # converged Porter-Thomas distribution, clearly above uniform's 0
        assert 0.4 < fidelity < 2.2

    def test_uniform_samples_score_near_zero(self):
        instance = supremacy_circuit(3, 3, 10, seed=2)
        result = SimulationEngine().simulate(instance.circuit)
        rng = Random(9)
        uniform = [rng.randrange(1 << instance.num_qubits)
                   for _ in range(400)]
        fidelity = xeb_from_samples(result.package, result.state,
                                    instance.num_qubits, samples=uniform)
        assert -0.4 < fidelity < 0.4
