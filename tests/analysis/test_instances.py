"""Benchmark-instance registry."""

import pytest

from repro.analysis import default_suite, get_instance, quick_suite
from repro.analysis.instances import (grover_suite, shor_suite,
                                      supremacy_suite)
from repro.simulation import SequentialStrategy


class TestSuites:
    def test_quick_suite_covers_all_kinds(self):
        kinds = {instance.kind for instance in quick_suite()}
        assert kinds == {"grover", "shor", "supremacy"}

    def test_default_suite_superset_of_quick_names(self):
        quick_names = {i.name for i in quick_suite()}
        default_names = {i.name for i in default_suite()}
        assert quick_names <= default_names

    def test_names_follow_paper_scheme(self):
        for instance in quick_suite():
            if instance.kind == "grover":
                assert instance.name.startswith("grover_")
            elif instance.kind == "shor":
                parts = instance.name.split("_")
                assert parts[0] == "shor" and len(parts) == 4
            else:
                assert instance.name.startswith("supremacy_")

    def test_profiles_scale_monotonically(self):
        for suite in (grover_suite, shor_suite, supremacy_suite):
            assert len(suite("quick")) <= len(suite("default")) \
                <= len(suite("full"))

    def test_get_instance_by_name(self):
        instance = get_instance("grover_8")
        assert instance.kind == "grover"

    def test_get_unknown_instance(self):
        with pytest.raises(KeyError):
            get_instance("nonexistent_benchmark")


class TestRunners:
    def test_grover_instance_runs(self):
        instance = get_instance("grover_8")
        stats = instance.run(SequentialStrategy())
        assert stats.operations_applied > 0
        assert stats.wall_time_seconds > 0

    def test_circuit_cached_between_runs(self):
        instance = get_instance("supremacy_10_9")
        first = instance.run(SequentialStrategy())
        second = instance.run(SequentialStrategy())
        # same circuit, fresh engines: identical logical work
        assert first.operations_applied == second.operations_applied
        assert first.matrix_vector_mults == second.matrix_vector_mults

    def test_shor_instance_runs(self):
        instance = get_instance("shor_15_7_11")
        stats = instance.run(SequentialStrategy())
        assert stats.matrix_vector_mults > 1000
        assert stats.num_qubits == 11


class TestExtendedSuite:
    def test_extended_families_present(self):
        from repro.analysis.instances import extended_suite
        kinds = {instance.kind for instance in extended_suite()}
        assert kinds == {"oracle", "clifford", "graph"}

    def test_extended_instances_run(self):
        from repro.analysis.instances import extended_suite
        for instance in extended_suite():
            stats = instance.run(SequentialStrategy())
            assert stats.operations_applied > 0

    def test_extended_instances_resolvable_by_name(self):
        assert get_instance("bv_12").kind == "oracle"
        assert get_instance("clifford_16_10").kind == "clifford"
        assert get_instance("graph_state_3x4").kind == "graph"


class TestInstanceQasm:
    """`instance_qasm` feeds the job queue self-contained circuits."""

    def test_grover_qasm_round_trips_to_the_same_circuit(self):
        from repro.analysis.instances import instance_qasm
        from repro.baseline import simulate_statevector
        from repro.circuit.qasm import from_qasm
        import numpy as np
        qasm = instance_qasm("grover_8")
        rebuilt = from_qasm(qasm)
        assert rebuilt.num_qubits == 8
        # semantic check against the registry runner's own circuit
        from repro.algorithms.grover import grover_circuit
        instance = get_instance("grover_8")
        original = grover_circuit(instance.metadata["num_data_qubits"],
                                  instance.metadata["marked"]).circuit
        assert np.allclose(simulate_statevector(rebuilt),
                           simulate_statevector(original))

    def test_extended_instances_are_circuit_backed(self):
        from repro.analysis.instances import instance_qasm
        from repro.circuit.qasm import from_qasm
        for name in ("bv_12", "clifford_16_10", "graph_state_3x4"):
            circuit = from_qasm(instance_qasm(name))
            assert len(list(circuit.operations())) > 0, name

    def test_shor_instances_are_rejected(self):
        from repro.analysis.instances import instance_qasm
        shor_name = shor_suite("quick")[0].name
        with pytest.raises(ValueError, match="not circuit-backed"):
            instance_qasm(shor_name)
