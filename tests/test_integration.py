"""End-to-end integration tests across all layers of the library.

These exercise the workflows a downstream user would run: build an
algorithm circuit, simulate it under several strategies, verify physics-level
ground truth, and round-trip through QASM -- with no mocking anywhere.
"""

import math
from random import Random

import numpy as np
import pytest

from repro import (KOperationsStrategy, MaxSizeStrategy, Package,
                   QuantumCircuit, RepeatingBlockStrategy, SequentialStrategy,
                   SimulationEngine)
from repro.algorithms import (ShorOrderFinder, factor, grover_circuit,
                              multiplicative_order, qft_circuit,
                              supremacy_circuit)
from repro.baseline import simulate_statevector
from repro.circuit import from_qasm, to_qasm
from repro.dd import sample_counts, vector_to_numpy


class TestCrossStrategyConsistency:
    """All four strategies are interchangeable end to end."""

    STRATEGIES = [SequentialStrategy(), KOperationsStrategy(6),
                  MaxSizeStrategy(48), RepeatingBlockStrategy()]

    def test_on_grover(self):
        instance = grover_circuit(7, 29)
        package = Package()
        results = [SimulationEngine(package).simulate(instance.circuit, s)
                   for s in self.STRATEGIES]
        for other in results[1:]:
            assert results[0].fidelity_with(other) == pytest.approx(1.0)

    def test_on_supremacy(self):
        instance = supremacy_circuit(3, 3, 8, seed=9)
        package = Package()
        results = [SimulationEngine(package).simulate(instance.circuit, s)
                   for s in self.STRATEGIES]
        for other in results[1:]:
            assert results[0].fidelity_with(other) == pytest.approx(1.0)

    def test_on_qft(self):
        circuit = qft_circuit(6)
        package = Package()
        results = [SimulationEngine(package).simulate(circuit, s)
                   for s in self.STRATEGIES]
        for other in results[1:]:
            assert results[0].fidelity_with(other) == pytest.approx(1.0)
        # QFT of |0> is the uniform superposition
        assert results[0].probability(17) == pytest.approx(1 / 64)


class TestPhysicsGroundTruth:
    def test_ghz_state(self):
        qc = QuantumCircuit(6, name="ghz")
        qc.h(0)
        for i in range(5):
            qc.cx(i, i + 1)
        result = SimulationEngine().simulate(qc, MaxSizeStrategy(16))
        assert result.probability(0) == pytest.approx(0.5)
        assert result.probability(63) == pytest.approx(0.5)
        # GHZ states are the best case for DDs: linear size
        assert result.state_nodes() == 6 + 5

    def test_grover_finds_needle_by_sampling(self):
        instance = grover_circuit(9, 333)
        result = SimulationEngine().simulate(instance.circuit,
                                             RepeatingBlockStrategy())
        counts = sample_counts(result.package, result.state, 50, Random(8))
        assert counts.get(333, 0) >= 48

    def test_shor_full_pipeline_factorises(self):
        outcome = factor(33, mode="construct", seed=5)
        assert outcome.succeeded
        assert sorted(outcome.factors) == [3, 11]
        assert any(a.order is not None for a in outcome.attempts)

    def test_shor_order_statistics_match_theory(self):
        """Measured phases concentrate on multiples of 1/r."""
        modulus, base = 21, 2
        r = multiplicative_order(base, modulus)
        good = 0
        for seed in range(8):
            result = ShorOrderFinder(modulus, base, mode="construct",
                                     seed=seed).run()
            phase = result.measured_phase
            distance = min(abs(phase - s / r) for s in range(r + 1))
            if distance < 1 / (1 << (result.precision_bits // 2)):
                good += 1
        assert good >= 6  # the vast majority of runs land near s/r


class TestQasmInterop:
    def test_supremacy_circuit_round_trips_through_qasm(self):
        instance = supremacy_circuit(2, 3, 8, seed=2)
        recovered = from_qasm(to_qasm(instance.circuit))
        assert np.allclose(simulate_statevector(instance.circuit),
                           simulate_statevector(recovered))

    def test_qasm_import_simulates_on_dd(self):
        text = """
            OPENQASM 2.0;
            qreg q[3];
            h q[0]; h q[1]; h q[2];
            ccx q[0],q[1],q[2];
            cp(pi/4) q[0],q[2];
        """
        circuit = from_qasm(text)
        result = SimulationEngine().simulate(circuit, KOperationsStrategy(2))
        dense = simulate_statevector(circuit)
        assert np.allclose(vector_to_numpy(result.state, 3), dense)


class TestDenseAgreementSweep:
    """DD simulation equals dense simulation across one whole workload mix."""

    @pytest.mark.parametrize("builder", [
        lambda: grover_circuit(5, 11).circuit,
        lambda: supremacy_circuit(2, 4, 8, seed=4).circuit,
        lambda: qft_circuit(5),
        lambda: qft_circuit(5, inverse=True),
    ])
    def test_matches_dense(self, builder):
        circuit = builder()
        result = SimulationEngine().simulate(circuit, MaxSizeStrategy(32))
        assert np.allclose(
            vector_to_numpy(result.state, circuit.num_qubits),
            simulate_statevector(circuit), atol=1e-8)


class TestMemoryDiscipline:
    def test_long_simulation_with_small_gc_limit(self):
        instance = supremacy_circuit(3, 3, 10, seed=6)
        tight = SimulationEngine(gc_node_limit=200)
        loose = SimulationEngine(gc_node_limit=None)
        a = tight.simulate(instance.circuit)
        b = loose.simulate(instance.circuit)
        va = vector_to_numpy(a.state, 9)
        vb = vector_to_numpy(b.state, 9)
        assert np.allclose(va, vb, atol=1e-8)
        assert tight.package.live_node_count() \
            <= loose.package.live_node_count()
