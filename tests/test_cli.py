"""The top-level command-line interface."""

import pytest

from repro.__main__ import main

BELL_QASM = """
OPENQASM 2.0;
qreg q[2];
h q[0];
cx q[0],q[1];
"""

GHZ_QASM = """
OPENQASM 2.0;
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
"""


@pytest.fixture
def bell_file(tmp_path):
    path = tmp_path / "bell.qasm"
    path.write_text(BELL_QASM)
    return str(path)


@pytest.fixture
def ghz_file(tmp_path):
    path = tmp_path / "ghz.qasm"
    path.write_text(GHZ_QASM)
    return str(path)


class TestSimulate:
    def test_basic_run(self, bell_file, capsys):
        assert main(["simulate", bell_file]) == 0
        output = capsys.readouterr().out
        assert "2 qubits" in output
        assert "matrix-vector" in output

    def test_amplitudes_flag(self, bell_file, capsys):
        assert main(["simulate", bell_file, "--amplitudes"]) == 0
        output = capsys.readouterr().out
        assert "|00>" in output and "|11>" in output
        assert "|01>" not in output  # below threshold

    def test_shots(self, bell_file, capsys):
        assert main(["simulate", bell_file, "--shots", "50",
                     "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "50 shots" in output

    def test_strategy_spec(self, ghz_file, capsys):
        assert main(["simulate", ghz_file, "--strategy", "k=2"]) == 0
        assert "k-operations" in capsys.readouterr().out

    def test_initial_state(self, bell_file, capsys):
        # from |01>: H then CX gives the Bell pair (|00> - |11>)/sqrt(2)
        assert main(["simulate", bell_file, "--initial", "1",
                     "--amplitudes"]) == 0
        output = capsys.readouterr().out
        assert "|00>" in output and "|11>" in output
        assert "-0.7071" in output


class TestInfo:
    def test_info_output(self, ghz_file, capsys):
        assert main(["info", ghz_file]) == 0
        output = capsys.readouterr().out
        assert "qubits     : 3" in output
        assert "depth" in output
        assert "h" in output


class TestEquiv:
    def test_equivalent_files(self, tmp_path, capsys):
        a = tmp_path / "a.qasm"
        b = tmp_path / "b.qasm"
        a.write_text("qreg q[1]; h q[0]; x q[0]; h q[0];")
        b.write_text("qreg q[1]; z q[0];")
        assert main(["equiv", str(a), str(b)]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_not_equivalent(self, tmp_path, capsys):
        a = tmp_path / "a.qasm"
        b = tmp_path / "b.qasm"
        a.write_text("qreg q[1]; x q[0];")
        b.write_text("qreg q[1]; y q[0];")
        assert main(["equiv", str(a), str(b)]) == 1
        assert "NOT equivalent" in capsys.readouterr().out

    def test_pointer_method(self, bell_file, capsys):
        assert main(["equiv", bell_file, bell_file,
                     "--method", "pointer"]) == 0


class TestFactor:
    def test_factor_semiprime(self, capsys):
        assert main(["factor", "15", "--seed", "3"]) == 0
        assert "3 x 5" in capsys.readouterr().out.replace("5 x 3", "3 x 5")

    def test_factor_even_shortcut(self, capsys):
        assert main(["factor", "22"]) == 0
        assert "classical shortcut" in capsys.readouterr().out
