"""The top-level command-line interface."""

import pytest

from repro.__main__ import main

BELL_QASM = """
OPENQASM 2.0;
qreg q[2];
h q[0];
cx q[0],q[1];
"""

GHZ_QASM = """
OPENQASM 2.0;
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
"""


@pytest.fixture
def bell_file(tmp_path):
    path = tmp_path / "bell.qasm"
    path.write_text(BELL_QASM)
    return str(path)


@pytest.fixture
def ghz_file(tmp_path):
    path = tmp_path / "ghz.qasm"
    path.write_text(GHZ_QASM)
    return str(path)


class TestSimulate:
    def test_basic_run(self, bell_file, capsys):
        assert main(["simulate", bell_file]) == 0
        output = capsys.readouterr().out
        assert "2 qubits" in output
        assert "matrix-vector" in output

    def test_amplitudes_flag(self, bell_file, capsys):
        assert main(["simulate", bell_file, "--amplitudes"]) == 0
        output = capsys.readouterr().out
        assert "|00>" in output and "|11>" in output
        assert "|01>" not in output  # below threshold

    def test_shots(self, bell_file, capsys):
        assert main(["simulate", bell_file, "--shots", "50",
                     "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "50 shots" in output

    def test_strategy_spec(self, ghz_file, capsys):
        assert main(["simulate", ghz_file, "--strategy", "k=2"]) == 0
        assert "k-operations" in capsys.readouterr().out

    def test_initial_state(self, bell_file, capsys):
        # from |01>: H then CX gives the Bell pair (|00> - |11>)/sqrt(2)
        assert main(["simulate", bell_file, "--initial", "1",
                     "--amplitudes"]) == 0
        output = capsys.readouterr().out
        assert "|00>" in output and "|11>" in output
        assert "-0.7071" in output


class TestInfo:
    def test_info_output(self, ghz_file, capsys):
        assert main(["info", ghz_file]) == 0
        output = capsys.readouterr().out
        assert "qubits     : 3" in output
        assert "depth" in output
        assert "h" in output


class TestEquiv:
    def test_equivalent_files(self, tmp_path, capsys):
        a = tmp_path / "a.qasm"
        b = tmp_path / "b.qasm"
        a.write_text("qreg q[1]; h q[0]; x q[0]; h q[0];")
        b.write_text("qreg q[1]; z q[0];")
        assert main(["equiv", str(a), str(b)]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_not_equivalent(self, tmp_path, capsys):
        a = tmp_path / "a.qasm"
        b = tmp_path / "b.qasm"
        a.write_text("qreg q[1]; x q[0];")
        b.write_text("qreg q[1]; y q[0];")
        assert main(["equiv", str(a), str(b)]) == 1
        assert "NOT equivalent" in capsys.readouterr().out

    def test_pointer_method(self, bell_file, capsys):
        assert main(["equiv", bell_file, bell_file,
                     "--method", "pointer"]) == 0


class TestFactor:
    def test_factor_semiprime(self, capsys):
        assert main(["factor", "15", "--seed", "3"]) == 0
        assert "3 x 5" in capsys.readouterr().out.replace("5 x 3", "3 x 5")

    def test_factor_even_shortcut(self, capsys):
        assert main(["factor", "22"]) == 0
        assert "classical shortcut" in capsys.readouterr().out


@pytest.fixture
def grover_file(tmp_path):
    from repro.algorithms.grover import grover_circuit
    from repro.circuit import to_qasm

    circuit = grover_circuit(6, 0b101101, mark_repetition=False).circuit
    path = tmp_path / "grover6.qasm"
    path.write_text(to_qasm(circuit))
    return str(path)


class TestCheckpointCli:
    def test_simulate_writes_checkpoint(self, grover_file, tmp_path, capsys):
        ckpt = str(tmp_path / "run.ckpt")
        assert main(["simulate", grover_file, "--checkpoint", ckpt,
                     "--checkpoint-every", "40"]) == 0
        output = capsys.readouterr().out
        assert "checkpoint:" in output

    def test_resume_finishes_run(self, grover_file, tmp_path, capsys):
        ckpt = str(tmp_path / "run.ckpt")
        main(["simulate", grover_file, "--checkpoint", ckpt,
              "--checkpoint-every", "40"])
        capsys.readouterr()
        assert main(["resume", ckpt, grover_file]) == 0
        output = capsys.readouterr().out
        assert "resuming" in output
        assert "matrix-vector" in output

    def test_budget_abort_names_checkpoint(self, grover_file, tmp_path,
                                           capsys):
        ckpt = str(tmp_path / "oom.ckpt")
        assert main(["simulate", grover_file, "--gc-limit", "10",
                     "--max-nodes", "20", "--checkpoint", ckpt]) == 2
        captured = capsys.readouterr()
        assert "exceeding the hard budget" in captured.err
        assert ckpt in captured.err
        # and the named checkpoint resumes to completion on a roomier run
        assert main(["resume", ckpt, grover_file]) == 0

    def test_resume_missing_checkpoint_is_clean_error(self, grover_file,
                                                      tmp_path, capsys):
        missing = str(tmp_path / "nope.ckpt")
        assert main(["resume", missing, grover_file]) == 2
        assert "error:" in capsys.readouterr().err


class TestAuditCli:
    def test_audit_clean_checkpoint(self, grover_file, tmp_path, capsys):
        ckpt = str(tmp_path / "run.ckpt")
        main(["simulate", grover_file, "--checkpoint", ckpt,
              "--checkpoint-every", "40"])
        capsys.readouterr()
        assert main(["audit", ckpt]) == 0
        assert "AUDIT OK" in capsys.readouterr().out

    def test_audit_circuit_run(self, ghz_file, capsys):
        assert main(["audit", ghz_file, "--audit-every", "1"]) == 0
        output = capsys.readouterr().out
        assert "AUDIT OK" in output
        assert "in-run audits" in output

    def test_audit_corrupt_checkpoint_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.ckpt"
        bad.write_text('{"version": 1, "truncated')
        assert main(["audit", str(bad), "--kind", "checkpoint"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_degrade_flag_reports_actions(self, tmp_path, capsys):
        from repro.circuit import QuantumCircuit, to_qasm

        circuit = QuantumCircuit(8, name="fringe")
        for layer in range(3):
            for qubit in range(8):
                circuit.ry(0.12 + 0.01 * qubit + 0.007 * layer, qubit)
            for qubit in range(7):
                circuit.cx(qubit, qubit + 1)
        path = tmp_path / "fringe.qasm"
        path.write_text(to_qasm(circuit))
        assert main(["simulate", str(path), "--gc-limit", "50",
                     "--max-nodes", "100", "--degrade",
                     "--fidelity-floor", "0.9"]) == 0
        output = capsys.readouterr().out
        assert "degraded" in output
        assert "prune" in output


class TestExperimentsCli:
    def test_schedule_report_on_mini_suite(self, capsys, monkeypatch):
        # the real quick suite takes tens of seconds; the CLI behaviour is
        # fully exercised by a miniature one
        from repro.analysis import experiments
        from repro.analysis.instances import _grover_instance
        monkeypatch.setattr(experiments, "_suite",
                            lambda profile: [_grover_instance(5, 3)])
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "grover_5" in out
        assert "sequential" in out
        assert "mxv" in out
        # schedule report never prints wall-clock columns
        assert "t_sota" not in out

    def test_markdown_flag(self, capsys, monkeypatch):
        from repro.analysis import experiments
        from repro.analysis.instances import _grover_instance
        monkeypatch.setattr(experiments, "_suite",
                            lambda profile: [_grover_instance(5, 3)])
        assert main(["experiments", "--markdown", "--jobs", "2"]) == 0
        assert "| benchmark |" in capsys.readouterr().out

    def test_invalid_jobs_rejected(self, capsys):
        assert main(["experiments", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestBackendCli:
    def test_explicit_backend(self, bell_file, capsys):
        assert main(["simulate", bell_file, "--backend", "dense"]) == 0
        output = capsys.readouterr().out
        assert "backend   : dense" in output

    def test_auto_backend_logs_decision(self, ghz_file, capsys):
        assert main(["simulate", ghz_file, "--backend", "auto"]) == 0
        output = capsys.readouterr().out
        assert "backend   : " in output
        assert "selected  : " in output
        assert "density signal" in output

    def test_auto_respects_amplitudes_flag(self, bell_file, capsys):
        assert main(["simulate", bell_file, "--backend", "auto",
                     "--amplitudes"]) == 0
        output = capsys.readouterr().out
        assert "|00>" in output and "|11>" in output

    def test_unknown_backend_fails_cleanly(self, bell_file, capsys):
        assert main(["simulate", bell_file, "--backend", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_strategy_through_matrix_backend(self, ghz_file, capsys):
        assert main(["simulate", ghz_file, "--backend", "dd-matrix",
                     "--strategy", "k=2"]) == 0
        assert "matrix-matrix" in capsys.readouterr().out


class TestFuzzCli:
    def test_clean_campaign(self, capsys):
        assert main(["fuzz", "--max-circuits", "4", "--seed", "42",
                     "--qubits", "2:3", "--ops", "5:10"]) == 0
        output = capsys.readouterr().out
        assert "fuzz OK" in output
        assert "4 circuits" in output

    def test_broken_backend_flips_exit_code(self, tmp_path, capsys):
        from repro.verification.fuzz import unregister_broken_backend
        corpus = str(tmp_path / "corpus")
        try:
            code = main(["fuzz", "--max-circuits", "200", "--seed", "3",
                         "--inject-broken", "--corpus", corpus])
        finally:
            unregister_broken_backend()
        assert code == 1
        captured = capsys.readouterr()
        assert "broken-phase" in captured.out
        # the minimized reproducers go to stderr
        assert "OPENQASM" in captured.err
        assert "fuzz FAILED" in captured.err
        import os
        assert os.path.exists(os.path.join(corpus, "summary.json"))

    def test_restricted_backend_pool(self, capsys):
        assert main(["fuzz", "--max-circuits", "2", "--seed", "1",
                     "--backends", "dd,dd-iterative"]) == 0
        assert "dd-iterative" in capsys.readouterr().out

    def test_bad_span_rejected(self, capsys):
        assert main(["fuzz", "--max-circuits", "1",
                     "--qubits", "6:2"]) == 2
