"""Smoke tests: the example scripts must actually run.

Only the fast examples run in the default suite; each is executed
in-process with its ``main()`` so failures surface as normal test errors.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "dd_inspection.py",
    "equivalence_checking.py",
    "noisy_simulation.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # dd_inspection writes dot files
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_examples_directory_complete():
    """Every example advertised by the README exists and is runnable text."""
    expected = {"quickstart.py", "grover_search.py", "shor_factoring.py",
                "supremacy_simulation.py", "dd_inspection.py",
                "equivalence_checking.py", "qaoa_maxcut.py",
                "noisy_simulation.py", "compile_pipeline.py",
                "amplitude_estimation.py"}
    present = {path.name for path in EXAMPLES.glob("*.py")}
    assert expected <= present
    for name in expected:
        source = (EXAMPLES / name).read_text()
        assert "def main()" in source
        assert '__main__' in source
