"""Random Clifford circuit generation."""

import numpy as np
import pytest

from repro.algorithms.clifford import random_clifford_circuit
from repro.baseline import simulate_statevector
from repro.dd import vector_to_numpy
from repro.simulation import SimulationEngine


class TestGeneration:
    def test_gate_set_restricted(self):
        instance = random_clifford_circuit(5, 10, seed=1)
        gates = set(instance.circuit.count_gates())
        assert gates <= {"h", "s", "x"}  # x only as the CX core

    def test_x_gates_are_all_controlled(self):
        instance = random_clifford_circuit(5, 10, seed=2)
        for op in instance.circuit.operations():
            if op.gate == "x":
                assert len(op.controls) == 1

    def test_deterministic(self):
        a = random_clifford_circuit(4, 8, seed=3).circuit
        b = random_clifford_circuit(4, 8, seed=3).circuit
        assert a == b

    def test_two_qubit_fraction_extremes(self):
        none = random_clifford_circuit(4, 6, seed=1,
                                       two_qubit_fraction=0.0)
        assert "x" not in none.circuit.count_gates()
        heavy = random_clifford_circuit(6, 6, seed=1,
                                        two_qubit_fraction=1.0)
        assert heavy.circuit.count_gates().get("x", 0) > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_clifford_circuit(0, 5)
        with pytest.raises(ValueError):
            random_clifford_circuit(3, 0)
        with pytest.raises(ValueError):
            random_clifford_circuit(3, 3, two_qubit_fraction=2.0)


class TestSimulation:
    def test_matches_dense(self):
        instance = random_clifford_circuit(6, 12, seed=5)
        result = SimulationEngine().simulate(instance.circuit)
        assert np.allclose(vector_to_numpy(result.state, 6),
                           simulate_statevector(instance.circuit),
                           atol=1e-9)

    def test_stabilizer_amplitudes_are_uniform_magnitude(self):
        """Stabilizer states have all non-zero amplitudes of equal
        magnitude -- a structural invariant of Clifford circuits."""
        instance = random_clifford_circuit(6, 15, seed=7)
        result = SimulationEngine().simulate(instance.circuit)
        amplitudes = vector_to_numpy(result.state, 6)
        magnitudes = np.abs(amplitudes[np.abs(amplitudes) > 1e-9])
        assert np.allclose(magnitudes, magnitudes[0], atol=1e-9)

    def test_dd_smaller_than_supremacy_at_same_size(self):
        from repro.algorithms import supremacy_circuit
        clifford = random_clifford_circuit(9, 12, seed=1)
        chaotic = supremacy_circuit(3, 3, 12, seed=1)
        c_stats = SimulationEngine().simulate(clifford.circuit).statistics
        s_stats = SimulationEngine().simulate(chaotic.circuit).statistics
        assert c_stats.peak_state_nodes < s_stats.peak_state_nodes
