"""Bernstein-Vazirani and Deutsch-Jozsa."""

import pytest

from repro.algorithms import (bernstein_vazirani_circuit,
                              deutsch_jozsa_circuit)
from repro.simulation import (KOperationsStrategy, SequentialStrategy,
                              SimulationEngine)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [0, 1, 0b1010, 0b1111, 0b0110])
    def test_secret_recovered_deterministically(self, secret):
        instance = bernstein_vazirani_circuit(4, secret)
        result = SimulationEngine().simulate(instance.circuit)
        # the data register reads exactly the secret; ancilla stays in |->
        p = sum(result.probability(secret | (a << 4)) for a in (0, 1))
        assert p == pytest.approx(1.0, abs=1e-9)
        assert instance.expected_outcome(secret | (1 << 4))

    def test_single_query(self):
        instance = bernstein_vazirani_circuit(8, 0b10110101)
        x_count = instance.circuit.count_gates().get("x", 0)
        # one CX per secret bit plus the ancilla-preparation X
        assert x_count == bin(0b10110101).count("1") + 1

    def test_state_dd_stays_linear(self):
        instance = bernstein_vazirani_circuit(16, 0b1010101010101010)
        stats = SimulationEngine().simulate(instance.circuit).statistics
        assert stats.peak_state_nodes <= 2 * 17

    def test_strategies_agree(self):
        instance = bernstein_vazirani_circuit(6, 0b101101)
        a = SimulationEngine().simulate(instance.circuit,
                                        SequentialStrategy())
        b = SimulationEngine().simulate(instance.circuit,
                                        KOperationsStrategy(4))
        for index in (0b101101, 0b101101 | (1 << 6)):
            assert a.probability(index) == pytest.approx(b.probability(index))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(0, 0)
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(3, 8)


class TestDeutschJozsa:
    def test_constant_oracle_reads_zero(self):
        instance = deutsch_jozsa_circuit(5, constant=True)
        result = SimulationEngine().simulate(instance.circuit)
        p_zero = sum(result.probability(a << 5) for a in (0, 1))
        assert p_zero == pytest.approx(1.0, abs=1e-9)
        assert instance.is_constant_outcome(0)

    @pytest.mark.parametrize("mask", [0b11111, 0b00101, 0b10000])
    def test_balanced_oracle_never_reads_zero(self, mask):
        instance = deutsch_jozsa_circuit(5, constant=False,
                                         balanced_mask=mask)
        result = SimulationEngine().simulate(instance.circuit)
        p_zero = sum(result.probability(a << 5) for a in (0, 1))
        assert p_zero == pytest.approx(0.0, abs=1e-9)

    def test_balanced_reads_the_mask(self):
        # for parity oracles DJ actually reveals the mask, like BV
        instance = deutsch_jozsa_circuit(4, constant=False,
                                         balanced_mask=0b0110)
        result = SimulationEngine().simulate(instance.circuit)
        p = sum(result.probability(0b0110 | (a << 4)) for a in (0, 1))
        assert p == pytest.approx(1.0, abs=1e-9)

    def test_invalid_mask_rejected(self):
        with pytest.raises(ValueError):
            deutsch_jozsa_circuit(3, constant=False, balanced_mask=0)
        with pytest.raises(ValueError):
            deutsch_jozsa_circuit(3, constant=False, balanced_mask=8)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            deutsch_jozsa_circuit(0, constant=True)
