"""Graph-state preparation and stabilizer verification."""

import pytest

from repro.algorithms.graph_states import (graph_state_circuit,
                                           verify_graph_state_stabilizers)
from repro.algorithms.qaoa import grid_graph, ring_graph
from repro.analysis import entanglement_entropy
from repro.simulation import SimulationEngine


class TestConstruction:
    def test_gate_structure(self):
        instance = graph_state_circuit(ring_graph(4), 4)
        counts = instance.circuit.count_gates()
        assert counts == {"h": 4, "z": 4}

    def test_duplicate_edges_collapsed(self):
        instance = graph_state_circuit([(0, 1), (1, 0), (0, 1)], 2)
        assert instance.edges == [(0, 1)]

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            graph_state_circuit([(1, 1)], 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            graph_state_circuit([(0, 9)], 3)

    def test_neighbours(self):
        instance = graph_state_circuit([(0, 1), (1, 2), (0, 3)], 4)
        assert instance.neighbours(0) == [1, 3]
        assert instance.neighbours(2) == [1]


class TestStabilizers:
    @pytest.mark.parametrize("edges,n", [
        (ring_graph(5), 5),
        (grid_graph(2, 3), 6),
        ([(0, 1)], 2),
        ([], 3),
    ])
    def test_all_stabilizers_plus_one(self, edges, n):
        instance = graph_state_circuit(edges, n)
        engine = SimulationEngine()
        result = engine.simulate(instance.circuit)
        assert verify_graph_state_stabilizers(engine.package, result.state,
                                              instance)

    def test_wrong_state_fails_stabilizers(self):
        instance = graph_state_circuit(ring_graph(4), 4)
        engine = SimulationEngine()
        assert not verify_graph_state_stabilizers(
            engine.package, engine.package.zero_state(4), instance)


class TestEntanglementStructure:
    def test_edgeless_graph_is_product(self):
        instance = graph_state_circuit([], 4)
        engine = SimulationEngine()
        result = engine.simulate(instance.circuit)
        assert entanglement_entropy(engine.package, result.state, [0, 1]) \
            == pytest.approx(0.0, abs=1e-9)

    def test_single_edge_gives_one_bit(self):
        instance = graph_state_circuit([(0, 3)], 4)
        engine = SimulationEngine()
        result = engine.simulate(instance.circuit)
        assert entanglement_entropy(engine.package, result.state, [0]) \
            == pytest.approx(1.0, abs=1e-9)

    def test_cut_entropy_counts_crossing_edges_on_a_path(self):
        # path graph 0-1-2-3: the (01 | 23) cut crosses one edge -> 1 bit
        instance = graph_state_circuit([(0, 1), (1, 2), (2, 3)], 4)
        engine = SimulationEngine()
        result = engine.simulate(instance.circuit)
        assert entanglement_entropy(engine.package, result.state, [0, 1]) \
            == pytest.approx(1.0, abs=1e-9)
