"""Shor's algorithm: both simulation styles, orders, factors, statistics."""

import math

import pytest

from repro.algorithms import (ShorOrderFinder, beauregard_layout,
                              controlled_ua_circuit, factor,
                              multiplicative_order)
from repro.simulation import (KOperationsStrategy, SequentialStrategy,
                              SimulationEngine)


class TestLayout:
    def test_qubit_counts(self):
        layout = beauregard_layout(15)  # n = 4
        assert layout.num_qubits == 11
        assert len(layout.b_register) == 5
        assert len(layout.x_register) == 4
        assert layout.ancilla == 9
        assert layout.control == 10

    def test_registers_are_disjoint(self):
        layout = beauregard_layout(21)
        all_qubits = (list(layout.b_register) + list(layout.x_register)
                      + [layout.ancilla, layout.control])
        assert sorted(all_qubits) == list(range(layout.num_qubits))


class TestControlledUaCircuit:
    def test_oracle_on_dd_simulator(self):
        """The gate-level U_a maps |x=1> to |a mod N> when control is on."""
        modulus, multiplier = 15, 7
        layout = beauregard_layout(modulus)
        circuit = controlled_ua_circuit(modulus, multiplier)
        engine = SimulationEngine()
        x_offset = layout.x_register[0]
        initial = engine.package.basis_state(
            layout.num_qubits, (1 << x_offset) | (1 << layout.control))
        result = engine.simulate(circuit, initial_state=initial)
        expected = (multiplier << x_offset) | (1 << layout.control)
        assert result.probability(expected) == pytest.approx(1.0, abs=1e-9)

    def test_oracle_identity_when_control_off(self):
        modulus, multiplier = 15, 7
        layout = beauregard_layout(modulus)
        circuit = controlled_ua_circuit(modulus, multiplier)
        engine = SimulationEngine()
        initial = engine.package.basis_state(
            layout.num_qubits, 3 << layout.x_register[0])
        result = engine.simulate(circuit, initial_state=initial)
        assert result.probability(3 << layout.x_register[0]) == \
            pytest.approx(1.0, abs=1e-9)


class TestOrderFinderValidation:
    def test_non_coprime_base_rejected(self):
        with pytest.raises(ValueError):
            ShorOrderFinder(15, 5)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            ShorOrderFinder(2, 1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ShorOrderFinder(15, 7, mode="quantum")


class TestConstructMode:
    @pytest.mark.parametrize("modulus,base", [(15, 7), (15, 2), (21, 2),
                                              (33, 5)])
    def test_recovers_true_order(self, modulus, base):
        true_order = multiplicative_order(base, modulus)
        # Order finding is probabilistic; a handful of seeds must contain a
        # successful run.
        for seed in range(6):
            result = ShorOrderFinder(modulus, base, mode="construct",
                                     seed=seed).run()
            if result.order == true_order:
                return
        pytest.fail(f"order {true_order} never recovered for "
                    f"{base} mod {modulus}")

    def test_measured_phase_is_near_multiple_of_1_over_r(self):
        result = ShorOrderFinder(15, 7, mode="construct", seed=1).run()
        phase = result.measured_phase
        nearest = round(phase * 4) / 4  # r = 4
        assert abs(phase - nearest) < 1 / 32

    def test_uses_n_plus_one_qubits(self):
        result = ShorOrderFinder(15, 7, mode="construct", seed=0).run()
        assert result.statistics.num_qubits == 5  # n=4 work + 1 control

    def test_direct_constructions_counted_and_reused(self):
        result = ShorOrderFinder(15, 7, mode="construct", seed=0).run()
        stats = result.statistics
        # a^(2^i) mod 15 cycles quickly: few distinct oracles, many reuses
        assert 0 < stats.direct_constructions <= 4
        assert stats.direct_constructions + stats.reused_block_applications \
            == result.precision_bits

    def test_phase_bits_length(self):
        result = ShorOrderFinder(15, 7, mode="construct", seed=0).run()
        assert len(result.phase_bits) == 8
        assert set(result.phase_bits) <= {0, 1}


class TestGatesMode:
    def test_agrees_with_construct_mode(self):
        """Same seed -> same measured bits: the two realisations implement
        the same quantum process."""
        gates = ShorOrderFinder(15, 7, mode="gates",
                                strategy=SequentialStrategy(), seed=5).run()
        construct = ShorOrderFinder(15, 7, mode="construct", seed=5).run()
        assert gates.phase_bits == construct.phase_bits
        assert gates.measured_value == construct.measured_value

    def test_combining_strategy_gives_same_bits(self):
        sequential = ShorOrderFinder(15, 7, mode="gates",
                                     strategy=SequentialStrategy(),
                                     seed=9).run()
        combined = ShorOrderFinder(15, 7, mode="gates",
                                   strategy=KOperationsStrategy(8),
                                   seed=9).run()
        assert sequential.phase_bits == combined.phase_bits

    def test_statistics_reflect_gate_level_cost(self):
        result = ShorOrderFinder(15, 7, mode="gates",
                                 strategy=SequentialStrategy(), seed=1).run()
        stats = result.statistics
        assert stats.operations_applied > 1000   # thousands of elementary ops
        assert stats.matrix_vector_mults >= stats.operations_applied

    def test_construct_orders_of_magnitude_cheaper(self):
        """The Table II claim, in machine-independent multiplication counts."""
        gates = ShorOrderFinder(15, 7, mode="gates",
                                strategy=SequentialStrategy(), seed=2).run()
        construct = ShorOrderFinder(15, 7, mode="construct", seed=2).run()
        assert construct.statistics.matrix_vector_mults * 100 \
            < gates.statistics.matrix_vector_mults


class TestFactor:
    def test_factor_semiprime_construct(self):
        outcome = factor(15, mode="construct", seed=3)
        assert outcome.succeeded
        assert sorted(outcome.factors) == [3, 5]

    def test_factor_21(self):
        outcome = factor(21, mode="construct", seed=1)
        assert sorted(outcome.factors) == [3, 7]

    def test_even_number_shortcut(self):
        outcome = factor(24)
        assert outcome.classical_shortcut == "even"
        assert outcome.factors == (2, 12)
        assert outcome.attempts == []

    def test_perfect_power_shortcut(self):
        outcome = factor(27)
        assert "perfect power" in outcome.classical_shortcut
        assert outcome.factors[0] * outcome.factors[1] == 27

    def test_square_shortcut(self):
        outcome = factor(49)
        assert outcome.factors == (7, 7)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            factor(3)

    def test_attempts_recorded(self):
        outcome = factor(15, mode="construct", seed=3)
        assert len(outcome.attempts) >= 1
        assert all(a.modulus == 15 for a in outcome.attempts)


class TestUnitaryPhaseEstimation:
    def test_distribution_is_normalised(self):
        from repro.algorithms import shor_phase_estimation_distribution
        distribution = shor_phase_estimation_distribution(15, 7)
        assert sum(distribution) == pytest.approx(1.0, abs=1e-9)

    def test_peaks_at_multiples_of_2t_over_r(self):
        from repro.algorithms import shor_phase_estimation_distribution
        distribution = shor_phase_estimation_distribution(15, 7)  # r = 4
        size = len(distribution)
        for y, probability in enumerate(distribution):
            if y % (size // 4) == 0:
                assert probability == pytest.approx(0.25, abs=1e-9)
            else:
                assert probability == pytest.approx(0.0, abs=1e-9)

    def test_non_power_of_two_order_spreads(self):
        from repro.algorithms import shor_phase_estimation_distribution
        # ord(2 mod 21) = 6 does not divide 2^t: peaks are smeared but the
        # six dominant outcomes sit near multiples of 2^t / 6
        distribution = shor_phase_estimation_distribution(21, 2,
                                                          precision_bits=7)
        size = len(distribution)
        dominant = sorted(range(size), key=distribution.__getitem__)[-6:]
        for y in dominant:
            nearest = round(6 * y / size) * size / 6
            assert abs(y - nearest) <= 1.5

    def test_matches_semiclassical_statistics(self):
        """Semiclassical measured values are draws from the QPE
        distribution: every observed value must have positive ideal mass."""
        from repro.algorithms import shor_phase_estimation_distribution
        distribution = shor_phase_estimation_distribution(15, 7)
        for seed in range(5):
            result = ShorOrderFinder(15, 7, mode="construct",
                                     seed=seed).run()
            assert distribution[result.measured_value] > 1e-12

    def test_invalid_inputs(self):
        from repro.algorithms import shor_phase_estimation_distribution
        with pytest.raises(ValueError):
            shor_phase_estimation_distribution(15, 5)  # gcd(5,15) != 1
        with pytest.raises(ValueError):
            shor_phase_estimation_distribution(15, 7, precision_bits=0)


class TestControlledUnitaryDD:
    def test_control_applies_unitary(self):
        from repro.dd import (Package, build_permutation_dd,
                              controlled_unitary_dd, matrix_to_numpy)
        import numpy as np
        package = Package()
        perm = build_permutation_dd(package, [1, 0, 2, 3], 2)
        controlled = controlled_unitary_dd(package, perm, 4, control=3)
        dense = matrix_to_numpy(controlled, 4)
        # control off: identity on the lower 8 states
        assert np.allclose(dense[:8, :8], np.eye(8))
        # control on: permutation on qubits 0-1, identity on qubit 2
        block = dense[8:, 8:]
        expected = np.kron(np.eye(2), matrix_to_numpy(perm, 2))
        assert np.allclose(block, expected)

    def test_control_below_unitary_rejected(self):
        from repro.dd import (Package, build_permutation_dd,
                              controlled_unitary_dd)
        package = Package()
        perm = build_permutation_dd(package, [1, 0], 1)
        with pytest.raises(ValueError):
            controlled_unitary_dd(package, perm, 3, control=0)

    def test_zero_matrix_rejected(self):
        from repro.dd import Package, controlled_unitary_dd
        package = Package()
        with pytest.raises(ValueError):
            controlled_unitary_dd(package, package.zero, 3, control=2)
