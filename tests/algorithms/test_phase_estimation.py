"""Quantum phase estimation against its closed-form distribution."""

import numpy as np
import pytest

from repro.algorithms import (ideal_outcome_distribution,
                              phase_estimation_circuit)
from repro.simulation import (KOperationsStrategy, SequentialStrategy,
                              SimulationEngine)


class TestExactPhases:
    @pytest.mark.parametrize("numerator,bits", [(1, 3), (3, 3), (5, 4),
                                                (0, 3), (7, 3)])
    def test_exact_phase_is_deterministic(self, numerator, bits):
        theta = numerator / (1 << bits)
        instance = phase_estimation_circuit(theta, bits)
        result = SimulationEngine().simulate(instance.circuit)
        # eigen qubit is |1>, counting register reads the numerator exactly
        outcome = numerator | (1 << bits)
        assert result.probability(outcome) == pytest.approx(1.0, abs=1e-9)
        assert instance.estimate_from_outcome(outcome) == pytest.approx(theta)

    def test_phase_wraps_modulo_one(self):
        instance = phase_estimation_circuit(1.25, 2)
        assert instance.theta == pytest.approx(0.25)


class TestInexactPhases:
    def test_distribution_matches_closed_form(self):
        theta, bits = 0.3, 4
        instance = phase_estimation_circuit(theta, bits)
        result = SimulationEngine().simulate(instance.circuit)
        expected = ideal_outcome_distribution(theta, bits)
        size = 1 << bits
        eigen_mask = 1 << bits
        measured = [result.probability(y | eigen_mask) for y in range(size)]
        assert np.allclose(measured, expected, atol=1e-9)

    def test_peak_at_best_outcome(self):
        theta, bits = 0.3, 5
        instance = phase_estimation_circuit(theta, bits)
        result = SimulationEngine().simulate(instance.circuit)
        eigen_mask = 1 << bits
        probabilities = [result.probability(y | eigen_mask)
                         for y in range(1 << bits)]
        assert int(np.argmax(probabilities)) == instance.best_outcome()

    def test_peak_probability_bound(self):
        # ideal QPE peaks at >= 4/pi^2 ~ 0.405 for any theta
        theta, bits = 0.123, 4
        distribution = ideal_outcome_distribution(theta, bits)
        assert max(distribution) > 4 / np.pi ** 2


class TestHarness:
    def test_strategies_agree(self):
        instance = phase_estimation_circuit(0.37, 4)
        a = SimulationEngine().simulate(instance.circuit,
                                        SequentialStrategy())
        b = SimulationEngine().simulate(instance.circuit,
                                        KOperationsStrategy(5))
        pa = [a.probability(i) for i in range(1 << 5)]
        pb = [b.probability(i) for i in range(1 << 5)]
        assert np.allclose(pa, pb, atol=1e-9)

    def test_invalid_counting_bits(self):
        with pytest.raises(ValueError):
            phase_estimation_circuit(0.5, 0)

    def test_distribution_sums_to_one(self):
        assert sum(ideal_outcome_distribution(0.77, 4)) == pytest.approx(1.0)
