"""Classical number theory behind Shor's algorithm."""

from fractions import Fraction
from random import Random

import pytest

from repro.algorithms import (continued_fraction_convergents,
                              factors_from_order, is_probable_prime,
                              modular_inverse, multiplicative_order,
                              phase_to_order, random_shor_base)


class TestModularInverse:
    @pytest.mark.parametrize("a,n", [(3, 7), (7, 15), (5, 21), (17, 55)])
    def test_inverse_property(self, a, n):
        assert (a * modular_inverse(a, n)) % n == 1

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            modular_inverse(6, 15)


class TestMultiplicativeOrder:
    @pytest.mark.parametrize("a,n,expected", [
        (7, 15, 4), (2, 15, 4), (4, 15, 2), (2, 21, 6), (5, 33, 10),
        (17, 55, 20), (39, 77, 30),
    ])
    def test_known_orders(self, a, n, expected):
        assert multiplicative_order(a, n) == expected

    def test_order_divides_totient_property(self):
        n = 35  # totient 24
        for a in (2, 3, 4, 6, 8):
            order = multiplicative_order(a, n)
            assert pow(a, order, n) == 1
            assert 24 % order == 0

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            multiplicative_order(5, 15)


class TestContinuedFractions:
    def test_convergents_of_known_fraction(self):
        convergents = list(continued_fraction_convergents(415, 93))
        # 415/93 = [4; 2, 6, 7]
        assert convergents == [Fraction(4), Fraction(9, 2),
                               Fraction(58, 13), Fraction(415, 93)]

    def test_final_convergent_is_exact(self):
        convergents = list(continued_fraction_convergents(64, 256))
        assert convergents[-1] == Fraction(64, 256)

    def test_zero_numerator(self):
        assert list(continued_fraction_convergents(0, 8)) == [Fraction(0)]

    def test_invalid_denominator(self):
        with pytest.raises(ValueError):
            list(continued_fraction_convergents(1, 0))


class TestPhaseToOrder:
    def test_exact_phase_recovers_order(self):
        # y/2^8 = 64/256 = 1/4 -> order 4 (N=15, a=7)
        assert phase_to_order(64, 8, 15, 7) == 4

    def test_shared_factor_phase_recovers_order(self):
        # s/r = 2/4 = 1/2: denominator 2, but the order is 4 -> multiples
        assert phase_to_order(128, 8, 15, 7) == 4

    def test_noisy_phase_recovers_order(self):
        # close to 1/3 for an order-6 case: 85/256 ~ 1/3
        assert phase_to_order(85, 8, 21, 2) in (3, 6)

    def test_zero_phase_gives_none(self):
        assert phase_to_order(0, 8, 15, 7) is None

    def test_garbage_phase_gives_none(self):
        # 1/256 has no convergent related to ord(17 mod 55) = 20
        assert phase_to_order(1, 8, 55, 17) is None

    def test_small_orders_recovered_even_from_poor_phases(self):
        # With tiny orders the multiple search rescues almost any phase --
        # a documented behaviour, not an accident.
        assert phase_to_order(1, 4, 15, 7) == 4


class TestFactorsFromOrder:
    def test_successful_case(self):
        assert factors_from_order(7, 4, 15) in ((3, 5), (5, 3))

    def test_odd_order_fails(self):
        assert factors_from_order(4, 3, 21) is None  # ord(4 mod 21) = 3

    def test_unlucky_half_power(self):
        # a^(r/2) = -1 mod N gives trivial factors
        assert factors_from_order(14, 2, 15) is None  # 14 = -1 mod 15

    def test_factors_multiply_back(self):
        factors = factors_from_order(2, 6, 21)
        assert factors is not None
        assert factors[0] * factors[1] == 21


class TestPrimality:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 11, 101, 1009, 7919, 104729])
    def test_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", [0, 1, 4, 9, 15, 21, 1001, 104730,
                                   341, 561, 1729])  # incl. Carmichaels
    def test_composites(self, c):
        assert not is_probable_prime(c)


class TestRandomBase:
    def test_base_is_coprime_and_in_range(self):
        rng = Random(0)
        for _ in range(50):
            a = random_shor_base(21, rng)
            assert 2 <= a < 21
            import math
            assert math.gcd(a, 21) == 1

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            random_shor_base(3, Random(0))
