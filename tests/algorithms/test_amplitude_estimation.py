"""Quantum amplitude estimation and the controlled-circuit transformer."""

import math

import numpy as np
import pytest

from repro.algorithms import (amplitude_estimation_circuit,
                              controlled_circuit,
                              estimate_from_distribution)
from repro.baseline import simulate_statevector
from repro.circuit import QuantumCircuit
from repro.simulation import RepeatingBlockStrategy, SimulationEngine


class TestControlledCircuit:
    def test_every_operation_gains_the_control(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).t(1)
        controlled = controlled_circuit(qc, control=2)
        for op in controlled.operations():
            assert (2, 1) in op.controls

    def test_control_off_is_identity(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).sx(1)
        controlled = controlled_circuit(qc, control=2)
        out = simulate_statevector(controlled, 0b01)
        assert abs(out[0b01]) == pytest.approx(1.0)

    def test_control_on_applies_circuit(self):
        qc = QuantumCircuit(2)
        qc.x(0).cx(0, 1)
        controlled = controlled_circuit(qc, control=2)
        out = simulate_statevector(controlled, 0b100)
        assert abs(out[0b111]) == pytest.approx(1.0)

    def test_matches_dense_controlled_unitary(self):
        qc = QuantumCircuit(2)
        qc.h(0).cp(0.7, 0, 1).sx(1)
        controlled = controlled_circuit(qc, control=2)
        u = np.zeros((4, 4), dtype=complex)
        for column in range(4):
            u[:, column] = simulate_statevector(qc, column)
        for column in range(4):
            on = simulate_statevector(controlled, column | 0b100)
            assert np.allclose(on[4:], u[:, column], atol=1e-9)

    def test_blocks_preserved(self):
        qc = QuantumCircuit(1)
        body = QuantumCircuit(1)
        body.x(0)
        qc.add_repeated_block(body, 3)
        controlled = controlled_circuit(qc, control=1)
        from repro.circuit import RepeatedBlock
        assert isinstance(controlled.instructions[0], RepeatedBlock)
        out = simulate_statevector(controlled, 0b10)
        assert abs(out[0b11]) == pytest.approx(1.0)  # 3 X applications

    def test_colliding_control_rejected(self):
        qc = QuantumCircuit(3)
        with pytest.raises(ValueError):
            controlled_circuit(qc, control=1)


class TestAmplitudeEstimation:
    @pytest.mark.parametrize("n,marked,counting", [
        (3, 0, 4), (4, 5, 5), (4, (3, 7), 5), (5, (1, 2, 3, 4), 5),
    ])
    def test_estimate_within_grid_resolution(self, n, marked, counting):
        instance = amplitude_estimation_circuit(n, marked, counting)
        result = SimulationEngine().simulate(instance.circuit,
                                             RepeatingBlockStrategy())
        estimate = estimate_from_distribution(instance, result)
        # QPE grid resolution bounds the phase error by 1/2^m; propagate
        # through a = cos^2(pi phase): |da| <= pi / 2^m
        tolerance = math.pi / (1 << counting) + 1e-9
        assert abs(estimate - instance.true_probability) <= tolerance

    def test_more_counting_bits_tighten_the_estimate(self):
        coarse = amplitude_estimation_circuit(4, 5, 3)
        fine = amplitude_estimation_circuit(4, 5, 6)
        engine = SimulationEngine()
        coarse_est = estimate_from_distribution(
            coarse, engine.simulate(coarse.circuit,
                                    RepeatingBlockStrategy()))
        fine_est = estimate_from_distribution(
            fine, SimulationEngine().simulate(fine.circuit,
                                              RepeatingBlockStrategy()))
        true = coarse.true_probability
        assert abs(fine_est - true) <= abs(coarse_est - true) + 1e-9

    def test_outcome_conversion_symmetry(self):
        instance = amplitude_estimation_circuit(3, 1, 4)
        # outcomes y and 2^m - y estimate the same amplitude
        for y in range(1, 8):
            assert instance.probability_from_outcome(y) == pytest.approx(
                instance.probability_from_outcome(16 - y))

    def test_invalid_counting_rejected(self):
        with pytest.raises(ValueError):
            amplitude_estimation_circuit(3, 1, 0)
