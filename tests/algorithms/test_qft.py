"""QFT circuits against the DFT matrix and the Fourier-phase convention."""

import cmath

import numpy as np
import pytest

from repro.algorithms import append_iqft, append_qft, qft_circuit
from repro.baseline import simulate_statevector
from repro.circuit import QuantumCircuit


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    size = 1 << circuit.num_qubits
    unitary = np.zeros((size, size), dtype=complex)
    for column in range(size):
        unitary[:, column] = simulate_statevector(circuit, column)
    return unitary


def dft_matrix(num_qubits: int) -> np.ndarray:
    size = 1 << num_qubits
    omega = cmath.exp(2j * cmath.pi / size)
    return np.array([[omega ** (i * j) for j in range(size)]
                     for i in range(size)]) / np.sqrt(size)


class TestQftCircuit:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_qft_equals_dft(self, n):
        assert np.allclose(circuit_unitary(qft_circuit(n)), dft_matrix(n))

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_inverse_qft(self, n):
        unitary = circuit_unitary(qft_circuit(n, inverse=True))
        assert np.allclose(unitary, dft_matrix(n).conj().T)

    def test_qft_then_inverse_is_identity(self):
        qc = qft_circuit(3)
        qc.compose(qft_circuit(3, inverse=True))
        assert np.allclose(circuit_unitary(qc), np.eye(8))

    def test_gate_count_is_quadratic(self):
        n = 5
        qc = qft_circuit(n, do_swaps=False)
        assert qc.num_operations() == n + n * (n - 1) // 2

    def test_without_swaps_differs_by_bit_reversal(self):
        n = 3
        unitary = circuit_unitary(qft_circuit(n, do_swaps=False))
        reversal = np.zeros((8, 8))
        for i in range(8):
            j = int(f"{i:03b}"[::-1], 2)
            reversal[j, i] = 1
        assert np.allclose(reversal @ unitary, dft_matrix(n))


class TestFourierPhaseConvention:
    """The no-swap QFT must produce the phases Draper arithmetic assumes."""

    @pytest.mark.parametrize("value", [0, 1, 5, 7])
    def test_qubit_j_carries_value_over_2_to_j_plus_1(self, value):
        n = 3
        qc = QuantumCircuit(n)
        append_qft(qc, list(range(n)))
        state = simulate_statevector(qc, value)
        # expected: product state, qubit j = (|0> + e^{2 pi i value/2^{j+1}} |1>)/sqrt2
        expected = np.array([1.0 + 0j])
        for j in reversed(range(n)):  # most significant qubit first
            phase = cmath.exp(2j * cmath.pi * value / (1 << (j + 1)))
            expected = np.kron(expected, np.array([1, phase]) / np.sqrt(2))
        assert np.allclose(state, expected)

    def test_append_iqft_undoes_append_qft(self):
        qc = QuantumCircuit(4)
        qubits = [1, 2, 3]  # sub-register, not starting at 0
        append_qft(qc, qubits)
        append_iqft(qc, qubits)
        assert np.allclose(circuit_unitary(qc), np.eye(16))

    def test_swapped_variants_are_inverses(self):
        qc = QuantumCircuit(3)
        append_qft(qc, [0, 1, 2], do_swaps=True)
        append_iqft(qc, [0, 1, 2], do_swaps=True)
        assert np.allclose(circuit_unitary(qc), np.eye(8))
