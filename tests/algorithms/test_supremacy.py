"""Supremacy-style random circuit generator: rules and determinism."""

import numpy as np
import pytest

from repro.algorithms import cz_layer_pairs, supremacy_circuit
from repro.baseline import simulate_statevector
from repro.simulation import KOperationsStrategy, SequentialStrategy, \
    SimulationEngine
from repro.dd import vector_to_numpy


class TestCzPatterns:
    def test_pairs_are_grid_neighbours(self):
        rows, cols = 4, 5
        for configuration in range(8):
            for a, b in cz_layer_pairs(rows, cols, configuration):
                ra, ca = divmod(a, cols)
                rb, cb = divmod(b, cols)
                assert abs(ra - rb) + abs(ca - cb) == 1

    def test_pairs_are_disjoint_within_layer(self):
        for configuration in range(8):
            pairs = cz_layer_pairs(4, 4, configuration)
            qubits = [q for pair in pairs for q in pair]
            assert len(qubits) == len(set(qubits))

    def test_eight_configurations_cover_every_edge(self):
        rows, cols = 4, 4
        covered = set()
        for configuration in range(8):
            covered.update(frozenset(p)
                           for p in cz_layer_pairs(rows, cols, configuration))
        horizontal = sum(1 for r in range(rows) for c in range(cols - 1))
        vertical = sum(1 for r in range(rows - 1) for c in range(cols))
        assert len(covered) == horizontal + vertical

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            cz_layer_pairs(3, 3, 8)


class TestGenerator:
    def test_first_cycle_is_hadamards(self):
        instance = supremacy_circuit(3, 3, 5, seed=0)
        ops = list(instance.circuit.operations())
        assert all(op.gate == "h" for op in ops[:9])

    def test_deterministic_for_same_seed(self):
        a = supremacy_circuit(3, 4, 8, seed=42).circuit
        b = supremacy_circuit(3, 4, 8, seed=42).circuit
        assert a == b

    def test_different_seeds_differ(self):
        a = supremacy_circuit(3, 4, 8, seed=1).circuit
        b = supremacy_circuit(3, 4, 8, seed=2).circuit
        assert a != b

    def test_single_qubit_gates_from_allowed_set(self):
        instance = supremacy_circuit(3, 3, 10, seed=7)
        num = instance.num_qubits
        singles = [op for op in instance.circuit.operations()
                   if not op.controls][num:]  # skip the initial H layer
        assert singles, "expected some single-qubit gates"
        assert {op.gate for op in singles} <= {"sx", "sy", "t"}

    def test_first_single_qubit_gate_is_t(self):
        instance = supremacy_circuit(3, 3, 10, seed=7)
        first_gate = {}
        for op in list(instance.circuit.operations())[9:]:
            if not op.controls and op.target not in first_gate:
                first_gate[op.target] = op.gate
        assert set(first_gate.values()) == {"t"}

    def test_no_immediate_gate_repetition_per_qubit(self):
        instance = supremacy_circuit(4, 4, 12, seed=3)
        last = {}
        for op in list(instance.circuit.operations())[16:]:
            if op.controls:
                continue
            assert last.get(op.target) != op.gate
            last[op.target] = op.gate

    def test_single_qubit_gate_only_after_cz(self):
        instance = supremacy_circuit(3, 3, 8, seed=5)
        in_cz_prev: set = set()
        cycle_singles: list = []
        # reconstruct cycles: H layer, then [singles, czs] per cycle
        ops = list(instance.circuit.operations())[9:]
        # walk ops; singles come before the czs of each cycle
        current_singles = set()
        for op in ops:
            if op.controls:
                continue
            current_singles.add(op.target)
        # every qubit that got a single-qubit gate must have seen a CZ before
        all_cz_qubits = {q for op in ops if op.controls
                         for q in (op.target, op.controls[0][0])}
        assert current_singles <= all_cz_qubits

    def test_name_follows_paper_scheme(self):
        instance = supremacy_circuit(4, 4, 12, seed=0)
        assert instance.name == "supremacy_12_16"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            supremacy_circuit(0, 3, 5)
        with pytest.raises(ValueError):
            supremacy_circuit(3, 3, 0)


class TestSimulation:
    def test_dd_matches_dense(self):
        instance = supremacy_circuit(2, 3, 8, seed=11)
        result = SimulationEngine().simulate(instance.circuit)
        assert np.allclose(
            vector_to_numpy(result.state, instance.num_qubits),
            simulate_statevector(instance.circuit), atol=1e-8)

    def test_state_dd_grows_large(self):
        # the regime of the paper's Example 3: big state DDs, tiny gate DDs
        instance = supremacy_circuit(3, 3, 10, seed=1)
        stats = SimulationEngine().simulate(instance.circuit).statistics
        assert stats.peak_state_nodes > 2 * instance.num_qubits

    def test_combining_reduces_recursive_work(self):
        # The paper's Fig. 8 claim is about its cost model: explicit gate
        # DDs, one MxV per gate, identity padding traversed.  Pin paper
        # mode -- the default engine's local-apply fast path deliberately
        # sidesteps that cost model.
        from repro.dd.package import Package
        instance = supremacy_circuit(3, 3, 10, seed=1)

        def paper_engine():
            return SimulationEngine(package=Package(identity_shortcut=False),
                                    use_local_apply=False)

        sequential = paper_engine().simulate(
            instance.circuit, SequentialStrategy()).statistics
        combined = paper_engine().simulate(
            instance.circuit, KOperationsStrategy(8)).statistics
        assert combined.counters.total_recursions() \
            < sequential.counters.total_recursions()
