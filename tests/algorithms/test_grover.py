"""Grover benchmark generator: ground truth and strategy interaction."""

import math
from random import Random

import numpy as np
import pytest

from repro.algorithms import grover_circuit, optimal_iterations, \
    success_probability
from repro.baseline import simulate_statevector
from repro.circuit import RepeatedBlock
from repro.dd import sample_counts, vector_to_numpy
from repro.simulation import (RepeatingBlockStrategy, SequentialStrategy,
                              SimulationEngine)


class TestClosedForm:
    def test_optimal_iterations_scaling(self):
        assert optimal_iterations(4) == 3
        assert optimal_iterations(8) == 12
        assert optimal_iterations(10) == 25

    def test_success_probability_at_optimum_is_high(self):
        # small n: ~0.96; converges towards 1 with growing n
        for n in (4, 6, 8, 10):
            assert success_probability(n, optimal_iterations(n)) > 0.95
        assert success_probability(12, optimal_iterations(12)) > 0.999

    def test_success_probability_zero_iterations(self):
        assert success_probability(4, 0) == pytest.approx(1 / 16)

    def test_overrotation_decreases_probability(self):
        n = 6
        optimum = optimal_iterations(n)
        assert success_probability(n, 2 * optimum) \
            < success_probability(n, optimum)


class TestCircuitStructure:
    def test_phase_oracle_uses_n_qubits(self):
        instance = grover_circuit(5, 3)
        assert instance.circuit.num_qubits == 5

    def test_ancilla_oracle_uses_extra_qubit(self):
        instance = grover_circuit(5, 3, oracle_style="ancilla")
        assert instance.circuit.num_qubits == 6

    def test_iteration_is_repeated_block(self):
        instance = grover_circuit(4, 7)
        blocks = [i for i in instance.circuit.instructions
                  if isinstance(i, RepeatedBlock)]
        assert len(blocks) == 1
        assert blocks[0].repetitions == instance.iterations

    def test_unrolled_variant_has_no_blocks(self):
        instance = grover_circuit(4, 7, mark_repetition=False)
        assert not any(isinstance(i, RepeatedBlock)
                       for i in instance.circuit.instructions)

    def test_both_variants_simulate_identically(self):
        blocked = grover_circuit(4, 5).circuit
        unrolled = grover_circuit(4, 5, mark_repetition=False).circuit
        assert np.allclose(simulate_statevector(blocked),
                           simulate_statevector(unrolled))

    def test_invalid_marked_rejected(self):
        with pytest.raises(ValueError):
            grover_circuit(4, 16)

    def test_too_few_qubits_rejected(self):
        with pytest.raises(ValueError):
            grover_circuit(1, 0)

    def test_unknown_oracle_style_rejected(self):
        with pytest.raises(ValueError):
            grover_circuit(4, 0, oracle_style="magic")

    def test_name_follows_paper_scheme(self):
        assert grover_circuit(9, 1).name == "grover_9"


class TestSimulatedSuccess:
    @pytest.mark.parametrize("n,marked", [(4, 0), (4, 13), (6, 42), (8, 200)])
    def test_phase_oracle_matches_closed_form(self, n, marked):
        instance = grover_circuit(n, marked)
        result = SimulationEngine().simulate(instance.circuit)
        measured = instance.measured_success_probability(result)
        assert measured == pytest.approx(
            instance.expected_success_probability(), abs=1e-9)

    def test_ancilla_oracle_matches_closed_form(self):
        instance = grover_circuit(5, 17, oracle_style="ancilla")
        result = SimulationEngine().simulate(instance.circuit)
        assert instance.measured_success_probability(result) == \
            pytest.approx(instance.expected_success_probability(), abs=1e-9)

    def test_explicit_iteration_count(self):
        instance = grover_circuit(5, 9, iterations=2)
        result = SimulationEngine().simulate(instance.circuit)
        assert instance.measured_success_probability(result) == \
            pytest.approx(success_probability(5, 2), abs=1e-9)

    def test_sampling_finds_marked_element(self):
        instance = grover_circuit(6, 33)
        result = SimulationEngine().simulate(instance.circuit)
        counts = sample_counts(result.package, result.state, 100, Random(4))
        assert counts.get(33, 0) > 95

    def test_dd_repeating_gives_same_state(self):
        instance = grover_circuit(7, 100)
        sequential = SimulationEngine().simulate(instance.circuit,
                                                 SequentialStrategy())
        repeating = SimulationEngine().simulate(instance.circuit,
                                                RepeatingBlockStrategy())
        n = instance.circuit.num_qubits
        assert np.allclose(vector_to_numpy(sequential.state, n),
                           vector_to_numpy(repeating.state, n), atol=1e-8)

    def test_dd_repeating_needs_one_combine_pass(self):
        instance = grover_circuit(8, 11)
        stats = SimulationEngine().simulate(
            instance.circuit, RepeatingBlockStrategy()).statistics
        body_size = sum(1 for _ in instance.circuit.instructions[-1]
                        .operations())
        # exactly body_size-1 combinations, ever; one MxV per iteration
        assert stats.matrix_matrix_mults == body_size - 1
        assert stats.matrix_vector_mults == instance.iterations + \
            (instance.circuit.num_operations()
             - body_size * instance.iterations)

    def test_grover_state_dd_stays_compact(self):
        # Grover states have only a handful of distinct amplitudes: their
        # DDs stay near-linear, which is why sota is already fast and the
        # remaining win comes from re-use (Table I).
        instance = grover_circuit(10, 123)
        stats = SimulationEngine().simulate(instance.circuit).statistics
        assert stats.peak_state_nodes < 4 * 10


class TestMultipleMarkedElements:
    def test_success_probability_formula(self):
        # m marked: theta = asin(sqrt(m/N))
        assert success_probability(4, 0, num_marked=4) == pytest.approx(0.25)

    def test_optimal_iterations_shrink_with_more_solutions(self):
        assert optimal_iterations(10, 4) < optimal_iterations(10, 1)

    def test_simulated_multi_marked_matches_closed_form(self):
        marked = (3, 12, 40)
        instance = grover_circuit(6, marked)
        result = SimulationEngine().simulate(instance.circuit)
        assert instance.measured_success_probability(result) == \
            pytest.approx(instance.expected_success_probability(), abs=1e-9)

    def test_marked_elements_equally_likely(self):
        marked = (5, 9)
        instance = grover_circuit(5, marked)
        result = SimulationEngine().simulate(instance.circuit)
        assert result.probability(5) == pytest.approx(result.probability(9),
                                                      abs=1e-9)

    def test_duplicates_deduplicated(self):
        instance = grover_circuit(4, (7, 7, 7))
        assert instance.marked == (7,)

    def test_whole_database_rejected(self):
        with pytest.raises(ValueError):
            grover_circuit(2, (0, 1, 2, 3))

    def test_empty_marked_rejected(self):
        with pytest.raises(ValueError):
            grover_circuit(3, ())
