"""QAOA MaxCut circuits and cost evaluation."""

import math

import numpy as np
import pytest

from repro.algorithms import (classical_maxcut_optimum, grid_graph,
                              maxcut_expectation, maxcut_value,
                              optimise_qaoa_angles, qaoa_maxcut_circuit,
                              ring_graph)
from repro.baseline import simulate_statevector
from repro.dd import vector_to_numpy
from repro.simulation import KOperationsStrategy, SimulationEngine


class TestGraphs:
    def test_ring_edges(self):
        assert ring_graph(4) == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_grid_edge_count(self):
        edges = grid_graph(3, 4)
        assert len(edges) == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_maxcut_value(self):
        edges = [(0, 1), (1, 2)]
        assert maxcut_value(edges, 0b010) == 2
        assert maxcut_value(edges, 0b000) == 0

    def test_classical_optimum_ring(self):
        assert classical_maxcut_optimum(ring_graph(4), 4) == 4
        assert classical_maxcut_optimum(ring_graph(5), 5) == 4

    def test_classical_optimum_bipartite_grid(self):
        edges = grid_graph(2, 3)
        assert classical_maxcut_optimum(edges, 6) == len(edges)


class TestCircuit:
    def test_gate_structure(self):
        instance = qaoa_maxcut_circuit(ring_graph(4), 4, [0.3], [0.2])
        counts = instance.circuit.count_gates()
        assert counts["h"] == 4
        assert counts["x"] == 2 * 4      # CX pairs around each RZ
        assert counts["rz"] == 4
        assert counts["rx"] == 4

    def test_matches_dense_simulation(self):
        instance = qaoa_maxcut_circuit(ring_graph(4), 4, [0.5, 0.2],
                                       [0.3, 0.7])
        result = SimulationEngine().simulate(instance.circuit)
        assert np.allclose(vector_to_numpy(result.state, 4),
                           simulate_statevector(instance.circuit),
                           atol=1e-9)

    def test_mismatched_angles_rejected(self):
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(ring_graph(3), 3, [0.1], [0.1, 0.2])

    def test_no_layers_rejected(self):
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(ring_graph(3), 3, [], [])

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit([(0, 0)], 2, [0.1], [0.1])
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit([(0, 5)], 2, [0.1], [0.1])


class TestExpectation:
    def test_zero_angles_give_half_edges(self):
        # gamma=beta=0 leaves the uniform superposition: <cut> = |E|/2
        edges = ring_graph(4)
        instance = qaoa_maxcut_circuit(edges, 4, [1e-12], [1e-12])
        value = maxcut_expectation(instance)
        assert value == pytest.approx(len(edges) / 2, abs=1e-6)

    def test_matches_dense_expectation(self):
        edges = ring_graph(4)
        instance = qaoa_maxcut_circuit(edges, 4, [0.4], [0.6])
        dense = simulate_statevector(instance.circuit)
        expected = sum(abs(a) ** 2 * maxcut_value(edges, x)
                       for x, a in enumerate(dense))
        assert maxcut_expectation(instance) == pytest.approx(expected,
                                                             abs=1e-8)

    def test_known_p1_ring_optimum(self):
        # p=1 QAOA on the ring achieves 3/4 of the edges at the optimal
        # angles; any grid search result must respect the cut <= optimum.
        edges = ring_graph(6)
        instance, value = optimise_qaoa_angles(edges, 6, layers=1,
                                               grid_points=6)
        assert value <= classical_maxcut_optimum(edges, 6) + 1e-9
        assert value > len(edges) / 2  # beats random guessing

    def test_expectation_with_strategy(self):
        edges = grid_graph(2, 3)
        instance = qaoa_maxcut_circuit(edges, 6, [0.37], [0.62])
        plain = maxcut_expectation(instance)
        combined = maxcut_expectation(instance,
                                      strategy=KOperationsStrategy(6))
        assert plain == pytest.approx(combined, abs=1e-9)


class TestAngleSearch:
    def test_grid_search_improves_over_worst(self):
        edges = ring_graph(4)
        _, best = optimise_qaoa_angles(edges, 4, layers=1, grid_points=4)
        worst = maxcut_expectation(
            qaoa_maxcut_circuit(edges, 4, [math.pi / 2], [math.pi / 4]))
        assert best >= worst - 1e-9

    def test_invalid_layers_rejected(self):
        with pytest.raises(ValueError):
            optimise_qaoa_angles(ring_graph(3), 3, layers=0)
