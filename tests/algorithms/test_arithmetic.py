"""Beauregard arithmetic blocks on computational basis states."""

import numpy as np
import pytest

from repro.algorithms import (append_add_const, append_cmult_mod,
                              append_controlled_ua, append_phi_add_const,
                              append_phi_add_const_mod, append_iqft,
                              append_qft)
from repro.baseline import simulate_statevector
from repro.circuit import QuantumCircuit


def assert_maps_basis(circuit, initial, expected):
    out = simulate_statevector(circuit, initial)
    winner = int(np.argmax(np.abs(out)))
    assert abs(out[winner]) == pytest.approx(1.0, abs=1e-7), \
        f"output not a basis state (max {abs(out[winner])})"
    assert winner == expected, f"got {winner:b}, expected {expected:b}"


class TestPlainAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (7, 12), (15, 15)])
    def test_addition_mod_power_of_two(self, a, b):
        m = 4
        qc = QuantumCircuit(m)
        append_add_const(qc, list(range(m)), a)
        assert_maps_basis(qc, b, (a + b) % (1 << m))

    def test_subtraction_via_negative_constant(self):
        m = 4
        qc = QuantumCircuit(m)
        append_qft(qc, list(range(m)))
        append_phi_add_const(qc, list(range(m)), 5, subtract=True)
        append_iqft(qc, list(range(m)))
        assert_maps_basis(qc, 9, 4)
        assert_maps_basis(qc, 2, (2 - 5) % 16)

    def test_controlled_adder_respects_control(self):
        m = 3
        qc = QuantumCircuit(m + 1)
        append_qft(qc, list(range(m)))
        append_phi_add_const(qc, list(range(m)), 3, controls=(m,))
        append_iqft(qc, list(range(m)))
        assert_maps_basis(qc, 2, 2)                      # control off
        assert_maps_basis(qc, 2 | (1 << m), 5 | (1 << m))  # control on

    def test_adder_superposition_linearity(self):
        m = 3
        qc = QuantumCircuit(m)
        qc.h(0)  # (|0> + |1>)/sqrt2
        append_add_const(qc, list(range(m)), 3)
        out = simulate_statevector(qc, 0)
        assert abs(out[3]) == pytest.approx(2 ** -0.5, abs=1e-9)
        assert abs(out[4]) == pytest.approx(2 ** -0.5, abs=1e-9)


class TestModularAdder:
    MODULUS = 11
    BITS = 4  # modulus fits in 4 bits, register has 5

    def _circuit(self, value, controls=()):
        register = list(range(self.BITS + 1))
        num_qubits = self.BITS + 2 + len(controls)
        qc = QuantumCircuit(num_qubits)
        append_qft(qc, register)
        append_phi_add_const_mod(qc, register, value, self.MODULUS,
                                 ancilla=self.BITS + 1, controls=controls)
        append_iqft(qc, register)
        return qc

    @pytest.mark.parametrize("a", [0, 1, 6, 10])
    @pytest.mark.parametrize("b", [0, 4, 10])
    def test_modular_addition(self, a, b):
        qc = self._circuit(a)
        assert_maps_basis(qc, b, (a + b) % self.MODULUS)

    def test_ancilla_returns_to_zero(self):
        qc = self._circuit(7)
        out = simulate_statevector(qc, 9)
        winner = int(np.argmax(np.abs(out)))
        assert (winner >> (self.BITS + 1)) & 1 == 0

    def test_value_reduced_mod_n(self):
        qc = self._circuit(self.MODULUS + 4)  # same as adding 4
        assert_maps_basis(qc, 3, 7)

    def test_doubly_controlled(self):
        controls = (self.BITS + 2, self.BITS + 3)
        qc = self._circuit(5, controls=controls)
        both = (1 << controls[0]) | (1 << controls[1])
        assert_maps_basis(qc, 4 | both, 9 | both)       # both controls on
        assert_maps_basis(qc, 4 | (1 << controls[0]), 4 | (1 << controls[0]))

    def test_register_too_small_rejected(self):
        qc = QuantumCircuit(6)
        with pytest.raises(ValueError):
            append_phi_add_const_mod(qc, [0, 1, 2, 3], 11, 11, ancilla=5)


class TestControlledMultiplier:
    MODULUS = 13

    def _layout(self):
        n = 4
        b_register = list(range(n + 1))
        x_register = list(range(n + 1, 2 * n + 1))
        ancilla = 2 * n + 1
        control = 2 * n + 2
        return n, b_register, x_register, ancilla, control

    def test_multiply_accumulate(self):
        n, b_reg, x_reg, anc, ctrl = self._layout()
        qc = QuantumCircuit(2 * n + 3)
        append_cmult_mod(qc, ctrl, x_reg, b_reg, 7, self.MODULUS, anc)
        for x, b in [(0, 0), (1, 0), (5, 3), (12, 12)]:
            initial = b | (x << (n + 1)) | (1 << ctrl)
            expected = ((b + 7 * x) % self.MODULUS) | (x << (n + 1)) \
                | (1 << ctrl)
            assert_maps_basis(qc, initial, expected)

    def test_control_off_is_identity(self):
        n, b_reg, x_reg, anc, ctrl = self._layout()
        qc = QuantumCircuit(2 * n + 3)
        append_cmult_mod(qc, ctrl, x_reg, b_reg, 7, self.MODULUS, anc)
        initial = 3 | (5 << (n + 1))
        assert_maps_basis(qc, initial, initial)

    def test_inverse_flag_subtracts(self):
        n, b_reg, x_reg, anc, ctrl = self._layout()
        qc = QuantumCircuit(2 * n + 3)
        append_cmult_mod(qc, ctrl, x_reg, b_reg, 7, self.MODULUS, anc)
        append_cmult_mod(qc, ctrl, x_reg, b_reg, 7, self.MODULUS, anc,
                         inverse=True)
        initial = 4 | (9 << (n + 1)) | (1 << ctrl)
        assert_maps_basis(qc, initial, initial)


class TestControlledUa:
    @pytest.mark.parametrize("modulus,multiplier", [(15, 7), (15, 2),
                                                    (13, 5), (21, 8)])
    def test_in_place_modular_multiplication(self, modulus, multiplier):
        n = modulus.bit_length()
        b_reg = list(range(n + 1))
        x_reg = list(range(n + 1, 2 * n + 1))
        anc = 2 * n + 1
        ctrl = 2 * n + 2
        qc = QuantumCircuit(2 * n + 3)
        append_controlled_ua(qc, ctrl, x_reg, b_reg, multiplier, modulus, anc)
        for x in (1, 2, modulus - 1):
            initial = (x << (n + 1)) | (1 << ctrl)
            expected = (((multiplier * x) % modulus) << (n + 1)) | (1 << ctrl)
            assert_maps_basis(qc, initial, expected)

    def test_non_coprime_multiplier_rejected(self):
        qc = QuantumCircuit(11)
        with pytest.raises(ValueError):
            append_controlled_ua(qc, 10, [5, 6, 7, 8], [0, 1, 2, 3, 4],
                                 6, 15, 9)

    def test_gate_count_documents_the_cost(self):
        """The elementary decomposition costs thousands of gates -- the cost
        DD-construct eliminates (one directly-built DD instead)."""
        modulus, multiplier = 15, 7
        n = modulus.bit_length()
        qc = QuantumCircuit(2 * n + 3)
        append_controlled_ua(qc, 2 * n + 2, list(range(n + 1, 2 * n + 1)),
                             list(range(n + 1)), multiplier, modulus,
                             2 * n + 1)
        assert qc.num_operations() > 500
