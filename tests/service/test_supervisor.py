"""The worker-pool supervisor: leases, retries, quarantine, recovery."""

import multiprocessing
import os
import time

import pytest

from repro.service.jobs import JobSpec, JobStore
from repro.service.supervisor import (Supervisor, SupervisorConfig,
                                      run_job_attempt)

# ~15 elementary ops on 3 qubits: enough boundaries for checkpoint
# cadences and op-scoped fault schedules, still fast to simulate
CIRCUIT = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
t q[2];
h q[1];
cx q[0],q[2];
x q[0];
h q[2];
cx q[1],q[0];
t q[0];
h q[1];
cx q[2],q[1];
x q[2];
h q[0];
cx q[0],q[1];
"""


def make_spec(name="job", **overrides):
    defaults = dict(name=name, qasm=CIRCUIT, strategy="sequential",
                    checkpoint_every=5)
    defaults.update(overrides)
    return JobSpec(**defaults)


def fast_config(**overrides):
    defaults = dict(max_workers=2, lease_seconds=2.0, poll_interval=0.02,
                    backoff_base=0.05, backoff_max=0.5, jitter_seconds=0.02,
                    max_wall_seconds=60.0)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "store"))


class TestHappyPath:
    def test_single_job_runs_to_done(self, store):
        record = store.submit(make_spec())
        report = Supervisor(store, fast_config()).run()
        assert report.all_done
        done = store.get(record.job_id)
        assert done.state == "done"
        assert done.attempts == 1
        assert done.result["resumed_from_op"] == 0
        assert store.completions() == {record.job_id}

    def test_result_payload_has_statistics_and_amplitudes(self, store):
        record = store.submit(make_spec(strategy="k=3"))
        Supervisor(store, fast_config()).run()
        result = store.read_result(record.job_id)
        assert result["statistics"]["operations_applied"] == 15
        assert len(result["amplitudes"]) == 8
        assert result["statistics"]["matrix_matrix_mults"] > 0

    def test_batch_of_jobs_all_complete(self, store):
        for strategy in ("sequential", "k=3", "smax=8"):
            store.submit(make_spec(name=strategy, strategy=strategy))
        report = Supervisor(store, fast_config()).run()
        assert report.all_done
        assert len(report.states) == 3


class TestRetryAndQuarantine:
    def test_first_attempt_kill_then_resume_from_checkpoint(self, store):
        record = store.submit(make_spec(fault="kill@12"))
        report = Supervisor(store, fast_config()).run()
        assert report.all_done
        assert report.retries == 1
        result = store.read_result(record.job_id)
        # checkpoint_every=5 -> periodic checkpoints after ops 5 and 10;
        # the kill at op 12 must NOT restart the job from op 0
        assert result["resumed_from_op"] == 10
        assert result["attempt"] == 2
        done = store.get(record.job_id)
        assert done.errors[0]["type"] == "WorkerDied"

    def test_budget_fault_resumes_from_failure_checkpoint(self, store):
        record = store.submit(make_spec(fault="budget@7"))
        report = Supervisor(store, fast_config()).run()
        assert report.all_done
        result = store.read_result(record.job_id)
        # the engine checkpoints at the boundary where the budget abort
        # surfaced, so the retry replays zero operations
        assert result["resumed_from_op"] == 8
        done = store.get(record.job_id)
        assert done.errors[0]["type"] == "InjectedBudgetFault"

    def test_poison_job_quarantines_with_full_error_chain(self, store):
        record = store.submit(make_spec(fault="raise"), max_attempts=3)
        report = Supervisor(store, fast_config()).run()
        assert not report.all_done
        assert report.counts() == {"quarantined": 1}
        dead = store.get(record.job_id)
        assert dead.state == "quarantined"
        assert dead.attempts == 3
        assert [e["type"] for e in dead.errors] == ["RuntimeError"] * 3
        assert [e["attempt"] for e in dead.errors] == [1, 2, 3]

    def test_backoff_grows_and_is_recorded(self, store):
        record = store.submit(make_spec(fault="raise"), max_attempts=3)
        Supervisor(store, fast_config()).run()
        notes = [entry["note"] for entry in store.get(record.job_id).history
                 if "backoff" in entry["note"]]
        assert len(notes) == 2  # two retries before the quarantine
        delays = [float(note.split("backoff ")[1].rstrip("s)"))
                  for note in notes]
        assert delays[1] > delays[0]

    def test_jitter_is_deterministic(self, store):
        sup = Supervisor(store, fast_config())
        assert sup._jitter("j0001-x", 2) == sup._jitter("j0001-x", 2)
        assert sup._jitter("j0001-x", 2) != sup._jitter("j0001-x", 3)
        assert 0 <= sup._jitter("j0001-x", 2) \
            <= sup.config.jitter_seconds

    def test_quarantined_job_does_not_block_the_batch(self, store):
        store.submit(make_spec(name="poison", fault="raise"),
                     max_attempts=2)
        good = store.submit(make_spec(name="good"))
        report = Supervisor(store, fast_config()).run()
        assert report.counts() == {"quarantined": 1, "done": 1}
        assert store.get(good.job_id).state == "done"


class TestLeaseExpiry:
    def test_stale_heartbeat_expires_the_lease(self, store):
        # 0.5s sleep per op against a 0.25s lease: the heartbeat goes
        # stale mid-sleep, the worker is killed, and the (now inert)
        # fault lets attempt 2 finish
        record = store.submit(make_spec(fault="latency=0.5"))
        config = fast_config(lease_seconds=0.25)
        report = Supervisor(store, config).run()
        assert report.all_done
        assert report.lease_expiries >= 1
        done = store.get(record.job_id)
        assert any(e["type"] == "LeaseExpired" for e in done.errors)

    def test_hang_at_start_expires_and_retries(self, store):
        record = store.submit(make_spec(fault="hang"), max_attempts=2)
        report = Supervisor(store, fast_config(lease_seconds=0.3)).run()
        # hang is a poison fault (fires every attempt): quarantined, but
        # neither attempt hung the supervisor
        assert store.get(record.job_id).state == "quarantined"
        assert report.lease_expiries == 2
        assert report.wall_seconds < 30


class TestCheckpointDamageRecovery:
    def test_corrupt_checkpoint_restarts_from_op_zero(self, store):
        record = store.submit(make_spec(fault="corrupt-checkpoint@11"))
        report = Supervisor(store, fast_config()).run()
        assert report.all_done
        result = store.read_result(record.job_id)
        assert result["resumed_from_op"] == 0  # damage detected, clean start
        assert result["attempt"] == 2
        # the damaged file was set aside for the post-mortem
        assert os.path.exists(
            store.checkpoint_path(record.job_id) + ".bad")

    def test_truncated_checkpoint_restarts_from_op_zero(self, store):
        record = store.submit(make_spec(fault="truncate-checkpoint@11"))
        report = Supervisor(store, fast_config()).run()
        assert report.all_done
        assert store.read_result(record.job_id)["resumed_from_op"] == 0


class TestRecovery:
    def test_orphaned_running_record_with_result_is_adopted(self, store):
        record = store.submit(make_spec())
        # simulate a supervisor killed between the worker publishing its
        # result and the record being marked done
        store.transition(record, "leased")
        record.lease = {"pid": None, "attempt": 1}
        store.transition(record, "running")
        exit_code = run_job_attempt(store, record.job_id, attempt=1)
        assert exit_code == 0
        report = Supervisor(store, fast_config()).run()
        assert report.recovered == 1
        assert store.get(record.job_id).state == "done"
        # exactly-once: adopted, not re-executed
        assert store.read_result(record.job_id)["attempt"] == 1

    def test_orphaned_lease_with_dead_pid_is_requeued(self, store):
        record = store.submit(make_spec())
        store.transition(record, "leased")
        record.lease = {"pid": 2 ** 22 + 12345, "attempt": 1}  # unlikely pid
        store.transition(record, "running")
        report = Supervisor(store, fast_config()).run()
        assert report.recovered == 1
        assert report.all_done

    def test_recovered_job_resumes_from_its_checkpoint(self, store):
        record = store.submit(make_spec(fault="kill@12"))
        # first attempt dies in a bare worker (no supervisor watching)
        store.transition(record, "leased")
        record.lease = {"pid": None, "attempt": 1}
        store.transition(record, "running")
        ctx = multiprocessing.get_context("fork")
        from repro.service.supervisor import _worker_entry
        proc = ctx.Process(target=_worker_entry,
                           args=(store.root, record.job_id, 1))
        proc.start()
        proc.join()
        assert proc.exitcode == 86  # the injected kill
        report = Supervisor(store, fast_config()).run()
        assert report.all_done
        assert store.read_result(record.job_id)["resumed_from_op"] == 10


class TestTraceEvents:
    def test_supervision_emits_job_lease_retry_quarantine(self, store):
        from repro.simulation import trace_summary
        store.submit(make_spec(name="ok"))
        store.submit(make_spec(name="flaky", fault="kill@12"))
        store.submit(make_spec(name="poison", fault="raise"),
                     max_attempts=2)
        events = []
        Supervisor(store, fast_config(), trace=events.append).run()
        kinds = {event["event"] for event in events}
        assert {"job", "lease", "retry", "quarantine"} <= kinds
        summary = trace_summary(events)
        assert summary["jobs_done"] == 2
        assert summary["retry_events"] >= 2
        assert summary["quarantine_events"] == 1

    def test_pure_engine_traces_keep_their_summary_shape(self):
        from repro.simulation import trace_summary
        summary = trace_summary([{"event": "step", "state_nodes": 4}])
        assert "jobs_done" not in summary


class TestStatisticsSurface:
    def test_attempts_and_resume_offset_in_summary(self, store):
        from repro.simulation import SimulationStatistics
        record = store.submit(make_spec(fault="kill@12"))
        Supervisor(store, fast_config()).run()
        stats = SimulationStatistics.from_dict(
            store.read_result(record.job_id)["statistics"])
        assert stats.attempts == 2
        assert stats.resumed_from_op == 10
        assert "attempt 2 (resumed from op 10)" in stats.summary()

    def test_untroubled_run_summary_is_unchanged(self):
        from repro.simulation import SimulationStatistics
        stats = SimulationStatistics(strategy="sequential", circuit_name="c")
        assert "attempt" not in stats.summary()


class TestWallClockBound:
    def test_supervisor_never_exceeds_its_wall_budget(self, store):
        store.submit(make_spec(fault="hang"), max_attempts=10)
        config = fast_config(lease_seconds=30.0, max_wall_seconds=2.0)
        started = time.monotonic()
        report = Supervisor(store, config).run()
        assert time.monotonic() - started < 20
        assert not report.all_done


class TestJobTimeout:
    def test_cooperative_deadline_bounds_an_attempt(self, store):
        record = store.submit(
            make_spec(fault="latency=0.2:x3", timeout=0.3), max_attempts=2)
        report = Supervisor(store, fast_config(lease_seconds=5.0)).run()
        dead = store.get(record.job_id)
        # each attempt crawls (0.2s/op) and trips the 0.3s deadline long
        # before the 15-op circuit completes, on both attempts
        assert dead.state == "quarantined"
        assert all(e["type"] == "JobTimeout" for e in dead.errors)
        assert report.wall_seconds < 30


def test_worker_exit_codes(store):
    record = store.submit(make_spec())
    assert run_job_attempt(store, record.job_id, attempt=1) == 0
    # a second execution of a completed job must refuse to re-publish
    from repro.service.supervisor import EXIT_ALREADY_DONE
    assert run_job_attempt(store, record.job_id, attempt=2) \
        == EXIT_ALREADY_DONE
    result = store.read_result(record.job_id)
    assert result["attempt"] == 1
