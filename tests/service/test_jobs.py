"""The durable job store: records, state machine, atomicity, exactly-once."""

import json
import os

import pytest

from repro.service.jobs import (JOB_STATES, TERMINAL_STATES, JobRecord,
                                JobSpec, JobStateError, JobStore)

BELL = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
"""


def make_spec(name="bell", **overrides):
    defaults = dict(name=name, qasm=BELL)
    defaults.update(overrides)
    return JobSpec(**defaults)


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "store"))


class TestSubmitAndLoad:
    def test_submit_creates_a_queued_record_on_disk(self, store):
        record = store.submit(make_spec())
        assert record.state == "queued"
        assert record.job_id.endswith("-bell")
        assert os.path.exists(store.job_path(record.job_id))
        loaded = store.get(record.job_id)
        assert loaded.spec.qasm == BELL
        assert loaded.state == "queued"
        assert loaded.history[0]["note"] == "submitted"

    def test_ids_are_sequential_and_collision_free(self, store):
        ids = [store.submit(make_spec()).job_id for _ in range(3)]
        assert len(set(ids)) == 3
        assert store.list_ids() == sorted(ids)

    def test_name_is_slugified(self, store):
        record = store.submit(make_spec(name="weird name/.. !"))
        assert "/" not in record.job_id
        assert " " not in record.job_id

    def test_spec_roundtrips_every_field(self, store):
        spec = make_spec(strategy="k=4", use_local_apply=False,
                         kernel="iterative", reorder="every=10",
                         max_nodes=1000, gc_limit=500, checkpoint_every=7,
                         timeout=3.5, fault="kill@2")
        record = store.submit(spec, max_attempts=5)
        loaded = store.get(record.job_id)
        assert loaded.spec == spec
        assert loaded.max_attempts == 5

    def test_missing_job_raises_key_error(self, store):
        with pytest.raises(KeyError, match="no such job"):
            store.get("j9999-nope")

    def test_corrupt_record_is_a_clean_error_naming_the_file(self, store):
        record = store.submit(make_spec())
        path = store.job_path(record.job_id)
        with open(path, "w") as handle:
            handle.write('{"job_id": "x", "state')
        with pytest.raises(JobStateError, match="corrupt JSON at byte"):
            store.get(record.job_id)

    def test_invalid_max_attempts_rejected(self, store):
        with pytest.raises(ValueError, match="max_attempts"):
            store.submit(make_spec(), max_attempts=0)


class TestStateMachine:
    def test_happy_path(self, store):
        record = store.submit(make_spec())
        for state in ("leased", "running", "done"):
            store.transition(record, state)
        assert store.get(record.job_id).state == "done"
        assert [entry["to"] for entry in record.history] \
            == ["queued", "leased", "running", "done"]

    def test_illegal_edges_raise(self, store):
        record = store.submit(make_spec())
        with pytest.raises(JobStateError, match="illegal transition"):
            record.transition("done")  # queued -> done skips the lease
        with pytest.raises(JobStateError, match="illegal transition"):
            record.transition("running")

    def test_done_is_final(self, store):
        record = store.submit(make_spec())
        for state in ("leased", "running", "done"):
            record.transition(state)
        for state in JOB_STATES:
            if state == "done":
                continue
            with pytest.raises(JobStateError):
                record.transition(state)

    def test_failed_and_quarantined_allow_manual_requeue(self):
        for terminal in ("failed", "quarantined"):
            record = JobRecord(job_id="j1", spec=make_spec())
            record.transition("leased")
            record.transition("running")
            record.transition(terminal)
            assert record.terminal
            record.transition("queued", note="manual retry")
            assert record.state == "queued"

    def test_lease_cleared_on_leaving_running(self, store):
        record = store.submit(make_spec())
        record.transition("leased")
        record.lease = {"pid": 1234, "attempt": 1}
        record.transition("running")
        assert record.lease is not None
        record.transition("queued")
        assert record.lease is None

    def test_unknown_state_rejected(self, store):
        record = store.submit(make_spec())
        with pytest.raises(JobStateError, match="unknown state"):
            record.transition("zombie")

    def test_terminal_states_constant_is_consistent(self):
        assert set(TERMINAL_STATES) < set(JOB_STATES)


class TestAtomicity:
    def test_no_tmp_residue_after_save(self, store):
        record = store.submit(make_spec())
        store.transition(record, "leased")
        files = os.listdir(store.jobs_dir)
        assert not [name for name in files if name.endswith(".tmp")]

    def test_save_replaces_not_appends(self, store):
        record = store.submit(make_spec())
        for state in ("leased", "running", "done"):
            store.transition(record, state)
        with open(store.job_path(record.job_id)) as handle:
            payload = json.load(handle)  # parses = exactly one JSON doc
        assert payload["state"] == "done"


class TestExactlyOnceCompletion:
    def test_first_publish_wins(self, store):
        record = store.submit(make_spec())
        assert store.publish_result(record.job_id, {"attempt": 1}) is True
        assert store.publish_result(record.job_id, {"attempt": 2}) is False
        assert store.read_result(record.job_id) == {"attempt": 1}

    def test_publish_records_completion_once(self, store):
        record = store.submit(make_spec())
        store.publish_result(record.job_id, {"attempt": 1})
        store.publish_result(record.job_id, {"attempt": 2})
        store.record_completion(record.job_id)  # idempotent
        with open(store.completions_path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
        assert store.completions() == {record.job_id}

    def test_no_tmp_residue_after_publish_race(self, store):
        record = store.submit(make_spec())
        store.publish_result(record.job_id, {"attempt": 1})
        store.publish_result(record.job_id, {"attempt": 2})
        residue = [name for name in os.listdir(store.work_dir(record.job_id))
                   if ".tmp" in name]
        assert residue == []


class TestWorkFiles:
    def test_paths_live_under_the_job_work_dir(self, store):
        record = store.submit(make_spec())
        work = store.work_dir(record.job_id)
        for path in (store.heartbeat_path(record.job_id),
                     store.checkpoint_path(record.job_id),
                     store.result_path(record.job_id),
                     store.error_path(record.job_id, 1)):
            assert path.startswith(work)

    def test_error_chain_one_file_per_attempt(self, store):
        record = store.submit(make_spec())
        store.write_error(record.job_id, 1, {"type": "A"})
        store.write_error(record.job_id, 2, {"type": "B"})
        assert store.read_error(record.job_id, 1) == {"type": "A"}
        assert store.read_error(record.job_id, 2) == {"type": "B"}
        assert store.read_error(record.job_id, 3) is None

    def test_counts(self, store):
        a = store.submit(make_spec())
        store.submit(make_spec())
        store.transition(a, "leased")
        assert store.counts() == {"queued": 1, "leased": 1}
