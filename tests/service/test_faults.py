"""The shared fault-injection vocabulary (`repro.service.faults`)."""

import pytest

from repro.service.faults import (Deadline, Fault, FaultInjector,
                                  InjectedBudgetFault, chain_hooks,
                                  parse_fault)
from repro.simulation.memory import MemoryBudgetExceeded


class TestParseFault:
    def test_none_passes_through(self):
        assert parse_fault(None) is None

    @pytest.mark.parametrize("kind", ["raise", "hang", "os._exit"])
    def test_legacy_start_faults_are_always_active(self, kind):
        fault = parse_fault(kind)
        assert fault.kind == kind
        assert fault.attempts is None  # poison: fires on every attempt
        assert not fault.op_scoped

    def test_kill_at_op(self):
        fault = parse_fault("kill@12")
        assert fault == Fault(kind="kill", at_op=12, attempts=1)
        assert fault.op_scoped

    def test_budget_at_op(self):
        assert parse_fault("budget@7").kind == "budget"

    def test_latency(self):
        fault = parse_fault("latency=0.25")
        assert fault.kind == "latency"
        assert fault.seconds == 0.25

    def test_checkpoint_damage_kinds(self):
        assert parse_fault("truncate-checkpoint@3").at_op == 3
        assert parse_fault("corrupt-checkpoint@5").kind == \
            "corrupt-checkpoint"

    def test_attempt_scope_suffix(self):
        fault = parse_fault("kill@12:x2")
        assert fault.attempts == 2

    def test_scope_on_start_fault_rejected(self):
        with pytest.raises(ValueError, match="every attempt"):
            parse_fault("raise:x2")

    @pytest.mark.parametrize("spec", ["nonsense", "kill@x", "latency=abc",
                                      "kill@-1", "budget@1:x0"])
    def test_malformed_specs_raise_naming_the_spec(self, spec):
        with pytest.raises(ValueError) as info:
            parse_fault(spec)
        assert repr(spec.split(":")[0]) in str(info.value) \
            or repr(spec) in str(info.value)


class TestFaultInjector:
    def test_inactive_once_attempts_exceeded(self):
        injector = FaultInjector("kill@3", in_worker=False, attempt=2)
        assert not injector.active
        injector.on_op(3)  # must be a no-op, not a raise

    def test_raise_fault_fires_at_start(self):
        injector = FaultInjector("raise", in_worker=False, label="job j1")
        with pytest.raises(RuntimeError, match="injected failure in job j1"):
            injector.at_start()

    def test_os_exit_is_neutered_inline(self):
        injector = FaultInjector("os._exit", in_worker=False)
        with pytest.raises(RuntimeError, match="would have killed"):
            injector.at_start()

    def test_kill_neutered_inline_names_the_op(self):
        injector = FaultInjector("kill@4", in_worker=False)
        injector.on_op(3)  # wrong op: nothing
        with pytest.raises(RuntimeError, match="op 4"):
            injector.on_op(4)

    def test_budget_fault_is_a_memory_budget_exceeded(self):
        injector = FaultInjector("budget@2", in_worker=False)
        with pytest.raises(MemoryBudgetExceeded) as info:
            injector.on_op(2)
        assert isinstance(info.value, InjectedBudgetFault)
        assert "operation 2" in str(info.value)

    def test_truncate_checkpoint_damages_then_kills(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"version": 2, "op_index": 5, "padding": "%s"}'
                        % ("x" * 200))
        size_before = path.stat().st_size
        injector = FaultInjector("truncate-checkpoint@1", in_worker=False,
                                 checkpoint_path=str(path))
        with pytest.raises(RuntimeError, match="would have killed"):
            injector.on_op(1)
        assert 0 < path.stat().st_size < size_before

    def test_corrupt_checkpoint_writes_unparseable_json(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"version": 2}')
        injector = FaultInjector("corrupt-checkpoint@0", in_worker=False,
                                 checkpoint_path=str(path))
        with pytest.raises(RuntimeError):
            injector.on_op(0)
        import json
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())

    def test_checkpoint_damage_without_file_is_survivable(self, tmp_path):
        injector = FaultInjector(
            "truncate-checkpoint@0", in_worker=False,
            checkpoint_path=str(tmp_path / "never-written.json"))
        with pytest.raises(RuntimeError, match="would have killed"):
            injector.on_op(0)  # still dies, but no crash on a missing file


class TestDeadline:
    def test_raises_once_exceeded(self):
        deadline = Deadline(0.0, TimeoutError, "job j9")
        import time
        time.sleep(0.01)
        with pytest.raises(TimeoutError, match="job j9 exceeded"):
            deadline(5)

    def test_quiet_within_budget(self):
        Deadline(60.0, TimeoutError)(0)


class TestChainHooks:
    def test_all_none_collapses_to_none(self):
        assert chain_hooks(None, None) is None

    def test_single_hook_returned_unwrapped(self):
        def hook(i):
            pass
        assert chain_hooks(None, hook, None) is hook

    def test_hooks_run_in_order(self):
        calls = []
        chained = chain_hooks(lambda i: calls.append(("a", i)),
                              None,
                              lambda i: calls.append(("b", i)))
        chained(7)
        assert calls == [("a", 7), ("b", 7)]
