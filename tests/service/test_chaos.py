"""Chaos harness: fault schedules end-to-end through store + supervisor.

The contract under test (ISSUE 8 acceptance):

* every job in a chaos batch eventually completes with fidelity
  >= 1 - 1e-9 against the dense statevector baseline;
* no job is lost and none is executed twice to completion (the
  completion ledger stays unique);
* a retry replays fewer than ``checkpoint_every`` operations;
* ``kill -9`` of the *supervisor itself* leaves a store from which a
  fresh supervision run completes the batch.
"""

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.baseline import simulate_statevector
from repro.circuit.qasm import from_qasm
from repro.service.jobs import JobSpec, JobStore
from repro.service.supervisor import Supervisor, SupervisorConfig

FIDELITY_FLOOR = 1.0 - 1e-9

# 15 elementary ops / 3 qubits and 24 ops / 4 qubits: several periodic
# checkpoint boundaries at cadence 5, dense baselines of 8 resp. 16 amps
CIRCUIT_3Q = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
t q[2];
h q[1];
cx q[0],q[2];
x q[0];
h q[2];
cx q[1],q[0];
t q[0];
h q[1];
cx q[2],q[1];
x q[2];
h q[0];
cx q[0],q[1];
"""

CIRCUIT_4Q = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
h q[1];
h q[2];
h q[3];
cx q[0],q[1];
cx q[2],q[3];
t q[1];
t q[3];
cx q[1],q[2];
h q[0];
s q[2];
cx q[3],q[0];
t q[0];
h q[2];
cx q[0],q[1];
x q[3];
h q[1];
cx q[2],q[3];
t q[2];
h q[3];
cx q[1],q[2];
s q[1];
h q[0];
cx q[3],q[0];
"""


def fidelity_of(store, job_id):
    """|<job result | dense baseline>|^2 from the published amplitudes."""
    record = store.get(job_id)
    result = store.read_result(job_id)
    assert result is not None, f"{job_id}: no result on disk"
    dense = simulate_statevector(from_qasm(record.spec.qasm))
    amplitudes = np.array([complex(re, im)
                           for re, im in result["amplitudes"]])
    assert len(amplitudes) == len(dense)
    return abs(np.vdot(amplitudes, dense)) ** 2


def fast_config(**overrides):
    defaults = dict(max_workers=2, lease_seconds=2.0, poll_interval=0.02,
                    backoff_base=0.05, backoff_max=0.5, jitter_seconds=0.02,
                    max_wall_seconds=120.0)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "store"))


# every fault schedule of the harness in one batch: clean runs, worker
# kills at different checkpoint distances, a budget abort, checkpoint
# damage, and a job that dies on two consecutive attempts
CHAOS_BATCH = [
    # (name, qasm, strategy, fault, checkpoint_every)
    ("clean-seq", CIRCUIT_3Q, "sequential", None, 5),
    ("clean-k3", CIRCUIT_4Q, "k=3", None, 5),
    ("kill-early", CIRCUIT_3Q, "sequential", "kill@3", 5),
    ("kill-late", CIRCUIT_4Q, "sequential", "kill@17", 5),
    # cadence 5 puts the checkpoint at op 5 < kill op 8, so the retry
    # re-executes op 8 and the :x2 scope genuinely kills a second attempt
    ("kill-twice", CIRCUIT_3Q, "sequential", "kill@8:x2", 5),
    ("budget-abort", CIRCUIT_4Q, "sequential", "budget@9", 5),
    ("truncated-ckpt", CIRCUIT_3Q, "sequential", "truncate-checkpoint@11", 5),
    ("corrupted-ckpt", CIRCUIT_4Q, "sequential", "corrupt-checkpoint@13", 5),
]


@pytest.fixture(scope="class")
def chaos(tmp_path_factory):
    """Submit the full chaos batch, supervise it once, share the outcome."""
    store = JobStore(str(tmp_path_factory.mktemp("chaos") / "store"))
    ids = {}
    for name, qasm, strategy, fault, every in CHAOS_BATCH:
        record = store.submit(JobSpec(
            name=name, qasm=qasm, strategy=strategy, fault=fault,
            checkpoint_every=every), max_attempts=4)
        ids[name] = record.job_id
    report = Supervisor(store, fast_config()).run()
    return store, ids, report


class TestChaosBatch:
    def test_every_job_completes(self, chaos):
        store, ids, report = chaos
        assert report.all_done, report.counts()
        assert set(report.states) == set(ids.values())

    def test_every_result_matches_the_dense_baseline(self, chaos):
        store, ids, _report = chaos
        for name, job_id in ids.items():
            fidelity = fidelity_of(store, job_id)
            assert fidelity >= FIDELITY_FLOOR, (name, fidelity)

    def test_no_job_lost_and_none_completed_twice(self, chaos):
        store, ids, _report = chaos
        # the ledger is append-only and fed through an exclusive
        # hard-link, so a duplicate would mean a double completion
        with open(store.completions_path) as handle:
            lines = [line.split("\t", 1)[0]
                     for line in handle if line.strip()]
        assert sorted(lines) == sorted(ids.values())
        assert len(set(lines)) == len(lines)

    def test_retries_replay_less_than_checkpoint_every_ops(self, chaos):
        store, ids, _report = chaos
        for name, qasm, strategy, fault, every in CHAOS_BATCH:
            if fault is None or "kill@" not in fault:
                continue
            kill_op = int(fault.split("@")[1].split(":")[0])
            resumed = store.read_result(ids[name])["resumed_from_op"]
            # the retry resumes at the latest periodic checkpoint; ops
            # 0..kill_op were applied before the kill (the op hook fires
            # after the checkpoint block of the same iteration)
            assert resumed == ((kill_op + 1) // every) * every, \
                (name, resumed)
            assert kill_op + 1 - resumed < every, (name, resumed)

    def test_faulted_jobs_carry_their_error_chains(self, chaos):
        store, ids, _report = chaos
        record = store.get(ids["kill-twice"])
        assert record.attempts == 3
        assert len(record.errors) == 2
        assert store.read_result(ids["kill-twice"])["attempt"] == 3
        budget = store.get(ids["budget-abort"])
        assert budget.errors[0]["type"] == "InjectedBudgetFault"

    def test_budget_abort_resumes_at_the_failure_boundary(self, chaos):
        store, ids, _report = chaos
        # on-failure checkpoint at the aborted boundary: zero ops replayed
        assert store.read_result(ids["budget-abort"])["resumed_from_op"] == 10

    def test_checkpoint_damage_restarts_from_op_zero(self, chaos):
        store, ids, _report = chaos
        for name in ("truncated-ckpt", "corrupted-ckpt"):
            result = store.read_result(ids[name])
            assert result["resumed_from_op"] == 0, name
            assert result["attempt"] == 2, name


class TestLeaseExpiryRace:
    def test_slow_worker_killed_mid_run_completes_exactly_once(self, store):
        record = store.submit(JobSpec(
            name="slow", qasm=CIRCUIT_3Q, checkpoint_every=5,
            fault="latency=0.6"))
        report = Supervisor(store, fast_config(lease_seconds=0.25)).run()
        assert report.all_done
        assert report.lease_expiries >= 1
        assert store.completions() == {record.job_id}
        assert store.read_result(record.job_id)["attempt"] >= 2
        assert fidelity_of(store, record.job_id) >= FIDELITY_FLOOR


def _run_supervisor(store_root):
    store = JobStore(store_root)
    Supervisor(store, SupervisorConfig(
        max_workers=1, lease_seconds=5.0, poll_interval=0.02,
        backoff_base=0.05, max_wall_seconds=120.0)).run()


class TestSupervisorKill9:
    def test_fresh_run_completes_a_batch_orphaned_by_kill_minus_9(
            self, store):
        # latency=0.15 (a harmless slow-down on attempt 1) makes each job
        # take ~2s, so one worker at a time guarantees the batch is still
        # in flight when the supervisor is killed
        ids = [store.submit(JobSpec(
            name=f"batch{i}", qasm=CIRCUIT_3Q, checkpoint_every=5,
            fault="latency=0.15")).job_id for i in range(3)]
        ctx = multiprocessing.get_context("fork")
        supervisor_proc = ctx.Process(target=_run_supervisor,
                                      args=(store.root,))
        supervisor_proc.start()
        # wait until supervision has demonstrably started, then kill -9
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            counts = store.counts()
            if counts.get("running") or counts.get("done"):
                break
            time.sleep(0.02)
        else:
            pytest.fail(f"supervision never started: {store.counts()}")
        time.sleep(0.3)  # let a worker make some mid-job progress
        os.kill(supervisor_proc.pid, signal.SIGKILL)
        supervisor_proc.join()
        assert supervisor_proc.exitcode == -signal.SIGKILL
        Supervisor(store, fast_config()).run()

        # the store was left with leased/running records and (possibly) a
        # live orphan worker; the fresh run above must have recovered it
        final = {job_id: store.get(job_id).state for job_id in ids}
        assert all(state == "done" for state in final.values()), final
        with open(store.completions_path) as handle:
            lines = [line.split("\t", 1)[0]
                     for line in handle if line.strip()]
        assert sorted(lines) == sorted(ids)
        assert len(set(lines)) == len(lines)
        for job_id in ids:
            assert fidelity_of(store, job_id) >= FIDELITY_FLOOR
