"""Dense conversion round trips and the export/introspection helpers."""

import numpy as np
import pytest
from hypothesis import given

from repro.dd import (Package, level_histogram, matrix_from_numpy,
                      matrix_to_numpy, size_report, to_dot,
                      vector_from_numpy, vector_to_numpy)

from ..conftest import amplitudes, square_matrices


class TestVectorRoundTrip:
    @given(amplitudes(3))
    def test_vector_round_trip(self, vec):
        package = Package()
        assert np.allclose(
            vector_to_numpy(vector_from_numpy(package, vec), 3), vec,
            atol=1e-7)

    def test_zero_vector_round_trip(self, package):
        state = vector_from_numpy(package, np.zeros(8))
        assert state.weight == 0
        assert np.allclose(vector_to_numpy(state, 3), np.zeros(8))

    def test_sparse_vector_is_compact(self, package):
        vec = np.zeros(1 << 10)
        vec[777] = 1.0
        state = vector_from_numpy(package, vec)
        assert package.count_nodes(state) == 10

    def test_uniform_vector_is_compact(self, package):
        vec = np.full(1 << 10, 1 / 32)
        state = vector_from_numpy(package, vec)
        assert package.count_nodes(state) == 10

    def test_bad_length_rejected(self, package):
        with pytest.raises(ValueError):
            vector_from_numpy(package, np.ones(3))

    def test_size_mismatch_on_export_rejected(self, package):
        state = package.basis_state(3, 0)
        with pytest.raises(ValueError):
            vector_to_numpy(state, 4)


class TestMatrixRoundTrip:
    @given(square_matrices(2))
    def test_matrix_round_trip(self, mat):
        package = Package()
        assert np.allclose(
            matrix_to_numpy(matrix_from_numpy(package, mat), 2), mat,
            atol=1e-7)

    def test_non_square_rejected(self, package):
        with pytest.raises(ValueError):
            matrix_from_numpy(package, np.ones((2, 4)))

    def test_bad_side_rejected(self, package):
        with pytest.raises(ValueError):
            matrix_from_numpy(package, np.ones((3, 3)))

    def test_zero_matrix(self, package):
        edge = matrix_from_numpy(package, np.zeros((4, 4)))
        assert edge.weight == 0
        assert np.allclose(matrix_to_numpy(edge, 2), np.zeros((4, 4)))


class TestDotExport:
    def test_dot_contains_node_labels(self, package):
        state = package.basis_state(3, 5)
        dot = to_dot(state, name="test")
        assert dot.startswith("digraph test")
        assert "q2" in dot and "q0" in dot
        assert "terminal" in dot

    def test_dot_of_zero_edge(self, package):
        dot = to_dot(package.zero)
        assert "zero" in dot

    def test_dot_marks_zero_stubs(self, package):
        state = package.basis_state(2, 1)
        dot = to_dot(state)
        assert "style=dashed" in dot  # 0-stubs drawn dashed

    def test_dot_of_matrix_dd(self, package):
        dot = to_dot(package.identity(2))
        assert dot.count("q1") >= 1 and dot.count("q0") >= 1


class TestHistograms:
    def test_level_histogram_of_basis_state(self, package):
        state = package.basis_state(4, 3)
        histogram = level_histogram(state)
        assert histogram == {3: 1, 2: 1, 1: 1, 0: 1}

    def test_level_histogram_of_zero(self, package):
        assert level_histogram(package.zero) == {}

    def test_size_report_mentions_total(self, package):
        state = package.basis_state(4, 3)
        report = size_report(state, label="psi")
        assert report.startswith("psi: 4 nodes")
