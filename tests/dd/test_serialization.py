"""DD serialisation round trips."""

import json

import numpy as np
import pytest
from hypothesis import given

from repro.dd import (Package, deserialize_dd, dumps_dd, ghz_state, loads_dd,
                      matrix_from_numpy, matrix_to_numpy, serialize_dd,
                      vector_from_numpy, vector_to_numpy)

from ..conftest import amplitudes, square_matrices


class TestVectorRoundTrip:
    @given(amplitudes(3))
    def test_same_package_round_trip(self, vec):
        package = Package()
        state = vector_from_numpy(package, vec)
        loaded = deserialize_dd(package, serialize_dd(state))
        assert np.allclose(vector_to_numpy(loaded, 3), vec, atol=1e-7)

    def test_cross_package_round_trip(self):
        source = Package()
        target = Package()
        state = ghz_state(source, 5)
        loaded = deserialize_dd(target, serialize_dd(state))
        assert np.allclose(vector_to_numpy(loaded, 5),
                           vector_to_numpy(state, 5))

    def test_loaded_dd_shares_with_existing_nodes(self):
        source = Package()
        target = Package()
        state = ghz_state(source, 4)
        existing = ghz_state(target, 4)
        loaded = deserialize_dd(target, serialize_dd(state))
        assert loaded.node is existing.node

    def test_zero_edge_round_trip(self, package):
        loaded = deserialize_dd(package, serialize_dd(package.zero))
        assert loaded.weight == 0

    def test_sharing_preserved_in_payload(self, package):
        # GHZ on n qubits has 2n-1 distinct nodes; the payload must not
        # blow this up to the 2^n paths.
        payload = serialize_dd(ghz_state(package, 8))
        assert len(payload["nodes"]) == 15


class TestMatrixRoundTrip:
    @given(square_matrices(2))
    def test_matrix_round_trip(self, mat):
        package = Package()
        dd = matrix_from_numpy(package, mat)
        loaded = deserialize_dd(Package(), serialize_dd(dd))
        assert np.allclose(matrix_to_numpy(loaded, 2), mat, atol=1e-7)

    def test_identity_round_trip_is_identity(self, package):
        loaded = deserialize_dd(package, serialize_dd(package.identity(5)))
        assert loaded.node is package.identity(5).node


class TestJsonForm:
    def test_dumps_is_valid_json(self, package):
        text = dumps_dd(package.basis_state(3, 5))
        payload = json.loads(text)
        assert payload["kind"] == "vector"
        assert len(payload["nodes"]) == 3

    def test_loads_round_trip(self, package):
        state = ghz_state(package, 3)
        loaded = loads_dd(package, dumps_dd(state))
        assert loaded.node is state.node

    def test_indent_option(self, package):
        assert "\n" in dumps_dd(package.basis_state(1, 0), indent=2)


class TestErrors:
    def test_unknown_kind_rejected(self, package):
        with pytest.raises(ValueError):
            deserialize_dd(package, {"kind": "tensor", "root": [0, 1, 0],
                                     "nodes": []})

    def test_dangling_reference_rejected(self, package):
        payload = {"kind": "vector", "root": [5, 1.0, 0.0],
                   "nodes": [[0, [-1, 1.0, 0.0], [-1, 0.0, 0.0]]]}
        with pytest.raises(ValueError):
            deserialize_dd(package, payload)

    def test_wrong_arity_rejected(self, package):
        payload = {"kind": "matrix", "root": [0, 1.0, 0.0],
                   "nodes": [[0, [-1, 1.0, 0.0], [-1, 0.0, 0.0]]]}
        with pytest.raises(ValueError):
            deserialize_dd(package, payload)

    def test_missing_nodes_list_named(self, package):
        with pytest.raises(ValueError, match="no 'nodes' list"):
            deserialize_dd(package, {"kind": "vector",
                                     "root": [-1, 1.0, 0.0]})

    def test_missing_root_named(self, package):
        with pytest.raises(ValueError, match="no 'root' edge"):
            deserialize_dd(package, {"kind": "vector", "nodes": []})

    def test_malformed_node_entry_names_index(self, package):
        payload = serialize_dd(ghz_state(package, 3))
        payload["nodes"][1] = "junk"
        with pytest.raises(ValueError, match="node index 1"):
            deserialize_dd(Package(), payload)

    def test_malformed_weight_names_site(self, package):
        payload = {"kind": "vector", "root": [-1, "NaN-ish", 0.0],
                   "nodes": []}
        with pytest.raises(ValueError, match="malformed edge weight"):
            deserialize_dd(package, payload)

    def test_invalid_level_names_index(self, package):
        payload = {"kind": "vector", "root": [0, 1.0, 0.0],
                   "nodes": [[-3, [-1, 1.0, 0.0], [-1, 0.0, 0.0]]]}
        with pytest.raises(ValueError, match="node index 0"):
            deserialize_dd(package, payload)

    def test_non_dict_payload_rejected(self, package):
        with pytest.raises(ValueError, match="must be a dict"):
            deserialize_dd(package, [1, 2, 3])
