"""Unique-table and compute-table behaviour."""

from repro.dd.compute_table import ComputeTable
from repro.dd.edge import Edge
from repro.dd.node import TERMINAL, VectorNode
from repro.dd.unique_table import UniqueTable


class TestUniqueTable:
    def test_same_key_returns_same_node(self):
        table = UniqueTable(VectorNode)
        edges = (Edge(TERMINAL, 1 + 0j), Edge(TERMINAL, 0j))
        a = table.get_or_insert(0, edges)
        b = table.get_or_insert(0, edges)
        assert a is b
        assert table.hits == 1

    def test_different_levels_differ(self):
        table = UniqueTable(VectorNode)
        edges = (Edge(TERMINAL, 1 + 0j), Edge(TERMINAL, 0j))
        assert table.get_or_insert(0, edges) is not table.get_or_insert(1, edges)

    def test_different_weights_differ(self):
        table = UniqueTable(VectorNode)
        a = table.get_or_insert(0, (Edge(TERMINAL, 1 + 0j),
                                    Edge(TERMINAL, 0j)))
        b = table.get_or_insert(0, (Edge(TERMINAL, 0.5 + 0j),
                                    Edge(TERMINAL, 0j)))
        assert a is not b

    def test_remove_unreferenced(self):
        table = UniqueTable(VectorNode)
        keep = table.get_or_insert(0, (Edge(TERMINAL, 1 + 0j),
                                       Edge(TERMINAL, 0j)))
        table.get_or_insert(0, (Edge(TERMINAL, 0j), Edge(TERMINAL, 1 + 0j)))
        removed = table.remove_unreferenced({id(keep)})
        assert removed == 1
        assert len(table) == 1

    def test_clear(self):
        table = UniqueTable(VectorNode)
        table.get_or_insert(0, (Edge(TERMINAL, 1 + 0j), Edge(TERMINAL, 0j)))
        table.clear()
        assert len(table) == 0
        assert table.lookups == 0


class TestComputeTable:
    def test_miss_then_hit(self):
        cache = ComputeTable("test")
        assert cache.get(("a",)) is None
        value = Edge(TERMINAL, 1 + 0j)
        cache.put(("a",), value)
        assert cache.get(("a",)) is value
        assert cache.hit_rate() == 0.5

    def test_size_is_bounded_by_slot_count(self):
        cache = ComputeTable("test", slots=4)
        for i in range(100):
            cache.put((i,), Edge(TERMINAL, 1 + 0j))
        assert cache.slots == 4
        assert len(cache) <= 4  # inserts overwrite slots, never grow

    def test_slot_count_rounds_up_to_power_of_two(self):
        assert ComputeTable("test", slots=5).slots == 8
        assert ComputeTable("test", slots=16).slots == 16

    def test_collision_replaces_and_is_counted(self):
        cache = ComputeTable("test", slots=1)  # every distinct key collides
        first = Edge(TERMINAL, 1 + 0j)
        second = Edge(TERMINAL, 0.5 + 0j)
        cache.put(("a",), first)
        cache.put(("b",), second)
        assert cache.get(("a",)) is None   # overwritten by ("b",)
        assert cache.get(("b",)) is second
        assert cache.collisions == 1
        assert len(cache) == 1

    def test_stats_report(self):
        cache = ComputeTable("test", slots=8)
        cache.put(("k",), Edge(TERMINAL, 1 + 0j))
        cache.get(("k",))
        cache.get(("missing",))
        stats = cache.stats()
        assert stats["slots"] == 8
        assert stats["filled"] == 1
        assert stats["lookups"] == 2
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["inserts"] == 1
        assert stats["hit_rate"] == 0.5

    def test_clear_keeps_cumulative_counters(self):
        cache = ComputeTable("test", slots=8)
        cache.put(("k",), Edge(TERMINAL, 1 + 0j))
        cache.get(("k",))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(("k",)) is None  # entries really gone
        assert cache.lookups == 2         # ... but stats accumulate
        assert cache.hits == 1

    def test_clear(self):
        cache = ComputeTable("test")
        cache.put(("x",), Edge(TERMINAL, 1 + 0j))
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate_with_no_lookups(self):
        assert ComputeTable("test").hit_rate() == 0.0


class TestEdge:
    def test_equality_by_node_identity_and_weight(self):
        node = VectorNode(0, (Edge(TERMINAL, 1 + 0j), Edge(TERMINAL, 0j)))
        assert Edge(node, 0.5) == Edge(node, 0.5)
        assert Edge(node, 0.5) != Edge(node, 0.25)

    def test_hashable(self):
        node = VectorNode(0, (Edge(TERMINAL, 1 + 0j), Edge(TERMINAL, 0j)))
        assert len({Edge(node, 0.5), Edge(node, 0.5), Edge(node, 1.0)}) == 2

    def test_scaled_by_zero_gives_zero_stub(self):
        node = VectorNode(0, (Edge(TERMINAL, 1 + 0j), Edge(TERMINAL, 0j)))
        scaled = Edge(node, 0.5).scaled(0)
        assert scaled.weight == 0
        assert scaled.node is TERMINAL

    def test_terminal_properties(self):
        edge = Edge(TERMINAL, 1 + 0j)
        assert edge.is_terminal()
        assert not edge.is_zero()
        assert edge.level == -1
