"""DD integrity auditor: clean packages pass, injected corruption is named.

Each fault-injection test corrupts one structural invariant the way a real
bug would -- a kernel that forgets to normalise, an interning bug that
stores a node twice, a GC that sweeps a node a compute table still points
at -- and asserts the auditor reports it with a message naming the site.
"""

import pytest

from repro.circuit import QuantumCircuit
from repro.dd import DDIntegrityError, Package
from repro.dd.edge import Edge
from repro.dd.node import VectorNode
from repro.simulation import SequentialStrategy, SimulationEngine


def entangled_run():
    """A real simulated package with a non-trivial reachable state."""
    circuit = QuantumCircuit(4, name="audit-fixture")
    circuit.h(0)
    for qubit in range(3):
        circuit.cx(qubit, qubit + 1)
    for qubit in range(4):
        circuit.ry(0.3 + 0.1 * qubit, qubit)
    engine = SimulationEngine()
    result = engine.simulate(circuit, SequentialStrategy())
    return engine.package, result.state


def reachable_vector_node(package, state):
    """Some interned vector node reachable from ``state`` with a non-zero
    child edge (so weight corruption is observable)."""
    stack = [state.node]
    while stack:
        node = stack.pop()
        if node.level == -1:
            continue
        if any(child.weight != 0 for child in node.edges):
            return node
        stack.extend(child.node for child in node.edges)
    raise AssertionError("no corruptible node found")


class TestCleanAudits:
    def test_fresh_package_passes(self):
        package = Package()
        state = package.basis_state(3, 5)
        assert package.check_invariants([state]) == []

    def test_simulated_package_passes(self):
        package, state = entangled_run()
        assert package.check_invariants([state]) == []

    def test_audit_passes_after_garbage_collection(self):
        package, state = entangled_run()
        package.garbage_collect([state])
        assert package.check_invariants([state]) == []

    def test_assert_invariants_is_silent_when_clean(self):
        package, state = entangled_run()
        package.assert_invariants([state])


class TestFaultInjection:
    def test_denormalised_edge_weight_detected(self):
        package, state = entangled_run()
        victim = reachable_vector_node(package, state)
        corrupt = tuple(
            Edge(child.node, child.weight * 2.0) if child.weight != 0
            else child
            for child in victim.edges)
        victim.edges = corrupt

        violations = package.check_invariants([state])
        assert violations
        assert any("denormalised" in message for message in violations)
        # the message names the corrupted node
        assert any(f"{id(victim):#x}" in message for message in violations)

    def test_duplicate_unique_table_entry_detected(self):
        package, state = entangled_run()
        victim = reachable_vector_node(package, state)
        clone = VectorNode(victim.level, victim.edges)
        package.tables.vectors._table[("bogus-key",)] = clone

        violations = package.check_invariants([state])
        assert any("duplicate unique-table entries" in message
                   for message in violations)

    def test_mutated_node_breaks_stored_key(self):
        package, state = entangled_run()
        victim = reachable_vector_node(package, state)
        # swap the two successors: structure changes, stored key does not
        victim.edges = (victim.edges[1], victim.edges[0])

        violations = package.check_invariants([state])
        assert any("no longer matches" in message for message in violations)

    def test_dangling_compute_table_entry_detected(self):
        package, state = entangled_run()
        terminal = package.zero_state(0).node
        ghost = VectorNode(0, (Edge(terminal, 1 + 0j), Edge(terminal, 0j)))
        package.tables.mult_mv.put(("fault", ghost), Edge(ghost, 1 + 0j))

        violations = package.check_invariants([state])
        assert any("mult_mv" in message and "no longer interned" in message
                   for message in violations)

    def test_uninterned_reachable_node_detected(self):
        package, _ = entangled_run()
        terminal = package.zero_state(0).node
        ghost = VectorNode(0, (Edge(terminal, 1 + 0j), Edge(terminal, 0j)))
        violations = package.check_invariants([Edge(ghost, 1 + 0j)])
        assert any("not interned" in message for message in violations)

    def test_assert_invariants_raises_with_violation_list(self):
        package, state = entangled_run()
        victim = reachable_vector_node(package, state)
        victim.edges = (victim.edges[1], victim.edges[0])

        with pytest.raises(DDIntegrityError) as info:
            package.assert_invariants([state])
        assert info.value.violations
        assert "violation" in str(info.value)

    def test_max_violations_caps_the_scan(self):
        package, state = entangled_run()
        for node in list(package.tables.vectors.nodes()):
            if node.level >= 0 and any(c.weight != 0 for c in node.edges):
                node.edges = tuple(
                    Edge(child.node, child.weight * 3.0)
                    if child.weight != 0 else child
                    for child in node.edges)
        violations = package.check_invariants([state], max_violations=5)
        assert len(violations) == 5
