"""Direct DD construction from permutations (the DD-construct backbone)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dd import (Package, build_controlled_permutation_dd,
                      build_permutation_dd, matrix_to_numpy,
                      modular_multiplication_permutation)


def permutation_matrix(perm):
    size = len(perm)
    matrix = np.zeros((size, size))
    for col, row in enumerate(perm):
        matrix[row, col] = 1
    return matrix


class TestPermutationDD:
    def test_identity_permutation(self, package):
        edge = build_permutation_dd(package, list(range(8)), 3)
        assert np.allclose(matrix_to_numpy(edge, 3), np.eye(8))
        assert package.count_nodes(edge) == 3  # literally the identity DD

    def test_swap_permutation(self, package):
        perm = [0, 2, 1, 3]
        edge = build_permutation_dd(package, perm, 2)
        assert np.allclose(matrix_to_numpy(edge, 2),
                           permutation_matrix(perm))

    def test_cyclic_shift(self, package):
        perm = [(i + 1) % 16 for i in range(16)]
        edge = build_permutation_dd(package, perm, 4)
        assert np.allclose(matrix_to_numpy(edge, 4),
                           permutation_matrix(perm))

    def test_callable_spec(self, package):
        edge = build_permutation_dd(package, lambda x: x ^ 0b101, 3)
        expected = permutation_matrix([x ^ 0b101 for x in range(8)])
        assert np.allclose(matrix_to_numpy(edge, 3), expected)

    def test_non_bijection_rejected(self, package):
        with pytest.raises(ValueError):
            build_permutation_dd(package, [0, 0, 1, 2], 2)

    def test_wrong_size_rejected(self, package):
        with pytest.raises(ValueError):
            build_permutation_dd(package, [0, 1, 2], 2)

    def test_result_is_unitary(self, package):
        perm = [3, 1, 4, 7, 0, 6, 2, 5]
        edge = build_permutation_dd(package, perm, 3)
        dense = matrix_to_numpy(edge, 3)
        assert np.allclose(dense @ dense.conj().T, np.eye(8))

    @given(st.permutations(list(range(8))))
    def test_random_permutations(self, perm):
        package = Package()
        edge = build_permutation_dd(package, list(perm), 3)
        assert np.allclose(matrix_to_numpy(edge, 3),
                           permutation_matrix(list(perm)))

    def test_structured_permutation_is_compact(self, package):
        # x -> x XOR c shares massively across blocks.
        n = 10
        edge = build_permutation_dd(package, lambda x: x ^ 0b1010101010, n)
        assert package.count_nodes(edge) <= 2 * n


class TestControlledPermutation:
    def test_controlled_permutation_applies_when_control_set(self, package):
        perm = [1, 0, 3, 2]
        edge = build_controlled_permutation_dd(package, perm, 2,
                                               num_controls=1)
        dense = matrix_to_numpy(edge, 3)
        expected = np.block([
            [np.eye(4), np.zeros((4, 4))],
            [np.zeros((4, 4)), permutation_matrix(perm)],
        ])
        assert np.allclose(dense, expected)

    def test_two_controls(self, package):
        perm = [1, 0]
        edge = build_controlled_permutation_dd(package, perm, 1,
                                               num_controls=2)
        dense = matrix_to_numpy(edge, 3)
        expected = np.eye(8)
        expected[6:8, 6:8] = [[0, 1], [1, 0]]
        assert np.allclose(dense, expected)

    def test_zero_controls_is_plain_permutation(self, package):
        perm = [2, 0, 3, 1]
        a = build_controlled_permutation_dd(package, perm, 2, num_controls=0)
        b = build_permutation_dd(package, perm, 2)
        assert a.node is b.node

    def test_negative_controls_rejected(self, package):
        with pytest.raises(ValueError):
            build_controlled_permutation_dd(package, [0, 1], 1,
                                            num_controls=-1)


class TestModularMultiplication:
    def test_small_case_values(self):
        perm = modular_multiplication_permutation(2, 5, 3)
        # x < 5: x -> 2x mod 5; x >= 5: identity
        assert perm[:5] == [0, 2, 4, 1, 3]
        assert perm[5:] == [5, 6, 7]

    def test_is_permutation_for_coprime_a(self):
        perm = modular_multiplication_permutation(7, 15, 4)
        assert sorted(perm) == list(range(16))

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            modular_multiplication_permutation(6, 15, 4)

    def test_modulus_must_fit(self):
        with pytest.raises(ValueError):
            modular_multiplication_permutation(2, 17, 4)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            modular_multiplication_permutation(1, 1, 1)

    def test_composition_matches_modular_product(self, package):
        """U_a U_b == U_{ab mod N} on the residue subspace."""
        modulus, n = 15, 4
        u2 = build_permutation_dd(
            package, modular_multiplication_permutation(2, modulus, n), n)
        u7 = build_permutation_dd(
            package, modular_multiplication_permutation(7, modulus, n), n)
        u14 = build_permutation_dd(
            package, modular_multiplication_permutation(14, modulus, n), n)
        product = package.multiply_matrix_matrix(u2, u7)
        dense_product = matrix_to_numpy(product, n)
        dense_expected = matrix_to_numpy(u14, n)
        # equality holds on columns x < N (the residue subspace)
        assert np.allclose(dense_product[:, :modulus],
                           dense_expected[:, :modulus])

    def test_inverse_composes_to_identity_on_residues(self, package):
        modulus, n = 21, 5
        u5 = build_permutation_dd(
            package, modular_multiplication_permutation(5, modulus, n), n)
        u_inv = build_permutation_dd(
            package, modular_multiplication_permutation(
                pow(5, -1, modulus), modulus, n), n)
        product = matrix_to_numpy(
            package.multiply_matrix_matrix(u_inv, u5), n)
        assert np.allclose(product[:modulus, :modulus],
                           np.eye(32)[:modulus, :modulus])
