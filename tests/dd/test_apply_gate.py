"""Direct local-gate application (``Package.apply_gate``).

The fast path must be indistinguishable (up to the complex table's
tolerance) from the paper-literal pathway: build the full n-qubit gate DD
with identity padding and run one matrix-vector multiplication.  The
property test below checks fidelity >= 1 - 1e-10 on randomized circuits of
random (multi-)controlled single-qubit unitaries, per the acceptance
criterion in this PR's issue.
"""

import numpy as np
import pytest

from repro.dd import (Package, build_gate_dd, vector_from_numpy,
                      vector_to_numpy)

H = ((2 ** -0.5, 2 ** -0.5), (2 ** -0.5, -(2 ** -0.5)))
X = ((0, 1), (1, 0))


def _random_unitary_2x2(rng):
    q, _ = np.linalg.qr(rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2)))
    return q


def _random_state(package, rng, n):
    amplitudes = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    amplitudes /= np.linalg.norm(amplitudes)
    return vector_from_numpy(package, amplitudes)


def _matrix_path(package, state, matrix, n, target, controls=None):
    gate = build_gate_dd(package, matrix, n, target, controls)
    return package.multiply_matrix_vector(gate, state)


class TestAgainstMatrixPathway:
    def test_randomized_circuits_fidelity(self):
        """Acceptance criterion: fidelity >= 1 - 1e-10 vs. kron + MxV."""
        rng = np.random.default_rng(2019)
        for trial in range(40):
            n = int(rng.integers(1, 6))
            package = Package()
            fast = matrix = _random_state(package, rng, n)
            for _ in range(int(rng.integers(3, 10))):
                u = _random_unitary_2x2(rng)
                target = int(rng.integers(n))
                others = [q for q in range(n) if q != target]
                rng.shuffle(others)
                controls = {q: int(rng.integers(2))
                            for q in others[:rng.integers(0, len(others) + 1)]}
                fast = package.apply_gate(fast, u, target, controls)
                matrix = _matrix_path(package, matrix, u, n, target, controls)
            assert package.fidelity(fast, matrix) >= 1 - 1e-10, \
                f"trial {trial} diverged"
            # both pathways stay normalised
            assert package.squared_norm(fast) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("target", [0, 1, 2, 3])
    def test_uncontrolled_on_every_level(self, package, target):
        rng = np.random.default_rng(target)
        state = _random_state(package, rng, 4)
        fast = package.apply_gate(state, H, target)
        assert np.allclose(vector_to_numpy(fast, 4),
                           vector_to_numpy(
                               _matrix_path(package, state, H, 4, target), 4),
                           atol=1e-10)

    def test_control_above_target(self, package):
        state = package.basis_state(3, 0b100)
        result = package.apply_gate(state, X, 0, {2: 1})
        assert package.amplitude(result, 0b101) == pytest.approx(1)

    def test_control_below_target(self, package):
        # control on qubit 0, target qubit 2: only |..1> branch flips
        rng = np.random.default_rng(5)
        state = _random_state(package, rng, 3)
        fast = package.apply_gate(state, X, 2, {0: 1})
        ref = _matrix_path(package, state, X, 3, 2, {0: 1})
        assert np.allclose(vector_to_numpy(fast, 3), vector_to_numpy(ref, 3),
                           atol=1e-10)

    def test_negative_control(self, package):
        state = package.basis_state(2, 0b00)
        result = package.apply_gate(state, X, 1, {0: 0})
        assert package.amplitude(result, 0b10) == pytest.approx(1)

    def test_mixed_controls_both_sides(self, package):
        rng = np.random.default_rng(9)
        state = _random_state(package, rng, 5)
        controls = {0: 1, 1: 0, 4: 1}
        fast = package.apply_gate(state, H, 2, controls)
        ref = _matrix_path(package, state, H, 5, 2, controls)
        assert np.allclose(vector_to_numpy(fast, 5), vector_to_numpy(ref, 5),
                           atol=1e-10)


class TestEdgesAndErrors:
    def test_zero_state_input(self, package):
        assert package.apply_gate(package.zero, H, 0) is package.zero

    def test_result_interns_into_unique_table(self, package):
        state = package.basis_state(2, 0)
        a = package.apply_gate(state, H, 1)
        b = package.apply_gate(state, H, 1)
        assert a.node is b.node and a.weight == b.weight

    def test_target_out_of_range(self, package):
        state = package.basis_state(2, 0)
        with pytest.raises(ValueError):
            package.apply_gate(state, H, 2)

    def test_target_cannot_be_control(self, package):
        state = package.basis_state(2, 0)
        with pytest.raises(ValueError):
            package.apply_gate(state, X, 1, {1: 1})

    def test_control_out_of_range(self, package):
        state = package.basis_state(2, 0)
        with pytest.raises(ValueError):
            package.apply_gate(state, X, 0, {5: 1})

    def test_recursion_counter_increments(self, package):
        state = package.basis_state(3, 0)
        before = package.counters.apply_gate_recursions
        package.apply_gate(state, H, 0)
        assert package.counters.apply_gate_recursions > before

    def test_cache_hit_on_repeat(self, package):
        state = package.basis_state(4, 0b1010)
        package.apply_gate(state, H, 1)
        hits_before = package.tables.apply_gate.hits
        package.apply_gate(state, H, 1)
        assert package.tables.apply_gate.hits > hits_before
