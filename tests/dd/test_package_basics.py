"""Construction-level tests for the DD package: nodes, states, identity."""

import numpy as np
import pytest

from repro.dd import Package, vector_to_numpy, matrix_to_numpy
from repro.dd.node import TERMINAL


class TestBasisStates:
    def test_zero_state_amplitudes(self, package):
        state = package.zero_state(3)
        dense = vector_to_numpy(state, 3)
        assert dense[0] == 1
        assert np.count_nonzero(dense) == 1

    @pytest.mark.parametrize("index", [0, 1, 5, 7])
    def test_basis_state_places_single_one(self, package, index):
        state = package.basis_state(3, index)
        dense = vector_to_numpy(state, 3)
        assert dense[index] == 1
        assert np.count_nonzero(dense) == 1

    def test_basis_state_node_count_is_linear(self, package):
        state = package.basis_state(10, 0b1010101010)
        assert package.count_nodes(state) == 10

    def test_basis_state_out_of_range_rejected(self, package):
        with pytest.raises(ValueError):
            package.basis_state(3, 8)

    def test_basis_state_zero_qubits_rejects_nonzero_index(self, package):
        # regression: the old `num_qubits > 0` clause let this slip through
        with pytest.raises(ValueError):
            package.basis_state(0, 5)
        state = package.basis_state(0, 0)  # the only valid 0-qubit index
        assert state.weight == 1

    def test_negative_qubits_rejected(self, package):
        with pytest.raises(ValueError):
            package.basis_state(-1, 0)

    def test_zero_qubit_state_is_terminal(self, package):
        state = package.zero_state(0)
        assert state.node is TERMINAL
        assert state.weight == 1

    def test_same_basis_state_shares_structure(self, package):
        a = package.basis_state(4, 9)
        b = package.basis_state(4, 9)
        assert a.node is b.node


class TestIdentity:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_identity_matrix_values(self, package, n):
        dense = matrix_to_numpy(package.identity(n), n)
        assert np.allclose(dense, np.eye(1 << n))

    def test_identity_is_linear_in_nodes(self, package):
        # The property the whole paper rests on (Sec. III).
        assert package.count_nodes(package.identity(16)) == 16

    def test_identity_cached(self, package):
        assert package.identity(5).node is package.identity(5).node

    def test_identity_prefix_shared(self, package):
        big = package.identity(6)
        small = package.identity(3)
        # The 3-qubit identity is literally the lower part of the 6-qubit one.
        node = big.node
        for _ in range(3):
            node = node.edges[0].node
        assert node is small.node


class TestNormalisation:
    def test_node_weights_bounded_by_one(self, package):
        from repro.dd import vector_from_numpy
        rng = np.random.default_rng(5)
        vec = rng.normal(size=16) + 1j * rng.normal(size=16)
        state = vector_from_numpy(package, vec)
        stack = [state.node]
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen or node.level == -1:
                continue
            seen.add(id(node))
            for edge in node.edges:
                assert abs(edge.weight) <= 1 + 1e-9
                stack.append(edge.node)

    def test_all_zero_children_collapse_to_zero_edge(self, package):
        edge = package.make_vector_node(0, (package.zero, package.zero))
        assert edge.weight == 0
        assert edge.node is TERMINAL

    def test_first_max_weight_becomes_one(self, package):
        one = package.terminal_edge(1)
        half = package.terminal_edge(0.5)
        edge = package.make_vector_node(0, (half, one))
        # normalised by the largest magnitude: child 1 gets weight 1
        assert edge.node.edges[1].weight == 1
        assert abs(edge.node.edges[0].weight - 0.5) < 1e-12

    def test_uniquing_merges_equal_nodes(self, package):
        a = package.make_vector_node(
            0, (package.terminal_edge(0.6), package.terminal_edge(0.8)))
        b = package.make_vector_node(
            0, (package.terminal_edge(0.6), package.terminal_edge(0.8)))
        assert a.node is b.node

    def test_scaled_nodes_share(self, package):
        a = package.make_vector_node(
            0, (package.terminal_edge(0.3), package.terminal_edge(0.4)))
        b = package.make_vector_node(
            0, (package.terminal_edge(0.6), package.terminal_edge(0.8)))
        # same direction, different scale: one shared node, different weights
        assert a.node is b.node
        assert abs(b.weight / a.weight - 2.0) < 1e-9


class TestAmplitude:
    def test_amplitude_matches_dense(self, package):
        from repro.dd import vector_from_numpy
        rng = np.random.default_rng(3)
        vec = rng.normal(size=8) + 1j * rng.normal(size=8)
        state = vector_from_numpy(package, vec)
        for i in range(8):
            assert abs(package.amplitude(state, i) - vec[i]) < 1e-9

    def test_amplitude_of_zero_edge(self, package):
        assert package.amplitude(package.zero, 0) == 0


class TestMetrics:
    def test_count_nodes_zero_edge(self, package):
        assert package.count_nodes(package.zero) == 0

    def test_count_nodes_terminal(self, package):
        assert package.count_nodes(package.one) == 0

    def test_live_node_count_grows(self, package):
        before = package.live_node_count()
        package.basis_state(6, 33)
        assert package.live_node_count() > before

    def test_counters_snapshot_delta(self, package):
        before = package.counters.snapshot()
        a = package.basis_state(3, 1)
        b = package.basis_state(3, 2)
        package.add_vectors(a, b)
        delta = package.counters.delta(before)
        assert delta.add_recursions > 0
        assert delta.total_recursions() >= delta.add_recursions


class TestGarbageCollection:
    def test_unreachable_nodes_removed(self, package):
        keep = package.basis_state(5, 3)
        for i in range(20):
            package.basis_state(5, i)
        before = package.live_node_count()
        removed = package.garbage_collect([keep])
        assert removed > 0
        assert package.live_node_count() < before
        # The kept state still evaluates correctly.
        assert package.amplitude(keep, 3) == 1

    def test_identity_cache_survives_collection(self, package):
        ident = package.identity(4)
        package.garbage_collect([])
        dense = matrix_to_numpy(package.identity(4), 4)
        assert np.allclose(dense, np.eye(16))
        assert package.identity(4).node is ident.node

    def test_collected_package_still_functional(self, package):
        state = package.basis_state(4, 7)
        package.garbage_collect([state])
        h = [[2 ** -0.5, 2 ** -0.5], [2 ** -0.5, -(2 ** -0.5)]]
        from repro.dd import build_gate_dd
        gate = build_gate_dd(package, h, 4, 0)
        result = package.multiply_matrix_vector(gate, state)
        assert abs(package.squared_norm(result) - 1) < 1e-9
