"""Variable reordering: adjacent swaps, permutations, sifting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dd import (Package, build_gate_dd, matrix_from_numpy,
                      matrix_to_numpy, vector_from_numpy, vector_to_numpy)
from repro.dd.edge import Edge
from repro.dd.node import TERMINAL, VectorNode
from repro.dd.reordering import (apply_index_permutation, permute_qubits,
                                 sift, swap_adjacent_levels)

from ..conftest import amplitudes


def swapped_bits(index: int, a: int, b: int) -> int:
    bit_a = (index >> a) & 1
    bit_b = (index >> b) & 1
    result = index & ~((1 << a) | (1 << b))
    return result | (bit_a << b) | (bit_b << a)


class TestAdjacentSwapVector:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_swap_matches_dense_reindexing(self, package, level):
        rng = np.random.default_rng(level)
        vec = rng.normal(size=16) + 1j * rng.normal(size=16)
        state = vector_from_numpy(package, vec)
        swapped = swap_adjacent_levels(package, state, level)
        dense = vector_to_numpy(swapped, 4)
        for index in range(16):
            assert dense[swapped_bits(index, level, level + 1)] \
                == pytest.approx(vec[index], abs=1e-9)

    def test_swap_is_involution(self, package):
        rng = np.random.default_rng(9)
        vec = rng.normal(size=8) + 1j * rng.normal(size=8)
        state = vector_from_numpy(package, vec)
        twice = swap_adjacent_levels(
            package, swap_adjacent_levels(package, state, 1), 1)
        assert np.allclose(vector_to_numpy(twice, 3), vec)

    def test_swap_handles_zero_stubs(self, package):
        state = package.basis_state(3, 0b011)
        swapped = swap_adjacent_levels(package, state, 1)
        assert abs(package.amplitude(swapped, 0b101) - 1) < 1e-12

    def test_swap_of_zero_edge(self, package):
        assert swap_adjacent_levels(package, package.zero, 0).weight == 0

    def test_out_of_range_rejected(self, package):
        state = package.basis_state(2, 0)
        with pytest.raises(ValueError):
            swap_adjacent_levels(package, state, 1)
        with pytest.raises(ValueError):
            swap_adjacent_levels(package, state, -1)

    def test_symmetric_state_unchanged_in_size(self, package):
        # GHZ is symmetric under any qubit swap
        vec = np.zeros(8)
        vec[0] = vec[7] = 2 ** -0.5
        state = vector_from_numpy(package, vec)
        swapped = swap_adjacent_levels(package, state, 1)
        assert np.allclose(vector_to_numpy(swapped, 3), vec)

    @given(amplitudes(3), st.integers(0, 1))
    def test_property_swap_reindexes(self, vec, level):
        package = Package()
        state = vector_from_numpy(package, vec)
        swapped = swap_adjacent_levels(package, state, level)
        dense = vector_to_numpy(swapped, 3)
        for index in range(8):
            assert dense[swapped_bits(index, level, level + 1)] \
                == pytest.approx(vec[index], abs=1e-6)


class TestAdjacentSwapMatrix:
    def test_matrix_swap_reindexes_rows_and_columns(self, package):
        rng = np.random.default_rng(4)
        mat = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        dd = matrix_from_numpy(package, mat)
        swapped = swap_adjacent_levels(package, dd, 0)
        dense = matrix_to_numpy(swapped, 3)
        for row in range(8):
            for col in range(8):
                assert dense[swapped_bits(row, 0, 1),
                             swapped_bits(col, 0, 1)] \
                    == pytest.approx(mat[row, col], abs=1e-9)

    def test_identity_invariant_under_swap(self, package):
        ident = package.identity(4)
        swapped = swap_adjacent_levels(package, ident, 2)
        assert swapped.node is ident.node

    def test_cx_swap_flips_control_and_target(self, package):
        from repro.dd import build_gate_dd
        cx_up = build_gate_dd(package, [[0, 1], [1, 0]], 2, 1, {0: 1})
        cx_down = build_gate_dd(package, [[0, 1], [1, 0]], 2, 0, {1: 1})
        assert swap_adjacent_levels(package, cx_up, 0).node is cx_down.node


X_GATE = [[0, 1], [1, 0]]


def gapped_vector_edge() -> Edge:
    """A corrupt 3-qubit state DD whose root child skips level 1.

    Built from raw node constructors on purpose: the package's own builders
    never produce vector-level gaps, which is exactly why the reordering
    toolkit must refuse them instead of silently reading them as identity.
    """
    leaf = VectorNode(0, (Edge(TERMINAL, 1 + 0j), Edge(TERMINAL, 0j)))
    root = VectorNode(2, (Edge(leaf, 1 + 0j), Edge(TERMINAL, 0j)))
    return Edge(root, 1 + 0j)


class TestIdentityEdgeGaps:
    """Swaps on matrix DDs with identity-edge level gaps.

    ``Package(identity_edges=True)`` builds matrix DDs that skip identity
    levels; the swap machinery must expand those virtual levels on demand.
    Vector DDs never legally skip a level, so the same shapes raise there.
    """

    @pytest.fixture
    def gap_package(self):
        return Package(identity_edges=True)

    @pytest.mark.parametrize("level", [0, 1])
    def test_swap_expands_gap_below_control(self, gap_package, level):
        # CX(control=2, target=0) on 3 qubits: the root's children skip
        # level 1, so both swaps cross the identity gap.
        cx = build_gate_dd(gap_package, X_GATE, 3, 0, {2: 1})
        assert all(e.node.level < 1 for e in cx.node.edges)  # gap exists
        orig = matrix_to_numpy(cx, 3)
        swapped = swap_adjacent_levels(gap_package, cx, level, size=3)
        dense = matrix_to_numpy(swapped, 3)
        for row in range(8):
            for col in range(8):
                assert dense[swapped_bits(row, level, level + 1),
                             swapped_bits(col, level, level + 1)] \
                    == pytest.approx(orig[row, col], abs=1e-9)

    def test_swap_inside_gap_is_noop(self, gap_package):
        # CX(control=3, target=0) on 4 qubits: levels 1 and 2 are both
        # skipped; swapping two identity factors changes nothing.
        cx = build_gate_dd(gap_package, X_GATE, 4, 0, {3: 1})
        swapped = swap_adjacent_levels(gap_package, cx, 1, size=4)
        assert swapped.node is cx.node
        orig = matrix_to_numpy(cx, 4)
        assert np.allclose(matrix_to_numpy(swapped, 4), orig)

    def test_swap_above_low_root_is_noop(self, gap_package):
        # Root at level 0, swap window entirely in the identity levels
        # above it: only size= makes the swap legal at all.
        h = build_gate_dd(gap_package, [[2 ** -0.5, 2 ** -0.5],
                                        [2 ** -0.5, -(2 ** -0.5)]], 4, 0,
                          None)
        assert h.node.level == 0
        swapped = swap_adjacent_levels(gap_package, h, 2, size=4)
        assert swapped.node is h.node

    def test_permute_gapped_matrix_matches_dense(self, gap_package):
        cx = build_gate_dd(gap_package, X_GATE, 3, 0, {2: 1})
        perm = [2, 0, 1]
        permuted = permute_qubits(gap_package, cx, perm, size=3)
        orig = matrix_to_numpy(cx, 3)
        dense = matrix_to_numpy(permuted, 3)
        for row in range(8):
            for col in range(8):
                assert dense[apply_index_permutation(row, perm),
                             apply_index_permutation(col, perm)] \
                    == pytest.approx(orig[row, col], abs=1e-9)

    @pytest.mark.parametrize("level", [0, 1])
    def test_gapped_vector_swap_rejected(self, package, level):
        with pytest.raises(ValueError, match="skips level 1"):
            swap_adjacent_levels(package, gapped_vector_edge(), level)

    def test_short_vector_root_rejected_with_size(self, package):
        # A 2-level state declared as 3 qubits is a gap at the root.
        state = package.basis_state(2, 0b10)
        with pytest.raises(ValueError, match="skips level 2"):
            swap_adjacent_levels(package, state, 0, size=3)

    def test_gapped_vector_permute_rejected(self, package):
        state = package.basis_state(2, 0b01)
        with pytest.raises(ValueError, match="skips level"):
            permute_qubits(package, state, [1, 0, 2], size=3)

    def test_gapped_vector_sift_rejected(self, package):
        with pytest.raises(ValueError, match="skips level"):
            sift(package, gapped_vector_edge(), num_qubits=3)


class TestPermutation:
    def test_apply_index_permutation(self):
        # move bit0 -> position 2, bit1 -> 0, bit2 -> 1
        assert apply_index_permutation(0b001, [2, 0, 1]) == 0b100
        assert apply_index_permutation(0b110, [2, 0, 1]) == 0b011

    @given(amplitudes(3), st.permutations([0, 1, 2]))
    def test_property_permutation_reindexes(self, vec, perm):
        package = Package()
        state = vector_from_numpy(package, vec)
        permuted = permute_qubits(package, state, list(perm))
        dense = vector_to_numpy(permuted, 3)
        for index in range(8):
            assert dense[apply_index_permutation(index, perm)] \
                == pytest.approx(vec[index], abs=1e-6)

    def test_identity_permutation_is_noop(self, package):
        state = package.basis_state(4, 11)
        assert permute_qubits(package, state, [0, 1, 2, 3]).node \
            is state.node

    def test_inverse_permutation_round_trips(self, package):
        rng = np.random.default_rng(6)
        vec = rng.normal(size=16) + 1j * rng.normal(size=16)
        state = vector_from_numpy(package, vec)
        perm = [2, 0, 3, 1]
        inverse = [perm.index(i) for i in range(4)]
        back = permute_qubits(
            package, permute_qubits(package, state, perm), inverse)
        assert np.allclose(vector_to_numpy(back, 4), vec, atol=1e-9)

    def test_invalid_permutation_rejected(self, package):
        state = package.basis_state(3, 0)
        with pytest.raises(ValueError):
            permute_qubits(package, state, [0, 0, 1])


def paired_qubit_state(package, half: int):
    """Uniform superposition over indices where bit i == bit (i + half).

    Exponentially many nodes under the natural order (the first ``half``
    levels must remember all bits), linear once pairs are adjacent.
    """
    size = 1 << (2 * half)
    vec = np.zeros(size)
    for x in range(1 << half):
        vec[x | (x << half)] = 1.0
    vec /= np.linalg.norm(vec)
    return vector_from_numpy(package, vec)


class TestSifting:
    def test_sifting_shrinks_paired_state(self, package):
        half = 4
        state = paired_qubit_state(package, half)
        before = package.count_nodes(state)
        sifted, permutation = sift(package, state)
        after = package.count_nodes(sifted)
        assert after < before / 2
        assert sorted(permutation) == list(range(2 * half))

    def test_sifting_preserves_amplitudes(self, package):
        half = 3
        state = paired_qubit_state(package, half)
        sifted, permutation = sift(package, state)
        original = vector_to_numpy(state, 2 * half)
        reordered = vector_to_numpy(sifted, 2 * half)
        for index in range(1 << (2 * half)):
            assert reordered[apply_index_permutation(index, permutation)] \
                == pytest.approx(original[index], abs=1e-9)

    def test_sifting_never_grows_result(self, package):
        rng = np.random.default_rng(8)
        vec = rng.normal(size=32) + 1j * rng.normal(size=32)
        state = vector_from_numpy(package, vec)
        sifted, _ = sift(package, state)
        assert package.count_nodes(sifted) <= package.count_nodes(state)

    def test_sifting_trivial_inputs(self, package):
        zero_result, zero_perm = sift(package, package.zero)
        assert zero_result.weight == 0
        single = package.basis_state(1, 1)
        result, perm = sift(package, single)
        assert perm == [0]
        assert result.node is single.node

    def test_num_qubits_pins_permutation_length(self, package):
        # Zero and terminal edges have no height of their own; the caller's
        # num_qubits= must still yield a full-length identity permutation.
        _, perm = sift(package, package.zero, num_qubits=5)
        assert perm == [0, 1, 2, 3, 4]
        _, perm = sift(package, package.zero, num_qubits=0)
        assert perm == []
        single = package.basis_state(1, 0)
        _, perm = sift(package, single, num_qubits=1)
        assert perm == [0]

    def test_num_qubits_validation(self, package):
        with pytest.raises(ValueError, match="num_qubits"):
            sift(package, package.zero, num_qubits=-1)
        with pytest.raises(ValueError, match="taller"):
            sift(package, package.basis_state(3, 5), num_qubits=2)

    @pytest.mark.parametrize("max_growth", [1.0, 1.1, 2.0])
    def test_max_growth_abandon_keeps_contract(self, package, max_growth):
        # Early-abandoned sweeps must still return a full permutation and a
        # diagram no larger than the input; max_growth=1.0 abandons any
        # sweep on its first growing swap, the historically buggy path.
        rng = np.random.default_rng(11)
        vec = rng.normal(size=64) + 1j * rng.normal(size=64)
        state = vector_from_numpy(package, vec)
        sifted, permutation = sift(package, state, max_growth=max_growth)
        assert sorted(permutation) == list(range(6))
        assert package.count_nodes(sifted) <= package.count_nodes(state)
        dense = vector_to_numpy(sifted, 6)
        for index in range(64):
            assert dense[apply_index_permutation(index, permutation)] \
                == pytest.approx(vec[index], abs=1e-9)

    @given(amplitudes(3), st.permutations([0, 1, 2]))
    def test_property_permute_then_sift_round_trips(self, vec, perm):
        # Direction contract across the full pipeline: scramble with
        # permute_qubits, sift back, and the composed measurement remap
        # must recover every dense amplitude.
        package = Package()
        state = vector_from_numpy(package, vec)
        scrambled = permute_qubits(package, state, list(perm))
        sifted, sift_perm = sift(package, scrambled, num_qubits=3)
        total = [sift_perm[perm[q]] for q in range(3)]
        dense = vector_to_numpy(sifted, 3)
        for index in range(8):
            assert dense[apply_index_permutation(index, total)] \
                == pytest.approx(vec[index], abs=1e-6)
