"""Direct state constructors."""

import math
from random import Random

import numpy as np
import pytest

from repro.dd import (Package, ghz_state, product_state,
                      random_structured_state, uniform_superposition,
                      vector_to_numpy, w_state)


class TestProductState:
    def test_matches_kron(self, package):
        pairs = [(0.6, 0.8), (1 / math.sqrt(2), -1 / math.sqrt(2)),
                 (1.0, 0.0)]
        state = product_state(package, pairs)
        expected = np.array([1.0])
        for alpha, beta in reversed(pairs):  # most significant first
            expected = np.kron(expected, [alpha, beta])
        assert np.allclose(vector_to_numpy(state, 3), expected)

    def test_always_linear_size(self, package):
        pairs = [(math.cos(k), math.sin(k)) for k in range(1, 21)]
        state = product_state(package, pairs)
        assert package.count_nodes(state) == 20

    def test_zero_pair_rejected(self, package):
        with pytest.raises(ValueError):
            product_state(package, [(0, 0)])


class TestUniformSuperposition:
    def test_amplitudes(self, package):
        state = uniform_superposition(package, 4)
        dense = vector_to_numpy(state, 4)
        assert np.allclose(dense, np.full(16, 0.25))

    def test_unit_norm(self, package):
        state = uniform_superposition(package, 7)
        assert package.squared_norm(state) == pytest.approx(1.0)

    def test_single_node_per_level(self, package):
        state = uniform_superposition(package, 12)
        assert package.count_nodes(state) == 12


class TestGhz:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_amplitudes(self, package, n):
        state = ghz_state(package, n)
        dense = vector_to_numpy(state, n)
        expected = np.zeros(1 << n)
        expected[0] = expected[-1] = 1 / math.sqrt(2)
        assert np.allclose(dense, expected)

    def test_node_count(self, package):
        assert package.count_nodes(ghz_state(package, 10)) == 2 * 10 - 1

    def test_invalid_size(self, package):
        with pytest.raises(ValueError):
            ghz_state(package, 0)

    def test_matches_circuit_preparation(self, package):
        from repro.circuit import QuantumCircuit
        from repro.simulation import SimulationEngine
        qc = QuantumCircuit(4)
        qc.h(3)
        for q in (2, 1, 0):
            qc.cx(3, q)
        result = SimulationEngine(package).simulate(qc)
        assert package.fidelity(result.state, ghz_state(package, 4)) \
            == pytest.approx(1.0)


class TestWState:
    @pytest.mark.parametrize("n", [1, 2, 3, 6])
    def test_amplitudes(self, package, n):
        state = w_state(package, n)
        dense = vector_to_numpy(state, n)
        for index in range(1 << n):
            expected = 1 / math.sqrt(n) if bin(index).count("1") == 1 else 0
            assert dense[index] == pytest.approx(expected)

    def test_linear_node_count(self, package):
        assert package.count_nodes(w_state(package, 15)) <= 2 * 15

    def test_unit_norm(self, package):
        assert package.squared_norm(w_state(package, 9)) \
            == pytest.approx(1.0)

    def test_invalid_size(self, package):
        with pytest.raises(ValueError):
            w_state(package, 0)


class TestRandomStructured:
    def test_unit_norm_and_bounded_size(self, package):
        rng = Random(3)
        state = random_structured_state(package, 10, rng, branches=4)
        assert package.squared_norm(state) == pytest.approx(1.0)
        assert package.count_nodes(state) <= 4 * 10

    def test_deterministic_for_seed(self, package):
        a = random_structured_state(package, 6, Random(5), branches=3)
        b = random_structured_state(package, 6, Random(5), branches=3)
        assert a.node is b.node

    def test_invalid_branches(self, package):
        with pytest.raises(ValueError):
            random_structured_state(package, 4, Random(0), branches=0)
