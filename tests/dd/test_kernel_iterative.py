"""The iterative worklist kernel (:mod:`repro.dd.kernel`).

The flat-array kernel is the tentpole of the vectorised-kernel PR: it must
be bit-for-bit interchangeable (up to the complex table's tolerance) with
the recursive per-node core it shadows.  These tests pin the pieces the
differential suite cannot see in isolation: the fused sign-canonical add
memo, store compaction with in-place root remapping, identity-skipping
matrix mirrors, the dense-block escape hatch, and the cache-statistics
surface the benchmark harness reads.
"""

import numpy as np
import pytest

from repro.dd import (Package, build_gate_dd, matrix_to_numpy,
                      vector_from_numpy, vector_to_numpy)
from repro.dd.kernel import DenseState, FlatEdge

H = ((2 ** -0.5, 2 ** -0.5), (2 ** -0.5, -(2 ** -0.5)))


def random_amplitudes(rng, num_qubits):
    amps = rng.normal(size=1 << num_qubits) \
        + 1j * rng.normal(size=1 << num_qubits)
    return amps / np.linalg.norm(amps)


def import_state(package, amps):
    """A flat state holding ``amps`` (via the recursive builder + import)."""
    return package.flat.import_vector(vector_from_numpy(package, amps))


def flat_to_numpy(package, edge, num_qubits):
    return np.array([package.amplitude(edge, i)
                     for i in range(1 << num_qubits)])


class TestRecursiveEquivalence:
    """Flat add / mult_mv / apply_gate agree with the recursive core."""

    def test_add_matches_recursive(self):
        rng = np.random.default_rng(11)
        for num_qubits in (1, 3, 5):
            x = random_amplitudes(rng, num_qubits)
            y = random_amplitudes(rng, num_qubits)
            recursive = Package()
            expected = vector_to_numpy(
                recursive.add_vectors(vector_from_numpy(recursive, x),
                                      vector_from_numpy(recursive, y)),
                num_qubits)
            package = Package(kernel="iterative")
            result = package.add_vectors(import_state(package, x),
                                         import_state(package, y))
            assert type(result) is FlatEdge
            np.testing.assert_allclose(
                flat_to_numpy(package, result, num_qubits), expected,
                atol=1e-10)
            assert package.flat.check_invariants() == []

    def test_mult_mv_matches_recursive(self):
        rng = np.random.default_rng(13)
        for trial in range(10):
            num_qubits = int(rng.integers(2, 6))
            q, _ = np.linalg.qr(rng.normal(size=(2, 2))
                                + 1j * rng.normal(size=(2, 2)))
            target = int(rng.integers(num_qubits))
            controls = {q_: 1 for q_ in rng.choice(
                [q_ for q_ in range(num_qubits) if q_ != target],
                size=min(1, num_qubits - 1), replace=False)}
            amps = random_amplitudes(rng, num_qubits)

            recursive = Package()
            gate = build_gate_dd(recursive, q, num_qubits, target, controls)
            expected = vector_to_numpy(
                recursive.multiply_matrix_vector(
                    gate, vector_from_numpy(recursive, amps)), num_qubits)

            package = Package(kernel="iterative")
            gate = build_gate_dd(package, q, num_qubits, target, controls)
            result = package.multiply_matrix_vector(
                gate, import_state(package, amps))
            np.testing.assert_allclose(
                flat_to_numpy(package, result, num_qubits), expected,
                atol=1e-10)

    def test_apply_gate_matches_recursive(self):
        rng = np.random.default_rng(17)
        num_qubits = 5
        recursive = Package()
        package = Package(kernel="iterative", dense_blocks=False)
        rec_state = recursive.basis_state(num_qubits, 0)
        flat_state = package.flat.basis_state(num_qubits, 0)
        for _ in range(25):
            q, _ = np.linalg.qr(rng.normal(size=(2, 2))
                                + 1j * rng.normal(size=(2, 2)))
            matrix = tuple(tuple(row) for row in q)
            target = int(rng.integers(num_qubits))
            controls = None
            if rng.random() < 0.4:
                other = int(rng.choice(
                    [q_ for q_ in range(num_qubits) if q_ != target]))
                controls = ((other, int(rng.integers(2))),)
            rec_state = recursive.apply_gate(rec_state, matrix, target,
                                             controls)
            flat_state = package.apply_gate(flat_state, matrix, target,
                                            controls)
        np.testing.assert_allclose(
            flat_to_numpy(package, flat_state, num_qubits),
            vector_to_numpy(rec_state, num_qubits), atol=1e-9)


class TestFusedAddMemo:
    """One memo entry answers both ``x + r*y`` and ``x - r*y``."""

    def test_plus_then_minus_hits(self):
        rng = np.random.default_rng(23)
        package = Package(kernel="iterative")
        flat = package.flat
        x = import_state(package, random_amplitudes(rng, 4))
        y = import_state(package, random_amplitudes(rng, 4))
        plus = flat.add(x, y)
        hits_after_plus = flat.add_hits
        minus = flat.add(x, FlatEdge(flat, y.index, -y.weight))
        # the second (sign-flipped) addition is answered entirely from the
        # fused entries' other halves: hits grow, no new entries appear
        assert flat.add_hits > hits_after_plus
        xv = flat_to_numpy(package, x, 4)
        yv = flat_to_numpy(package, y, 4)
        np.testing.assert_allclose(flat_to_numpy(package, plus, 4),
                                   xv + yv, atol=1e-10)
        np.testing.assert_allclose(flat_to_numpy(package, minus, 4),
                                   xv - yv, atol=1e-10)

    def test_operand_order_is_canonical(self):
        rng = np.random.default_rng(29)
        package = Package(kernel="iterative")
        flat = package.flat
        x = import_state(package, random_amplitudes(rng, 4))
        y = import_state(package, random_amplitudes(rng, 4))
        flat.add(x, y)
        entries_after_first = len(flat.pair_memo)
        flat.add(y, x)  # swapped operands must reuse the same entries
        assert len(flat.pair_memo) == entries_after_first


class TestCompaction:
    """``collect`` drops dead slots, remaps roots in place, stays canonical."""

    def test_collect_preserves_roots_and_frees_dead_slots(self):
        rng = np.random.default_rng(31)
        package = Package(kernel="iterative")
        flat = package.flat
        keep_amps = random_amplitudes(rng, 5)
        kept = import_state(package, keep_amps)
        dead = import_state(package, random_amplitudes(rng, 5))
        live_before = flat.live_nodes
        freed = flat.collect([kept])
        assert freed > 0
        assert flat.live_nodes < live_before
        assert dead  # only referenced above; its slots are gone
        np.testing.assert_allclose(flat_to_numpy(package, kept, 5),
                                   keep_amps, atol=1e-10)
        assert flat.check_invariants() == []

    def test_collect_clears_memos_and_matrix_mirror(self):
        rng = np.random.default_rng(37)
        package = Package(kernel="iterative")
        flat = package.flat
        state = import_state(package, random_amplitudes(rng, 4))
        gate = build_gate_dd(package, H, 4, 1)
        state = package.multiply_matrix_vector(gate, state)
        assert len(flat.mult_memo) > 0 and len(flat.mlvl) > 1
        flat.collect([state])
        assert len(flat.mult_memo) == 0
        assert len(flat.mlvl) == 1  # matrix mirror dropped wholesale
        # the mirror rebuilds transparently on the next multiplication
        again = package.multiply_matrix_vector(
            build_gate_dd(package, H, 4, 1), state)
        assert again.weight != 0


class TestIdentityEdges:
    """Identity-skipping matrix DDs: collapse, multiplication, audit."""

    def test_gate_dd_collapses_identity_levels(self):
        package = Package(kernel="iterative", identity_edges=True)
        gate = build_gate_dd(package, H, num_qubits=6, target=0)
        # levels 5..1 are identity factors; with skipping edges the root
        # sits directly at the target level
        assert gate.node.level == 0

    def test_matrix_to_numpy_expands_gaps(self):
        package = Package(kernel="iterative", identity_edges=True)
        gate = build_gate_dd(package, H, num_qubits=4, target=1,
                             controls={3: 1})
        dense = matrix_to_numpy(gate, 4)
        reference = Package()
        expected = matrix_to_numpy(
            build_gate_dd(reference, H, 4, 1, {3: 1}), 4)
        np.testing.assert_allclose(dense, expected, atol=1e-12)

    def test_mult_through_gaps_matches_plain(self):
        rng = np.random.default_rng(41)
        amps = random_amplitudes(rng, 5)
        plain = Package()
        expected = vector_to_numpy(
            plain.multiply_matrix_vector(
                build_gate_dd(plain, H, 5, 2, {0: 1}),
                vector_from_numpy(plain, amps)), 5)
        package = Package(kernel="iterative", identity_edges=True)
        result = package.multiply_matrix_vector(
            build_gate_dd(package, H, 5, 2, {0: 1}),
            import_state(package, amps))
        np.testing.assert_allclose(flat_to_numpy(package, result, 5),
                                   expected, atol=1e-10)

    def test_identity_edge_dds_audit_clean(self):
        rng = np.random.default_rng(43)
        package = Package(kernel="iterative", identity_edges=True)
        state = import_state(package, random_amplitudes(rng, 5))
        for target in range(5):
            state = package.multiply_matrix_vector(
                build_gate_dd(package, H, 5, target), state)
        assert package.check_invariants([state]) == []
        assert package.flat.check_invariants() == []


class TestDenseBlocks:
    """to_dense / from_dense round-trips and the dense apply path."""

    def test_roundtrip(self):
        rng = np.random.default_rng(47)
        package = Package(kernel="iterative")
        amps = random_amplitudes(rng, 6)
        edge = import_state(package, amps)
        dense = package.flat.to_dense(edge)
        assert type(dense) is DenseState
        np.testing.assert_allclose(dense.amps, amps, atol=1e-10)
        back = dense.to_flat()
        assert type(back) is FlatEdge
        np.testing.assert_allclose(flat_to_numpy(package, back, 6), amps,
                                   atol=1e-10)
        assert package.flat.check_invariants() == []

    def test_solidify(self):
        rng = np.random.default_rng(53)
        package = Package(kernel="iterative")
        amps = random_amplitudes(rng, 4)
        edge = import_state(package, amps)
        assert package.solidify(edge) is edge  # non-dense passes through
        solid = package.solidify(package.flat.to_dense(edge))
        assert type(solid) is FlatEdge
        np.testing.assert_allclose(flat_to_numpy(package, solid, 4), amps,
                                   atol=1e-10)

    def test_apply_gate_stays_dense_and_matches(self):
        rng = np.random.default_rng(59)
        num_qubits = 5
        package = Package(kernel="iterative")
        recursive = Package()
        amps = random_amplitudes(rng, num_qubits)
        dense = package.flat.to_dense(import_state(package, amps))
        rec_state = vector_from_numpy(recursive, amps)
        for _ in range(12):
            q, _ = np.linalg.qr(rng.normal(size=(2, 2))
                                + 1j * rng.normal(size=(2, 2)))
            matrix = tuple(tuple(row) for row in q)
            target = int(rng.integers(num_qubits))
            controls = None
            if rng.random() < 0.5:
                other = int(rng.choice(
                    [q_ for q_ in range(num_qubits) if q_ != target]))
                controls = ((other, 1),)
            dense = package.apply_gate(dense, matrix, target, controls)
            assert type(dense) is DenseState
            rec_state = recursive.apply_gate(rec_state, matrix, target,
                                             controls)
        np.testing.assert_allclose(
            dense.amps, vector_to_numpy(rec_state, num_qubits), atol=1e-9)

    def test_cached_flat_mirror_survives_collection(self):
        rng = np.random.default_rng(61)
        package = Package(kernel="iterative")
        amps = random_amplitudes(rng, 4)
        dense = package.flat.to_dense(import_state(package, amps))
        first = dense.to_flat()
        assert dense.to_flat() is first  # cached within a generation
        package.flat.collect([])  # compaction invalidates the mirror
        rebuilt = dense.to_flat()
        assert rebuilt is not first
        np.testing.assert_allclose(flat_to_numpy(package, rebuilt, 4), amps,
                                   atol=1e-10)

    def test_dense_blocks_off_never_cuts_over(self):
        from repro.circuit import QuantumCircuit
        from repro.simulation import SequentialStrategy, SimulationEngine
        circuit = QuantumCircuit(6, name="dense-off")
        for qubit in range(6):
            circuit.h(qubit)
        for _ in range(4):
            for qubit in range(5):
                circuit.cx(qubit, qubit + 1)
            for qubit in range(6):
                circuit.t(qubit)
        package = Package(kernel="iterative", dense_blocks=False)
        engine = SimulationEngine(package=package, use_local_apply=True)
        result = engine.simulate(circuit, SequentialStrategy())
        assert type(result.state) is FlatEdge
        assert package.flat.stats()["dense"]["cutovers"] == 0


class TestDeterministicCutover:
    """``Package(deterministic=True)``: the integer-rule cutover.

    The EWMA cost model carries float smoothing state between passes; the
    deterministic mode replaces it with an integer rule over the worklist
    units of the single pass just counted, so the cutover gate is a pure
    function of the operation stream -- identical across runs, machines,
    and worker interleavings.
    """

    @staticmethod
    def _run(deterministic, num_qubits=4, gates=40, seed=59):
        rng = np.random.default_rng(seed)
        package = Package(kernel="iterative", deterministic=deterministic)
        recursive = Package()
        amps = random_amplitudes(rng, num_qubits)
        state = import_state(package, amps)
        rec_state = vector_from_numpy(recursive, amps)
        cut_at = None
        for index in range(gates):
            q, _ = np.linalg.qr(rng.normal(size=(2, 2))
                                + 1j * rng.normal(size=(2, 2)))
            matrix = tuple(tuple(row) for row in q)
            target = int(rng.integers(num_qubits))
            controls = None
            if rng.random() < 0.5:
                other = int(rng.choice(
                    [q_ for q_ in range(num_qubits) if q_ != target]))
                controls = ((other, 1),)
            state = package.apply_gate(state, matrix, target, controls)
            rec_state = recursive.apply_gate(rec_state, matrix, target,
                                             controls)
            if cut_at is None and type(state) is DenseState:
                cut_at = index
        return cut_at, package.flat.stats()["dense"], state, \
            vector_to_numpy(rec_state, num_qubits)

    def test_cutover_fires_without_float_smoothing_state(self):
        cut_at, stats, state, oracle = self._run(deterministic=True)
        assert cut_at is not None
        assert stats["cutovers"] == 1
        assert stats["ewma_units"] is None  # no EWMA state accumulated
        assert type(state) is DenseState
        np.testing.assert_allclose(state.amps, oracle, atol=1e-9)

    def test_cutover_is_reproducible_run_to_run(self):
        first = self._run(deterministic=True)
        second = self._run(deterministic=True)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_integer_rule_tracks_the_ewma_boundary(self):
        # Same decision boundary, calibration constants cancelled: on a
        # dense random-unitary stream both modes cut over, and at the
        # same gate for this workload.
        det_cut, _, _, _ = self._run(deterministic=True)
        ewma_cut, ewma_stats, _, _ = self._run(deterministic=False)
        assert ewma_stats["cutovers"] == 1
        assert det_cut == ewma_cut


class TestCacheStatsSurface:
    """The statistics shape the bench harness and regression gate read."""

    def test_zero_lookup_tables_report_zero_hit_rate(self):
        stats = Package().cache_stats()
        for name, table in stats["compute"].items():
            assert table["hit_rate"] == 0.0, name  # 0.0, never NaN
            assert table["entries"] == 0, name
            assert table["capacity"] > 0, name

    def test_kernel_memo_traffic_merges_into_compute_rows(self):
        rng = np.random.default_rng(67)
        package = Package(kernel="iterative")
        x = import_state(package, random_amplitudes(rng, 4))
        y = import_state(package, random_amplitudes(rng, 4))
        package.add_vectors(x, y)
        package.add_vectors(x, y)
        stats = package.cache_stats()
        assert "kernel" in stats
        kernel_add = stats["kernel"]["add_vec"]
        assert kernel_add["lookups"] > 0
        merged = stats["compute"]["add_vec"]
        assert merged["lookups"] >= kernel_add["lookups"]
        assert merged["hits"] >= kernel_add["hits"]
        assert 0.0 <= merged["hit_rate"] <= 1.0
        assert merged["entries"] >= kernel_add["entries"]

    def test_dense_counters_reported(self):
        package = Package(kernel="iterative")
        dense = package.cache_stats()["kernel"]["dense"]
        assert dense["applies"] == 0
        assert dense["cutovers"] == 0


class TestAddVecHitRateOnGrover:
    """Regression gate: the cache-key redesign must keep paying off.

    Historically ``add_vec`` ran at a 100% miss rate (weights baked into
    the keys made every butterfly addition unique).  With canonical
    modulo-weight keys and the fused +/- entries, the Grover-10 bench
    workload sustains ~0.5; gate at > 0.3 so a key regression cannot land
    silently.
    """

    def test_grover_10_add_vec_hit_rate(self):
        from repro.bench import WORKLOADS
        from repro.simulation import SequentialStrategy, SimulationEngine
        (workload,) = [w for w in WORKLOADS if w.name == "grover_10"]
        package = Package(kernel="iterative", identity_edges=True)
        engine = SimulationEngine(package=package, use_local_apply=True)
        engine.simulate(workload.build(), SequentialStrategy())
        merged = package.cache_stats()["compute"]["add_vec"]
        assert merged["lookups"] > 0
        assert merged["hit_rate"] > 0.3, merged
