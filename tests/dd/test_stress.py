"""Stress and failure-injection tests for the DD package.

Caches and garbage collection are pure optimisations: the package must
produce bit-identical results when they are crippled.  These tests inject
pathological configurations (tiny caches, constant eviction, aggressive GC,
coarse tolerances, deep registers) and verify semantics survive.
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.dd import (Package, matrix_from_numpy, matrix_to_numpy,
                      vector_from_numpy, vector_to_numpy)
from repro.simulation import SimulationEngine


def crippled_package(slots: int = 1) -> Package:
    """A package whose compute tables overwrite on almost every insert."""
    from repro.dd.compute_table import ComputeTable
    package = Package()
    tables = package.tables
    for name in ("add_vec", "add_mat", "mult_mv", "mult_mm", "kron_vec",
                 "kron_mat", "conj_t", "inner", "apply_gate"):
        setattr(tables, name, ComputeTable(name, slots=slots))
    return package


class TestCacheEviction:
    def test_multiplication_correct_under_constant_eviction(self):
        rng = np.random.default_rng(1)
        m = rng.normal(size=(16, 16)) + 1j * rng.normal(size=(16, 16))
        v = rng.normal(size=16) + 1j * rng.normal(size=16)
        package = crippled_package()
        result = package.multiply_matrix_vector(
            matrix_from_numpy(package, m), vector_from_numpy(package, v))
        assert np.allclose(vector_to_numpy(result, 4), m @ v, atol=1e-8)

    def test_matrix_product_correct_under_constant_eviction(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        package = crippled_package()
        result = package.multiply_matrix_matrix(
            matrix_from_numpy(package, a), matrix_from_numpy(package, b))
        assert np.allclose(matrix_to_numpy(result, 3), a @ b, atol=1e-8)

    def test_whole_simulation_under_constant_eviction(self):
        from repro.algorithms import supremacy_circuit
        from repro.baseline import simulate_statevector
        instance = supremacy_circuit(2, 3, 8, seed=5)
        engine = SimulationEngine(crippled_package())
        result = engine.simulate(instance.circuit)
        assert np.allclose(vector_to_numpy(result.state, 6),
                           simulate_statevector(instance.circuit),
                           atol=1e-8)

    def test_evictions_actually_happened(self):
        package = crippled_package()
        rng = np.random.default_rng(3)
        m = rng.normal(size=(8, 8))
        package.multiply_matrix_vector(
            matrix_from_numpy(package, m),
            vector_from_numpy(package, rng.normal(size=8)))
        assert package.tables.mult_mv.collisions > 0 \
            or package.tables.add_vec.collisions > 0


class TestAggressiveGarbageCollection:
    def test_gc_after_every_gate(self):
        from repro.baseline import simulate_statevector
        qc = QuantumCircuit(4)
        qc.h(0).cx(0, 1).t(1).cx(1, 2).sx(3).ccx(0, 2, 3).h(2)
        engine = SimulationEngine(gc_node_limit=1)  # collect constantly
        result = engine.simulate(qc)
        assert np.allclose(vector_to_numpy(result.state, 4),
                           simulate_statevector(qc), atol=1e-9)

    def test_gc_with_empty_roots_leaves_identity_cache(self):
        package = Package()
        package.identity(6)
        package.basis_state(6, 5)
        package.garbage_collect([])
        assert np.allclose(matrix_to_numpy(package.identity(6), 6),
                           np.eye(64))

    def test_repeated_gc_is_idempotent(self):
        package = Package()
        state = package.basis_state(5, 21)
        package.garbage_collect([state])
        first = package.live_node_count()
        package.garbage_collect([state])
        assert package.live_node_count() == first


class TestDeepRegisters:
    def test_64_qubit_basis_state(self):
        package = Package()
        index = int("10" * 32, 2)
        state = package.basis_state(64, index)
        assert package.amplitude(state, index) == 1
        assert package.count_nodes(state) == 64

    def test_64_qubit_ghz(self):
        from repro.dd import ghz_state
        package = Package()
        state = ghz_state(package, 64)
        assert package.squared_norm(state) == pytest.approx(1.0)
        assert abs(package.amplitude(state, (1 << 64) - 1)) \
            == pytest.approx(2 ** -0.5)

    def test_wide_gate_application(self):
        package = Package()
        from repro.dd import build_gate_dd
        h = [[2 ** -0.5, 2 ** -0.5], [2 ** -0.5, -(2 ** -0.5)]]
        gate = build_gate_dd(package, h, 48, 24)
        state = package.multiply_matrix_vector(gate,
                                               package.zero_state(48))
        assert package.squared_norm(state) == pytest.approx(1.0)
        assert package.count_nodes(state) == 48


class TestCoarseTolerance:
    def test_coarse_tolerance_still_simulates_correctly(self):
        # 1e-4 tolerance merges aggressively but must not corrupt a short
        # Clifford+T circuit whose amplitudes are well separated
        from repro.baseline import simulate_statevector
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).t(1).cx(1, 2).h(2)
        engine = SimulationEngine(Package(tolerance=1e-4))
        result = engine.simulate(qc)
        assert np.allclose(vector_to_numpy(result.state, 3),
                           simulate_statevector(qc), atol=1e-3)

    def test_fine_tolerance_distinguishes_close_rotations(self):
        package = Package(tolerance=1e-13)
        qc_a = QuantumCircuit(1)
        qc_a.rz(0.5, 0)
        qc_b = QuantumCircuit(1)
        qc_b.rz(0.5 + 1e-9, 0)
        engine = SimulationEngine(package)
        a = engine.simulate(qc_a, initial_state=package.basis_state(1, 1))
        b = engine.simulate(qc_b, initial_state=package.basis_state(1, 1))
        assert a.amplitude(1) != b.amplitude(1)


class TestNumericalRobustness:
    def test_long_product_of_rotations_keeps_unit_norm(self):
        package = Package()
        engine = SimulationEngine(package)
        qc = QuantumCircuit(2)
        for k in range(200):
            qc.rz(0.1 + k * 1e-3, 0)
            qc.rx(0.07, 1)
            qc.cx(0, 1)
        result = engine.simulate(qc)
        assert package.squared_norm(result.state) == pytest.approx(
            1.0, abs=1e-7)

    def test_repeated_hadamards_return_exactly(self):
        package = Package()
        engine = SimulationEngine(package)
        qc = QuantumCircuit(1)
        for _ in range(100):
            qc.h(0)
        result = engine.simulate(qc)
        # even number of H -> |0> exactly (tolerance snapping keeps it clean)
        assert result.probability(0) == pytest.approx(1.0, abs=1e-9)
        assert result.state_nodes() == 1
