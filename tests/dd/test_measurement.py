"""Measurement, projection and sampling on state DDs."""

import math
from random import Random

import numpy as np
import pytest
from hypothesis import given

from repro.dd import (Package, all_probabilities, measure_qubit,
                      project_qubit, qubit_probability, sample_bitstring,
                      sample_counts, vector_from_numpy, vector_to_numpy)

from ..conftest import unit_vectors


def bell_state(package):
    return vector_from_numpy(package,
                             np.array([1, 0, 0, 1]) / math.sqrt(2))


class TestQubitProbability:
    def test_basis_state_probabilities(self, package):
        state = package.basis_state(3, 0b101)
        assert qubit_probability(package, state, 0) == 1.0
        assert qubit_probability(package, state, 1) == 0.0
        assert qubit_probability(package, state, 2) == 1.0

    def test_bell_state_is_balanced(self, package):
        state = bell_state(package)
        assert abs(qubit_probability(package, state, 0) - 0.5) < 1e-12
        assert abs(qubit_probability(package, state, 1) - 0.5) < 1e-12

    def test_unnormalised_state_handled(self, package):
        state = vector_from_numpy(package, np.array([3, 0, 0, 4]))
        assert abs(qubit_probability(package, state, 0) - 16 / 25) < 1e-9

    def test_zero_state_rejected(self, package):
        with pytest.raises(ValueError):
            qubit_probability(package, package.zero, 0)

    def test_out_of_range_qubit_rejected(self, package):
        with pytest.raises(ValueError):
            qubit_probability(package, package.basis_state(2, 0), 5)

    @given(unit_vectors(3))
    def test_matches_dense_marginal(self, vec):
        package = Package()
        state = vector_from_numpy(package, vec)
        for qubit in range(3):
            expected = sum(abs(vec[i]) ** 2 for i in range(8)
                           if (i >> qubit) & 1)
            assert abs(qubit_probability(package, state, qubit)
                       - expected) < 1e-6


class TestProjection:
    def test_projection_collapses_bell_state(self, package):
        state = bell_state(package)
        collapsed = project_qubit(package, state, 0, 1)
        dense = vector_to_numpy(collapsed, 2)
        assert np.allclose(np.abs(dense), [0, 0, 0, 1])

    def test_projection_renormalises(self, package):
        state = bell_state(package)
        collapsed = project_qubit(package, state, 1, 0)
        assert abs(package.squared_norm(collapsed) - 1) < 1e-9

    def test_projection_without_renormalise(self, package):
        state = bell_state(package)
        collapsed = project_qubit(package, state, 1, 0, renormalise=False)
        assert abs(package.squared_norm(collapsed) - 0.5) < 1e-9

    def test_projection_onto_unsupported_branch_is_zero(self, package):
        state = package.basis_state(2, 0)
        collapsed = project_qubit(package, state, 0, 1)
        assert collapsed.weight == 0

    def test_invalid_value_rejected(self, package):
        with pytest.raises(ValueError):
            project_qubit(package, package.basis_state(1, 0), 0, 2)

    @given(unit_vectors(3))
    def test_projection_matches_dense(self, vec):
        package = Package()
        state = vector_from_numpy(package, vec)
        qubit, value = 1, 1
        mass = sum(abs(vec[i]) ** 2 for i in range(8) if (i >> qubit) & 1)
        if mass < 1e-6:
            return
        expected = np.array([vec[i] if ((i >> qubit) & 1) == value else 0
                             for i in range(8)]) / math.sqrt(mass)
        collapsed = project_qubit(package, state, qubit, value)
        assert np.allclose(vector_to_numpy(collapsed, 3), expected,
                           atol=1e-6)


class TestMeasureQubit:
    def test_deterministic_outcome(self, package):
        state = package.basis_state(3, 0b010)
        outcome, collapsed, probability = measure_qubit(
            package, state, 1, Random(0))
        assert outcome == 1
        assert probability == pytest.approx(1.0)
        assert abs(package.amplitude(collapsed, 0b010)) == pytest.approx(1.0)

    def test_statistics_of_balanced_measurement(self, package):
        state = bell_state(package)
        rng = Random(123)
        outcomes = [measure_qubit(package, state, 0, rng)[0]
                    for _ in range(400)]
        ones = sum(outcomes)
        assert 140 < ones < 260  # ~N(200, 10)

    def test_collapse_is_consistent_with_outcome(self, package):
        state = bell_state(package)
        outcome, collapsed, _ = measure_qubit(package, state, 0, Random(7))
        assert qubit_probability(package, collapsed, 0) == pytest.approx(
            float(outcome))


class TestSampling:
    def test_sample_bitstring_respects_support(self, package):
        state = bell_state(package)
        rng = Random(5)
        for _ in range(50):
            assert sample_bitstring(package, state, rng) in (0, 3)

    def test_sample_counts_total(self, package):
        state = bell_state(package)
        counts = sample_counts(package, state, 100, Random(9))
        assert sum(counts.values()) == 100
        assert set(counts) <= {0, 3}

    def test_sampling_distribution(self, package):
        vec = np.array([math.sqrt(0.8), 0, 0, math.sqrt(0.2)])
        state = vector_from_numpy(package, vec)
        counts = sample_counts(package, state, 1000, Random(11))
        assert counts.get(0, 0) > counts.get(3, 0)
        assert 700 < counts.get(0, 0) < 900

    def test_sample_zero_vector_rejected(self, package):
        with pytest.raises(ValueError):
            sample_bitstring(package, package.zero, Random(0))


class TestAllProbabilities:
    def test_sums_to_one(self, package):
        state = bell_state(package)
        probabilities = all_probabilities(package, state, 2)
        assert abs(sum(probabilities) - 1) < 1e-9

    @given(unit_vectors(2))
    def test_matches_dense(self, vec):
        package = Package()
        state = vector_from_numpy(package, vec)
        probabilities = all_probabilities(package, state, 2)
        assert np.allclose(probabilities, np.abs(vec) ** 2, atol=1e-6)
