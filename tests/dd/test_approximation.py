"""State approximation by branch pruning."""

import math

import numpy as np
import pytest

from repro.dd import (Package, prune_small_contributions, vector_from_numpy,
                      vector_to_numpy)


def lopsided_state(package, epsilon: float):
    """Mostly |00>, with a tiny amplitude on |11>."""
    vec = np.array([math.sqrt(1 - epsilon ** 2), 0, 0, epsilon])
    return vector_from_numpy(package, vec)


class TestPruning:
    def test_zero_budget_is_identity(self, package):
        state = lopsided_state(package, 0.1)
        result = prune_small_contributions(package, state, 0.0)
        assert result.state is state
        assert result.fidelity == 1.0
        assert result.edges_cut == 0

    def test_tiny_branch_pruned(self, package):
        epsilon = 1e-3
        state = lopsided_state(package, epsilon)
        result = prune_small_contributions(package, state, 1e-4)
        assert result.edges_cut >= 1
        dense = vector_to_numpy(result.state, 2)
        assert dense[3] == 0
        assert abs(dense[0]) == pytest.approx(1.0)

    def test_fidelity_reported_accurately(self, package):
        epsilon = 0.01
        state = lopsided_state(package, epsilon)
        result = prune_small_contributions(package, state, 1e-3)
        expected_fidelity = 1 - epsilon ** 2
        assert result.fidelity == pytest.approx(expected_fidelity, abs=1e-9)

    def test_result_is_normalised(self, package):
        state = lopsided_state(package, 0.05)
        result = prune_small_contributions(package, state, 0.01)
        assert package.squared_norm(result.state) == pytest.approx(1.0)

    def test_budget_respected(self, package):
        # state with 4 branches of masses 0.4, 0.3, 0.2, 0.1
        amplitudes = np.sqrt(np.array([0.4, 0.3, 0.2, 0.1]))
        state = vector_from_numpy(package, amplitudes)
        result = prune_small_contributions(package, state, 0.15)
        # only the 0.1 branch fits in the budget
        assert result.fidelity == pytest.approx(0.9, abs=1e-9)

    def test_large_branches_survive(self, package):
        amplitudes = np.array([0.6, 0.0, 0.0, 0.8])
        state = vector_from_numpy(package, amplitudes)
        result = prune_small_contributions(package, state, 0.1)
        dense = vector_to_numpy(result.state, 2)
        assert abs(dense[0]) > 0 and abs(dense[3]) > 0

    def test_node_count_shrinks(self, package):
        # many tiny independent branches on top of one dominant one
        rng = np.random.default_rng(5)
        vec = np.zeros(64)
        vec[0] = 1.0
        noise_indices = rng.choice(np.arange(1, 64), size=10, replace=False)
        vec[noise_indices] = 1e-4
        vec /= np.linalg.norm(vec)
        state = vector_from_numpy(package, vec)
        result = prune_small_contributions(package, state, 1e-6)
        assert result.nodes_after < result.nodes_before
        assert result.fidelity > 0.999999

    def test_everything_cut_refused(self, package):
        state = package.basis_state(2, 1)
        # budget below 1.0 never allows cutting the only branch (mass 1.0)
        result = prune_small_contributions(package, state, 0.9)
        assert result.state.weight != 0
        assert result.fidelity == pytest.approx(1.0)


class TestValidation:
    def test_bad_budget_rejected(self, package):
        state = package.basis_state(1, 0)
        with pytest.raises(ValueError):
            prune_small_contributions(package, state, 1.0)
        with pytest.raises(ValueError):
            prune_small_contributions(package, state, -0.1)

    def test_zero_state_rejected(self, package):
        with pytest.raises(ValueError):
            prune_small_contributions(package, package.zero, 0.1)
