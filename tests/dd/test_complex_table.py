"""Unit tests for the complex-number interning table."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dd.complex_table import DEFAULT_TOLERANCE, ComplexTable, polar_str


class TestLookup:
    def test_exact_value_round_trips(self):
        table = ComplexTable()
        value = complex(0.25, -0.75)
        assert table.lookup(value) == value

    def test_repeated_lookup_returns_same_object(self):
        table = ComplexTable()
        first = table.lookup(complex(0.3, 0.4))
        second = table.lookup(complex(0.3, 0.4))
        assert first == second

    def test_nearby_values_share_representative(self):
        table = ComplexTable(tolerance=1e-10)
        first = table.lookup(complex(0.5, 0.5))
        second = table.lookup(complex(0.5 + 1e-12, 0.5 - 1e-12))
        assert second == first

    def test_distant_values_stay_distinct(self):
        table = ComplexTable(tolerance=1e-10)
        first = table.lookup(complex(0.5, 0.0))
        second = table.lookup(complex(0.5 + 1e-6, 0.0))
        assert first != second

    def test_near_zero_snaps_to_exact_zero(self):
        table = ComplexTable()
        assert table.lookup(complex(1e-14, -1e-14)) == 0j

    def test_near_one_snaps_to_exact_one(self):
        table = ComplexTable()
        assert table.lookup(complex(1 + 1e-13, 1e-13)) == 1 + 0j

    def test_bucket_boundary_values_merge(self):
        # Values straddling a bucket boundary must still find each other via
        # the neighbour search.
        tolerance = 1e-10
        table = ComplexTable(tolerance=tolerance)
        boundary = 7 * tolerance
        a = table.lookup(complex(boundary - tolerance * 0.4, 0.0))
        b = table.lookup(complex(boundary + tolerance * 0.4, 0.0))
        assert a == b

    def test_nan_rejected(self):
        table = ComplexTable()
        with pytest.raises(ValueError):
            table.lookup(complex(float("nan"), 0.0))

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            ComplexTable(tolerance=0.0)

    @given(st.floats(-2, 2, allow_nan=False), st.floats(-2, 2, allow_nan=False))
    def test_lookup_is_within_tolerance_of_input(self, re, im):
        table = ComplexTable()
        result = table.lookup(complex(re, im))
        assert abs(result.real - re) < table.tolerance
        assert abs(result.imag - im) < table.tolerance

    @given(st.floats(-2, 2, allow_nan=False), st.floats(-2, 2, allow_nan=False))
    def test_lookup_is_idempotent(self, re, im):
        table = ComplexTable()
        once = table.lookup(complex(re, im))
        twice = table.lookup(once)
        assert once == twice


class TestPredicates:
    def test_is_zero(self):
        table = ComplexTable()
        assert table.is_zero(1e-12)
        assert not table.is_zero(1e-6)

    def test_is_one(self):
        table = ComplexTable()
        assert table.is_one(1 + 1e-12j)
        assert not table.is_one(1.001)

    def test_approx_equal(self):
        table = ComplexTable()
        assert table.approx_equal(0.5 + 0.5j, 0.5 + 1e-13 + 0.5j)
        assert not table.approx_equal(0.5, 0.6)


class TestHousekeeping:
    def test_clear_resets_statistics(self):
        table = ComplexTable()
        table.lookup(0.123 + 0.456j)
        table.clear()
        assert table.hits == 0
        # zero and one are re-seeded
        assert table.lookup(0j) == 0j
        assert table.lookup(1 + 0j) == 1 + 0j

    def test_len_counts_entries(self):
        table = ComplexTable()
        before = len(table)
        table.lookup(0.111 + 0.222j)
        assert len(table) == before + 1

    def test_default_tolerance_sane(self):
        assert 0 < DEFAULT_TOLERANCE < 1e-6


def test_polar_str_mentions_magnitude_and_angle():
    text = polar_str(complex(0, 1))
    assert "1" in text and "0.5" in text  # magnitude 1 at angle 0.5 pi


def test_sqrt_half_is_preseeded():
    table = ComplexTable()
    value = table.lookup(complex(math.sqrt(0.5), 0))
    assert value == complex(math.sqrt(0.5), 0)
