"""Gate-DD construction vs. explicitly assembled numpy operators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dd import (Package, build_diagonal_dd, build_gate_dd,
                      build_two_level_dd, matrix_to_numpy)

H = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
X = np.array([[0, 1], [1, 0]])
S = np.array([[1, 0], [0, 1j]])
T_GATE = np.array([[1, 0], [0, np.exp(0.25j * np.pi)]])


def dense_controlled_gate(u, num_qubits, target, controls):
    """Reference construction of the full operator with numpy."""
    size = 1 << num_qubits
    matrix = np.eye(size, dtype=complex)
    for col in range(size):
        if all(((col >> q) & 1) == v for q, v in controls.items()):
            bit = (col >> target) & 1
            matrix[:, col] = 0
            for new_bit in (0, 1):
                row = (col & ~(1 << target)) | (new_bit << target)
                matrix[row, col] = u[new_bit][bit]
    return matrix


class TestUncontrolled:
    @pytest.mark.parametrize("target", [0, 1, 2])
    @pytest.mark.parametrize("u", [H, X, S], ids=["H", "X", "S"])
    def test_single_qubit_gates(self, package, target, u):
        edge = build_gate_dd(package, u, 3, target)
        expected = dense_controlled_gate(u, 3, target, {})
        assert np.allclose(matrix_to_numpy(edge, 3), expected)

    def test_gate_dd_is_linear_size(self, package):
        edge = build_gate_dd(package, H, 20, 10)
        # one node per qubit level above/below plus the gate node
        assert package.count_nodes(edge) <= 2 * 20

    def test_target_out_of_range(self, package):
        with pytest.raises(ValueError):
            build_gate_dd(package, H, 3, 5)


class TestControlled:
    @pytest.mark.parametrize("target,control", [(0, 1), (1, 0), (2, 0),
                                                (0, 2), (1, 2)])
    def test_cx_all_positions(self, package, target, control):
        edge = build_gate_dd(package, X, 3, target, {control: 1})
        expected = dense_controlled_gate(X, 3, target, {control: 1})
        assert np.allclose(matrix_to_numpy(edge, 3), expected)

    def test_negative_control(self, package):
        edge = build_gate_dd(package, X, 2, 1, {0: 0})
        expected = dense_controlled_gate(X, 2, 1, {0: 0})
        assert np.allclose(matrix_to_numpy(edge, 2), expected)

    def test_toffoli(self, package):
        edge = build_gate_dd(package, X, 3, 2, {0: 1, 1: 1})
        expected = dense_controlled_gate(X, 3, 2, {0: 1, 1: 1})
        assert np.allclose(matrix_to_numpy(edge, 3), expected)

    def test_mixed_controls_above_and_below(self, package):
        controls = {0: 1, 3: 0}
        edge = build_gate_dd(package, H, 4, 2, controls)
        expected = dense_controlled_gate(H, 4, 2, controls)
        assert np.allclose(matrix_to_numpy(edge, 4), expected)

    def test_many_controls_still_linear(self, package):
        controls = {q: 1 for q in range(9) if q != 4}
        edge = build_gate_dd(package, X, 9, 4, controls)
        assert package.count_nodes(edge) <= 3 * 9
        expected = dense_controlled_gate(X, 9, 4, controls)
        assert np.allclose(matrix_to_numpy(edge, 9), expected)

    def test_control_equals_target_rejected(self, package):
        with pytest.raises(ValueError):
            build_gate_dd(package, X, 3, 1, {1: 1})

    def test_bad_control_value_rejected(self, package):
        with pytest.raises(ValueError):
            build_gate_dd(package, X, 3, 1, {0: 2})

    def test_control_sequence_forms(self, package):
        # bare ints and (qubit, value) tuples both accepted
        a = build_gate_dd(package, X, 3, 2, [0, 1])
        b = build_gate_dd(package, X, 3, 2, {0: 1, 1: 1})
        assert a.node is b.node

    @given(st.integers(0, 3), st.integers(0, 3), st.integers(0, 1))
    def test_random_controlled_gates(self, target, control, value):
        if target == control:
            return
        package = Package()
        edge = build_gate_dd(package, T_GATE, 4, target, {control: value})
        expected = dense_controlled_gate(T_GATE, 4, target, {control: value})
        assert np.allclose(matrix_to_numpy(edge, 4), expected)


class TestDiagonal:
    def test_diagonal_from_sequence(self, package):
        phases = [1, -1, 1j, -1j]
        edge = build_diagonal_dd(package, phases, 2)
        assert np.allclose(matrix_to_numpy(edge, 2), np.diag(phases))

    def test_diagonal_from_callable(self, package):
        edge = build_diagonal_dd(
            package, lambda i: -1 if i == 5 else 1, 3)
        expected = np.diag([-1 if i == 5 else 1 for i in range(8)])
        assert np.allclose(matrix_to_numpy(edge, 3), expected)

    def test_grover_oracle_diagonal_is_compact(self, package):
        edge = build_diagonal_dd(
            package, lambda i: -1 if i == 123 else 1, 10)
        # one path to the flipped entry: linear, not exponential
        assert package.count_nodes(edge) <= 2 * 10

    def test_wrong_length_rejected(self, package):
        with pytest.raises(ValueError):
            build_diagonal_dd(package, [1, 1, 1], 2)


class TestTwoLevel:
    def test_two_level_unitary(self, package):
        u = np.array([[0, 1], [1, 0]])
        edge = build_two_level_dd(package, 3, 2, 5, u)
        expected = np.eye(8, dtype=complex)
        expected[2, 2] = 0
        expected[5, 5] = 0
        expected[2, 5] = 1
        expected[5, 2] = 1
        assert np.allclose(matrix_to_numpy(edge, 3), expected)

    def test_two_level_rotation(self, package):
        theta = 0.7
        u = np.array([[np.cos(theta), -np.sin(theta)],
                      [np.sin(theta), np.cos(theta)]])
        edge = build_two_level_dd(package, 2, 0, 3, u)
        expected = np.eye(4, dtype=complex)
        expected[0, 0] = u[0, 0]
        expected[0, 3] = u[0, 1]
        expected[3, 0] = u[1, 0]
        expected[3, 3] = u[1, 1]
        assert np.allclose(matrix_to_numpy(edge, 2), expected)

    def test_index_order_respected(self, package):
        u = np.array([[0.6, 0.8], [-0.8, 0.6]])
        forward = build_two_level_dd(package, 2, 1, 2, u)
        dense = matrix_to_numpy(forward, 2)
        assert np.isclose(dense[1, 1], 0.6)
        assert np.isclose(dense[1, 2], 0.8)
        swapped = build_two_level_dd(package, 2, 2, 1, u)
        dense_swapped = matrix_to_numpy(swapped, 2)
        assert np.isclose(dense_swapped[2, 2], 0.6)
        assert np.isclose(dense_swapped[2, 1], 0.8)

    def test_same_indices_rejected(self, package):
        with pytest.raises(ValueError):
            build_two_level_dd(package, 2, 1, 1, np.eye(2))

    def test_out_of_range_rejected(self, package):
        with pytest.raises(ValueError):
            build_two_level_dd(package, 2, 0, 4, np.eye(2))

    def test_two_level_on_larger_system_is_compact(self, package):
        u = np.array([[0, 1], [1, 0]])
        edge = build_two_level_dd(package, 12, 100, 200, u)
        assert package.count_nodes(edge) <= 6 * 12
