"""DD arithmetic (add, MxV, MxM, kron, adjoint, inner product) vs. numpy."""

import numpy as np
import pytest
from hypothesis import given

from repro.dd import (Package, matrix_from_numpy, matrix_to_numpy,
                      vector_from_numpy, vector_to_numpy)

from ..conftest import amplitudes, square_matrices


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestAddition:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_vector_addition_matches_numpy(self, package, n):
        rng = _rng(n)
        x = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        y = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        result = package.add_vectors(vector_from_numpy(package, x),
                                     vector_from_numpy(package, y))
        assert np.allclose(vector_to_numpy(result, n), x + y)

    def test_matrix_addition_matches_numpy(self, package):
        rng = _rng(7)
        a = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        result = package.add_matrices(matrix_from_numpy(package, a),
                                      matrix_from_numpy(package, b))
        assert np.allclose(matrix_to_numpy(result, 3), a + b)

    def test_add_zero_is_identity_element(self, package):
        x = package.basis_state(3, 5)
        assert package.add_vectors(x, package.zero) is x
        assert package.add_vectors(package.zero, x) is x

    def test_add_opposites_gives_zero(self, package):
        x = package.basis_state(2, 1)
        minus = package._scaled(x, -1)
        result = package.add_vectors(x, minus)
        assert result.weight == 0

    def test_add_same_node_cancelling_weights_is_zero_edge(self, package):
        # regression: the same-node branch in Package._add must map exact
        # cancellation to the canonical zero edge, not a zero-weight edge
        # onto a live node
        rng = _rng(11)
        x = rng.normal(size=8) + 1j * rng.normal(size=8)
        dx = vector_from_numpy(package, x)
        minus = package._scaled(dx, -1)
        result = package.add_vectors(dx, minus)
        assert result.weight == 0
        assert result.node is package.zero.node

    def test_add_same_node_partial_cancellation(self, package):
        x = package.basis_state(3, 6)
        half = package._scaled(x, -0.5)
        result = package.add_vectors(x, half)
        assert result.node is x.node
        assert abs(result.weight - 0.5) < 1e-12

    def test_add_same_node_doubles_weight(self, package):
        x = package.basis_state(2, 3)
        result = package.add_vectors(x, x)
        assert result.node is x.node
        assert abs(result.weight - 2) < 1e-12

    @given(amplitudes(2), amplitudes(2))
    def test_addition_commutes(self, x, y):
        package = Package()
        dx = vector_from_numpy(package, x)
        dy = vector_from_numpy(package, y)
        xy = vector_to_numpy(package.add_vectors(dx, dy), 2)
        yx = vector_to_numpy(package.add_vectors(dy, dx), 2)
        assert np.allclose(xy, yx, atol=1e-7)


class TestMatrixVector:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_matches_numpy(self, package, n):
        rng = _rng(10 + n)
        m = rng.normal(size=(1 << n, 1 << n)) \
            + 1j * rng.normal(size=(1 << n, 1 << n))
        v = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        result = package.multiply_matrix_vector(
            matrix_from_numpy(package, m), vector_from_numpy(package, v))
        assert np.allclose(vector_to_numpy(result, n), m @ v)

    def test_zero_matrix_gives_zero(self, package):
        v = package.basis_state(2, 1)
        assert package.multiply_matrix_vector(package.zero, v).weight == 0

    def test_zero_vector_gives_zero(self, package):
        m = package.identity(2)
        assert package.multiply_matrix_vector(m, package.zero).weight == 0

    def test_identity_is_neutral(self, package):
        rng = _rng(2)
        v = rng.normal(size=8) + 1j * rng.normal(size=8)
        dv = vector_from_numpy(package, v)
        result = package.multiply_matrix_vector(package.identity(3), dv)
        assert result.node is dv.node
        assert abs(result.weight - dv.weight) < 1e-9

    def test_level_mismatch_rejected(self, package):
        with pytest.raises(ValueError):
            package.multiply_matrix_vector(package.identity(2),
                                           package.basis_state(3, 0))

    @given(square_matrices(2), amplitudes(2))
    def test_random_matches_numpy(self, m, v):
        package = Package()
        result = package.multiply_matrix_vector(
            matrix_from_numpy(package, m), vector_from_numpy(package, v))
        assert np.allclose(vector_to_numpy(result, 2), m @ v, atol=1e-6)

    @given(square_matrices(2), amplitudes(2), amplitudes(2))
    def test_linearity(self, m, x, y):
        package = Package()
        dm = matrix_from_numpy(package, m)
        lhs = package.multiply_matrix_vector(
            dm, package.add_vectors(vector_from_numpy(package, x),
                                    vector_from_numpy(package, y)))
        rhs = package.add_vectors(
            package.multiply_matrix_vector(dm, vector_from_numpy(package, x)),
            package.multiply_matrix_vector(dm, vector_from_numpy(package, y)))
        assert np.allclose(vector_to_numpy(lhs, 2), vector_to_numpy(rhs, 2),
                           atol=1e-6)


class TestMatrixMatrix:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_numpy(self, package, n):
        rng = _rng(20 + n)
        a = rng.normal(size=(1 << n, 1 << n)) \
            + 1j * rng.normal(size=(1 << n, 1 << n))
        b = rng.normal(size=(1 << n, 1 << n)) \
            + 1j * rng.normal(size=(1 << n, 1 << n))
        result = package.multiply_matrix_matrix(
            matrix_from_numpy(package, a), matrix_from_numpy(package, b))
        assert np.allclose(matrix_to_numpy(result, n), a @ b)

    def test_identity_absorbs(self, package):
        rng = _rng(4)
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        da = matrix_from_numpy(package, a)
        left = package.multiply_matrix_matrix(package.identity(2), da)
        right = package.multiply_matrix_matrix(da, package.identity(2))
        assert np.allclose(matrix_to_numpy(left, 2), a)
        assert np.allclose(matrix_to_numpy(right, 2), a)

    @given(square_matrices(2), square_matrices(2), amplitudes(2))
    def test_associativity_with_vector(self, a, b, v):
        """(A B) v == A (B v) -- the identity Eq. 1 vs Eq. 2 relies on."""
        package = Package()
        da = matrix_from_numpy(package, a)
        db = matrix_from_numpy(package, b)
        dv = vector_from_numpy(package, v)
        eq2 = package.multiply_matrix_vector(
            package.multiply_matrix_matrix(da, db), dv)
        eq1 = package.multiply_matrix_vector(
            da, package.multiply_matrix_vector(db, dv))
        assert np.allclose(vector_to_numpy(eq1, 2), vector_to_numpy(eq2, 2),
                           atol=1e-6)

    def test_counters_distinguish_mm_from_mv(self, package):
        a = package.identity(3)
        v = package.basis_state(3, 0)
        before = package.counters.snapshot()
        package.multiply_matrix_matrix(a, a)
        mid = package.counters.snapshot()
        package.multiply_matrix_vector(a, v)
        end = package.counters.snapshot()
        assert mid.delta(before).mult_mm_recursions > 0
        assert mid.delta(before).mult_mv_recursions == 0
        assert end.delta(mid).mult_mv_recursions > 0


class TestKronecker:
    def test_vector_kron_matches_numpy(self, package):
        rng = _rng(31)
        x = rng.normal(size=4) + 1j * rng.normal(size=4)
        y = rng.normal(size=8) + 1j * rng.normal(size=8)
        result = package.kron_vectors(vector_from_numpy(package, x),
                                      vector_from_numpy(package, y))
        assert np.allclose(vector_to_numpy(result, 5), np.kron(x, y))

    def test_matrix_kron_matches_numpy(self, package):
        rng = _rng(32)
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        b = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        result = package.kron_matrices(matrix_from_numpy(package, a),
                                       matrix_from_numpy(package, b))
        assert np.allclose(matrix_to_numpy(result, 3), np.kron(a, b))

    def test_kron_with_zero(self, package):
        x = package.basis_state(2, 1)
        assert package.kron_vectors(x, package.zero).weight == 0
        assert package.kron_vectors(package.zero, x).weight == 0

    def test_kron_with_scalar(self, package):
        x = package.basis_state(2, 1)
        doubled = package.kron_vectors(package.terminal_edge(2), x)
        assert doubled.node is x.node
        assert abs(doubled.weight - 2) < 1e-12

    def test_kron_of_basis_states_concatenates(self, package):
        top = package.basis_state(2, 0b10)
        bottom = package.basis_state(3, 0b011)
        combined = package.kron_vectors(top, bottom)
        assert abs(package.amplitude(combined, 0b10011) - 1) < 1e-12


class TestAdjointAndInner:
    def test_conjugate_transpose_matches_numpy(self, package):
        rng = _rng(41)
        a = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        result = package.conjugate_transpose(matrix_from_numpy(package, a))
        assert np.allclose(matrix_to_numpy(result, 3), a.conj().T)

    def test_adjoint_is_involution(self, package):
        rng = _rng(42)
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        da = matrix_from_numpy(package, a)
        twice = package.conjugate_transpose(package.conjugate_transpose(da))
        assert np.allclose(matrix_to_numpy(twice, 2), a)

    def test_inner_product_matches_numpy(self, package):
        rng = _rng(43)
        x = rng.normal(size=8) + 1j * rng.normal(size=8)
        y = rng.normal(size=8) + 1j * rng.normal(size=8)
        value = package.inner_product(vector_from_numpy(package, x),
                                      vector_from_numpy(package, y))
        assert abs(value - np.vdot(x, y)) < 1e-8

    def test_squared_norm_of_basis_state(self, package):
        assert abs(package.squared_norm(package.basis_state(4, 9)) - 1) < 1e-12

    def test_fidelity_of_orthogonal_states(self, package):
        a = package.basis_state(3, 1)
        b = package.basis_state(3, 2)
        assert package.fidelity(a, b) == 0
        assert abs(package.fidelity(a, a) - 1) < 1e-12

    def test_inner_product_size_mismatch_rejected(self, package):
        with pytest.raises(ValueError):
            package.inner_product(package.basis_state(2, 0),
                                  package.basis_state(3, 0))

    @given(amplitudes(3))
    def test_unitary_preserves_norm(self, v):
        package = Package()
        from repro.dd import build_gate_dd
        h = [[2 ** -0.5, 2 ** -0.5], [2 ** -0.5, -(2 ** -0.5)]]
        gate = build_gate_dd(package, h, 3, 1)
        dv = vector_from_numpy(package, v)
        result = package.multiply_matrix_vector(gate, dv)
        assert abs(package.squared_norm(result)
                   - package.squared_norm(dv)) < 1e-6
