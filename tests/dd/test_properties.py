"""Hypothesis property tests of the DD algebra.

Each test encodes a linear-algebra identity that must hold for *any*
operands; hypothesis searches for counterexamples.  These are the deepest
correctness nets in the suite: a subtle normalisation or caching bug
virtually always breaks one of them.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.dd import (Package, matrix_from_numpy, matrix_to_numpy,
                      vector_from_numpy, vector_to_numpy)

from ..conftest import amplitudes, square_matrices

_ATOL = 1e-5


class TestAdditionAlgebra:
    @given(amplitudes(2), amplitudes(2), amplitudes(2))
    def test_associativity(self, x, y, z):
        package = Package()
        dx, dy, dz = (vector_from_numpy(package, v) for v in (x, y, z))
        left = package.add_vectors(package.add_vectors(dx, dy), dz)
        right = package.add_vectors(dx, package.add_vectors(dy, dz))
        assert np.allclose(vector_to_numpy(left, 2),
                           vector_to_numpy(right, 2), atol=_ATOL)

    @given(amplitudes(3))
    def test_adding_negation_annihilates(self, x):
        package = Package()
        dx = vector_from_numpy(package, x)
        minus = package._scaled(dx, -1)
        result = package.add_vectors(dx, minus)
        assert np.allclose(vector_to_numpy(result, 3)
                           if result.weight != 0 else np.zeros(8),
                           np.zeros(8), atol=_ATOL)


class TestMultiplicationAlgebra:
    @given(square_matrices(2), square_matrices(2), square_matrices(2))
    def test_matrix_product_associativity(self, a, b, c):
        package = Package()
        da, db, dc = (matrix_from_numpy(package, m) for m in (a, b, c))
        left = package.multiply_matrix_matrix(
            package.multiply_matrix_matrix(da, db), dc)
        right = package.multiply_matrix_matrix(
            da, package.multiply_matrix_matrix(db, dc))
        assert np.allclose(matrix_to_numpy(left, 2),
                           matrix_to_numpy(right, 2), atol=_ATOL)

    @given(square_matrices(2), square_matrices(2), amplitudes(2))
    def test_distributivity_over_vector_addition(self, a, b, v):
        package = Package()
        da = matrix_from_numpy(package, a)
        db = matrix_from_numpy(package, b)
        dv = vector_from_numpy(package, v)
        left = package.multiply_matrix_vector(package.add_matrices(da, db),
                                              dv)
        right = package.add_vectors(package.multiply_matrix_vector(da, dv),
                                    package.multiply_matrix_vector(db, dv))
        assert np.allclose(vector_to_numpy(left, 2),
                           vector_to_numpy(right, 2), atol=_ATOL)

    @given(square_matrices(2), square_matrices(2))
    def test_adjoint_reverses_products(self, a, b):
        package = Package()
        da = matrix_from_numpy(package, a)
        db = matrix_from_numpy(package, b)
        left = package.conjugate_transpose(
            package.multiply_matrix_matrix(da, db))
        right = package.multiply_matrix_matrix(
            package.conjugate_transpose(db), package.conjugate_transpose(da))
        assert np.allclose(matrix_to_numpy(left, 2),
                           matrix_to_numpy(right, 2), atol=_ATOL)


class TestKroneckerAlgebra:
    @given(square_matrices(1), square_matrices(1), square_matrices(1),
           square_matrices(1))
    def test_mixed_product_identity(self, a, b, c, d):
        """(A (x) B)(C (x) D) = (AC) (x) (BD)."""
        package = Package()
        da, db, dc, dd_ = (matrix_from_numpy(package, m)
                           for m in (a, b, c, d))
        left = package.multiply_matrix_matrix(
            package.kron_matrices(da, db), package.kron_matrices(dc, dd_))
        right = package.kron_matrices(
            package.multiply_matrix_matrix(da, dc),
            package.multiply_matrix_matrix(db, dd_))
        assert np.allclose(matrix_to_numpy(left, 2),
                           matrix_to_numpy(right, 2), atol=_ATOL)

    @given(square_matrices(1), amplitudes(1), square_matrices(1),
           amplitudes(1))
    def test_kron_action_factorises(self, a, x, b, y):
        """(A (x) B)(x (x) y) = (A x) (x) (B y)."""
        package = Package()
        da = matrix_from_numpy(package, a)
        db = matrix_from_numpy(package, b)
        dx = vector_from_numpy(package, x)
        dy = vector_from_numpy(package, y)
        left = package.multiply_matrix_vector(
            package.kron_matrices(da, db), package.kron_vectors(dx, dy))
        right = package.kron_vectors(
            package.multiply_matrix_vector(da, dx),
            package.multiply_matrix_vector(db, dy))
        assert np.allclose(vector_to_numpy(left, 2),
                           vector_to_numpy(right, 2), atol=_ATOL)


class TestInnerProductAlgebra:
    @given(amplitudes(2), amplitudes(2))
    def test_conjugate_symmetry(self, x, y):
        package = Package()
        dx = vector_from_numpy(package, x)
        dy = vector_from_numpy(package, y)
        forward = package.inner_product(dx, dy)
        backward = package.inner_product(dy, dx)
        assert abs(forward - backward.conjugate()) < _ATOL

    @given(amplitudes(2))
    def test_cauchy_schwarz_with_self(self, x):
        package = Package()
        dx = vector_from_numpy(package, x)
        norm = package.squared_norm(dx)
        assert norm >= -_ATOL
        assert abs(norm - np.linalg.norm(x) ** 2) < _ATOL

    @given(square_matrices(2), amplitudes(2), amplitudes(2))
    def test_adjoint_moves_across_inner_product(self, a, x, y):
        """<x | A y> = <A^dagger x | y>."""
        package = Package()
        da = matrix_from_numpy(package, a)
        dx = vector_from_numpy(package, x)
        dy = vector_from_numpy(package, y)
        left = package.inner_product(dx,
                                     package.multiply_matrix_vector(da, dy))
        right = package.inner_product(
            package.multiply_matrix_vector(package.conjugate_transpose(da),
                                           dx), dy)
        assert abs(left - right) < _ATOL


class TestCanonicityProperties:
    @given(amplitudes(3), st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=-3.14, max_value=3.14))
    def test_scaled_vectors_share_node(self, x, magnitude, angle):
        """c * v and v must share the same node for any non-zero scalar.

        Components near the snapping tolerance are filtered: scaling can
        move them across the snap-to-zero threshold, legitimately changing
        the structure.
        """
        parts = np.abs(np.concatenate([x.real, x.imag]))
        if np.any((parts > 0) & (parts < 1e-6)):
            return
        package = Package()
        scalar = magnitude * complex(np.cos(angle), np.sin(angle))
        a = vector_from_numpy(package, x)
        b = vector_from_numpy(package, scalar * x)
        assert a.node is b.node

    @given(amplitudes(2), amplitudes(2))
    def test_equal_sums_are_identical_objects(self, x, y):
        """x + y built two ways interns to the same node.

        Canonicity under a snapping tolerance only holds for values away
        from the snapping threshold, so near-tolerance components are
        filtered out (they may legitimately round differently on the two
        construction paths).
        """
        boundary = 1e-6
        for vector in (x, y, x + y):
            magnitudes = np.abs(np.concatenate(
                [vector.real, vector.imag]))
            if np.any((magnitudes > 0) & (magnitudes < boundary)):
                return
        package = Package()
        dx = vector_from_numpy(package, x)
        dy = vector_from_numpy(package, y)
        via_add = package.add_vectors(dx, dy)
        via_dense = vector_from_numpy(package, x + y)
        if via_add.weight == 0 or via_dense.weight == 0:
            assert abs(via_add.weight) < _ATOL \
                and abs(via_dense.weight) < _ATOL
        else:
            assert via_add.node is via_dense.node
