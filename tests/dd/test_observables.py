"""Observable expectation values on state DDs."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dd import (Package, diagonal_expectation, expectation_value,
                      ghz_state, matrix_to_numpy, pauli_expectation,
                      pauli_string_dd, uniform_superposition,
                      vector_from_numpy)
from repro.dd.observables import PAULI_MATRICES

from ..conftest import unit_vectors


class TestPauliStringDD:
    def test_string_form_orders_most_significant_first(self, package):
        dd = pauli_string_dd(package, "XZ", 2)
        expected = np.kron(PAULI_MATRICES["X"], PAULI_MATRICES["Z"])
        assert np.allclose(matrix_to_numpy(dd, 2), expected)

    def test_mapping_form(self, package):
        dd = pauli_string_dd(package, {0: "Y"}, 3)
        expected = np.kron(np.eye(4), PAULI_MATRICES["Y"])
        assert np.allclose(matrix_to_numpy(dd, 3), expected)

    def test_identity_string(self, package):
        dd = pauli_string_dd(package, "III", 3)
        assert dd.node is package.identity(3).node

    def test_linear_node_count(self, package):
        dd = pauli_string_dd(package, "XYZXYZXYZX", 10)
        assert package.count_nodes(dd) == 10

    def test_wrong_length_rejected(self, package):
        with pytest.raises(ValueError):
            pauli_string_dd(package, "XX", 3)

    def test_unknown_letter_rejected(self, package):
        with pytest.raises(ValueError):
            pauli_string_dd(package, "XQ", 2)

    def test_out_of_range_qubit_rejected(self, package):
        with pytest.raises(ValueError):
            pauli_string_dd(package, {5: "X"}, 2)


class TestPauliExpectation:
    def test_z_on_basis_states(self, package):
        assert pauli_expectation(package, {0: "Z"},
                                 package.basis_state(2, 0), 2) \
            == pytest.approx(1.0)
        assert pauli_expectation(package, {0: "Z"},
                                 package.basis_state(2, 1), 2) \
            == pytest.approx(-1.0)

    def test_x_on_plus_state(self, package):
        plus = uniform_superposition(package, 1)
        assert pauli_expectation(package, "X", plus, 1) == pytest.approx(1.0)

    def test_ghz_correlations(self, package):
        ghz = ghz_state(package, 3)
        # <Z_i Z_j> = 1, <Z_i> = 0, <XXX> = 1 for 3-qubit GHZ
        assert pauli_expectation(package, {0: "Z", 1: "Z"}, ghz, 3) \
            == pytest.approx(1.0)
        assert pauli_expectation(package, {0: "Z"}, ghz, 3) \
            == pytest.approx(0.0)
        assert pauli_expectation(package, "XXX", ghz, 3) \
            == pytest.approx(1.0)

    @given(unit_vectors(2), st.sampled_from(["XX", "ZI", "YZ", "XY"]))
    def test_matches_dense(self, vec, pauli):
        package = Package()
        state = vector_from_numpy(package, vec)
        dense_op = np.kron(PAULI_MATRICES[pauli[0]], PAULI_MATRICES[pauli[1]])
        expected = np.vdot(vec, dense_op @ vec).real
        assert pauli_expectation(package, pauli, state, 2) \
            == pytest.approx(expected, abs=1e-6)

    def test_expectation_value_general_matrix(self, package):
        from repro.dd import matrix_from_numpy
        rng = np.random.default_rng(3)
        op = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        vec = rng.normal(size=4) + 1j * rng.normal(size=4)
        state = vector_from_numpy(package, vec)
        value = expectation_value(package, matrix_from_numpy(package, op),
                                  state)
        assert value == pytest.approx(complex(np.vdot(vec, op @ vec)),
                                      abs=1e-8)


class TestDiagonalExpectation:
    def test_bit_count_on_basis_state(self, package):
        state = package.basis_state(4, 0b1011)
        result = diagonal_expectation(package, state,
                                      lambda x: bin(x).count("1"))
        assert result == pytest.approx(3.0)

    def test_ghz_average(self, package):
        ghz = ghz_state(package, 5)
        result = diagonal_expectation(package, ghz,
                                      lambda x: bin(x).count("1"))
        assert result == pytest.approx(2.5)  # (0 + 5) / 2

    def test_matches_pauli_z(self, package):
        state = vector_from_numpy(
            package, np.array([0.6, 0.0, 0.0, 0.8]))
        via_diag = diagonal_expectation(
            package, state, lambda x: 1 - 2 * (x & 1))
        via_pauli = pauli_expectation(package, {0: "Z"}, state, 2)
        assert via_diag == pytest.approx(via_pauli)

    def test_zero_state_rejected(self, package):
        with pytest.raises(ValueError):
            diagonal_expectation(package, package.zero, lambda x: 1.0)

    def test_maxcut_style_value(self, package):
        # cut value of edge (0,1) on |01> is 1
        state = package.basis_state(2, 0b01)

        def cut(x):
            return ((x >> 0) & 1) ^ ((x >> 1) & 1)

        assert diagonal_expectation(package, state, cut) == pytest.approx(1.0)
