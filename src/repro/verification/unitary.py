"""Full-circuit unitary construction and DD-based equivalence checking.

A direct application of the machinery the paper studies: multiplying *all*
of a circuit's gate matrices together (pure Eq. 2) yields the circuit's
functionality as one matrix DD.  That is rarely the fastest way to simulate
a single input state -- but it is exactly how DD-based *equivalence
checking* works: two circuits are equivalent iff their unitary DDs coincide
(up to global phase), and the canonicity of the diagrams makes the final
comparison a pointer check.

The module also supports the classic "G then inverse of G'" scheme: build
``U_good^dagger @ U_candidate`` and verify it is the identity, which keeps
the intermediate diagrams close to the (linear-sized) identity whenever the
two circuits are similar.
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from ..dd.edge import Edge
from ..dd.package import Package
from ..simulation.engine import SimulationEngine

__all__ = ["circuit_unitary_dd", "EquivalenceResult", "check_equivalence"]


def circuit_unitary_dd(engine: SimulationEngine,
                       circuit: QuantumCircuit) -> Edge:
    """The whole circuit as one matrix DD (identity for an empty circuit)."""
    package = engine.package
    unitary = package.identity(circuit.num_qubits)
    for operation in circuit.operations():
        gate = engine.gate_dd(operation, circuit.num_qubits)
        unitary = package.multiply_matrix_matrix(gate, unitary)
    return unitary


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: the relative global phase between the two circuits (when equivalent)
    global_phase: complex | None
    #: which scheme decided: "pointer" (canonical DD comparison) or
    #: "miter" (U_a^dagger U_b vs identity)
    method: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def _phase_between(package: Package, a: Edge, b: Edge) -> complex | None:
    """If ``a = c * b`` for a unit-magnitude scalar ``c``, return ``c``."""
    if a.node is not b.node:
        return None
    if b.weight == 0:
        return 1 + 0j if a.weight == 0 else None
    ratio = a.weight / b.weight
    if abs(abs(ratio) - 1.0) > 1e-9:
        return None
    return ratio


def check_equivalence(circuit_a: QuantumCircuit, circuit_b: QuantumCircuit,
                      up_to_global_phase: bool = True,
                      method: str = "miter",
                      engine: SimulationEngine | None = None) -> EquivalenceResult:
    """Decide whether two circuits implement the same unitary.

    Parameters
    ----------
    up_to_global_phase:
        Quantum-mechanically, circuits differing only in a global phase are
        indistinguishable; with ``False`` exact matrix equality is required.
    method:
        ``"miter"`` (default) multiplies ``circuit_b``'s gates and the
        *inverted* ``circuit_a`` gates and compares against the identity --
        cheap when the circuits are close.  ``"pointer"`` builds both
        unitaries independently and compares the canonical diagrams.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return EquivalenceResult(False, None, method)
    engine = engine or SimulationEngine()
    package = engine.package

    if method == "pointer":
        unitary_a = circuit_unitary_dd(engine, circuit_a)
        unitary_b = circuit_unitary_dd(engine, circuit_b)
        phase = _phase_between(package, unitary_a, unitary_b)
    elif method == "miter":
        combined = QuantumCircuit(circuit_a.num_qubits, name="miter")
        combined.compose(circuit_b)
        combined.compose(circuit_a.inverse())
        miter = circuit_unitary_dd(engine, combined)
        identity = package.identity(circuit_a.num_qubits)
        phase = _phase_between(package, miter, identity)
        if phase is not None:
            # miter = U_a^dagger U_b = conj(c) I when U_a = c U_b; report c
            # so both methods agree on the meaning of the phase.
            phase = phase.conjugate()
    else:
        raise ValueError(f"unknown method {method!r}; use 'miter' or "
                         "'pointer'")

    if phase is None:
        return EquivalenceResult(False, None, method)
    if not up_to_global_phase and abs(phase - 1) > 1e-9:
        return EquivalenceResult(False, phase, method)
    return EquivalenceResult(True, phase, method)
