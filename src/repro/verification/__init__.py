"""DD-based circuit verification (equivalence checking).

Equivalence checking is the classic *other* use of the paper's machinery:
it is pure matrix-matrix multiplication (Eq. 2, followed completely), and
the canonicity of decision diagrams reduces the final unitary comparison to
a pointer check.
"""

from .functional import OracleCheckResult, check_implements_function
from .unitary import EquivalenceResult, check_equivalence, circuit_unitary_dd

__all__ = ["EquivalenceResult", "OracleCheckResult",
           "check_equivalence", "check_implements_function",
           "circuit_unitary_dd"]
