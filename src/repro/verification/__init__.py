"""DD-based circuit verification (equivalence checking and fuzzing).

Equivalence checking is the classic *other* use of the paper's machinery:
it is pure matrix-matrix multiplication (Eq. 2, followed completely), and
the canonicity of decision diagrams reduces the final unitary comparison to
a pointer check.

:mod:`repro.verification.fuzz` extends the idea into a continuous
service: random circuits cross-checked across every registered backend,
with automatic minimization of failing circuits into a reproducer corpus.
:mod:`repro.verification.plans` adds the *option surface* -- kernels,
reordering, budgets, checkpoint/resume -- as a fuzzable dimension,
:mod:`repro.verification.mutate` / :mod:`repro.verification.coverage`
drive coverage-guided mutation over it, and
:mod:`repro.verification.corpus` replays pinned reproducers as tests.
"""

from .cases import CaseVerdict, FuzzCase, check_case, draw_case, minimize_case
from .corpus import CorpusEntry, load_corpus, promote, replay_entry
from .coverage import CoverageMap, coverage_signature
from .functional import OracleCheckResult, check_implements_function
from .fuzz import (DifferentialFuzzer, FuzzConfig, FuzzFailure,
                   FuzzMismatch, FuzzReport, fuzz_circuit,
                   register_broken_backend, run_fuzz_cell, run_mutation,
                   run_plans, write_corpus)
from .mutate import mutate_case
from .plans import (BrokenReorderEngine, PlanOutcome, RunPlan,
                    dense_fidelity, draw_plan, engine_class, execute_plan)
from .unitary import EquivalenceResult, check_equivalence, circuit_unitary_dd

__all__ = ["BrokenReorderEngine", "CaseVerdict", "CorpusEntry",
           "CoverageMap", "DifferentialFuzzer", "EquivalenceResult",
           "FuzzCase", "FuzzConfig", "FuzzFailure", "FuzzMismatch",
           "FuzzReport", "OracleCheckResult", "PlanOutcome", "RunPlan",
           "check_case", "check_equivalence", "check_implements_function",
           "circuit_unitary_dd", "coverage_signature", "dense_fidelity",
           "draw_case", "draw_plan", "engine_class", "execute_plan",
           "fuzz_circuit", "load_corpus", "minimize_case", "mutate_case",
           "promote", "register_broken_backend", "replay_entry",
           "run_fuzz_cell", "run_mutation", "run_plans", "write_corpus"]
