"""DD-based circuit verification (equivalence checking and fuzzing).

Equivalence checking is the classic *other* use of the paper's machinery:
it is pure matrix-matrix multiplication (Eq. 2, followed completely), and
the canonicity of decision diagrams reduces the final unitary comparison to
a pointer check.

:mod:`repro.verification.fuzz` extends the idea into a continuous
service: random circuits cross-checked across every registered backend,
with automatic minimization of failing circuits into a reproducer corpus.
"""

from .functional import OracleCheckResult, check_implements_function
from .fuzz import (DifferentialFuzzer, FuzzConfig, FuzzFailure,
                   FuzzMismatch, FuzzReport, fuzz_circuit,
                   register_broken_backend, run_fuzz_cell, write_corpus)
from .unitary import EquivalenceResult, check_equivalence, circuit_unitary_dd

__all__ = ["DifferentialFuzzer", "EquivalenceResult", "FuzzConfig",
           "FuzzFailure", "FuzzMismatch", "FuzzReport", "OracleCheckResult",
           "check_equivalence", "check_implements_function",
           "circuit_unitary_dd", "fuzz_circuit", "register_broken_backend",
           "run_fuzz_cell", "write_corpus"]
