"""Run plans: the option surface the fuzzer drives.

Blind circuit fuzzing only ever exercises the engine's happy path; the
risky machinery -- mid-run reordering, checkpoint/resume, the degradation
ladder, the iterative kernel's representation switches -- activates only
under specific *run options*.  A :class:`RunPlan` is a serialisable bundle
of those options (the "option-plan grammar" in docs/architecture.md):

=================  =====================================================
field              meaning
=================  =====================================================
``kernel``         ``recursive`` | ``iterative`` (flat-array worklist)
``identity_edges`` identity-skipping matrix edges (level-gapped DDs)
``dense_blocks``   iterative-kernel dense cutover allowed
``strategy``       any :func:`strategy_from_spec` string (``k=4``, ...)
``reorder``        ``None`` | ``governor`` | ``every=K`` mid-run sifting
``max_nodes``      hard node budget driving the degradation ladder
``checkpoint_at``  interrupt after op K, then ``SimulationEngine.resume``
=================  =====================================================

:func:`execute_plan` runs a circuit under a plan through a *fresh* engine
and returns the result; the fuzzer compares it against the dense oracle.
Degradation is configured lossless (``fidelity_floor=1.0``: collect and
shrink-tables rungs only, pruning forbidden), so every completed plan run
-- interrupted, degraded, sifted, or all three -- must still match the
oracle at the full ``1 - 1e-9`` floor.  A budget the lossless ladder
cannot satisfy aborts the run; that is an expected outcome
(``budget_aborted``), not a failure.

The module also hosts :class:`BrokenReorderEngine`, the planted
reorder-path bug behind ``fuzz --plan-options --inject-broken``.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, fields
from random import Random

from ..baseline import simulate_statevector
from ..circuit.circuit import QuantumCircuit
from ..dd.package import Package
from ..simulation.engine import SimulationEngine, SimulationResult
from ..simulation.memory import (DegradationPolicy, MemoryBudgetExceeded,
                                 MemoryGovernor)
from ..simulation.reorder import ReorderPolicy
from ..simulation.statistics import SimulationStatistics
from ..simulation.strategies import strategy_from_spec

__all__ = ["BrokenReorderEngine", "PlanOutcome", "RunPlan", "dense_fidelity",
           "draw_plan", "engine_class", "execute_plan"]

#: plan runs sift states this small; the default (8) would exempt the
#: 2-4 qubit registers fuzz circuits live on, leaving the reorder path
#: untested exactly where minimized reproducers need it to fire
PLAN_REORDER_MIN_NODES = 4

#: governor collection threshold forced by ``reorder="governor"`` plans
#: with no ``max_nodes``: small enough that collections on any non-trivial
#: state are futile, which is the pressure signal governor sifting keys on
PLAN_PRESSURE_NODE_LIMIT = 16


@dataclass(frozen=True)
class RunPlan:
    """One run-option schedule; every default is the engine's plain path."""

    kernel: str = "recursive"
    identity_edges: bool = False
    dense_blocks: bool = True
    strategy: str = "sequential"
    reorder: str | None = None
    max_nodes: int | None = None
    checkpoint_at: int | None = None

    def validate(self) -> None:
        if self.kernel not in ("recursive", "iterative"):
            raise ValueError(f"plan kernel must be 'recursive' or "
                             f"'iterative', got {self.kernel!r}")
        strategy_from_spec(self.strategy)       # raises on a bad spec
        if self.reorder is not None:
            _reorder_policy(self.reorder)       # raises on a bad spec
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError(f"plan max_nodes must be positive, "
                             f"got {self.max_nodes}")
        if self.checkpoint_at is not None and self.checkpoint_at < 1:
            raise ValueError(f"plan checkpoint_at must be positive, "
                             f"got {self.checkpoint_at}")

    # -- the plan as a list of steps -----------------------------------

    def options(self) -> list[str]:
        """The non-default options, as ``name=value`` steps.

        This is the unit the plan minimizer shrinks: a plan's size is
        ``len(plan.options())`` and dropping a step means resetting that
        field to its default.
        """
        steps = []
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value != spec.default:
                steps.append(f"{spec.name}={value}")
        return steps

    def describe(self) -> str:
        return " ".join(self.options()) or "plain"

    def without(self, option: str) -> "RunPlan":
        """A copy with one option (``name`` or ``name=value``) reset."""
        name = option.split("=", 1)[0]
        by_name = {spec.name: spec for spec in fields(self)}
        if name not in by_name:
            raise ValueError(f"unknown plan option {option!r}")
        return _replace(self, name, by_name[name].default)

    # -- serialisation --------------------------------------------------

    def as_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "RunPlan":
        known = {spec.name for spec in fields(cls)}
        plan = cls(**{key: value for key, value in payload.items()
                      if key in known})
        plan.validate()
        return plan


def _replace(plan: RunPlan, name: str, value: object) -> RunPlan:
    payload = plan.as_dict()
    payload[name] = value
    return RunPlan(**payload)


def draw_plan(rng: Random, block: bool = False) -> RunPlan:
    """One random plan from the option-surface distribution.

    Weighted toward combinations that activate the risky machinery: about
    half the plans reorder, a third carry a node budget tight enough to
    walk the degradation ladder, and 40% interrupt-and-resume mid-run.

    ``block=True`` marks the circuit as carrying a repeated block: the
    strategy draw then favours the ``repeating`` family (the only consumer
    of the block-cache reorder invalidation) and the reorder draw favours
    cadence sifting, which is what can fire between two visits to the same
    cached block.
    """
    kernel = "iterative" if rng.random() < 0.5 else "recursive"
    dense_blocks = not (kernel == "iterative" and rng.random() < 0.3)
    roll = rng.random()
    if block and roll < 0.6:
        strategy = rng.choice(("repeating", "repeating:k=2"))
    elif roll < 0.35:
        strategy = "sequential"
    elif roll < 0.75:
        strategy = rng.choice(("k=2", "k=3", "k=4", "smax=8", "smax=32"))
    else:
        strategy = rng.choice(("adaptive", "repeating:k=2"))
    roll = rng.random()
    if block and roll < 0.55:
        reorder: str | None = f"every={rng.randint(1, 4)}"
    elif roll < 0.45:
        reorder = None
    elif roll < 0.8:
        reorder = f"every={rng.randint(1, 6)}"
    else:
        reorder = "governor"
    return RunPlan(
        kernel=kernel,
        identity_edges=rng.random() < 0.25,
        dense_blocks=dense_blocks,
        strategy=strategy,
        reorder=reorder,
        max_nodes=rng.choice((48, 96, 192, 384))
        if rng.random() < 0.3 else None,
        checkpoint_at=rng.randint(1, 30) if rng.random() < 0.4 else None,
    )


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

@dataclass
class PlanOutcome:
    """What happened when a circuit ran under a plan."""

    result: SimulationResult | None
    #: ``"ExcType: message"`` when the engine raised (a fuzz failure)
    error: str | None = None
    #: the lossless degradation ladder could not satisfy ``max_nodes``
    #: (expected under tight budgets; the case is skipped, not failed)
    budget_aborted: bool = False
    #: the run was interrupted at ``checkpoint_at`` and resumed
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def statistics(self) -> SimulationStatistics | None:
        return self.result.statistics if self.result is not None else None


def _reorder_policy(spec: str) -> ReorderPolicy:
    """A fresh policy for one engine leg (policies carry run state)."""
    if spec == "governor":
        return ReorderPolicy("governor", min_nodes=PLAN_REORDER_MIN_NODES)
    if spec.startswith("every="):
        return ReorderPolicy("every", every=int(spec[len("every="):]),
                             min_nodes=PLAN_REORDER_MIN_NODES)
    raise ValueError(f"plan reorder must be 'governor' or 'every=K', "
                     f"got {spec!r}")


def _make_engine(plan: RunPlan,
                 engine_cls: type[SimulationEngine]) -> SimulationEngine:
    package = Package(kernel=plan.kernel,
                      identity_edges=plan.identity_edges,
                      dense_blocks=plan.dense_blocks)
    if plan.max_nodes is not None:
        governor = MemoryGovernor(node_limit=max(8, plan.max_nodes // 2),
                                  max_nodes=plan.max_nodes)
        return engine_cls(package=package, governor=governor)
    if plan.reorder == "governor":
        # Governor sifting keys on memory pressure; without a budget the
        # default 500k-node threshold would never trip on fuzz-sized
        # registers and the plan would silently test nothing.
        governor = MemoryGovernor(node_limit=PLAN_PRESSURE_NODE_LIMIT)
        return engine_cls(package=package, governor=governor)
    return engine_cls(package=package)


def execute_plan(circuit: QuantumCircuit, plan: RunPlan,
                 engine_cls: type[SimulationEngine] = SimulationEngine
                 ) -> PlanOutcome:
    """Run ``circuit`` under ``plan`` on a fresh engine.

    ``checkpoint_at=K`` is realised exactly the way production runs are
    interrupted: the per-op hook raises ``KeyboardInterrupt`` after op K,
    the engine writes its on-failure checkpoint, and a *second* fresh
    engine resumes from it -- so the resumed half replays the
    complex-table state, the strategy's pending product and any
    accumulated permutation.
    """
    plan.validate()
    strategy = strategy_from_spec(plan.strategy)
    degradation = DegradationPolicy(fidelity_floor=1.0,
                                    compute_table_slots=256) \
        if plan.max_nodes is not None else None
    reorder = _reorder_policy(plan.reorder) \
        if plan.reorder is not None else None
    engine = _make_engine(plan, engine_cls)
    stop_at = plan.checkpoint_at
    try:
        if stop_at is None:
            result = engine.simulate(circuit, strategy,
                                     degradation=degradation,
                                     reorder=reorder)
            return PlanOutcome(result=result)
        with tempfile.TemporaryDirectory(prefix="fuzz-plan-") as tmp:
            path = os.path.join(tmp, "plan.ckpt")

            def interrupt(index: int) -> None:
                if index + 1 == stop_at:
                    raise KeyboardInterrupt

            try:
                result = engine.simulate(circuit, strategy,
                                         checkpoint_path=path,
                                         degradation=degradation,
                                         reorder=reorder,
                                         on_op=interrupt)
                return PlanOutcome(result=result)
            except KeyboardInterrupt:
                resumed_engine = _make_engine(plan, engine_cls)
                resumed_degradation = DegradationPolicy(
                    fidelity_floor=1.0, compute_table_slots=256) \
                    if plan.max_nodes is not None else None
                resumed_reorder = _reorder_policy(plan.reorder) \
                    if plan.reorder is not None else None
                result = resumed_engine.resume(
                    path, circuit, degradation=resumed_degradation,
                    reorder=resumed_reorder)
                return PlanOutcome(result=result, resumed=True)
    except MemoryBudgetExceeded:
        return PlanOutcome(result=None, budget_aborted=True)
    except Exception as exc:  # noqa: BLE001 -- any engine crash is evidence
        return PlanOutcome(result=None,
                           error=f"{type(exc).__name__}: {exc}")


def dense_fidelity(result: SimulationResult,
                   circuit: QuantumCircuit) -> float:
    """``|<result|dense oracle>|^2`` (permutation-aware amplitudes)."""
    oracle = simulate_statevector(circuit)
    inner = 0j
    for index in range(len(oracle)):
        inner += result.amplitude(index).conjugate() * oracle[index]
    return abs(inner) ** 2


# ----------------------------------------------------------------------
# the planted reorder-path bug
# ----------------------------------------------------------------------

class BrokenReorderEngine(SimulationEngine):
    """Engine that "forgets" to notify the strategy after a mid-run sift.

    :meth:`SimulationEngine._reorder` permutes the run's pending product
    to the new variable order and then calls
    :meth:`SimulationEngine._notify_reorder` so accumulating strategies
    re-adopt it.  This subclass drops the notification -- the strategy
    keeps combining new-order gate DDs into its stale old-order product,
    which silently corrupts results but *only* when an accumulating
    strategy, a reorder trigger and a non-identity sift line up.  Blind
    circuit fuzzing can never reach it; the option-surface fuzzer must
    (``python -m repro fuzz --plan-options --inject-broken``).
    """

    def _notify_reorder(self, run: object) -> None:
        return None


#: engine implementations a :class:`~repro.verification.fuzz.FuzzConfig`
#: can name (plain data crosses worker processes; classes do not)
_ENGINES: dict[str, type[SimulationEngine]] = {
    "default": SimulationEngine,
    "broken-reorder": BrokenReorderEngine,
}


def engine_class(name: str) -> type[SimulationEngine]:
    """Resolve a config-level engine name to an engine class."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(f"unknown plan engine {name!r}; "
                         f"expected one of {sorted(_ENGINES)}") from None
