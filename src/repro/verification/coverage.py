"""Engine-native coverage signals for the mutation fuzzer.

Coverage-guided fuzzing needs a cheap novelty signal: "did this input make
the system do something no earlier input did?".  We have no branch
instrumentation, but the engine already measures itself --
:class:`~repro.simulation.statistics.SimulationStatistics` counts Eq. 1 /
Eq. 2 multiplications, reorders, checkpoints, degradation actions and
dense cutovers, and carries end-of-run cache hit rates.  Bucketing those
into a :func:`coverage_signature` gives a behaviour fingerprint: two runs
with the same signature exercised the engine the same way, a run with any
*new* bucket found new behaviour and its case is worth mutating further.

Buckets are deliberately coarse (log2 bands, capped counters, hit-rate
quartiles) so the map saturates in thousands -- not millions -- of runs,
which is what a CI-sized mutation budget can afford.
"""

from __future__ import annotations

from .plans import PlanOutcome, RunPlan

__all__ = ["CoverageMap", "coverage_signature"]


def _band(value: int) -> int:
    """Log2 band of a non-negative counter (0 -> 0, 1 -> 1, 2-3 -> 2...)."""
    if value <= 0:
        return 0
    return value.bit_length()


def _cap(value: int, limit: int = 4) -> int:
    return value if value < limit else limit


def coverage_signature(plan: RunPlan, outcome: PlanOutcome) -> frozenset:
    """The behaviour fingerprint of one plan run.

    A frozenset of string buckets; :class:`CoverageMap` treats each bucket
    independently, so a run is novel if *any* bucket is unseen (not only
    if the exact combination is).
    """
    buckets = {
        f"kernel:{plan.kernel}",
        f"strategy:{plan.strategy.split(':')[0].split('=')[0]}",
        f"reorder-mode:{(plan.reorder or 'off').split('=')[0]}",
    }
    if plan.identity_edges:
        buckets.add("identity-edges")
    if not plan.dense_blocks:
        buckets.add("dense-blocks-off")
    if outcome.budget_aborted:
        buckets.add("budget-aborted")
        return frozenset(buckets)
    if outcome.error is not None:
        buckets.add("errored")
        return frozenset(buckets)
    stats = outcome.statistics
    if stats is None:
        return frozenset(buckets)
    buckets.add(f"mxv-band:{_band(stats.matrix_vector_mults)}")
    buckets.add(f"mxm-band:{_band(stats.matrix_matrix_mults)}")
    buckets.add(f"peak-state-band:{_band(stats.peak_state_nodes)}")
    buckets.add(f"reorders:{_cap(stats.reorders)}")
    buckets.add(f"checkpoints:{_cap(stats.checkpoints_written)}")
    buckets.add(f"dense-cutovers:{_cap(stats.dense_cutovers)}")
    buckets.add(f"reused-blocks:{_cap(stats.reused_block_applications)}")
    if outcome.resumed:
        buckets.add("resumed")
    for action in stats.degradation_actions:
        buckets.add(f"degrade:{action.get('action', 'unknown')}")
    for table, rate in stats.cache_hit_rates.items():
        quartile = min(3, int(rate * 4))
        buckets.add(f"hit-rate:{table}:{quartile}")
    return frozenset(buckets)


class CoverageMap:
    """The set of behaviour buckets seen so far in a campaign."""

    def __init__(self) -> None:
        self._seen: set = set()
        #: runs observed (novel or not)
        self.observations = 0
        #: runs that contributed at least one new bucket
        self.novel = 0

    def observe(self, signature: frozenset) -> bool:
        """Record one run's signature; ``True`` if it added new buckets."""
        self.observations += 1
        new = signature - self._seen
        if not new:
            return False
        self._seen |= new
        self.novel += 1
        return True

    def __len__(self) -> int:
        return len(self._seen)

    def buckets(self) -> list[str]:
        """All buckets seen, sorted (for reports and tests)."""
        return sorted(self._seen)
