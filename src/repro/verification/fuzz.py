"""Differential fuzzing: the continuous correctness ratchet.

The repo computes the same state five-plus ways (see
:mod:`repro.backends`); this module keeps them honest *continuously*
rather than only at the circuits the test suite happened to pin.  A
:class:`DifferentialFuzzer` draws random Clifford+T / rotation circuits
from a rotating seed, runs every registered backend against a reference
(dense statevector by default), and flags any pair below the fidelity
floor of ``1 - 1e-9`` -- the same oracle the differential test suite and
the bench fidelity receipts use.

A failure is only useful if a human can read it, so every failing
circuit is **minimized** before it is reported: greedy gate deletion to a
fixpoint (drop any gate whose removal keeps the failure), then greedy
qubit deletion (drop a qubit and every gate touching it), then compaction
of unused qubits.  A wrong-phase bug in a 40-gate circuit typically
shrinks to 2-3 gates.  Minimized reproducers serialise to a JSON corpus
(QASM plus metadata) that CI uploads as an artifact on failure.

Entry points: ``python -m repro fuzz --budget N`` (CLI), sweep cells with
``kind="fuzz"`` (:func:`run_fuzz_cell`, fanned out by ``--jobs`` through
:class:`~repro.simulation.sweep.SweepRunner`), and the API below.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from random import Random

from ..backends import available_backends, create_backend
from ..backends.base import Backend, BackendResult
from ..backends.registry import register_backend, unregister_backend
from ..backends.tensor_slot import TensorSlotBackend
from ..circuit.circuit import QuantumCircuit
from ..circuit.operation import Operation
from ..circuit.qasm import to_qasm
from ..simulation.statistics import SimulationStatistics

__all__ = ["BrokenPhaseBackend", "DifferentialFuzzer", "FuzzConfig",
           "FuzzFailure", "FuzzMismatch", "FuzzReport", "fuzz_circuit",
           "register_broken_backend", "run_fuzz_cell", "write_corpus"]

#: schema of the JSON reproducer files in the corpus
CORPUS_SCHEMA = 1

#: agreement threshold -- identical to tests/test_differential.py and the
#: bench receipts, so the fuzzer ratchets the same invariant CI gates on
FIDELITY_FLOOR = 1 - 1e-9


class FuzzMismatch(AssertionError):
    """A backend disagreed with the reference (raised by fuzz sweep cells
    so the runner records the cell as failed; the message carries the
    minimized reproducer)."""


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing campaign's parameters (plain data: crosses workers)."""

    #: backends to cross-check; empty = every registered backend
    backends: tuple = ()
    #: the oracle side of every comparison
    reference: str = "dense"
    min_qubits: int = 2
    max_qubits: int = 6
    min_operations: int = 5
    max_operations: int = 40
    #: probability that a drawn gate is a continuous rotation
    rotation_probability: float = 0.4
    fidelity_floor: float = FIDELITY_FLOOR
    seed: int = 0
    #: stop after this many distinct failing (backend, circuit) pairs
    max_failures: int = 5

    def resolved_backends(self) -> list[str]:
        names = list(self.backends) if self.backends \
            else available_backends()
        if self.reference not in names:
            names.append(self.reference)
        if len(names) < 2:
            raise ValueError(
                f"fuzzing needs >= 2 backends to disagree; got {names}")
        return sorted(names)

    def as_dict(self) -> dict:
        return {
            "backends": list(self.backends),
            "reference": self.reference,
            "min_qubits": self.min_qubits,
            "max_qubits": self.max_qubits,
            "min_operations": self.min_operations,
            "max_operations": self.max_operations,
            "rotation_probability": self.rotation_probability,
            "fidelity_floor": self.fidelity_floor,
            "seed": self.seed,
            "max_failures": self.max_failures,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzConfig":
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in payload.items() if k in known}
        if "backends" in kwargs:
            kwargs["backends"] = tuple(kwargs["backends"])
        return cls(**kwargs)


@dataclass
class FuzzFailure:
    """One backend/circuit disagreement, minimized."""

    backend: str
    reference: str
    #: "fidelity" (below the floor) or "error" (the backend raised)
    kind: str
    seed: int
    fidelity: float | None
    error: str | None
    original_qasm: str
    minimized_qasm: str
    minimized_operations: int
    minimized_qubits: int

    def as_dict(self) -> dict:
        return {
            "schema": CORPUS_SCHEMA,
            "backend": self.backend,
            "reference": self.reference,
            "kind": self.kind,
            "seed": self.seed,
            "fidelity": self.fidelity,
            "error": self.error,
            "fidelity_floor": FIDELITY_FLOOR,
            "original_qasm": self.original_qasm,
            "minimized_qasm": self.minimized_qasm,
            "minimized_operations": self.minimized_operations,
            "minimized_qubits": self.minimized_qubits,
        }

    def summary(self) -> str:
        detail = f"fidelity {self.fidelity:.12f}" \
            if self.kind == "fidelity" else f"error: {self.error}"
        return (f"backend {self.backend!r} vs {self.reference!r} "
                f"(seed {self.seed}): {detail}; minimized to "
                f"{self.minimized_operations} gate(s) on "
                f"{self.minimized_qubits} qubit(s)\n{self.minimized_qasm}")


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    config: FuzzConfig
    circuits_checked: int = 0
    comparisons: int = 0
    wall_seconds: float = 0.0
    backends: list = field(default_factory=list)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "schema": CORPUS_SCHEMA,
            "ok": self.ok,
            "circuits_checked": self.circuits_checked,
            "comparisons": self.comparisons,
            "wall_seconds": round(self.wall_seconds, 3),
            "backends": list(self.backends),
            "config": self.config.as_dict(),
            "failures": [failure.as_dict() for failure in self.failures],
        }


# ----------------------------------------------------------------------
# random circuit generation (Clifford+T plus rotations)
# ----------------------------------------------------------------------

_CLIFFORD_T_1Q = ("h", "x", "y", "z", "s", "sdg", "t", "tdg")
_ROTATIONS = ("rx", "ry", "rz", "p")


def fuzz_circuit(num_qubits: int, num_operations: int, seed: int,
                 rotation_probability: float = 0.4) -> QuantumCircuit:
    """One random circuit from the fuzzing distribution.

    Mirrors the differential test suite's generator: Clifford+T
    single-qubit gates, CX/CZ/CCX entanglers, and (with
    ``rotation_probability``) continuous rotations with angles that are
    *not* nice dyadic fractions of pi -- exactly the amplitudes where a
    normalisation or phase bug hides.
    """
    rng = Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"fuzz-{seed}")
    for _ in range(num_operations):
        roll = rng.random()
        if roll < rotation_probability:
            gate = rng.choice(_ROTATIONS)
            angle = rng.uniform(0, 2 * math.pi)
            circuit.add_operation(gate, rng.randrange(num_qubits),
                                  params=(angle,))
        elif roll < rotation_probability + 0.35 and num_qubits >= 2:
            control, target = rng.sample(range(num_qubits), 2)
            if num_qubits >= 3 and rng.random() < 0.25:
                second = rng.choice([q for q in range(num_qubits)
                                     if q not in (control, target)])
                circuit.ccx(control, second, target)
            elif rng.random() < 0.5:
                circuit.cx(control, target)
            else:
                circuit.cz(control, target)
        else:
            gate = rng.choice(_CLIFFORD_T_1Q)
            circuit.add_operation(gate, rng.randrange(num_qubits))
    return circuit


# ----------------------------------------------------------------------
# the fuzzer
# ----------------------------------------------------------------------

class DifferentialFuzzer:
    """Cross-check registered backends on random circuits, minimize
    failures."""

    def __init__(self, config: FuzzConfig | None = None) -> None:
        self.config = config or FuzzConfig()
        self.backend_names = self.config.resolved_backends()
        if self.config.reference not in self.backend_names:
            raise ValueError(
                f"reference backend {self.config.reference!r} is not in "
                f"the pool {self.backend_names}")

    # -- campaign driver ------------------------------------------------

    def run(self, budget_seconds: float | None = None,
            max_circuits: int | None = None) -> FuzzReport:
        """Fuzz until the time budget or circuit count runs out.

        At least one circuit is always checked, so even a tiny budget
        yields a meaningful report.
        """
        if budget_seconds is None and max_circuits is None:
            raise ValueError("need a budget_seconds or max_circuits bound")
        report = FuzzReport(config=self.config,
                            backends=list(self.backend_names))
        master = Random(self.config.seed)
        started = time.perf_counter()
        index = 0
        while True:
            if max_circuits is not None and index >= max_circuits:
                break
            if index > 0 and budget_seconds is not None and \
                    time.perf_counter() - started >= budget_seconds:
                break
            if len(report.failures) >= self.config.max_failures:
                break
            circuit_seed = master.getrandbits(32)
            report.failures.extend(self.check_one(circuit_seed, report))
            report.circuits_checked += 1
            index += 1
        report.wall_seconds = time.perf_counter() - started
        return report

    def check_one(self, circuit_seed: int,
                  report: FuzzReport | None = None) -> list[FuzzFailure]:
        """Draw one circuit, cross-check every backend, minimize failures."""
        rng = Random(circuit_seed)
        num_qubits = rng.randint(self.config.min_qubits,
                                 self.config.max_qubits)
        num_operations = rng.randint(self.config.min_operations,
                                     self.config.max_operations)
        circuit = fuzz_circuit(num_qubits, num_operations, circuit_seed,
                               self.config.rotation_probability)
        failures = []
        for name in self.backend_names:
            if name == self.config.reference:
                continue
            if report is not None:
                report.comparisons += 1
            verdict = self._disagreement(circuit, name)
            if verdict is None:
                continue
            fidelity, error = verdict
            minimized = self.minimize(circuit, name)
            failures.append(FuzzFailure(
                backend=name, reference=self.config.reference,
                kind="error" if error is not None else "fidelity",
                seed=circuit_seed, fidelity=fidelity, error=error,
                original_qasm=to_qasm(circuit),
                minimized_qasm=to_qasm(minimized),
                minimized_operations=minimized.num_operations(),
                minimized_qubits=minimized.num_qubits))
        return failures

    # -- the oracle -----------------------------------------------------

    def _run_backend(self, name: str,
                     circuit: QuantumCircuit) -> BackendResult:
        return create_backend(name).run(circuit)

    def _disagreement(self, circuit: QuantumCircuit,
                      name: str) -> tuple | None:
        """``None`` if the backend agrees with the reference; otherwise
        ``(fidelity, None)`` for a mismatch or ``(None, message)`` when
        the backend raised."""
        reference = self._run_backend(self.config.reference, circuit)
        try:
            candidate = self._run_backend(name, circuit)
            fidelity = candidate.fidelity_with(reference)
        except Exception as exc:
            return None, f"{type(exc).__name__}: {exc}"
        if fidelity < self.config.fidelity_floor:
            return fidelity, None
        return None

    # -- minimization ---------------------------------------------------

    def minimize(self, circuit: QuantumCircuit,
                 name: str) -> QuantumCircuit:
        """Shrink a failing circuit while it keeps failing.

        Greedy gate deletion to a fixpoint, then qubit deletion (a qubit
        plus every gate touching it), then compaction of unused qubits.
        Deterministic, and every accepted step re-verifies the failure,
        so the result is always a true reproducer.
        """
        operations = list(circuit.operations())
        num_qubits = circuit.num_qubits

        def still_fails(ops: list, qubits: int) -> bool:
            if not ops or qubits < 1:
                return False
            candidate = _circuit_from_ops(ops, qubits, circuit.name)
            return self._disagreement(candidate, name) is not None

        # pass 1: drop single gates until no single deletion keeps the bug
        changed = True
        while changed:
            changed = False
            for index in range(len(operations) - 1, -1, -1):
                trial = operations[:index] + operations[index + 1:]
                if still_fails(trial, num_qubits):
                    operations = trial
                    changed = True
        # pass 2: drop whole qubits (and every gate touching them)
        changed = True
        while changed and num_qubits > 1:
            changed = False
            for qubit in range(num_qubits - 1, -1, -1):
                kept = [op for op in operations
                        if qubit not in op.qubits()]
                trial = [_drop_qubit(op, qubit) for op in kept]
                if still_fails(trial, num_qubits - 1):
                    operations = trial
                    num_qubits -= 1
                    changed = True
                    break
        return _circuit_from_ops(operations, num_qubits, circuit.name)


def _circuit_from_ops(operations: list, num_qubits: int,
                      name: str) -> QuantumCircuit:
    circuit = QuantumCircuit(max(1, num_qubits), name=name)
    for operation in operations:
        circuit.append(operation)
    return circuit


def _drop_qubit(operation: Operation, qubit: int) -> Operation:
    """Re-index an operation after removing an (untouched) qubit."""
    def shift(q: int) -> int:
        return q - 1 if q > qubit else q
    return Operation(operation.gate, shift(operation.target),
                     tuple((shift(q), value)
                           for q, value in operation.controls),
                     operation.params)


# ----------------------------------------------------------------------
# the injected faulty backend (CI acceptance + selector tests)
# ----------------------------------------------------------------------

class BrokenPhaseBackend(TensorSlotBackend):
    """Tensor-slot variant with a deliberate T-gate phase bug.

    Applies ``T`` as a pi/3 phase instead of pi/4 -- subtle enough to
    survive Clifford-only circuits (fidelity stays 1.0 without a T gate),
    so only a differential check over the right gate mix catches it, and
    the minimized reproducer is tiny (one superposition + one ``t``).
    """

    name = "broken-phase"

    def apply(self, operation: Operation) -> None:
        if operation.gate == "t":
            operation = Operation("p", operation.target,
                                  operation.controls, (math.pi / 3,))
        super().apply(operation)


def register_broken_backend() -> str:
    """Register the faulty backend; returns its name (for cleanup)."""
    register_backend(BrokenPhaseBackend.name, BrokenPhaseBackend,
                     replace=True)
    return BrokenPhaseBackend.name


def unregister_broken_backend() -> None:
    unregister_backend(BrokenPhaseBackend.name)


# ----------------------------------------------------------------------
# corpus I/O
# ----------------------------------------------------------------------

def write_corpus(report: FuzzReport, directory: str) -> list[str]:
    """Write one JSON reproducer per failure plus a campaign summary.

    Returns the written file paths.  The directory is created on demand;
    an empty failure list writes only the summary.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for index, failure in enumerate(report.failures):
        path = os.path.join(
            directory,
            f"repro_{failure.backend}_{failure.seed}_{index}.json")
        with open(path, "w") as handle:
            json.dump(failure.as_dict(), handle, indent=2)
            handle.write("\n")
        paths.append(path)
    summary_path = os.path.join(directory, "summary.json")
    with open(summary_path, "w") as handle:
        json.dump(report.as_dict(), handle, indent=2)
        handle.write("\n")
    paths.append(summary_path)
    return paths


# ----------------------------------------------------------------------
# sweep integration (kind="fuzz" cells)
# ----------------------------------------------------------------------

def run_fuzz_cell(metadata: dict, seed: int = 0) -> SimulationStatistics:
    """Execute one fuzz campaign as a sweep cell.

    ``metadata`` carries a :meth:`FuzzConfig.as_dict` payload plus
    optional ``budget_seconds`` / ``max_circuits`` / ``corpus`` /
    ``register_broken`` keys.  The cell's deterministic sweep seed
    replaces the config seed unless the config pinned one explicitly.

    Success returns statistics (checked-circuit count in
    ``operations_applied``); any disagreement raises :class:`FuzzMismatch`
    with the minimized reproducers in the message, so the sweep runner
    records the cell as failed and the report carries the evidence.
    """
    payload = dict(metadata)
    if "seed" not in payload or payload.get("seed") is None:
        payload["seed"] = seed
    if payload.pop("register_broken", False):
        register_broken_backend()
    budget = payload.pop("budget_seconds", None)
    max_circuits = payload.pop("max_circuits", None)
    corpus = payload.pop("corpus", None)
    config = FuzzConfig.from_dict(payload)
    fuzzer = DifferentialFuzzer(config)
    report = fuzzer.run(budget_seconds=budget, max_circuits=max_circuits)
    if corpus:
        write_corpus(report, corpus)
    if not report.ok:
        details = "\n".join(failure.summary()
                            for failure in report.failures)
        raise FuzzMismatch(
            f"{len(report.failures)} backend disagreement(s) in "
            f"{report.circuits_checked} circuit(s):\n{details}")
    statistics = SimulationStatistics(
        strategy="fuzz", circuit_name=f"fuzz-seed-{config.seed}",
        num_qubits=config.max_qubits, backend="+".join(report.backends))
    statistics.operations_applied = report.circuits_checked
    statistics.matrix_vector_mults = report.comparisons
    statistics.wall_time_seconds = report.wall_seconds
    return statistics
