"""Differential fuzzing: the continuous correctness ratchet.

The repo computes the same state five-plus ways (see
:mod:`repro.backends`); this module keeps them honest *continuously*
rather than only at the circuits the test suite happened to pin.  A
:class:`DifferentialFuzzer` draws random Clifford+T / rotation circuits
from a rotating seed, runs every registered backend against a reference
(dense statevector by default), and flags any pair below the fidelity
floor of ``1 - 1e-9`` -- the same oracle the differential test suite and
the bench fidelity receipts use.

A failure is only useful if a human can read it, so every failing
circuit is **minimized** before it is reported: greedy gate deletion to a
fixpoint (drop any gate whose removal keeps the failure), then greedy
qubit deletion (drop a qubit and every gate touching it), then compaction
of unused qubits.  A wrong-phase bug in a 40-gate circuit typically
shrinks to 2-3 gates.  Minimized reproducers serialise to a JSON corpus
(QASM plus metadata) that CI uploads as an artifact on failure.

Entry points: ``python -m repro fuzz --budget N`` (CLI), sweep cells with
``kind="fuzz"`` (:func:`run_fuzz_cell`, fanned out by ``--jobs`` through
:class:`~repro.simulation.sweep.SweepRunner`), and the API below.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from dataclasses import replace as dataclasses_replace
from random import Random

from ..backends import available_backends, create_backend
from ..backends.base import BackendResult
from ..backends.registry import register_backend, unregister_backend
from ..backends.tensor_slot import TensorSlotBackend
from ..circuit.circuit import QuantumCircuit
from ..circuit.operation import Operation
from ..circuit.qasm import to_qasm
from ..simulation.statistics import SimulationStatistics
from .cases import (FuzzCase, case_qasm, check_case, draw_case,
                    draw_operations, minimize_case)
from .coverage import CoverageMap, coverage_signature
from .mutate import mutate_case
from .plans import engine_class

__all__ = ["BrokenPhaseBackend", "DifferentialFuzzer", "FuzzConfig",
           "FuzzFailure", "FuzzMismatch", "FuzzReport", "fuzz_circuit",
           "register_broken_backend", "run_fuzz_cell", "run_mutation",
           "run_plans", "write_corpus"]

#: schema of plain-QASM reproducer files in the corpus
CORPUS_SCHEMA = 1

#: schema of structural case reproducers (operations + block + plan)
CASE_SCHEMA = 2

#: agreement threshold -- identical to tests/test_differential.py and the
#: bench receipts, so the fuzzer ratchets the same invariant CI gates on
FIDELITY_FLOOR = 1 - 1e-9


class FuzzMismatch(AssertionError):
    """A backend disagreed with the reference (raised by fuzz sweep cells
    so the runner records the cell as failed; the message carries the
    minimized reproducer)."""


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing campaign's parameters (plain data: crosses workers)."""

    #: backends to cross-check; empty = every registered backend
    backends: tuple = ()
    #: the oracle side of every comparison
    reference: str = "dense"
    min_qubits: int = 2
    max_qubits: int = 6
    min_operations: int = 5
    max_operations: int = 40
    #: probability that a drawn gate is a continuous rotation
    rotation_probability: float = 0.4
    fidelity_floor: float = FIDELITY_FLOOR
    seed: int = 0
    #: stop after this many distinct failing (backend, circuit) pairs
    max_failures: int = 5
    #: probability a drawn case carries a repeated block (plan/mutate
    #: campaigns only; blind differential fuzzing never draws blocks)
    block_probability: float = 0.45
    #: engine implementation plan campaigns run
    #: (see :data:`repro.verification.plans._ENGINES`)
    plan_engine: str = "default"

    def resolved_backends(self) -> list[str]:
        names = list(self.backends) if self.backends \
            else available_backends()
        if self.reference not in names:
            names.append(self.reference)
        if len(names) < 2:
            raise ValueError(
                f"fuzzing needs >= 2 backends to disagree; got {names}")
        return sorted(names)

    def as_dict(self) -> dict:
        return {
            "backends": list(self.backends),
            "reference": self.reference,
            "min_qubits": self.min_qubits,
            "max_qubits": self.max_qubits,
            "min_operations": self.min_operations,
            "max_operations": self.max_operations,
            "rotation_probability": self.rotation_probability,
            "fidelity_floor": self.fidelity_floor,
            "seed": self.seed,
            "max_failures": self.max_failures,
            "block_probability": self.block_probability,
            "plan_engine": self.plan_engine,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzConfig":
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in payload.items() if k in known}
        if "backends" in kwargs:
            kwargs["backends"] = tuple(kwargs["backends"])
        return cls(**kwargs)


@dataclass
class FuzzFailure:
    """One backend/circuit disagreement, minimized."""

    backend: str
    reference: str
    #: "fidelity" (below the floor) or "error" (the backend raised)
    kind: str
    seed: int
    fidelity: float | None
    error: str | None
    original_qasm: str
    minimized_qasm: str
    minimized_operations: int
    minimized_qubits: int
    #: option-surface failures only: the minimized structural case
    #: (:meth:`FuzzCase.as_dict`) and the engine that produced the bug
    case: dict | None = None
    engine: str | None = None

    def as_dict(self) -> dict:
        payload = {
            "schema": CASE_SCHEMA if self.case is not None
            else CORPUS_SCHEMA,
            "backend": self.backend,
            "reference": self.reference,
            "kind": self.kind,
            "seed": self.seed,
            "fidelity": self.fidelity,
            "error": self.error,
            "fidelity_floor": FIDELITY_FLOOR,
            "original_qasm": self.original_qasm,
            "minimized_qasm": self.minimized_qasm,
            "minimized_operations": self.minimized_operations,
            "minimized_qubits": self.minimized_qubits,
        }
        if self.case is not None:
            payload["case"] = self.case
            payload["engine"] = self.engine
        return payload

    def summary(self) -> str:
        detail = f"fidelity {self.fidelity:.12f}" \
            if self.kind == "fidelity" else f"error: {self.error}"
        plan = ""
        if self.case is not None:
            plan = (f"; plan: "
                    f"{FuzzCase.from_dict(self.case).plan.describe()}")
        return (f"backend {self.backend!r} vs {self.reference!r} "
                f"(seed {self.seed}): {detail}; minimized to "
                f"{self.minimized_operations} gate(s) on "
                f"{self.minimized_qubits} qubit(s){plan}\n"
                f"{self.minimized_qasm}")


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    config: FuzzConfig
    circuits_checked: int = 0
    comparisons: int = 0
    wall_seconds: float = 0.0
    backends: list = field(default_factory=list)
    failures: list = field(default_factory=list)
    #: plan/mutate campaigns: budget-aborted runs (expected, not failures)
    cases_skipped: int = 0
    #: mutate campaigns: coverage buckets seen / cases that found new ones
    coverage_buckets: int = 0
    novel_cases: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "schema": CORPUS_SCHEMA,
            "ok": self.ok,
            "circuits_checked": self.circuits_checked,
            "comparisons": self.comparisons,
            "wall_seconds": round(self.wall_seconds, 3),
            "backends": list(self.backends),
            "cases_skipped": self.cases_skipped,
            "coverage_buckets": self.coverage_buckets,
            "novel_cases": self.novel_cases,
            "config": self.config.as_dict(),
            "failures": [failure.as_dict() for failure in self.failures],
        }


# ----------------------------------------------------------------------
# random circuit generation (Clifford+T plus rotations)
# ----------------------------------------------------------------------

def fuzz_circuit(num_qubits: int, num_operations: int, seed: int,
                 rotation_probability: float = 0.4) -> QuantumCircuit:
    """One random circuit from the fuzzing distribution.

    Mirrors the differential test suite's generator: Clifford+T
    single-qubit gates, CX/CZ/CCX entanglers, and (with
    ``rotation_probability``) continuous rotations with angles that are
    *not* nice dyadic fractions of pi -- exactly the amplitudes where a
    normalisation or phase bug hides.  The distribution itself lives in
    :func:`repro.verification.cases.draw_operations`, shared with the
    option-surface and mutation campaigns.
    """
    rng = Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"fuzz-{seed}")
    for operation in draw_operations(rng, num_qubits, num_operations,
                                     rotation_probability):
        circuit.append(operation)
    return circuit


# ----------------------------------------------------------------------
# the fuzzer
# ----------------------------------------------------------------------

class DifferentialFuzzer:
    """Cross-check registered backends on random circuits, minimize
    failures."""

    def __init__(self, config: FuzzConfig | None = None) -> None:
        self.config = config or FuzzConfig()
        self.backend_names = self.config.resolved_backends()
        if self.config.reference not in self.backend_names:
            raise ValueError(
                f"reference backend {self.config.reference!r} is not in "
                f"the pool {self.backend_names}")

    # -- campaign driver ------------------------------------------------

    def run(self, budget_seconds: float | None = None,
            max_circuits: int | None = None) -> FuzzReport:
        """Fuzz until the time budget or circuit count runs out.

        At least one circuit is always checked, so even a tiny budget
        yields a meaningful report.
        """
        if budget_seconds is None and max_circuits is None:
            raise ValueError("need a budget_seconds or max_circuits bound")
        report = FuzzReport(config=self.config,
                            backends=list(self.backend_names))
        master = Random(self.config.seed)
        started = time.perf_counter()
        index = 0
        while True:
            if max_circuits is not None and index >= max_circuits:
                break
            if index > 0 and budget_seconds is not None and \
                    time.perf_counter() - started >= budget_seconds:
                break
            if len(report.failures) >= self.config.max_failures:
                break
            circuit_seed = master.getrandbits(32)
            report.failures.extend(self.check_one(circuit_seed, report))
            report.circuits_checked += 1
            index += 1
        report.wall_seconds = time.perf_counter() - started
        return report

    def check_one(self, circuit_seed: int,
                  report: FuzzReport | None = None) -> list[FuzzFailure]:
        """Draw one circuit, cross-check every backend, minimize failures."""
        rng = Random(circuit_seed)
        num_qubits = rng.randint(self.config.min_qubits,
                                 self.config.max_qubits)
        num_operations = rng.randint(self.config.min_operations,
                                     self.config.max_operations)
        circuit = fuzz_circuit(num_qubits, num_operations, circuit_seed,
                               self.config.rotation_probability)
        failures = []
        for name in self.backend_names:
            if name == self.config.reference:
                continue
            if report is not None:
                report.comparisons += 1
            verdict = self._disagreement(circuit, name)
            if verdict is None:
                continue
            fidelity, error = verdict
            minimized = self.minimize(circuit, name)
            failures.append(FuzzFailure(
                backend=name, reference=self.config.reference,
                kind="error" if error is not None else "fidelity",
                seed=circuit_seed, fidelity=fidelity, error=error,
                original_qasm=to_qasm(circuit),
                minimized_qasm=to_qasm(minimized),
                minimized_operations=minimized.num_operations(),
                minimized_qubits=minimized.num_qubits))
        return failures

    # -- the oracle -----------------------------------------------------

    def _run_backend(self, name: str,
                     circuit: QuantumCircuit) -> BackendResult:
        return create_backend(name).run(circuit)

    def _disagreement(self, circuit: QuantumCircuit,
                      name: str) -> tuple | None:
        """``None`` if the backend agrees with the reference; otherwise
        ``(fidelity, None)`` for a mismatch or ``(None, message)`` when
        the backend raised."""
        reference = self._run_backend(self.config.reference, circuit)
        try:
            candidate = self._run_backend(name, circuit)
            fidelity = candidate.fidelity_with(reference)
        except Exception as exc:
            return None, f"{type(exc).__name__}: {exc}"
        if fidelity < self.config.fidelity_floor:
            return fidelity, None
        return None

    # -- minimization ---------------------------------------------------

    def minimize(self, circuit: QuantumCircuit,
                 name: str) -> QuantumCircuit:
        """Shrink a failing circuit while it keeps failing.

        Greedy gate deletion to a fixpoint, then qubit deletion (a qubit
        plus every gate touching it), then compaction of unused qubits.
        Deterministic, and every accepted step re-verifies the failure,
        so the result is always a true reproducer.
        """
        operations = list(circuit.operations())
        num_qubits = circuit.num_qubits

        def still_fails(ops: list, qubits: int) -> bool:
            if not ops or qubits < 1:
                return False
            candidate = _circuit_from_ops(ops, qubits, circuit.name)
            return self._disagreement(candidate, name) is not None

        # pass 1: drop single gates until no single deletion keeps the bug
        changed = True
        while changed:
            changed = False
            for index in range(len(operations) - 1, -1, -1):
                trial = operations[:index] + operations[index + 1:]
                if still_fails(trial, num_qubits):
                    operations = trial
                    changed = True
        # pass 2: drop whole qubits (and every gate touching them)
        changed = True
        while changed and num_qubits > 1:
            changed = False
            for qubit in range(num_qubits - 1, -1, -1):
                kept = [op for op in operations
                        if qubit not in op.qubits()]
                trial = [_drop_qubit(op, qubit) for op in kept]
                if still_fails(trial, num_qubits - 1):
                    operations = trial
                    num_qubits -= 1
                    changed = True
                    break
        return _circuit_from_ops(operations, num_qubits, circuit.name)


def _circuit_from_ops(operations: list, num_qubits: int,
                      name: str) -> QuantumCircuit:
    circuit = QuantumCircuit(max(1, num_qubits), name=name)
    for operation in operations:
        circuit.append(operation)
    return circuit


def _drop_qubit(operation: Operation, qubit: int) -> Operation:
    """Re-index an operation after removing an (untouched) qubit."""
    def shift(q: int) -> int:
        return q - 1 if q > qubit else q
    return Operation(operation.gate, shift(operation.target),
                     tuple((shift(q), value)
                           for q, value in operation.controls),
                     operation.params)


# ----------------------------------------------------------------------
# option-surface campaign (fuzz --plan-options)
# ----------------------------------------------------------------------

def _case_failure(case: FuzzCase, minimized: FuzzCase, config: FuzzConfig,
                  kind: str, fidelity: float | None,
                  error: str | None) -> FuzzFailure:
    return FuzzFailure(
        backend=f"engine:{config.plan_engine}", reference="dense-oracle",
        kind=kind, seed=case.seed, fidelity=fidelity, error=error,
        original_qasm=case_qasm(case), minimized_qasm=case_qasm(minimized),
        minimized_operations=minimized.gate_count(),
        minimized_qubits=minimized.num_qubits,
        case=minimized.as_dict(), engine=config.plan_engine)


def _campaign_bounds(budget_seconds: float | None,
                     max_cases: int | None) -> None:
    if budget_seconds is None and max_cases is None:
        raise ValueError("need a budget_seconds or max_cases bound")


def run_plans(config: FuzzConfig, budget_seconds: float | None = None,
              max_cases: int | None = None) -> FuzzReport:
    """Fuzz the option surface: random cases under random run plans.

    Every drawn case executes its plan -- kernel choice, identity edges,
    dense cutover, accumulation strategy, mid-run reordering, node
    budgets, checkpoint-interrupt-resume -- on a fresh engine and must
    reproduce the dense statevector oracle at the fidelity floor.
    Budget-aborted runs count as skips.  Failures are minimized down to
    gates *and* plan options before they are reported.
    """
    _campaign_bounds(budget_seconds, max_cases)
    engine_cls = engine_class(config.plan_engine)
    report = FuzzReport(config=config,
                        backends=[f"engine:{config.plan_engine}"])
    master = Random(config.seed)
    started = time.perf_counter()
    index = 0
    while True:
        if max_cases is not None and index >= max_cases:
            break
        if index > 0 and budget_seconds is not None and \
                time.perf_counter() - started >= budget_seconds:
            break
        if len(report.failures) >= config.max_failures:
            break
        case_seed = master.getrandbits(32)
        case = draw_case(Random(case_seed),
                         min_qubits=config.min_qubits,
                         max_qubits=config.max_qubits,
                         min_operations=config.min_operations,
                         max_operations=config.max_operations,
                         rotation_probability=config.rotation_probability,
                         block_probability=config.block_probability,
                         seed=case_seed)
        report.circuits_checked += 1
        report.comparisons += 1
        index += 1
        verdict = check_case(case, engine_cls, config.fidelity_floor)
        if verdict.status == "skip":
            report.cases_skipped += 1
            continue
        if verdict.failed:
            minimized = minimize_case(case, engine_cls,
                                      config.fidelity_floor)
            report.failures.append(_case_failure(
                case, minimized, config,
                kind="error" if verdict.error is not None else "fidelity",
                fidelity=verdict.fidelity, error=verdict.error))
    report.wall_seconds = time.perf_counter() - started
    return report


# ----------------------------------------------------------------------
# coverage-guided mutation campaign (fuzz --mutate)
# ----------------------------------------------------------------------

#: cases the mutation pool keeps; older interesting cases rotate out
MUTATION_POOL_LIMIT = 64

#: fresh-draw seeds planted before mutation starts
MUTATION_SEED_CASES = 8


def run_mutation(config: FuzzConfig, budget_seconds: float | None = None,
                 max_cases: int | None = None) -> FuzzReport:
    """Coverage-guided fuzzing: mutate the cases that found new behaviour.

    The campaign seeds a pool with fresh draws, then repeatedly mutates a
    random pool member.  A mutant whose run lights up any new
    :mod:`~repro.verification.coverage` bucket (cache hit-rate quartiles,
    reorder/degradation/dense-cutover counts, node-count bands...) joins
    the pool; one that reproduces known behaviour is discarded.  Oracle
    mismatches are minimized and reported exactly like plan-campaign
    failures.
    """
    _campaign_bounds(budget_seconds, max_cases)
    engine_cls = engine_class(config.plan_engine)
    report = FuzzReport(config=config,
                        backends=[f"engine:{config.plan_engine}"])
    coverage = CoverageMap()
    pool: list[FuzzCase] = []
    master = Random(config.seed)
    started = time.perf_counter()

    def out_of_budget(index: int) -> bool:
        if max_cases is not None and index >= max_cases:
            return True
        if index > 0 and budget_seconds is not None and \
                time.perf_counter() - started >= budget_seconds:
            return True
        return len(report.failures) >= config.max_failures

    def run_one(case: FuzzCase) -> bool:
        """Check one case; returns True if it joined the pool."""
        report.circuits_checked += 1
        report.comparisons += 1
        verdict = check_case(case, engine_cls, config.fidelity_floor)
        if verdict.status == "skip":
            report.cases_skipped += 1
        elif verdict.failed:
            minimized = minimize_case(case, engine_cls,
                                      config.fidelity_floor)
            report.failures.append(_case_failure(
                case, minimized, config,
                kind="error" if verdict.error is not None else "fidelity",
                fidelity=verdict.fidelity, error=verdict.error))
        novel = coverage.observe(
            coverage_signature(case.plan, verdict.outcome))
        if novel:
            pool.append(case)
            if len(pool) > MUTATION_POOL_LIMIT:
                pool.pop(0)
        return novel

    index = 0
    while index < MUTATION_SEED_CASES and not out_of_budget(index):
        case_seed = master.getrandbits(32)
        run_one(draw_case(
            Random(case_seed),
            min_qubits=config.min_qubits, max_qubits=config.max_qubits,
            min_operations=config.min_operations,
            max_operations=config.max_operations,
            rotation_probability=config.rotation_probability,
            block_probability=config.block_probability, seed=case_seed))
        index += 1
    while not out_of_budget(index):
        case_seed = master.getrandbits(32)
        rng = Random(case_seed)
        if pool:
            parent = rng.choice(pool)
            case = mutate_case(parent, rng)
            case = replace_seed(case, case_seed)
        else:
            case = draw_case(
                rng, min_qubits=config.min_qubits,
                max_qubits=config.max_qubits,
                min_operations=config.min_operations,
                max_operations=config.max_operations,
                rotation_probability=config.rotation_probability,
                block_probability=config.block_probability,
                seed=case_seed)
        run_one(case)
        index += 1
    report.coverage_buckets = len(coverage)
    report.novel_cases = coverage.novel
    report.wall_seconds = time.perf_counter() - started
    return report


def replace_seed(case: FuzzCase, seed: int) -> FuzzCase:
    """The case re-stamped with the seed that derived it (lineage)."""
    return dataclasses_replace(case, seed=seed)


# ----------------------------------------------------------------------
# the injected faulty backend (CI acceptance + selector tests)
# ----------------------------------------------------------------------

class BrokenPhaseBackend(TensorSlotBackend):
    """Tensor-slot variant with a deliberate T-gate phase bug.

    Applies ``T`` as a pi/3 phase instead of pi/4 -- subtle enough to
    survive Clifford-only circuits (fidelity stays 1.0 without a T gate),
    so only a differential check over the right gate mix catches it, and
    the minimized reproducer is tiny (one superposition + one ``t``).
    """

    name = "broken-phase"

    def apply(self, operation: Operation) -> None:
        if operation.gate == "t":
            operation = Operation("p", operation.target,
                                  operation.controls, (math.pi / 3,))
        super().apply(operation)


def register_broken_backend() -> str:
    """Register the faulty backend; returns its name (for cleanup)."""
    register_backend(BrokenPhaseBackend.name, BrokenPhaseBackend,
                     replace=True)
    return BrokenPhaseBackend.name


def unregister_broken_backend() -> None:
    unregister_backend(BrokenPhaseBackend.name)


# ----------------------------------------------------------------------
# corpus I/O
# ----------------------------------------------------------------------

def write_corpus(report: FuzzReport, directory: str) -> list[str]:
    """Write one JSON reproducer per failure plus a campaign summary.

    Returns the written file paths.  The directory is created on demand;
    an empty failure list writes only the summary.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for index, failure in enumerate(report.failures):
        path = os.path.join(
            directory,
            f"repro_{failure.backend}_{failure.seed}_{index}.json")
        with open(path, "w") as handle:
            json.dump(failure.as_dict(), handle, indent=2)
            handle.write("\n")
        paths.append(path)
    summary_path = os.path.join(directory, "summary.json")
    with open(summary_path, "w") as handle:
        json.dump(report.as_dict(), handle, indent=2)
        handle.write("\n")
    paths.append(summary_path)
    return paths


# ----------------------------------------------------------------------
# sweep integration (kind="fuzz" cells)
# ----------------------------------------------------------------------

def run_fuzz_cell(metadata: dict, seed: int = 0) -> SimulationStatistics:
    """Execute one fuzz campaign as a sweep cell.

    ``metadata`` carries a :meth:`FuzzConfig.as_dict` payload plus
    optional ``mode`` (``differential`` | ``plans`` | ``mutate``),
    ``budget_seconds`` / ``max_circuits`` / ``corpus`` /
    ``register_broken`` keys.  The cell's deterministic sweep seed
    replaces the config seed unless the config pinned one explicitly.

    Success returns statistics (checked-circuit count in
    ``operations_applied``); any disagreement raises :class:`FuzzMismatch`
    with the minimized reproducers in the message, so the sweep runner
    records the cell as failed and the report carries the evidence.
    """
    payload = dict(metadata)
    if "seed" not in payload or payload.get("seed") is None:
        payload["seed"] = seed
    if payload.pop("register_broken", False):
        register_broken_backend()
    mode = payload.pop("mode", "differential")
    budget = payload.pop("budget_seconds", None)
    max_circuits = payload.pop("max_circuits", None)
    corpus = payload.pop("corpus", None)
    config = FuzzConfig.from_dict(payload)
    if mode == "plans":
        report = run_plans(config, budget_seconds=budget,
                           max_cases=max_circuits)
    elif mode == "mutate":
        report = run_mutation(config, budget_seconds=budget,
                              max_cases=max_circuits)
    elif mode == "differential":
        fuzzer = DifferentialFuzzer(config)
        report = fuzzer.run(budget_seconds=budget,
                            max_circuits=max_circuits)
    else:
        raise ValueError(f"unknown fuzz mode {mode!r}; expected "
                         f"'differential', 'plans' or 'mutate'")
    if corpus:
        write_corpus(report, corpus)
    if not report.ok:
        details = "\n".join(failure.summary()
                            for failure in report.failures)
        raise FuzzMismatch(
            f"{len(report.failures)} disagreement(s) in "
            f"{report.circuits_checked} circuit(s) ({mode}):\n{details}")
    statistics = SimulationStatistics(
        strategy="fuzz" if mode == "differential" else f"fuzz-{mode}",
        circuit_name=f"fuzz-seed-{config.seed}",
        num_qubits=config.max_qubits, backend="+".join(report.backends))
    statistics.operations_applied = report.circuits_checked
    statistics.matrix_vector_mults = report.comparisons
    statistics.wall_time_seconds = report.wall_seconds
    return statistics
