"""Functional verification of Boolean/reversible circuit blocks.

Where :mod:`repro.verification.unitary` compares two circuits, this module
compares a circuit against a *functional specification* -- e.g. checks that
Beauregard's controlled modular multiplier really computes
``x -> a x mod N`` on its input register, with ancillas returned clean.
This is exactly the correspondence the paper's DD-construct strategy relies
on ("it makes no difference for the quality of simulation whether the
original functionality or the decomposed version is considered").
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from ..circuit.circuit import QuantumCircuit
from ..simulation.engine import SimulationEngine

__all__ = ["OracleCheckResult", "check_implements_function"]


@dataclass
class OracleCheckResult:
    """Outcome of a functional oracle check."""

    ok: bool
    inputs_checked: int
    #: (input value, expected output, got description) for each failure
    failures: list[tuple[int, int, str]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def check_implements_function(circuit: QuantumCircuit,
                              function: Callable[[int], int],
                              input_qubits: Sequence[int],
                              output_qubits: Sequence[int] | None = None,
                              fixed: Mapping[int, int] | None = None,
                              inputs: Sequence[int] | None = None,
                              engine: SimulationEngine | None = None
                              ) -> OracleCheckResult:
    """Verify that a circuit maps ``|x>`` to ``|function(x)>``.

    Parameters
    ----------
    input_qubits / output_qubits:
        Registers holding the input and result (LSB first);
        ``output_qubits`` defaults to the input register (in-place blocks).
    fixed:
        ``{qubit: bit}`` preparation for qubits outside the input register
        (e.g. a control that must be 1).  All unmentioned qubits start at
        ``|0>`` and -- like the fixed ones -- must return to their initial
        value (clean ancillas).
    inputs:
        Input values to check; all of them by default (exponential in the
        register size -- pass a sample for large registers).
    """
    engine = engine or SimulationEngine()
    input_qubits = list(input_qubits)
    output_qubits = list(output_qubits) if output_qubits is not None \
        else input_qubits
    fixed = dict(fixed or {})
    overlap = set(input_qubits) & set(fixed)
    if overlap:
        raise ValueError(f"qubits {sorted(overlap)} are both input and fixed")
    if inputs is None:
        inputs = range(1 << len(input_qubits))

    failures: list[tuple[int, int, str]] = []
    checked = 0
    for x in inputs:
        checked += 1
        basis = 0
        for position, qubit in enumerate(input_qubits):
            if (x >> position) & 1:
                basis |= 1 << qubit
        for qubit, bit in fixed.items():
            if bit:
                basis |= 1 << qubit
        initial = engine.package.basis_state(circuit.num_qubits, basis)
        result = engine.simulate(circuit, initial_state=initial)
        expected_value = function(x)
        expected_index = basis
        for position, qubit in enumerate(output_qubits):
            expected_index &= ~(1 << qubit)
        for position, qubit in enumerate(input_qubits):
            if qubit not in output_qubits:
                if (x >> position) & 1:
                    expected_index |= 1 << qubit
        for position, qubit in enumerate(output_qubits):
            if (expected_value >> position) & 1:
                expected_index |= 1 << qubit
        probability = result.probability(expected_index)
        if probability < 1.0 - 1e-7:
            # find where the amplitude actually went (best effort)
            description = f"P(expected)={probability:.4f}"
            failures.append((x, expected_value, description))
    return OracleCheckResult(ok=not failures, inputs_checked=checked,
                             failures=failures)
