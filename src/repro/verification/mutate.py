"""Mutation operators for coverage-guided fuzzing.

The mutation campaign (``fuzz --mutate``) does not draw every case from
scratch: it keeps a pool of *interesting* cases (those whose run lit up
new :mod:`~repro.verification.coverage` buckets) and derives new cases
from them by small mutations.  Each operator changes exactly one thing --
one gate, one block parameter, one plan option -- so novelty found by a
mutant is attributable, and the greedy minimizer can later walk the same
lattice downward.

Operators keep the case well-formed by construction (block indices are
adjusted on insert/delete, targets stay inside the register); callers
never need to re-validate beyond :meth:`FuzzCase.validate`.
"""

from __future__ import annotations

import math
from dataclasses import replace
from random import Random

from ..circuit.operation import Operation
from .cases import FuzzCase, draw_operations
from .plans import RunPlan

__all__ = ["mutate_case"]


def _insert_operation(case: FuzzCase, rng: Random) -> FuzzCase:
    operation = draw_operations(rng, case.num_qubits, 1)[0]
    index = rng.randint(0, len(case.operations))
    operations = (case.operations[:index] + (operation,)
                  + case.operations[index:])
    block = case.block
    if block is not None:
        start, length, repetitions = block
        if index <= start:
            start += 1
        elif index < start + length:
            length += 1
        block = (start, length, repetitions)
    return replace(case, operations=operations, block=block)


def _delete_operation(case: FuzzCase, rng: Random) -> FuzzCase:
    if len(case.operations) <= 1:
        return case
    index = rng.randrange(len(case.operations))
    operations = case.operations[:index] + case.operations[index + 1:]
    block = case.block
    block_again = case.block_again
    if block is not None:
        start, length, repetitions = block
        if index < start:
            start -= 1
        elif index < start + length:
            length -= 1
        if length < 1:
            block = None
            block_again = False
        else:
            block = (start, length, repetitions)
    return replace(case, operations=operations, block=block,
                   block_again=block_again)


def _swap_operations(case: FuzzCase, rng: Random) -> FuzzCase:
    if len(case.operations) < 2:
        return case
    index = rng.randrange(len(case.operations) - 1)
    operations = list(case.operations)
    operations[index], operations[index + 1] = \
        operations[index + 1], operations[index]
    return replace(case, operations=tuple(operations))


def _perturb_angle(case: FuzzCase, rng: Random) -> FuzzCase:
    candidates = [index for index, op in enumerate(case.operations)
                  if op.params]
    if not candidates:
        return case
    index = rng.choice(candidates)
    operation = case.operations[index]
    params = tuple(p + rng.uniform(-math.pi / 4, math.pi / 4)
                   for p in operation.params)
    operations = list(case.operations)
    operations[index] = Operation(operation.gate, operation.target,
                                  operation.controls, params)
    return replace(case, operations=tuple(operations))


def _retarget(case: FuzzCase, rng: Random) -> FuzzCase:
    if case.num_qubits < 2:
        return case
    index = rng.randrange(len(case.operations))
    operation = case.operations[index]
    free = [q for q in range(case.num_qubits)
            if q not in operation.qubits()]
    if not free:
        return case
    operations = list(case.operations)
    operations[index] = Operation(operation.gate, rng.choice(free),
                                  operation.controls, operation.params)
    return replace(case, operations=tuple(operations))


def _add_qubit(case: FuzzCase, rng: Random) -> FuzzCase:
    if case.num_qubits >= 8:
        return case
    return _insert_operation(replace(case, num_qubits=case.num_qubits + 1),
                             rng)


def _mutate_block(case: FuzzCase, rng: Random) -> FuzzCase:
    if case.block is None:
        if len(case.operations) < 2:
            return case
        length = rng.randint(1, min(4, len(case.operations) - 1))
        start = rng.randint(0, len(case.operations) - length)
        again = rng.random() < 0.5 and \
            start + length < len(case.operations)
        return replace(case, block=(start, length, rng.randint(1, 3)),
                       block_again=again)
    start, length, repetitions = case.block
    roll = rng.random()
    if roll < 0.3:
        return replace(case, block=None, block_again=False)
    if roll < 0.6:
        return replace(case,
                       block=(start, length, max(1, repetitions
                                                 + rng.choice((-1, 1)))))
    if start + length < len(case.operations):
        return replace(case, block_again=not case.block_again)
    return case


def _mutate_plan(case: FuzzCase, rng: Random) -> FuzzCase:
    payload = case.plan.as_dict()
    field = rng.choice(("kernel", "identity_edges", "dense_blocks",
                        "strategy", "reorder", "max_nodes",
                        "checkpoint_at"))
    if field == "kernel":
        payload["kernel"] = "iterative" \
            if payload["kernel"] == "recursive" else "recursive"
    elif field == "identity_edges":
        payload["identity_edges"] = not payload["identity_edges"]
    elif field == "dense_blocks":
        payload["dense_blocks"] = not payload["dense_blocks"]
    elif field == "strategy":
        payload["strategy"] = rng.choice(
            ("sequential", "k=2", "k=4", "smax=8", "adaptive",
             "repeating", "repeating:k=2"))
    elif field == "reorder":
        payload["reorder"] = rng.choice(
            (None, "governor", f"every={rng.randint(1, 6)}"))
    elif field == "max_nodes":
        payload["max_nodes"] = rng.choice(
            (None, 48, 96, 192, 384))
    else:
        payload["checkpoint_at"] = rng.choice(
            (None, rng.randint(1, 30)))
    return replace(case, plan=RunPlan(**payload))


_MUTATIONS = (
    _insert_operation,
    _delete_operation,
    _swap_operations,
    _perturb_angle,
    _retarget,
    _add_qubit,
    _mutate_block,
    _mutate_plan,
    _mutate_plan,       # plan mutations twice as likely: the option
                        # surface is what this fuzzer exists to explore
)


def mutate_case(case: FuzzCase, rng: Random) -> FuzzCase:
    """One random single-step mutation of ``case`` (always well-formed).

    Falls back to inserting a gate when the drawn operator does not apply
    (e.g. angle perturbation on a rotation-free case), so a mutation
    never silently returns the parent unchanged.
    """
    mutated = rng.choice(_MUTATIONS)(case, rng)
    if mutated is case:
        mutated = _insert_operation(case, rng)
    mutated.validate()
    return mutated
