"""The pinned regression corpus: minimized reproducers replayed as tests.

A fuzzing campaign that finds a bug once is an anecdote; a corpus makes
it a regression test.  Every minimized reproducer the fuzzer (or a human)
promotes into ``tests/verification/corpus/`` is replayed on every CI run
through **all registered backends** and -- for option-plan entries --
through the engine option schedule that originally exposed the bug.

Two entry schemas coexist:

* **Schema 1** (the blind differential fuzzer's format): a QASM circuit;
  replay runs every registered backend against the dense reference and
  demands agreement at the fidelity floor.
* **Schema 2** (option-surface cases): a structural
  :class:`~repro.verification.cases.FuzzCase` payload -- flat operations,
  optional repeated block, option plan.  Replay first runs the case's
  plan on a fresh default engine against the dense oracle, then
  cross-checks the flat circuit differentially like schema 1.

Promotion workflow: run a campaign with ``--corpus DIR``, inspect the
minimized reproducer JSON it wrote, add a ``name`` and a ``description``
recording the bug it pins, and copy it into the test corpus directory.
:func:`promote` automates the mechanical part.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..backends import available_backends, create_backend
from ..circuit.circuit import QuantumCircuit
from ..circuit.qasm import from_qasm
from .cases import FIDELITY_FLOOR, FuzzCase, check_case

__all__ = ["CorpusEntry", "load_corpus", "promote", "replay_entry"]


@dataclass
class CorpusEntry:
    """One pinned reproducer."""

    #: stable identifier (defaults to the file stem)
    name: str
    schema: int
    #: what bug this entry pins, for humans reading a replay failure
    description: str
    #: schema 1: the reproducer circuit's QASM
    qasm: str | None = None
    #: schema 2: the structural case
    case: FuzzCase | None = None
    path: str | None = None

    def circuit(self) -> QuantumCircuit:
        if self.case is not None:
            return self.case.circuit(name=self.name)
        if self.qasm is None:
            raise ValueError(f"corpus entry {self.name!r} has neither "
                             f"a case nor QASM")
        circuit = from_qasm(self.qasm)
        circuit.name = self.name
        return circuit


def _entry_from_payload(payload: dict, name: str,
                        path: str | None) -> CorpusEntry:
    schema = int(payload.get("schema", 1))
    description = payload.get("description", "")
    if schema >= 2 and payload.get("case") is not None:
        return CorpusEntry(name=payload.get("name", name), schema=schema,
                           description=description,
                           case=FuzzCase.from_dict(payload["case"]),
                           path=path)
    qasm = payload.get("qasm") or payload.get("minimized_qasm")
    if not qasm:
        raise ValueError(f"corpus entry {name!r} carries no circuit")
    return CorpusEntry(name=payload.get("name", name), schema=schema,
                       description=description, qasm=qasm, path=path)


def load_corpus(directory: str) -> list[CorpusEntry]:
    """All reproducers in a corpus directory, sorted by file name.

    Campaign ``summary.json`` files are skipped; malformed entries raise
    (a corrupt corpus should fail loudly, not silently shrink).
    """
    entries = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json") or filename == "summary.json":
            continue
        path = os.path.join(directory, filename)
        with open(path) as handle:
            payload = json.load(handle)
        entries.append(_entry_from_payload(
            payload, os.path.splitext(filename)[0], path))
    if not entries:
        raise ValueError(f"corpus directory {directory!r} holds no "
                         f"reproducers")
    return entries


def replay_entry(entry: CorpusEntry, backends: list[str] | None = None,
                 fidelity_floor: float = FIDELITY_FLOOR) -> list[str]:
    """Replay one entry; returns human-readable failure descriptions.

    An empty list means the entry passed everywhere: the case's option
    plan (schema 2) reproduced the oracle, and every backend agreed with
    the dense reference on the flat circuit.
    """
    failures = []
    if entry.case is not None:
        verdict = check_case(entry.case, fidelity_floor=fidelity_floor)
        if verdict.failed:
            detail = verdict.error if verdict.error is not None \
                else f"fidelity {verdict.fidelity}"
            failures.append(
                f"{entry.name}: plan [{entry.case.plan.describe()}] "
                f"diverged from the dense oracle: {detail}")
    circuit = entry.circuit()
    names = backends if backends is not None else available_backends()
    reference = create_backend("dense").run(circuit)
    for name in names:
        if name == "dense":
            continue
        try:
            result = create_backend(name).run(circuit)
            fidelity = result.fidelity_with(reference)
        except Exception as exc:  # noqa: BLE001 -- report, don't crash CI
            failures.append(f"{entry.name}: backend {name!r} raised "
                            f"{type(exc).__name__}: {exc}")
            continue
        if fidelity < fidelity_floor:
            failures.append(f"{entry.name}: backend {name!r} fidelity "
                            f"{fidelity:.12f} below {fidelity_floor}")
    return failures


def promote(payload: dict, directory: str, name: str,
            description: str) -> str:
    """Write one reproducer payload into a corpus as a named entry.

    ``payload`` is a campaign reproducer dict (schema 1 failure file or a
    schema 2 case file); ``name`` becomes both the file stem and the
    entry name.  Returns the written path.
    """
    os.makedirs(directory, exist_ok=True)
    entry = dict(payload)
    entry["name"] = name
    entry["description"] = description
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2)
        handle.write("\n")
    # round-trip through the loader so a malformed promotion fails here,
    # not on the next CI run
    with open(path) as handle:
        _entry_from_payload(json.load(handle), name, path)
    return path
