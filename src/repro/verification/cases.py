"""Fuzz cases: a circuit *and* the run options it executes under.

The blind fuzzer's unit of work is a circuit; the option-surface fuzzer's
unit is a :class:`FuzzCase` -- a flat operation list, an optional repeated
block, and a :class:`~repro.verification.plans.RunPlan`.  The block is
structural, not just notation: the ``repeating`` strategy caches the
combined block DD and re-uses it on every later visit, so a case can
express "apply this block, reshape the state, apply the same block again"
-- the exact shape that distinguishes a correct engine from one that
forgets to invalidate caches across a mid-run reorder.  QASM cannot (it
unrolls blocks), which is why cases serialise operations structurally and
keep QASM only as a human-readable rendering.

:func:`check_case` runs the case's plan on a fresh engine and compares
the outcome against the dense statevector oracle; :func:`minimize_case`
shrinks a failing case greedily -- gates, then qubits, then the block
shape, then the option plan -- re-verifying the failure at every step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from random import Random

from ..circuit.circuit import QuantumCircuit, RepeatedBlock
from ..circuit.operation import Operation
from ..circuit.qasm import to_qasm
from ..simulation.engine import SimulationEngine
from .plans import (PlanOutcome, RunPlan, dense_fidelity, draw_plan,
                    execute_plan)

__all__ = ["CaseVerdict", "FuzzCase", "case_qasm", "check_case",
           "draw_case", "draw_operations", "minimize_case"]

#: agreement threshold, identical to the differential fuzzer's
FIDELITY_FLOOR = 1 - 1e-9

_CLIFFORD_T_1Q = ("h", "x", "y", "z", "s", "sdg", "t", "tdg")
_ROTATIONS = ("rx", "ry", "rz", "p")


# ----------------------------------------------------------------------
# operation drawing (shared with the blind fuzzer's fuzz_circuit)
# ----------------------------------------------------------------------

def draw_operations(rng: Random, num_qubits: int, num_operations: int,
                    rotation_probability: float = 0.4) -> list[Operation]:
    """Random operations from the fuzzing distribution.

    Clifford+T single-qubit gates, CX/CZ/CCX entanglers, and continuous
    rotations with angles that are not nice dyadic fractions of pi --
    exactly the amplitudes where a normalisation or phase bug hides.
    """
    operations = []
    for _ in range(num_operations):
        roll = rng.random()
        if roll < rotation_probability:
            gate = rng.choice(_ROTATIONS)
            angle = rng.uniform(0, 2 * math.pi)
            operations.append(Operation(gate, rng.randrange(num_qubits),
                                        params=(angle,)))
        elif roll < rotation_probability + 0.35 and num_qubits >= 2:
            control, target = rng.sample(range(num_qubits), 2)
            if num_qubits >= 3 and rng.random() < 0.25:
                second = rng.choice([q for q in range(num_qubits)
                                     if q not in (control, target)])
                operations.append(Operation("x", target,
                                            ((control, 1), (second, 1))))
            elif rng.random() < 0.5:
                operations.append(Operation("x", target, ((control, 1),)))
            else:
                operations.append(Operation("z", target, ((control, 1),)))
        else:
            gate = rng.choice(_CLIFFORD_T_1Q)
            operations.append(Operation(gate, rng.randrange(num_qubits)))
    return operations


# ----------------------------------------------------------------------
# the case
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzCase:
    """One circuit-plus-options fuzzing input.

    ``operations`` is the flat single-pass gate list.  When ``block`` is
    set to ``(start, length, repetitions)``, the slice
    ``operations[start:start+length]`` becomes the body of one
    :class:`~repro.circuit.circuit.RepeatedBlock` at that position; with
    ``block_again`` the *same* block object is appended once more at the
    end of the circuit, after the remaining operations -- the engine then
    revisits its cached combined DD after the state (and possibly the
    variable order) changed.
    """

    num_qubits: int
    operations: tuple
    plan: RunPlan
    block: tuple | None = None
    block_again: bool = False
    seed: int = 0

    def validate(self) -> None:
        self.plan.validate()
        if self.num_qubits < 1:
            raise ValueError(f"case needs >= 1 qubit, got {self.num_qubits}")
        for operation in self.operations:
            if operation.max_qubit() >= self.num_qubits:
                raise ValueError(f"operation {operation} exceeds "
                                 f"{self.num_qubits} qubits")
        if self.block is not None:
            start, length, repetitions = self.block
            if not (0 <= start and length >= 1 and repetitions >= 1
                    and start + length <= len(self.operations)):
                raise ValueError(f"block spec {self.block} does not fit "
                                 f"{len(self.operations)} operations")
        elif self.block_again:
            raise ValueError("block_again without a block")

    def circuit(self, name: str | None = None) -> QuantumCircuit:
        """The case as a circuit (block instantiated, possibly twice)."""
        circuit = QuantumCircuit(self.num_qubits,
                                 name=name or f"case-{self.seed}")
        if self.block is None:
            for operation in self.operations:
                circuit.append(operation)
            return circuit
        start, length, repetitions = self.block
        body = tuple(self.operations[start:start + length])
        block = RepeatedBlock(body, repetitions)
        for operation in self.operations[:start]:
            circuit.append(operation)
        circuit.append(block)
        for operation in self.operations[start + length:]:
            circuit.append(operation)
        if self.block_again:
            circuit.append(block)
        return circuit

    def gate_count(self) -> int:
        """Distinct gates in the case (the minimizer's size metric)."""
        return len(self.operations)

    def describe(self) -> str:
        block = ""
        if self.block is not None:
            start, length, repetitions = self.block
            block = (f", block ops[{start}:{start + length}] x{repetitions}"
                     f"{' (revisited)' if self.block_again else ''}")
        return (f"{len(self.operations)} gate(s) on {self.num_qubits} "
                f"qubit(s){block}, plan: {self.plan.describe()}")

    # -- serialisation (corpus schema 2) --------------------------------

    def as_dict(self) -> dict:
        return {
            "num_qubits": self.num_qubits,
            "operations": [_operation_dict(op) for op in self.operations],
            "plan": self.plan.as_dict(),
            "block": list(self.block) if self.block is not None else None,
            "block_again": self.block_again,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCase":
        block = payload.get("block")
        case = cls(
            num_qubits=int(payload["num_qubits"]),
            operations=tuple(_operation_from_dict(op)
                             for op in payload["operations"]),
            plan=RunPlan.from_dict(payload.get("plan") or {}),
            block=tuple(block) if block is not None else None,
            block_again=bool(payload.get("block_again", False)),
            seed=int(payload.get("seed", 0)),
        )
        case.validate()
        return case


def _operation_dict(operation: Operation) -> dict:
    return {
        "gate": operation.gate,
        "target": operation.target,
        "controls": [list(control) for control in operation.controls],
        "params": list(operation.params),
    }


def _operation_from_dict(payload: dict) -> Operation:
    return Operation(payload["gate"], int(payload["target"]),
                     tuple((int(q), int(v))
                           for q, v in payload.get("controls", ())),
                     tuple(float(p) for p in payload.get("params", ())))


# ----------------------------------------------------------------------
# drawing
# ----------------------------------------------------------------------

def draw_case(rng: Random, min_qubits: int = 2, max_qubits: int = 6,
              min_operations: int = 5, max_operations: int = 40,
              rotation_probability: float = 0.4,
              block_probability: float = 0.45, seed: int = 0) -> FuzzCase:
    """One random case: operations, an optional repeated block, a plan.

    Half the blocked cases revisit the block after the trailing
    operations (``block_again``): the trailing gates reshape the state
    between the two visits, which is the only circuit shape that can
    catch stale block-cache bugs across a mid-run reorder.
    """
    num_qubits = rng.randint(min_qubits, max_qubits)
    num_operations = rng.randint(min_operations, max_operations)
    operations = draw_operations(rng, num_qubits, num_operations,
                                 rotation_probability)
    block: tuple | None = None
    block_again = False
    if len(operations) >= 2 and rng.random() < block_probability:
        length = rng.randint(1, min(4, len(operations) - 1))
        start = rng.randint(0, len(operations) - length)
        block = (start, length, rng.randint(1, 3))
        block_again = rng.random() < 0.5 and start + length < len(operations)
    plan = draw_plan(rng, block=block is not None)
    return FuzzCase(num_qubits=num_qubits, operations=tuple(operations),
                    plan=plan, block=block, block_again=block_again,
                    seed=seed)


# ----------------------------------------------------------------------
# checking
# ----------------------------------------------------------------------

@dataclass
class CaseVerdict:
    """One case run judged against the dense oracle."""

    #: "ok" (matched), "skip" (budget abort), "fail" (mismatch or crash)
    status: str
    outcome: PlanOutcome
    fidelity: float | None = None
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.status == "fail"


def check_case(case: FuzzCase,
               engine_cls: type[SimulationEngine] = SimulationEngine,
               fidelity_floor: float = FIDELITY_FLOOR) -> CaseVerdict:
    """Run the case's plan on a fresh engine, compare to the dense oracle.

    Budget aborts are skips (the lossless degradation ladder is *allowed*
    to give up under a tight ``max_nodes``); crashes and sub-floor
    fidelities are failures.
    """
    circuit = case.circuit()
    outcome = execute_plan(circuit, case.plan, engine_cls=engine_cls)
    if outcome.budget_aborted:
        return CaseVerdict(status="skip", outcome=outcome)
    if outcome.error is not None or outcome.result is None:
        return CaseVerdict(status="fail", outcome=outcome,
                           error=outcome.error)
    fidelity = dense_fidelity(outcome.result, circuit)
    if fidelity < fidelity_floor:
        return CaseVerdict(status="fail", outcome=outcome,
                           fidelity=fidelity)
    return CaseVerdict(status="ok", outcome=outcome, fidelity=fidelity)


# ----------------------------------------------------------------------
# minimization
# ----------------------------------------------------------------------

def _delete_operation(case: FuzzCase, index: int) -> FuzzCase | None:
    """The case with one operation removed (block indices adjusted)."""
    operations = case.operations[:index] + case.operations[index + 1:]
    block = case.block
    block_again = case.block_again
    if block is not None:
        start, length, repetitions = block
        if index < start:
            start -= 1
        elif index < start + length:
            length -= 1
        if length < 1:
            block = None
            block_again = False
        else:
            block = (start, length, repetitions)
            block_again = block_again and start + length < len(operations)
    if not operations:
        return None
    return replace(case, operations=operations, block=block,
                   block_again=block_again)


def _delete_qubit(case: FuzzCase, qubit: int) -> FuzzCase | None:
    """The case with one qubit (and every gate touching it) removed."""
    if case.num_qubits <= 1:
        return None
    operations = []
    removed = []
    for index, operation in enumerate(case.operations):
        if qubit in operation.qubits():
            removed.append(index)
            continue
        operations.append(_shift_qubit(operation, qubit))
    block = case.block
    block_again = case.block_again
    if block is not None:
        start, length, repetitions = block
        start -= sum(1 for index in removed if index < start)
        length -= sum(1 for index in removed
                      if block[0] <= index < block[0] + block[1])
        if length < 1:
            block = None
            block_again = False
        else:
            block = (start, length, repetitions)
            block_again = block_again and start + length < len(operations)
    if not operations:
        return None
    return replace(case, num_qubits=case.num_qubits - 1,
                   operations=tuple(operations), block=block,
                   block_again=block_again)


def _shift_qubit(operation: Operation, qubit: int) -> Operation:
    def shift(q: int) -> int:
        return q - 1 if q > qubit else q
    return Operation(operation.gate, shift(operation.target),
                     tuple((shift(q), value)
                           for q, value in operation.controls),
                     operation.params)


def _block_variants(case: FuzzCase) -> list[FuzzCase]:
    """Simpler block shapes to try (fewer repetitions, no revisit)."""
    variants = []
    if case.block is not None:
        start, length, repetitions = case.block
        if repetitions > 1:
            variants.append(replace(case, block=(start, length, 1)))
        if case.block_again:
            variants.append(replace(case, block_again=False))
        variants.append(replace(case, block=None, block_again=False))
    return variants


def _plan_variants(case: FuzzCase) -> list[FuzzCase]:
    """Plans with one option dropped, plus canonical small values."""
    variants = []
    for option in case.plan.options():
        variants.append(replace(case, plan=case.plan.without(option)))
    reorder = case.plan.reorder
    if reorder is not None and reorder.startswith("every=") \
            and reorder != "every=1":
        payload = case.plan.as_dict()
        payload["reorder"] = "every=1"
        variants.append(replace(case, plan=RunPlan(**payload)))
    return variants


def minimize_case(case: FuzzCase, engine_cls: type[SimulationEngine],
                  fidelity_floor: float = FIDELITY_FLOOR) -> FuzzCase:
    """Shrink a failing case while it keeps failing.

    Greedy and deterministic: gate deletion to a fixpoint, qubit
    deletion, block simplification (fewer repetitions, drop the revisit,
    drop the block), then option-plan shrinking (drop each non-default
    option, canonicalise ``every=K`` to ``every=1``).  Every accepted
    step re-verifies the failure, so the result is a true reproducer.
    """

    def still_fails(candidate: FuzzCase | None) -> bool:
        if candidate is None:
            return False
        try:
            candidate.validate()
        except ValueError:
            return False
        return check_case(candidate, engine_cls, fidelity_floor).failed

    progress = True
    while progress:
        before = (case.gate_count(), case.num_qubits, case.block,
                  case.block_again, case.plan)
        changed = True
        while changed:
            changed = False
            for index in range(len(case.operations) - 1, -1, -1):
                trial = _delete_operation(case, index)
                if still_fails(trial):
                    assert trial is not None
                    case = trial
                    changed = True
        changed = True
        while changed and case.num_qubits > 1:
            changed = False
            for qubit in range(case.num_qubits - 1, -1, -1):
                trial = _delete_qubit(case, qubit)
                if still_fails(trial):
                    assert trial is not None
                    case = trial
                    changed = True
                    break
        changed = True
        while changed:
            changed = False
            for trial in _block_variants(case):
                if still_fails(trial):
                    case = trial
                    changed = True
                    break
        changed = True
        while changed:
            changed = False
            for trial in _plan_variants(case):
                if still_fails(trial):
                    case = trial
                    changed = True
                    break
        # plan and block shrinking can unlock further gate deletions
        # (e.g. dropping checkpoint_at makes a shorter circuit still
        # reach the bug), so iterate the whole pipeline to a fixpoint
        progress = (case.gate_count(), case.num_qubits, case.block,
                    case.block_again, case.plan) != before
    return case


def case_qasm(case: FuzzCase) -> str:
    """Human-readable QASM of the built circuit (blocks unrolled)."""
    return to_qasm(case.circuit())
