"""Backend registry: name -> factory, with runtime (un)registration.

Built-in adapters register at import of :mod:`repro.backends`; tests and
the fuzzer register extra backends (including deliberately broken ones)
on the fly and remove them afterwards.  Factories receive the keyword
options passed to :func:`create_backend`, so strategy-parameterised or
budgeted variants need no registry entry per configuration.
"""

from __future__ import annotations

from typing import Callable

from .base import Backend

__all__ = ["available_backends", "backend_description", "create_backend",
           "register_backend", "unregister_backend"]

_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, factory: Callable[..., Backend],
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    ``replace=False`` (the default) refuses to shadow an existing entry,
    so a typo cannot silently swap the backend every test compares
    against.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered "
                         f"(pass replace=True to override)")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (no-op if absent)."""
    _REGISTRY.pop(name, None)


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def create_backend(name: str, **options) -> Backend:
    """Instantiate a registered backend.

    ``options`` go to the factory verbatim (e.g. ``strategy=`` for the
    matrix adapter, ``gc_limit=`` / ``max_nodes=`` for the DD adapters);
    an option the factory does not accept raises :class:`ValueError`
    naming the backend instead of a bare :class:`TypeError`.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(available_backends()) or '(none)'}")
    try:
        backend = factory(**options)
    except TypeError as exc:
        raise ValueError(
            f"backend {name!r} rejected options "
            f"{sorted(options)}: {exc}") from exc
    if not backend.name:
        backend.name = name
    return backend


def backend_description(name: str) -> str:
    """One-line capability description (for ``--help`` style listings)."""
    return create_backend(name).capabilities().description
