"""Tensor-slot backend: gate application by axis slicing, O(2^m) per gate.

The state lives as an ``m``-qubit tensor of shape ``(2,) * m`` instead of
a flat ``2^m`` vector.  Applying a (multi-)controlled single-qubit gate
never builds the ``2^m x 2^m`` unitary: the target qubit's axis is moved
to the front, the control axes are fixed to their required values, and the
2x2 matrix is applied to the two resulting sub-tensors in place -- one
pass over at most ``2^m`` amplitudes per gate, versus the ``O(2^{3m})``
of naive full-matrix multiplication (the QOSF tensor-slot design sketched
in SNIPPETS.md).

Index convention matches the rest of the repo (little-endian): bit ``q``
of a flat basis index is qubit ``q``, so qubit ``q`` is tensor axis
``m - 1 - q`` of the C-order reshape.
"""

from __future__ import annotations

import time

import numpy as np

from ..circuit.operation import Operation
from ..simulation.statistics import SimulationStatistics
from .base import ArrayResult, Backend, BackendCapabilities, BackendResult

__all__ = ["TensorSlotBackend"]

#: same 1 GiB ceiling as the dense adapter -- the representation is just
#: a reshaped dense array, the win is per-gate work, not memory
_TENSOR_QUBIT_LIMIT = 26


class TensorSlotBackend(Backend):
    """State as a ``(2,) * n`` tensor; gates applied by slot slicing."""

    name = "tensor-slot"

    def __init__(self, max_qubits: int = _TENSOR_QUBIT_LIMIT) -> None:
        self.max_qubits = max_qubits
        self._tensor: np.ndarray | None = None
        self._num_qubits = 0
        self._statistics: SimulationStatistics = SimulationStatistics()
        self._started = 0.0

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            max_qubits=self.max_qubits,
            description="tensor-slot statevector: gates applied by axis "
                        "slicing, O(2^m) per gate, no unitary construction")

    def prepare(self, num_qubits: int, initial_index: int = 0) -> None:
        if num_qubits > self.max_qubits:
            raise ValueError(
                f"backend {self.name!r} is capped at {self.max_qubits} "
                f"qubits; got {num_qubits}")
        if not 0 <= initial_index < (1 << num_qubits):
            raise ValueError(
                f"initial basis index {initial_index} out of range for "
                f"{num_qubits} qubits")
        flat = np.zeros(1 << num_qubits, dtype=complex)
        flat[initial_index] = 1.0
        self._tensor = flat.reshape((2,) * num_qubits)
        self._num_qubits = num_qubits
        self._statistics = self._start_statistics(num_qubits)
        self._started = time.perf_counter()

    def apply(self, operation: Operation) -> None:
        if self._tensor is None:
            raise RuntimeError("prepare() must be called before apply()")
        n = self._num_qubits
        # qubit q <-> axis n-1-q; move the target axis first, the control
        # axes right behind it, then pin the controls to their values --
        # sub[0] / sub[1] are writable views of the target=0/1 slices of
        # the controlled subspace
        axes = [n - 1 - operation.target]
        values = []
        for qubit, value in operation.controls:
            axes.append(n - 1 - qubit)
            values.append(value)
        moved = np.moveaxis(self._tensor, axes, range(len(axes)))
        sub = moved[(slice(None), *values)]
        u = operation.matrix()
        a0 = np.array(sub[0], copy=True)
        a1 = np.array(sub[1], copy=True)
        sub[0] = u[0, 0] * a0 + u[0, 1] * a1
        sub[1] = u[1, 0] * a0 + u[1, 1] * a1
        self._statistics.operations_applied += 1
        self._statistics.matrix_vector_mults += 1

    def finalize(self) -> BackendResult:
        if self._tensor is None:
            raise RuntimeError("prepare() must be called before finalize()")
        self._statistics.wall_time_seconds = \
            time.perf_counter() - self._started
        vector = self._tensor.reshape(-1).copy()
        result = ArrayResult(vector, self._num_qubits, self._statistics)
        self._tensor = None
        return result
