"""Decision-diagram backends: the paper's simulators behind the protocol.

Three adapters share one engine-backed skeleton:

``dd`` (:class:`DDFastBackend`)
    The recursive fast path -- controlled single-qubit gates applied
    directly to the state DD (``Package.apply_gate``), no gate-DD
    construction.  Supports mid-run reordering and checkpoints.

``dd-matrix`` (:class:`DDMatrixBackend`)
    The paper's explicit matrix pathway: every operation becomes a matrix
    DD and the *strategy* decides the MxV/MxM multiplication schedule
    (sequential, ``k=N``, ``smax=N``, ``adaptive``, ``repeating``).

``dd-iterative`` (:class:`DDIterativeBackend`)
    The flat-array worklist kernel (``Package(kernel="iterative")``) --
    the fastest path on the bench workloads.

:meth:`Backend.run` routes through
:meth:`~repro.simulation.engine.SimulationEngine.simulate`, so traces,
checkpoints, degradation and reordering all keep working; the streaming
``prepare``/``apply``/``finalize`` protocol applies gates directly (no
governor, no checkpoints) for incremental feeding, e.g. by the fuzzer's
minimizer.
"""

from __future__ import annotations

import time
from random import Random

from ..circuit.circuit import QuantumCircuit
from ..circuit.operation import Operation
from ..dd.edge import Edge
from ..dd.package import Package
from ..simulation.engine import SimulationEngine
from ..simulation.memory import MemoryGovernor
from ..simulation.result import SimulationResult
from ..simulation.statistics import SimulationStatistics
from ..simulation.strategies import strategy_from_spec
from .base import Backend, BackendCapabilities, BackendResult

__all__ = ["DDBackendResult", "DDFastBackend", "DDIterativeBackend",
           "DDMatrixBackend"]


class DDBackendResult(BackendResult):
    """Protocol view over a DD :class:`SimulationResult`.

    Queries delegate to the permutation-aware result (DD traversals, no
    densification); ``fidelity_with`` short-circuits to the package-level
    DD inner product when both sides share a package.
    """

    def __init__(self, result: SimulationResult) -> None:
        super().__init__(result.num_qubits, result.statistics)
        self.result = result
        self.permutation = result.permutation

    def amplitude(self, basis_index: int) -> complex:
        return self.result.amplitude(basis_index)

    def probabilities(self) -> list[float]:
        return self.result.probabilities()

    def fidelity_with(self, other: BackendResult) -> float:
        if isinstance(other, DDBackendResult) and \
                self.result.package is other.result.package:
            return self.result.fidelity_with(other.result)
        return super().fidelity_with(other)

    def sample_dd(self, shots: int, rng: Random | None = None) \
            -> dict[int, int]:
        """DD-native sampling (never densifies; large registers)."""
        return self.result.sample(shots, rng)


class _EngineBackend(Backend):
    """Shared skeleton: an engine per run, strategy/option validation."""

    default_strategy = "sequential"

    def __init__(self, gc_limit: int | None = None,
                 max_nodes: int | None = None) -> None:
        self.gc_limit = gc_limit
        self.max_nodes = max_nodes
        self._engine: SimulationEngine | None = None
        self._state: Edge | None = None
        self._num_qubits = 0
        self._statistics: SimulationStatistics = SimulationStatistics()
        self._started = 0.0

    # -- engine construction (per run: DD node identity is engine-local) -

    def _governor(self) -> MemoryGovernor | None:
        if self.gc_limit is None and self.max_nodes is None:
            return None
        return MemoryGovernor(node_limit=self.gc_limit or 500_000,
                              max_nodes=self.max_nodes)

    def _make_engine(self) -> SimulationEngine:
        raise NotImplementedError

    # -- one-shot path: the full engine with its resilience features ----

    def run(self, circuit: QuantumCircuit, strategy: str | None = None,
            initial_index: int = 0, **run_options) -> BackendResult:
        capabilities = self.capabilities()
        spec = strategy or self.default_strategy
        if spec != "sequential" and not capabilities.strategies:
            raise ValueError(
                f"backend {self.name!r} does not support strategy "
                f"schedules (requested {spec!r})")
        options = {key: value for key, value in run_options.items()
                   if value is not None}
        if "reorder" in options and not capabilities.reorder:
            raise ValueError(f"backend {self.name!r} does not support "
                             f"mid-run reordering")
        if ("checkpoint_path" in options or "checkpoint_every" in options) \
                and not capabilities.checkpoint:
            raise ValueError(f"backend {self.name!r} does not support "
                             f"checkpointing")
        engine = self._make_engine()
        result = engine.simulate(
            circuit, strategy_from_spec(spec),
            initial_state=engine.initial_state(circuit.num_qubits,
                                               initial_index),
            backend_label=self.name, **options)
        return DDBackendResult(result)

    # -- streaming path: direct gate application, no governor ticks -----

    def prepare(self, num_qubits: int, initial_index: int = 0) -> None:
        self._engine = self._make_engine()
        self._state = self._engine.initial_state(num_qubits, initial_index)
        self._num_qubits = num_qubits
        self._statistics = self._start_statistics(num_qubits)
        self._started = time.perf_counter()

    def apply(self, operation: Operation) -> None:
        engine = self._engine
        if engine is None or self._state is None:
            raise RuntimeError("prepare() must be called before apply()")
        if engine.use_local_apply:
            matrix, controls = engine.local_gate_spec(operation)
            self._state = engine.package.apply_gate(
                self._state, matrix, operation.target, controls)
            self._statistics.local_gate_applications += 1
        else:
            gate = engine.gate_dd(operation, self._num_qubits)
            self._state = engine.package.multiply_matrix_vector(
                gate, self._state)
        self._statistics.operations_applied += 1
        self._statistics.matrix_vector_mults += 1

    def finalize(self) -> BackendResult:
        engine = self._engine
        if engine is None or self._state is None:
            raise RuntimeError("prepare() must be called before finalize()")
        state = engine.package.solidify(self._state)
        self._statistics.wall_time_seconds = \
            time.perf_counter() - self._started
        self._statistics.final_state_nodes = \
            engine.package.count_nodes(state)
        result = SimulationResult(state=state, package=engine.package,
                                  statistics=self._statistics)
        self._engine = None
        self._state = None
        return DDBackendResult(result)


class DDFastBackend(_EngineBackend):
    """Recursive fast path: direct controlled-gate application."""

    name = "dd"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            reorder=True, checkpoint=True,
            description="recursive DD fast path: gates applied directly "
                        "to the state DD; reordering and checkpoints")

    def _make_engine(self) -> SimulationEngine:
        return SimulationEngine(governor=self._governor())


class DDMatrixBackend(_EngineBackend):
    """Explicit matrix-DD pathway under a paper strategy schedule."""

    name = "dd-matrix"

    def __init__(self, strategy: str = "sequential",
                 gc_limit: int | None = None,
                 max_nodes: int | None = None) -> None:
        super().__init__(gc_limit=gc_limit, max_nodes=max_nodes)
        self.default_strategy = strategy

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            strategies=True, checkpoint=True,
            description="matrix-DD pathway: every gate becomes a matrix "
                        "DD; MxV/MxM schedule chosen by the strategy "
                        "(sequential, k=N, smax=N, adaptive, repeating)")

    def _make_engine(self) -> SimulationEngine:
        return SimulationEngine(package=Package(identity_shortcut=False),
                                use_local_apply=False,
                                governor=self._governor())


class DDIterativeBackend(_EngineBackend):
    """Flat-array worklist kernel (``Package(kernel="iterative")``)."""

    name = "dd-iterative"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            checkpoint=True,
            description="iterative flat-array DD kernel: worklist "
                        "traversal, canonical add caching, dense-block "
                        "cutover; fastest on the bench workloads")

    def _make_engine(self) -> SimulationEngine:
        return SimulationEngine(package=Package(kernel="iterative"),
                                governor=self._governor())
