"""The ``auto`` backend selector: cheap predictors pick the simulator.

Scoring is intentionally transparent: every registered built-in gets a
score in ``[0, 1]`` from the O(gates) feature vector of
:func:`repro.analysis.predictors.circuit_features`, the argmax wins, and
the full decision record -- chosen backend, features, per-backend scores,
and a one-line reason -- is returned as a :class:`Selection` so callers
can log it into :class:`~repro.simulation.statistics.SimulationStatistics`
(``simulate --backend auto`` does exactly that).

The heuristics encode what the bench data shows:

* Lightly entangling / structured circuits keep their DDs small -- the DD
  family wins regardless of width, and past a few hundred gates the
  iterative flat kernel beats the recursive fast path.
* Heavily entangling rotation circuits densify their DDs; on registers
  that fit in memory, a flat array with O(2^m) per-gate slicing
  (tensor-slot) is faster than pushing a near-dense DD around, with the
  plain dense baseline right behind it.
* The matrix pathway never wins ``auto`` -- it exists for strategy
  studies and as an independent oracle in the fuzz pool -- so it is
  scored but pinned to the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.predictors import CircuitFeatures, circuit_features
from ..circuit.circuit import QuantumCircuit
from .base import Backend
from .registry import available_backends, create_backend

__all__ = ["Selection", "resolve_backend", "score_backends",
           "select_backend"]

#: tensor-slot / dense only compete below this width (beyond it the flat
#: array is > 16 Mi amplitudes and DD compression usually wins)
_DENSE_FAMILY_MAX_QUBITS = 10

#: operation count past which the iterative kernel's lower per-node
#: overhead beats the recursive fast path's simplicity
_ITERATIVE_CUTOVER_OPS = 64


@dataclass(frozen=True)
class Selection:
    """The selector's decision record (logged for observability)."""

    backend: str
    features: CircuitFeatures
    scores: dict[str, float] = field(default_factory=dict)
    reason: str = ""

    def as_dict(self) -> dict:
        """JSON payload stored in ``SimulationStatistics.backend_selection``."""
        return {
            "backend": self.backend,
            "features": self.features.as_dict(),
            "scores": {name: round(score, 4)
                       for name, score in sorted(self.scores.items())},
            "reason": self.reason,
        }


def _density_signal(features: CircuitFeatures) -> float:
    """How 'dense' the final state likely is, in ``[0, ~1.5]``.

    The entanglement bound (normalised by the cut size) says whether DD
    compression can survive; the rotation fraction says whether the
    amplitudes densify even at modest entanglement.
    """
    cut = max(1, features.num_qubits // 2)
    entanglement_ratio = features.entanglement_estimate / cut
    return entanglement_ratio * (0.5 + features.rotation_fraction)


def score_backends(features: CircuitFeatures) -> dict[str, float]:
    """Score every registered built-in for this feature vector."""
    density = _density_signal(features)
    ops = features.num_operations
    fits_dense = features.num_qubits <= _DENSE_FAMILY_MAX_QUBITS
    scores = {
        # direct gate application shines on short, structured circuits
        "dd": 0.55 - 0.25 * min(1.0, ops / _ITERATIVE_CUTOVER_OPS),
        # the flat kernel takes over as the gate stream grows
        "dd-iterative": 0.45 + 0.25 * min(1.0, ops / (4
                                          * _ITERATIVE_CUTOVER_OPS)),
        # strategy-study pathway: scored for the record, never the winner
        "dd-matrix": 0.05,
        "tensor-slot": density if fits_dense else 0.0,
        "dense": 0.95 * density if fits_dense else 0.0,
    }
    return {name: score for name, score in scores.items()
            if name in available_backends()}


def select_backend(circuit: QuantumCircuit) -> Selection:
    """Pick the best registered backend for ``circuit``."""
    features = circuit_features(circuit)
    scores = score_backends(features)
    if not scores:
        raise ValueError("no scorable backends registered; "
                         "import repro.backends to register the built-ins")
    winner = max(sorted(scores), key=lambda name: scores[name])
    density = _density_signal(features)
    reason = (
        f"{features.num_qubits} qubits, {features.num_operations} ops, "
        f"entanglement bound {features.entanglement_estimate} ebit(s), "
        f"rotation fraction {features.rotation_fraction:.2f} "
        f"-> density signal {density:.2f}: "
        + ("dense family wins (near-dense state on a small register)"
           if winner in ("dense", "tensor-slot")
           else "DD family wins (structured/lightly-entangling circuit)"))
    return Selection(backend=winner, features=features, scores=scores,
                     reason=reason)


def resolve_backend(name: str, circuit: QuantumCircuit,
                    **options) -> tuple[Backend, Selection | None]:
    """Resolve ``name`` (a registry name or ``"auto"``) to an instance.

    Returns the backend plus the :class:`Selection` when ``auto`` decided
    (``None`` for explicit names -- an explicit choice always beats
    ``auto``).
    """
    if name == "auto":
        selection = select_backend(circuit)
        return create_backend(selection.backend, **options), selection
    return create_backend(name, **options), None
