"""Multi-backend dispatch: every way to simulate, behind one protocol.

The repo computes the same quantum state at least five ways -- the
recursive DD fast path, the iterative flat-array DD kernel, the paper's
strategy-driven matrix-DD pathway, a dense statevector, and a tensor-slot
statevector.  This package puts them behind one :class:`Backend` protocol
with a registry, so callers (CLI, sweeps, the differential fuzzer) treat
"which simulator" as data, and an ``auto`` selector that picks per
circuit from cheap structural predictors.

Importing this package registers the built-ins::

    from repro.backends import create_backend
    result = create_backend("dd-iterative").run(circuit)
    result.amplitude(0), result.probabilities(), result.sample(100)

Register your own (it immediately joins the fuzz pool)::

    from repro.backends import register_backend
    register_backend("my-backend", MyBackend)
"""

from .base import (ArrayResult, Backend, BackendCapabilities, BackendResult,
                   MAX_DENSE_QUBITS)
from .dd import (DDBackendResult, DDFastBackend, DDIterativeBackend,
                 DDMatrixBackend)
from .dense import DenseBackend
from .registry import (available_backends, backend_description,
                       create_backend, register_backend, unregister_backend)
from .selector import (Selection, resolve_backend, score_backends,
                       select_backend)
from .tensor_slot import TensorSlotBackend

__all__ = ["ArrayResult", "Backend", "BackendCapabilities", "BackendResult",
           "DDBackendResult", "DDFastBackend", "DDIterativeBackend",
           "DDMatrixBackend", "DenseBackend", "MAX_DENSE_QUBITS",
           "Selection", "TensorSlotBackend", "available_backends",
           "backend_description", "create_backend", "register_backend",
           "resolve_backend", "score_backends", "select_backend",
           "unregister_backend"]

#: the built-ins; re-registration on re-import is a no-op thanks to
#: ``replace=True``
for _name, _factory in (("dd", DDFastBackend),
                        ("dd-iterative", DDIterativeBackend),
                        ("dd-matrix", DDMatrixBackend),
                        ("dense", DenseBackend),
                        ("tensor-slot", TensorSlotBackend)):
    register_backend(_name, _factory, replace=True)
del _name, _factory
