"""Dense statevector backend: the ground-truth comparator as an adapter.

Wraps :class:`repro.baseline.statevector.StatevectorSimulator` behind the
:class:`~repro.backends.base.Backend` protocol.  Exponential in memory by
construction (one flat ``2^n`` array), exact for every gate in the model,
and the default *reference* side of the differential fuzzer.
"""

from __future__ import annotations

import time

from ..baseline.statevector import StatevectorSimulator
from ..circuit.operation import Operation
from ..simulation.statistics import SimulationStatistics
from .base import ArrayResult, Backend, BackendCapabilities, BackendResult

__all__ = ["DenseBackend"]

#: flat-array representation: 2^26 complex128 amplitudes = 1 GiB
_DENSE_QUBIT_LIMIT = 26


class DenseBackend(Backend):
    """Flat-array Schrödinger simulation (exact, memory-exponential)."""

    name = "dense"

    def __init__(self, max_qubits: int = _DENSE_QUBIT_LIMIT) -> None:
        self.max_qubits = max_qubits
        self._simulator: StatevectorSimulator | None = None
        self._statistics: SimulationStatistics = SimulationStatistics()
        self._started = 0.0

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            max_qubits=self.max_qubits,
            description="dense statevector baseline: one flat 2^n array, "
                        "exact ground truth for small registers")

    def prepare(self, num_qubits: int, initial_index: int = 0) -> None:
        if num_qubits > self.max_qubits:
            raise ValueError(
                f"backend {self.name!r} is capped at {self.max_qubits} "
                f"qubits; got {num_qubits}")
        self._simulator = StatevectorSimulator(num_qubits)
        self._simulator.set_basis_state(initial_index)
        self._statistics = self._start_statistics(num_qubits)
        self._started = time.perf_counter()

    def apply(self, operation: Operation) -> None:
        if self._simulator is None:
            raise RuntimeError("prepare() must be called before apply()")
        self._simulator.apply(operation)
        self._statistics.operations_applied += 1
        self._statistics.matrix_vector_mults += 1

    def finalize(self) -> BackendResult:
        if self._simulator is None:
            raise RuntimeError("prepare() must be called before finalize()")
        self._statistics.wall_time_seconds = \
            time.perf_counter() - self._started
        result = ArrayResult(self._simulator.state,
                             self._simulator.num_qubits, self._statistics)
        self._simulator = None
        return result
