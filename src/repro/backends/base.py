"""The backend protocol: every way this repo can compute the same state.

A :class:`Backend` turns a circuit into a :class:`BackendResult` through
the streaming protocol ``prepare -> apply* -> finalize`` (or the one-shot
:meth:`Backend.run`, which some adapters override to route through the
full :class:`~repro.simulation.engine.SimulationEngine` for checkpoints,
reordering and degradation).  Every result answers the same queries --
``amplitude`` / ``probabilities`` / ``sample`` / ``fidelity_with`` -- so
two backends can always be cross-checked, which is exactly what
:mod:`repro.verification.fuzz` does continuously.

:class:`BackendCapabilities` is the honest feature matrix: callers ask it
before requesting reordering, checkpoints or strategy scheduling instead
of discovering a ``TypeError`` three layers down.
"""

from __future__ import annotations

import abc
from dataclasses import asdict, dataclass

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.operation import Operation
from ..simulation.statistics import SimulationStatistics

__all__ = ["ArrayResult", "Backend", "BackendCapabilities", "BackendResult",
           "MAX_DENSE_QUBITS"]

#: largest register ``BackendResult.statevector`` will materialise densely
#: (2^24 complex128 amplitudes = 256 MiB); fidelity checks and sampling on
#: bigger registers must use backend-native paths
MAX_DENSE_QUBITS = 24


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend supports beyond plain sequential simulation."""

    #: honours paper strategy schedules (k-operations, DD-repeating, ...)
    strategies: bool = False
    #: supports mid-run variable reordering (``reorder=`` run option)
    reorder: bool = False
    #: supports checkpoint/resume (``checkpoint_path`` / ``resume``)
    checkpoint: bool = False
    #: supports noisy-channel simulation (density-matrix path)
    noise: bool = False
    #: hard qubit ceiling imposed by the representation (``None`` = bounded
    #: only by memory -- the DD adapters; dense arrays cap out early)
    max_qubits: int | None = None
    description: str = ""

    def as_dict(self) -> dict:
        return asdict(self)


class BackendResult(abc.ABC):
    """Uniform query interface over a finished simulation.

    Subclasses implement :meth:`amplitude`; everything else has a default
    built on it (dense adapters override with vectorised versions, DD
    adapters with traversal-based ones that never densify).
    """

    def __init__(self, num_qubits: int,
                 statistics: SimulationStatistics) -> None:
        self.num_qubits = num_qubits
        self.statistics = statistics
        #: variable permutation after mid-run reordering (DD adapters
        #: stamp the real one; ``None`` means identity order)
        self.permutation: list[int] | None = None

    @abc.abstractmethod
    def amplitude(self, basis_index: int) -> complex:
        """Amplitude of one computational basis state (logical indexing:
        bit ``q`` of ``basis_index`` is qubit ``q``)."""

    def statevector(self) -> np.ndarray:
        """The full dense state (guarded against huge registers)."""
        if self.num_qubits > MAX_DENSE_QUBITS:
            raise ValueError(
                f"refusing to densify a {self.num_qubits}-qubit state "
                f"(> {MAX_DENSE_QUBITS} qubits); use amplitude() or the "
                f"backend-native queries")
        return np.array([self.amplitude(i)
                         for i in range(1 << self.num_qubits)],
                        dtype=complex)

    def probabilities(self) -> list[float]:
        """Measurement distribution over all basis states."""
        vector = self.statevector()
        return [float(p) for p in np.abs(vector) ** 2]

    def probability(self, basis_index: int) -> float:
        return abs(self.amplitude(basis_index)) ** 2

    def sample(self, shots: int, rng=None) -> dict[int, int]:
        """Sample ``shots`` measurement outcomes.

        Uses inverse-CDF sampling over :meth:`probabilities`, so for the
        same ``rng`` state two correct backends draw identical outcomes --
        handy for differential checks on the sampling path itself.
        """
        if shots < 0:
            raise ValueError(f"shots must be >= 0, got {shots}")
        rng = rng or np.random.default_rng()
        probabilities = np.array(self.probabilities())
        total = probabilities.sum()
        if total <= 0:
            raise ValueError("state has zero norm; nothing to sample")
        cumulative = np.cumsum(probabilities / total)
        counts: dict[int, int] = {}
        # rng.random() works for both random.Random and numpy generators
        for _ in range(shots):
            draw = rng.random()
            outcome = int(np.searchsorted(cumulative, draw, side="right"))
            outcome = min(outcome, len(cumulative) - 1)
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts

    def fidelity_with(self, other: "BackendResult") -> float:
        """``|<self|other>|^2`` -- the differential-fuzzing oracle."""
        if self.num_qubits != other.num_qubits:
            raise ValueError(
                f"qubit count mismatch: {self.num_qubits} vs "
                f"{other.num_qubits}")
        inner = np.vdot(self.statevector(), other.statevector())
        return float(abs(inner) ** 2)


class ArrayResult(BackendResult):
    """Result backed by a flat dense amplitude array (little-endian:
    bit ``q`` of the flat index is qubit ``q``, matching the rest of the
    repo)."""

    def __init__(self, vector: np.ndarray, num_qubits: int,
                 statistics: SimulationStatistics) -> None:
        super().__init__(num_qubits, statistics)
        self._vector = np.asarray(vector, dtype=complex).reshape(-1)
        if self._vector.shape != (1 << num_qubits,):
            raise ValueError(
                f"vector of length {self._vector.size} does not match "
                f"{num_qubits} qubits")

    def amplitude(self, basis_index: int) -> complex:
        return complex(self._vector[basis_index])

    def statevector(self) -> np.ndarray:
        return self._vector.copy()

    def probabilities(self) -> list[float]:
        return [float(p) for p in np.abs(self._vector) ** 2]


class Backend(abc.ABC):
    """One way to simulate a circuit; register it to join the fuzz pool.

    The streaming protocol is the lowest common denominator::

        backend.prepare(num_qubits)
        for operation in circuit.operations():
            backend.apply(operation)
        result = backend.finalize()

    :meth:`run` wraps it for whole circuits and validates requested
    features against :meth:`capabilities` up front.  Engine-backed
    adapters override :meth:`run` to unlock strategies, checkpoints and
    reordering; the streaming protocol stays available on every backend
    for incremental feeding (the fuzzer's minimizer relies on it).
    """

    #: registry name; set by subclasses
    name: str = ""

    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Feature matrix used for up-front validation and ``auto``."""

    @abc.abstractmethod
    def prepare(self, num_qubits: int, initial_index: int = 0) -> None:
        """Start a fresh run in the basis state ``|initial_index>``."""

    @abc.abstractmethod
    def apply(self, operation: Operation) -> None:
        """Apply one elementary operation to the in-progress state."""

    @abc.abstractmethod
    def finalize(self) -> BackendResult:
        """Finish the run and return the queryable result."""

    def run(self, circuit: QuantumCircuit, strategy: str | None = None,
            initial_index: int = 0, **run_options) -> BackendResult:
        """Simulate a whole circuit through the streaming protocol.

        ``strategy`` and ``run_options`` (``reorder=``, ``checkpoint_path=``,
        ...) are validated against :meth:`capabilities`; backends that
        support them override this method and forward to the engine.
        """
        capabilities = self.capabilities()
        if strategy not in (None, "sequential") and not \
                capabilities.strategies:
            raise ValueError(
                f"backend {self.name!r} does not support strategy "
                f"schedules (requested {strategy!r}); it always applies "
                f"gates sequentially")
        unsupported = sorted(k for k, v in run_options.items()
                             if v is not None)
        if unsupported:
            raise ValueError(
                f"backend {self.name!r} does not support run option(s) "
                f"{', '.join(unsupported)}")
        limit = capabilities.max_qubits
        if limit is not None and circuit.num_qubits > limit:
            raise ValueError(
                f"backend {self.name!r} is capped at {limit} qubits; "
                f"circuit {circuit.name!r} has {circuit.num_qubits}")
        self.prepare(circuit.num_qubits, initial_index)
        for operation in circuit.operations():
            self.apply(operation)
        result = self.finalize()
        result.statistics.circuit_name = circuit.name
        return result

    # -- shared helpers for streaming adapters --------------------------

    def _start_statistics(self, num_qubits: int) -> SimulationStatistics:
        return SimulationStatistics(strategy="sequential",
                                    num_qubits=num_qubits,
                                    backend=self.name)
