"""repro -- DD-based simulation of quantum computations.

A from-scratch reproduction of

    A. Zulehner and R. Wille,
    "Matrix-Vector vs. Matrix-Matrix Multiplication:
     Potential in DD-based Simulation of Quantum Computations",
    Design, Automation and Test in Europe (DATE), 2019.

The package provides:

* ``repro.dd``         -- a QMDD-style decision-diagram package (vectors,
                          matrices, edge weights, add / MxV / MxM / kron).
* ``repro.circuit``    -- a quantum-circuit IR with repeated-block structure
                          and an OpenQASM-2 subset reader/writer.
* ``repro.simulation`` -- the simulation engine and the paper's operation
                          combining strategies (sequential, k-operations,
                          max-size, DD-repeating) plus instrumentation.
* ``repro.algorithms`` -- benchmark generators: Grover, Shor (Beauregard's
                          2n+3-qubit circuit and the n+1-qubit DD-construct
                          semiclassical simulator), Google supremacy-style
                          random circuits, QFT and Draper arithmetic.
* ``repro.baseline``   -- a dense numpy statevector simulator for
                          cross-validation.
* ``repro.analysis``   -- the experiment harness regenerating Fig. 8, Fig. 9,
                          Table I and Table II of the paper.
"""

from .circuit import QuantumCircuit
from .dd import Package
from .simulation import (KOperationsStrategy, MaxSizeStrategy,
                         RepeatingBlockStrategy, SequentialStrategy,
                         SimulationEngine, SimulationResult)

__version__ = "1.0.0"

__all__ = [
    "KOperationsStrategy",
    "MaxSizeStrategy",
    "Package",
    "QuantumCircuit",
    "RepeatingBlockStrategy",
    "SequentialStrategy",
    "SimulationEngine",
    "SimulationResult",
    "__version__",
]
