"""Dense array-based baseline simulator (validation comparator)."""

from .statevector import (StatevectorSimulator, apply_operation,
                          simulate_statevector)

__all__ = ["StatevectorSimulator", "apply_operation", "simulate_statevector"]
