"""Dense array-based Schrödinger simulator (the conventional comparator).

This is the "array-based simulation" the paper contrasts DDs with: the state
is a dense ``2^n`` numpy vector and every gate is applied by updating the
amplitudes it touches.  It is exponential in memory by construction and used
here (a) as ground truth to validate the DD simulator on small systems and
(b) as the conventional baseline in benchmark sanity checks.
"""

from __future__ import annotations

from random import Random

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.operation import Operation

__all__ = ["StatevectorSimulator", "simulate_statevector", "apply_operation"]


def apply_operation(state: np.ndarray, operation: Operation,
                    num_qubits: int) -> np.ndarray:
    """Apply one (multi-)controlled single-qubit gate to a dense state."""
    u = operation.matrix()
    target_mask = 1 << operation.target
    indices = np.arange(state.shape[0])
    selected = (indices & target_mask) == 0
    for qubit, value in operation.controls:
        selected &= ((indices >> qubit) & 1) == value
    i0 = indices[selected]
    i1 = i0 | target_mask
    a0 = state[i0].copy()
    a1 = state[i1]
    state[i0] = u[0, 0] * a0 + u[0, 1] * a1
    state[i1] = u[1, 0] * a0 + u[1, 1] * a1
    return state


class StatevectorSimulator:
    """Minimal dense statevector simulator with the same gate model."""

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = num_qubits
        self.state = np.zeros(1 << num_qubits, dtype=complex)
        self.state[0] = 1.0

    def set_basis_state(self, index: int) -> None:
        self.state[:] = 0
        self.state[index] = 1.0

    def apply(self, operation: Operation) -> None:
        apply_operation(self.state, operation, self.num_qubits)

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit size does not match simulator size")
        for operation in circuit.operations():
            self.apply(operation)
        return self.state

    def probabilities(self) -> np.ndarray:
        return np.abs(self.state) ** 2

    def measure_qubit(self, qubit: int, rng: Random) -> int:
        """Measure one qubit, collapse the state, return the outcome."""
        mask = 1 << qubit
        indices = np.arange(self.state.shape[0])
        p_one = float(np.sum(np.abs(self.state[(indices & mask) != 0]) ** 2))
        outcome = 1 if rng.random() < p_one else 0
        keep = ((indices & mask) != 0) == bool(outcome)
        probability = p_one if outcome else 1.0 - p_one
        self.state[~keep] = 0
        self.state /= np.sqrt(probability)
        return outcome

    def sample(self, shots: int, rng: Random) -> dict[int, int]:
        probabilities = self.probabilities()
        counts: dict[int, int] = {}
        cumulative = np.cumsum(probabilities)
        for _ in range(shots):
            outcome = int(np.searchsorted(cumulative, rng.random()))
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts


def simulate_statevector(circuit: QuantumCircuit,
                         initial_index: int = 0) -> np.ndarray:
    """Convenience: dense final state of ``circuit`` from a basis state."""
    simulator = StatevectorSimulator(circuit.num_qubits)
    simulator.set_basis_state(initial_index)
    return simulator.run(circuit)
