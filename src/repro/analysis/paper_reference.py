"""The numbers the paper itself reports, for paper-vs-measured comparison.

Transcribed from the evaluation section of Zulehner & Wille, DATE 2019.
Times are CPU seconds on the authors' machine with their C++ DD package;
``None`` stands for the paper's ``> 7200.00`` timeout entries.
"""

from __future__ import annotations

__all__ = ["PAPER_TABLE1", "PAPER_TABLE2", "PAPER_FIG8_SUMMARY",
           "PAPER_FIG9_SUMMARY", "PAPER_CLAIMS"]

#: Table I -- grover benchmarks (t_sota, t_general, t_DD-repeating)
PAPER_TABLE1 = {
    "Grover_23": (13.77, 4.83, 2.78),
    "Grover_25": (31.63, 11.77, 6.23),
    "Grover_27": (72.95, 26.84, 14.25),
    "Grover_29": (169.05, 67.82, 30.87),
}

#: Table II -- shor benchmarks (t_sota, t_general, t_DD-construct)
PAPER_TABLE2 = {
    "shor_1007_602_23": (84.74, 19.72, 0.12),
    "shor_1851_17_25": (94.99, 31.08, 0.13),
    "shor_2561_2409_27": (317.098, 74.53, 0.23),
    "shor_7361_5878_29": (159.48, 49.41, 0.14),
    "shor_5513_3591_29": (None, 217.20, 0.66),
    "shor_8193_1024_31": (53.53, 20.24, 0.04),
    "shor_11623_7531_31": (None, 1423.56, 3.05),
}

PAPER_FIG8_SUMMARY = ("speed-ups of up to a factor of 3 at moderate k; "
                      "k = 1 (pure Eq. 1) and very large k (pure Eq. 2) "
                      "are both worse than the optimum")

PAPER_FIG9_SUMMARY = ("speed-ups of up to a factor of 4.5 at moderate "
                      "s_max, with the same unimodal shape as Fig. 8")

#: the qualitative claims a successful reproduction must preserve
PAPER_CLAIMS = [
    ("fig8", "combining k operations beats sequential simulation for "
             "moderate k and loses at the extremes (unimodal speed-up)"),
    ("fig9", "the same holds when parametrising on the product-DD size"),
    ("table1", "DD-repeating gives a further speed-up (up to ~2x) over the "
               "best general strategy on Grover benchmarks"),
    ("table2", "DD-construct reduces Shor simulation from (tens of) "
               "minutes to (fractions of) seconds -- several orders of "
               "magnitude over both sota and the general strategies"),
    ("fig5", "the combined matrix DD is much smaller than the intermediate "
             "state vector it replaces, making Eq. 2 locally cheaper"),
]
