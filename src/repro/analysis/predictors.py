"""Cheap structural circuit predictors for backend auto-selection.

The exact entanglement entropy in :mod:`repro.analysis.entanglement`
requires simulating the circuit first -- useless for deciding *how* to
simulate it.  This module computes an O(gates) feature vector instead:
counts, fractions of the gate mix, and an upper bound on the final
bipartite entanglement across the middle cut (every two-qubit gate that
crosses a cut can raise the entanglement entropy across that cut by at
most one ebit, cf. "Improving Gate-Level Simulation of Quantum Circuits",
quant-ph/0309060).

The bound is deliberately loose -- it only has to separate "DD-friendly,
lightly entangling" circuits (GHZ ladders, oracles) from "dense, heavily
entangling" ones (random rotation circuits, supremacy slices) well enough
for :mod:`repro.backends.selector` to pick a sensible backend.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..circuit.circuit import QuantumCircuit, RepeatedBlock

__all__ = ["CircuitFeatures", "circuit_features", "cut_crossing_bound"]

#: gates outside the Clifford group (phase angles other than multiples of
#: pi/2 create the irrational amplitudes that densify statevectors)
_NON_CLIFFORD = {"t", "tdg"}


@dataclass(frozen=True)
class CircuitFeatures:
    """O(gates) feature vector used by the backend auto-selector."""

    num_qubits: int
    num_operations: int
    depth: int
    #: fraction of elementary operations touching >= 2 qubits
    two_qubit_fraction: float
    #: fraction of operations carrying continuous parameters (rx/ry/rz/p/u)
    rotation_fraction: float
    #: fraction of non-Clifford operations (t/tdg plus every rotation)
    nonclifford_fraction: float
    #: upper bound on final entanglement entropy (ebits) across the
    #: middle cut: ``min(crossing gate count, qubits on smaller side)``
    entanglement_estimate: int
    #: distinct interacting qubit pairs / all possible pairs
    interaction_density: float
    #: whether the circuit uses repeated blocks (DD-repeating candidates)
    has_repeated_blocks: bool

    def as_dict(self) -> dict:
        """JSON-compatible snapshot (logged into ``SimulationStatistics``)."""
        return asdict(self)


def cut_crossing_bound(circuit: QuantumCircuit, cut: int) -> int:
    """Entanglement upper bound (ebits) across ``[0, cut) | [cut, n)``.

    Counts multi-qubit operations spanning the cut; the bound is capped by
    the smaller side's size (a k-qubit register holds at most k ebits).
    """
    num_qubits = circuit.num_qubits
    if cut <= 0 or cut >= num_qubits:
        return 0
    crossings = 0
    for op in circuit.operations():
        qubits = op.qubits()
        if len(qubits) < 2:
            continue
        if any(q < cut for q in qubits) and any(q >= cut for q in qubits):
            crossings += 1
    return min(crossings, cut, num_qubits - cut)


def circuit_features(circuit: QuantumCircuit) -> CircuitFeatures:
    """Compute the selector's feature vector in one pass over the gates."""
    num_qubits = circuit.num_qubits
    total = 0
    multi_qubit = 0
    rotations = 0
    nonclifford = 0
    pairs: set[tuple[int, int]] = set()
    for op in circuit.operations():
        total += 1
        qubits = op.qubits()
        if len(qubits) >= 2:
            multi_qubit += 1
            anchor = qubits[0]
            for other in qubits[1:]:
                pairs.add((min(anchor, other), max(anchor, other)))
        if op.params:
            rotations += 1
            nonclifford += 1
        elif op.gate in _NON_CLIFFORD:
            nonclifford += 1
    possible_pairs = num_qubits * (num_qubits - 1) // 2
    denominator = max(1, total)
    return CircuitFeatures(
        num_qubits=num_qubits,
        num_operations=total,
        depth=circuit.depth(),
        two_qubit_fraction=multi_qubit / denominator,
        rotation_fraction=rotations / denominator,
        nonclifford_fraction=nonclifford / denominator,
        entanglement_estimate=cut_crossing_bound(circuit, num_qubits // 2),
        interaction_density=len(pairs) / max(1, possible_pairs),
        has_repeated_blocks=any(
            isinstance(instruction, RepeatedBlock)
            for instruction in circuit.instructions),
    )
