"""Command-line experiment harness.

Regenerate any of the paper's evaluation artifacts::

    python -m repro.analysis fig8          # Fig. 8 (k-operations sweep)
    python -m repro.analysis fig9          # Fig. 9 (max-size sweep)
    python -m repro.analysis table1        # Table I (Grover / DD-repeating)
    python -m repro.analysis table2        # Table II (Shor / DD-construct)
    python -m repro.analysis fig5          # the Fig. 5 size observation
    python -m repro.analysis all           # everything

``--profile quick|default|full`` scales the instance sizes; ``--markdown``
emits Markdown tables (the format EXPERIMENTS.md uses); ``--jobs N`` fans
the experiment cells out over N worker processes (see
:mod:`repro.simulation.sweep`).
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (run_fig5_study, run_fig8, run_fig9,
                          run_schedule_report, run_table1, run_table2)
from .reporting import format_result, write_markdown_table

def _run_scaling(profile: str, jobs: int):
    from .scaling import run_scaling_study

    return run_scaling_study("supremacy"
                             if profile == "full" else "grover")


_RUNNERS = {
    "fig8": lambda profile, jobs: run_fig8(profile, jobs=jobs),
    "fig9": lambda profile, jobs: run_fig9(profile, jobs=jobs),
    "table1": lambda profile, jobs: run_table1(profile, jobs=jobs),
    "table2": lambda profile, jobs: run_table2(profile, jobs=jobs),
    "fig5": lambda profile, jobs: run_fig5_study(),
    "schedule": lambda profile, jobs: run_schedule_report(profile, jobs=jobs),
    "scaling": _run_scaling,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the paper's evaluation tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(_RUNNERS) + ["all",
                                                    "write-experiments"],
                        help="which artifact to regenerate; "
                             "'write-experiments' runs everything and "
                             "rewrites EXPERIMENTS.md")
    parser.add_argument("--profile", default="quick",
                        choices=["quick", "default", "full"],
                        help="instance-size profile (default: quick)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit Markdown instead of ASCII tables")
    parser.add_argument("--output", default="EXPERIMENTS.md",
                        help="target file for write-experiments")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the experiment cells "
                             "(default: 1, i.e. run inline)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.experiment == "write-experiments":
        from .experiments_md import generate_experiments_md

        content = generate_experiments_md(args.profile)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(content)
        print(f"wrote {args.output}")
        return 0

    names = sorted(_RUNNERS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        result = _RUNNERS[name](args.profile, args.jobs)
        if args.markdown:
            print(write_markdown_table(result))
        else:
            print(format_result(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
