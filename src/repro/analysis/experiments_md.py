"""Generate EXPERIMENTS.md: paper-reported vs. measured, per artifact.

Run with::

    python -m repro.analysis write-experiments [--profile default]

The document records, for every table and figure of the paper's evaluation,
(a) what the paper reports, (b) what this reproduction measures on its
scaled-down instances, and (c) whether the qualitative claim is preserved.
"""

from __future__ import annotations

import platform
import sys
from datetime import date

from .experiments import (ExperimentResult, run_fig5_study, run_fig8,
                          run_fig9, run_table1, run_table2)
from .paper_reference import (PAPER_CLAIMS, PAPER_FIG8_SUMMARY,
                              PAPER_FIG9_SUMMARY, PAPER_TABLE1, PAPER_TABLE2)
from .reporting import write_markdown_table

__all__ = ["generate_experiments_md"]


def _average_speedup_series(result: ExperimentResult,
                            parameter: str) -> list[tuple]:
    return [(row[parameter], row["speedup"]) for row in result.rows
            if row["benchmark"] == "average"]


def _fig_section(result: ExperimentResult, parameter: str,
                 paper_summary: str) -> list[str]:
    series = _average_speedup_series(result, parameter)
    best_value, best_speedup = max(series, key=lambda item: item[1])
    first_speedup = series[0][1]
    last_speedup = series[-1][1]
    unimodal_shape = best_speedup > first_speedup \
        and best_speedup > last_speedup
    lines = [
        f"**Paper reports:** {paper_summary}.",
        "",
        f"**Measured (average over the instance suite):** best speed-up "
        f"{best_speedup:.2f}x at {parameter} = {best_value}; "
        f"{parameter} = {series[0][0]} gives {first_speedup:.2f}x and "
        f"{parameter} = {series[-1][0]} gives {last_speedup:.2f}x.",
        "",
        f"**Shape preserved:** {'yes' if unimodal_shape else 'NO'} "
        "(speed-up peaks at a moderate parameter value and falls off "
        "toward both extremes).",
        "",
        write_markdown_table(result),
    ]
    return lines


def _paper_table_markdown(table: dict, columns: tuple[str, str, str]) -> str:
    lines = ["| benchmark | " + " | ".join(columns) + " |",
             "|---|---|---|---|"]
    for name, values in table.items():
        cells = [">7200.00" if value is None else f"{value}"
                 for value in values]
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def generate_experiments_md(profile: str = "quick") -> str:
    """Run every experiment and render the full EXPERIMENTS.md content."""
    fig8 = run_fig8(profile)
    fig9 = run_fig9(profile)
    table1 = run_table1(profile)
    table2 = run_table2(profile)
    fig5 = run_fig5_study()

    parts: list[str] = [
        "# EXPERIMENTS — paper-reported vs. measured",
        "",
        "Reproduction of the evaluation of Zulehner & Wille, *Matrix-Vector "
        "vs. Matrix-Matrix Multiplication: Potential in DD-based Simulation "
        "of Quantum Computations*, DATE 2019.",
        "",
        f"- generated: {date.today().isoformat()} by "
        f"`python -m repro.analysis write-experiments --profile {profile}`",
        f"- python {sys.version.split()[0]} on {platform.machine()} "
        f"({platform.system()})",
        f"- instance profile: `{profile}` (see DESIGN.md for the scaling "
        "substitutions -- the paper used a C++ package on instances up to "
        "31 qubits; this is pure Python on scaled-down instances, so "
        "absolute times are not comparable, shapes are)",
        "",
        "## Claim checklist",
        "",
    ]
    for artifact, claim in PAPER_CLAIMS:
        parts.append(f"- **{artifact}**: {claim}")
    parts.append("")

    # ------------------------------------------------------------ Fig. 8
    parts.append("## Fig. 8 — speed-up for strategy *k-operations*")
    parts.append("")
    parts.extend(_fig_section(fig8, "k", PAPER_FIG8_SUMMARY))

    # ------------------------------------------------------------ Fig. 9
    parts.append("## Fig. 9 — speed-up for strategy *max-size*")
    parts.append("")
    parts.extend(_fig_section(fig9, "s_max", PAPER_FIG9_SUMMARY))

    # ----------------------------------------------------------- Table I
    parts.append("## Table I — grover benchmarks (strategy DD-repeating)")
    parts.append("")
    parts.append("**Paper reports (seconds, their machine):**")
    parts.append("")
    parts.append(_paper_table_markdown(
        PAPER_TABLE1, ("t_sota", "t_general", "t_DD-repeating")))
    parts.append("")
    rep_speedups = [row["speedup_vs_general"] for row in table1.rows]
    wins = sum(1 for row in table1.rows
               if row["t_dd_repeating"] < row["t_general"])
    parts.append(
        f"**Measured:** DD-repeating beats the best general strategy on "
        f"{wins}/{len(table1.rows)} instances, by "
        f"{min(rep_speedups):.2f}x–{max(rep_speedups):.2f}x (paper: up to "
        "a further factor of ~2).")
    parts.append("")
    parts.append(write_markdown_table(table1))

    # ---------------------------------------------------------- Table II
    parts.append("## Table II — shor benchmarks (strategy DD-construct)")
    parts.append("")
    parts.append("**Paper reports (seconds, their machine):**")
    parts.append("")
    parts.append(_paper_table_markdown(
        PAPER_TABLE2, ("t_sota", "t_general", "t_DD-construct")))
    parts.append("")
    con_speedups = [row["t_sota"] / row["t_dd_construct"]
                    for row in table2.rows if row["t_dd_construct"] > 0]
    parts.append(
        f"**Measured:** DD-construct beats sota by "
        f"{min(con_speedups):,.0f}x–{max(con_speedups):,.0f}x on the scaled "
        "instances (paper: from >2 CPU hours down to seconds, i.e. 2–4 "
        "orders of magnitude). Note: at these scaled-down sizes the "
        "*general* strategies show little benefit over sota on Shor -- the "
        "intermediate state DDs stay below ~100 nodes, so there is no large "
        "state DD to protect; the DD-construct column, the paper's main "
        "point for Shor, reproduces fully.")
    parts.append("")
    parts.append(write_markdown_table(table2))

    # ------------------------------------------------------------ Fig. 5
    parts.append("## Fig. 5 — effect of rearranging parentheses (measured)")
    parts.append("")
    parts.append(
        "**Paper shows (illustration):** combining two small gate DDs "
        "first (Eq. 2) avoids processing the large state DD twice.")
    parts.append("")
    by_quantity = {row["quantity"]: row for row in fig5.rows}
    inter = by_quantity["intermediate DD (nodes)"]
    recs = by_quantity["recursive mult/add calls"]
    parts.append(
        f"**Measured:** intermediate DD is {inter['eq1 (MxV twice)']} nodes "
        f"(Eq. 1: the state) vs. {inter['eq2 (MxM first)']} nodes (Eq. 2: "
        f"the combined matrix); recursive calls {recs['eq1 (MxV twice)']} "
        f"vs. {recs['eq2 (MxM first)']}.")
    parts.append("")
    parts.append(write_markdown_table(fig5))
    parts.append("")
    parts.extend(_parallel_sweep_section())
    return "\n".join(parts)


def _parallel_sweep_section() -> list[str]:
    return [
        "## Running sweeps in parallel",
        "",
        "Every experiment above is a *sweep* -- benchmark instances crossed "
        "with strategies (and repetitions, for the tables). The cells are "
        "independent, so they can be fanned out over worker processes:",
        "",
        "```",
        "python -m repro.analysis fig8 --profile default --jobs 4",
        "python -m repro experiments --profile quick --jobs 4   "
        "# deterministic schedule report",
        "python -m repro sweep spec.json --jobs 4 --output report.json",
        "python -m repro bench --smoke --jobs 4",
        "```",
        "",
        "Workers are shared-nothing by necessity, not preference: DD node "
        "identity is process-local (nodes are interned in per-package "
        "unique tables and compute-table slots hash on object addresses), "
        "so every cell builds its own `Package` in its own process and "
        "ships plain statistics dicts back. Results always merge in task "
        "order, and a cell that raises, exceeds its node budget, times "
        "out, or kills its worker is recorded as a failed cell without "
        "taking down the sweep (see `repro.simulation.sweep`).",
        "",
        "Two classes of output, with different reproducibility guarantees:",
        "",
        "- *Schedule-determined fields* (operation counts, MxV/MxM "
        "multiplication counts per Eq. 1/Eq. 2, reused-block applications, "
        "DD node sizes) are bit-identical across runs, machines, and "
        "`--jobs` counts. `python -m repro experiments` reports exactly "
        "these, so its output is byte-identical for any job count -- CI "
        "diffs `--jobs 2` against `--jobs 1`.",
        "- *Wall-clock times* (the t_* columns above) and recursion "
        "counters jitter run-to-run as they always did; per-cell times are "
        "measured inside the worker around the cell alone, so parallel "
        "timings remain comparable to serial ones.",
        "",
    ]
