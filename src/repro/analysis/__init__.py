"""Experiment harness: regenerates the paper's figures and tables."""

from .comparison import compare_strategies, default_strategy_lineup
from .entanglement import (entanglement_entropy, reduced_density_matrix,
                           schmidt_coefficients)
from .instances import (BenchmarkInstance, default_suite, extended_suite,
                        get_instance, quick_suite)
from .experiments import (ExperimentRow, run_fig5_study, run_fig8, run_fig9,
                          run_schedule_report, run_table1, run_table2)
from .reporting import (format_result, format_rows,
                        format_trace_summary, write_markdown_table)
from .scaling import run_scaling_study
from .xeb import (linear_xeb_fidelity, log_xeb_fidelity,
                  porter_thomas_statistic, xeb_from_samples)

__all__ = [
    "BenchmarkInstance",
    "ExperimentRow",
    "compare_strategies",
    "default_strategy_lineup",
    "default_suite",
    "entanglement_entropy",
    "extended_suite",
    "format_result",
    "reduced_density_matrix",
    "schmidt_coefficients",
    "format_rows",
    "format_trace_summary",
    "get_instance",
    "linear_xeb_fidelity",
    "log_xeb_fidelity",
    "porter_thomas_statistic",
    "quick_suite",
    "run_fig5_study",
    "run_fig8",
    "run_fig9",
    "run_scaling_study",
    "run_schedule_report",
    "run_table1",
    "run_table2",
    "write_markdown_table",
    "xeb_from_samples",
]
