"""One-call strategy comparison on a single circuit.

The question every user of this library asks first -- "which strategy
should I use for *my* circuit?" -- answered as a small report: run each
strategy on a fresh engine, check all final states agree, and tabulate
time, multiplication counts and DD sizes.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..circuit.circuit import QuantumCircuit
from ..dd.package import Package
from ..simulation.engine import SimulationEngine
from ..simulation.strategies import (AdaptiveStrategy, KOperationsStrategy,
                                     MaxSizeStrategy, RepeatingBlockStrategy,
                                     SequentialStrategy, SimulationStrategy)
from .experiments import ExperimentResult

__all__ = ["compare_strategies", "default_strategy_lineup"]


def default_strategy_lineup() -> list[SimulationStrategy]:
    """The strategies a quick comparison should cover."""
    return [
        SequentialStrategy(),
        KOperationsStrategy(4),
        KOperationsStrategy(16),
        MaxSizeStrategy(64),
        AdaptiveStrategy(),
        RepeatingBlockStrategy(),
    ]


def compare_strategies(circuit: QuantumCircuit,
                       strategies: Sequence[SimulationStrategy] | None = None,
                       verify_agreement: bool = True) -> ExperimentResult:
    """Run ``circuit`` under each strategy and tabulate the outcome.

    With ``verify_agreement`` (default) all final states are compared by
    fidelity on a shared package -- a failed comparison raises, because it
    would mean a simulator bug, not a benchmarking result.
    """
    strategies = list(strategies) if strategies is not None \
        else default_strategy_lineup()
    if not strategies:
        raise ValueError("need at least one strategy")
    result = ExperimentResult(
        experiment="compare",
        title=f"Strategy comparison on {circuit.name} "
              f"({circuit.num_qubits} qubits, "
              f"{circuit.num_operations()} operations)",
        headers=["strategy", "time_s", "MxV", "MxM", "peak_state_nodes",
                 "peak_matrix_nodes", "recursions", "speedup"])
    shared = Package() if verify_agreement else None
    reference_state = None
    baseline_time = None
    for strategy in strategies:
        engine = SimulationEngine()
        run = engine.simulate(circuit, strategy)
        stats = run.statistics
        if baseline_time is None:
            baseline_time = stats.wall_time_seconds
        if verify_agreement:
            checker = SimulationEngine(shared)
            check = checker.simulate(circuit, strategy)
            if reference_state is None:
                reference_state = check.state
            else:
                fidelity = shared.fidelity(reference_state, check.state)
                if abs(fidelity - 1.0) > 1e-6:
                    raise AssertionError(
                        f"strategy {strategy.describe()} diverged "
                        f"(fidelity {fidelity})")
        result.rows.append({
            "strategy": stats.strategy,
            "time_s": round(stats.wall_time_seconds, 4),
            "MxV": stats.matrix_vector_mults,
            "MxM": stats.matrix_matrix_mults,
            "peak_state_nodes": stats.peak_state_nodes,
            "peak_matrix_nodes": stats.peak_matrix_nodes,
            "recursions": stats.counters.total_recursions(),
            "speedup": round(baseline_time / stats.wall_time_seconds, 2)
            if stats.wall_time_seconds > 0 else None,
        })
    result.notes = ("speedup is relative to the first strategy in the "
                    "lineup; all strategies verified to produce the same "
                    "state" if verify_agreement else
                    "agreement verification disabled")
    return result
