"""Scaling studies: how cost grows with problem size, per workload family.

Not a paper artifact, but the context for its claims: DD simulation cost is
governed by diagram sizes, and different workload families scale completely
differently -- Grover stays polynomial (tiny state DDs), random circuits
blow up exponentially.  The study measures wall time, peak DD size and
recursive-call counts over a size sweep and reports the observed growth
factors.
"""

from __future__ import annotations

from ..algorithms.grover import grover_circuit
from ..algorithms.supremacy import supremacy_circuit
from ..simulation.engine import SimulationEngine
from ..simulation.strategies import SimulationStrategy
from .experiments import ExperimentResult

__all__ = ["run_scaling_study"]


def _measure(circuit, strategy: SimulationStrategy | None) -> dict:
    engine = SimulationEngine()
    stats = engine.simulate(circuit, strategy).statistics
    return {
        "qubits": circuit.num_qubits,
        "operations": stats.operations_applied,
        "time_s": round(stats.wall_time_seconds, 4),
        "peak_state_nodes": stats.peak_state_nodes,
        "recursions": stats.counters.total_recursions(),
    }


def run_scaling_study(family: str = "grover",
                      sizes=None,
                      strategy: SimulationStrategy | None = None
                      ) -> ExperimentResult:
    """Sweep a workload family over problem sizes.

    ``family``: ``"grover"`` (sizes = data-qubit counts) or ``"supremacy"``
    (sizes = grid depths on a fixed 3x3 grid).
    """
    result = ExperimentResult(
        experiment="scaling",
        title=f"Scaling study -- {family}",
        headers=["size", "qubits", "operations", "time_s",
                 "peak_state_nodes", "recursions", "growth"])
    if family == "grover":
        sizes = sizes or (6, 8, 10, 12)
        rows = [{"size": n, **_measure(grover_circuit(n, 5).circuit,
                                       strategy)}
                for n in sizes]
    elif family == "supremacy":
        sizes = sizes or (6, 8, 10, 12)
        rows = [{"size": d,
                 **_measure(supremacy_circuit(3, 3, d, seed=1).circuit,
                            strategy)}
                for d in sizes]
    else:
        raise ValueError(f"unknown family {family!r}; "
                         "use 'grover' or 'supremacy'")
    previous_time = None
    for row in rows:
        growth = None
        if previous_time and previous_time > 0:
            growth = round(row["time_s"] / previous_time, 2)
        previous_time = row["time_s"]
        row["growth"] = growth
        result.rows.append(row)
    result.notes = ("'growth' is the runtime ratio to the previous size; "
                    "grover grows polynomially (compact state DDs), "
                    "supremacy exponentially once the state DD saturates")
    return result
