"""Plain-text and Markdown rendering of experiment results and traces."""

from __future__ import annotations

from .experiments import ExperimentResult

__all__ = ["format_rows", "format_result", "format_trace_summary",
           "write_markdown_table"]


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def format_rows(headers: list[str], rows: list[dict]) -> str:
    """Render rows as an aligned ASCII table."""
    table = [[_cell(row.get(h)) for h in headers] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in table)) if table else len(h)
              for i, h in enumerate(headers)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Full report for one experiment: title, table, notes."""
    parts = [result.title, "=" * len(result.title),
             format_rows(result.headers, result.rows)]
    if result.notes:
        parts.append(f"note: {result.notes}")
    return "\n".join(parts) + "\n"


def format_trace_summary(summary: dict, title: str = "trace") -> str:
    """Render a :func:`repro.simulation.trace.trace_summary` digest.

    Accepts the summary dict (or a JSONL trace path, which is summarised
    first) and returns a small aligned report of state growth, GC activity
    and final cache hit rates.
    """
    if isinstance(summary, str):
        from ..simulation.trace import trace_summary
        summary = trace_summary(summary)
    lines = [title, "-" * len(title)]
    label_width = max(len(key) for key in summary)
    for key, value in summary.items():
        lines.append(f"{key.ljust(label_width)}  {_cell(value)}")
    return "\n".join(lines)


def write_markdown_table(result: ExperimentResult) -> str:
    """Render one experiment as a Markdown table (for EXPERIMENTS.md)."""
    lines = [f"### {result.title}", ""]
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "|".join("---" for _ in result.headers) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(_cell(row.get(h))
                                       for h in result.headers) + " |")
    if result.notes:
        lines.extend(["", f"*{result.notes}*"])
    return "\n".join(lines) + "\n"
