"""Plain-text and Markdown rendering of experiment results."""

from __future__ import annotations

from .experiments import ExperimentResult

__all__ = ["format_rows", "format_result", "write_markdown_table"]


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def format_rows(headers: list[str], rows: list[dict]) -> str:
    """Render rows as an aligned ASCII table."""
    table = [[_cell(row.get(h)) for h in headers] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in table)) if table else len(h)
              for i, h in enumerate(headers)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Full report for one experiment: title, table, notes."""
    parts = [result.title, "=" * len(result.title),
             format_rows(result.headers, result.rows)]
    if result.notes:
        parts.append(f"note: {result.notes}")
    return "\n".join(parts) + "\n"


def write_markdown_table(result: ExperimentResult) -> str:
    """Render one experiment as a Markdown table (for EXPERIMENTS.md)."""
    lines = [f"### {result.title}", ""]
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "|".join("---" for _ in result.headers) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(_cell(row.get(h))
                                       for h in result.headers) + " |")
    if result.notes:
        lines.extend(["", f"*{result.notes}*"])
    return "\n".join(lines) + "\n"
