"""Cross-entropy benchmarking (XEB) for random-circuit simulations.

The supremacy workloads (paper ref. [11]) are usually evaluated with
cross-entropy fidelities: samples drawn from the true output distribution
of a random circuit score ``F ~ 1``, uniform samples score ``F ~ 0``.
Since the DD simulator holds the exact state, it can both *draw* samples
and *score* them -- which doubles as a strong end-to-end correctness check
of the whole simulation stack (any amplitude corruption drags F away
from 1).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from random import Random

from ..dd.edge import Edge
from ..dd.measurement import sample_bitstring
from ..dd.package import Package

__all__ = ["linear_xeb_fidelity", "log_xeb_fidelity",
           "xeb_from_samples", "porter_thomas_statistic"]


def linear_xeb_fidelity(probabilities: Sequence[float],
                        dimension: int) -> float:
    """Linear XEB: ``D * mean(p(sample)) - 1``.

    ``probabilities`` are the *ideal* probabilities of the observed samples;
    1 for perfect sampling from a Porter-Thomas distribution, 0 for uniform
    noise.
    """
    if not probabilities:
        raise ValueError("need at least one sample")
    return dimension * sum(probabilities) / len(probabilities) - 1.0


def log_xeb_fidelity(probabilities: Sequence[float],
                     dimension: int) -> float:
    """Logarithmic XEB: ``log(D) + gamma + mean(log p(sample))``."""
    if not probabilities:
        raise ValueError("need at least one sample")
    if any(p <= 0 for p in probabilities):
        raise ValueError("log-XEB needs strictly positive probabilities")
    euler_gamma = 0.5772156649015329
    mean_log = sum(math.log(p) for p in probabilities) / len(probabilities)
    return math.log(dimension) + euler_gamma + mean_log


def xeb_from_samples(package: Package, state: Edge, num_qubits: int,
                     samples: Iterable[int] | None = None,
                     num_samples: int = 500,
                     rng: Random | None = None) -> float:
    """Linear XEB of samples against the simulated state.

    With ``samples=None``, samples are drawn from the state itself (the
    self-consistency check: expect ``F`` near 1 for Porter-Thomas-shaped
    output distributions).  Pass external samples (e.g. uniform indices) to
    score another sampler against this state.
    """
    rng = rng or Random(0)
    if samples is None:
        samples = [sample_bitstring(package, state, rng)
                   for _ in range(num_samples)]
    probabilities = [abs(package.amplitude(state, index)) ** 2
                     for index in samples]
    return linear_xeb_fidelity(probabilities, 1 << num_qubits)


def porter_thomas_statistic(probabilities: Sequence[float],
                            dimension: int) -> float:
    """Mean of ``D * p`` over all outcomes; 1.0 exactly (normalisation),
    while the *second* moment distinguishes distributions.

    Returns the second moment ``mean((D p)^2)``: 2.0 for a Porter-Thomas
    (exponential) distribution, 1.0 for the uniform distribution -- the
    standard witness that a random circuit has converged to chaos.
    """
    if len(probabilities) != dimension:
        raise ValueError("need the full outcome distribution")
    return sum((dimension * p) ** 2 for p in probabilities) / dimension
