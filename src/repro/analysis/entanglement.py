"""Entanglement analysis of simulated states.

Computes reduced density matrices and entanglement entropies directly from
state DDs: the density matrix of a pure state is an outer-product matrix
DD, qubits are traced out with the density machinery's partial trace, and
the (small) reduced matrix is diagonalised densely.  Entanglement across a
cut is also the structural reason DD sizes explode -- low-entanglement
states have compact diagrams -- so this doubles as a diagnostic for why a
simulation is cheap or expensive.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from ..dd.convert import matrix_to_numpy
from ..dd.edge import Edge
from ..dd.package import Package
from ..simulation.density import partial_trace

__all__ = ["reduced_density_matrix", "entanglement_entropy",
           "schmidt_coefficients"]


def reduced_density_matrix(package: Package, state: Edge,
                           keep: Iterable[int]) -> Edge:
    """Reduced density matrix of ``state`` on the qubits in ``keep``.

    All other qubits are traced out.  The kept qubits are re-indexed in
    increasing order (qubit ranks preserved).
    """
    if state.weight == 0:
        raise ValueError("zero state has no density matrix")
    num_qubits = state.node.level + 1
    keep_set = set(int(q) for q in keep)
    if not keep_set:
        raise ValueError("must keep at least one qubit")
    for qubit in keep_set:
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
    rho = package.outer_product(state, state)
    # trace out from the top so lower qubit indices stay valid
    for qubit in sorted(set(range(num_qubits)) - keep_set, reverse=True):
        rho = partial_trace(package, rho, qubit)
    return rho


def schmidt_coefficients(package: Package, state: Edge,
                         subsystem: Iterable[int]) -> list[float]:
    """Squared Schmidt coefficients across the (subsystem | rest) cut.

    These are the eigenvalues of the reduced density matrix; the subsystem
    must be small enough to diagonalise densely.
    """
    subsystem = sorted(set(int(q) for q in subsystem))
    rho = reduced_density_matrix(package, state, subsystem)
    dense = matrix_to_numpy(rho, len(subsystem))
    eigenvalues = np.linalg.eigvalsh(dense)
    return [max(0.0, float(v)) for v in eigenvalues[::-1]]


def entanglement_entropy(package: Package, state: Edge,
                         subsystem: Iterable[int],
                         base: float = 2.0) -> float:
    """Von Neumann entropy of the reduced state (log base 2 by default).

    0 for product states, ``log2(2^k)`` = k for maximal entanglement of a
    k-qubit subsystem with the rest.
    """
    entropy = 0.0
    for value in schmidt_coefficients(package, state, subsystem):
        if value > 1e-15:
            entropy -= value * math.log(value, base)
    return entropy
