"""Benchmark instance registry.

The paper evaluates on three established workloads (Sec. V): Grover's
algorithm, Shor's algorithm (Beauregard's realisation) and Google
supremacy-style random circuits.  This module names concrete instances and
gives each a uniform ``run(strategy)`` entry point that creates a fresh
engine, simulates, and returns the run's statistics -- the unit every
experiment and benchmark is built from.

Instance sizes are scaled down from the paper's (which used a C++ package
and a 2-CPU-hour budget); see DESIGN.md "Scaling substitutions".  Names
follow the paper's scheme: ``grover_<qubits>``, ``shor_<N>_<a>_<qubits>``,
``supremacy_<depth>_<qubits>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..algorithms.grover import grover_circuit
from ..algorithms.shor import ShorOrderFinder
from ..algorithms.supremacy import supremacy_circuit
from ..circuit.circuit import QuantumCircuit
from ..dd.package import Package
from ..simulation.engine import SimulationEngine
from ..simulation.statistics import SimulationStatistics
from ..simulation.strategies import SimulationStrategy

__all__ = ["BenchmarkInstance", "get_instance", "instance_from_spec",
           "instance_qasm", "instance_task_spec", "quick_suite",
           "default_suite", "extended_suite", "grover_suite", "shor_suite",
           "supremacy_suite"]


@dataclass
class BenchmarkInstance:
    """One named benchmark with a strategy-parametrised runner."""

    name: str
    kind: str                      # "grover" | "shor" | "supremacy"
    description: str
    _runner: Callable[..., SimulationStatistics]
    #: extra per-instance info (modulus, marked element, grid, ...)
    metadata: dict = field(default_factory=dict)

    def run(self, strategy: SimulationStrategy,
            use_local_apply: bool = True,
            governor: "MemoryGovernor | None" = None,
            reorder: str | None = None,
            on_op: Callable[[int], None] | None = None
            ) -> SimulationStatistics:
        """Simulate this instance under ``strategy`` on a fresh engine.

        ``use_local_apply=False`` forces the paper-literal pathway (explicit
        gate DDs + one matrix-vector multiplication per gate); the
        paper-artifact experiments use it so the MxV-vs-MxM comparison
        matches the paper's cost model.  ``governor`` replaces the fresh
        engine's default memory policy (the sweep runner uses it to give
        each cell a hard ``max_nodes`` budget).  ``reorder`` is a
        :func:`~repro.simulation.reorder.reorder_from_spec` spec enabling
        mid-run variable reordering (circuit-backed instances only; the
        Shor order finder drives its own engine and rejects it).
        ``on_op`` is the engine's cheap per-op callback (cooperative
        deadlines, fault injection); circuit-backed instances pass it
        through, the Shor order finder ignores it (its engine loop is
        driven internally).
        """
        return self._runner(strategy, use_local_apply, governor, reorder,
                            on_op)


def _circuit_instance(name: str, kind: str, description: str,
                      build: Callable[[], QuantumCircuit],
                      metadata: dict | None = None) -> BenchmarkInstance:
    built: list[QuantumCircuit] = []

    def runner(strategy: SimulationStrategy,
               use_local_apply: bool = True,
               governor=None, reorder=None,
               on_op=None) -> SimulationStatistics:
        if not built:
            built.append(build())
        if use_local_apply:
            engine = SimulationEngine(governor=governor)
        else:
            # Paper mode: no local-gate fast path AND no identity-aware
            # multiplication shortcut, so machine-independent recursion
            # counts match the paper's cost model (identity padding is
            # traversed like any other sub-matrix).
            engine = SimulationEngine(
                package=Package(identity_shortcut=False),
                use_local_apply=False, governor=governor)
        return engine.simulate(built[0], strategy,
                               reorder=reorder, on_op=on_op).statistics

    return BenchmarkInstance(name=name, kind=kind, description=description,
                             _runner=runner, metadata=metadata or {})


def _grover_instance(num_data_qubits: int, marked: int) -> BenchmarkInstance:
    def build() -> QuantumCircuit:
        return grover_circuit(num_data_qubits, marked).circuit

    total = num_data_qubits  # phase-oracle form uses no ancilla
    return _circuit_instance(
        name=f"grover_{total}",
        kind="grover",
        description=f"Grover search over 2^{num_data_qubits} entries, "
                    f"marked element {marked}",
        build=build,
        metadata={"num_data_qubits": num_data_qubits, "marked": marked},
    )


def _supremacy_instance(rows: int, cols: int, depth: int,
                        seed: int) -> BenchmarkInstance:
    def build() -> QuantumCircuit:
        return supremacy_circuit(rows, cols, depth, seed).circuit

    return _circuit_instance(
        name=f"supremacy_{depth}_{rows * cols}",
        kind="supremacy",
        description=f"Boixo-style random circuit on a {rows}x{cols} grid, "
                    f"depth {depth}, seed {seed}",
        build=build,
        metadata={"rows": rows, "cols": cols, "depth": depth, "seed": seed},
    )


def _shor_instance(modulus: int, base: int, seed: int = 7) -> BenchmarkInstance:
    qubits = 2 * modulus.bit_length() + 3

    def runner(strategy: SimulationStrategy,
               use_local_apply: bool = True,
               governor=None, reorder=None,
               on_op=None) -> SimulationStatistics:
        # on_op is accepted but not wired through: the order finder drives
        # its own engine loop, so a cooperative deadline cannot observe it
        # (the sweep's SIGALRM path and the supervisor's lease expiry
        # still bound these cells)
        if reorder is not None:
            raise ValueError(
                "shor instances drive their own engine through "
                "ShorOrderFinder and do not support mid-run reordering; "
                "drop the reorder= axis for this instance")
        if use_local_apply:
            engine = SimulationEngine(governor=governor)
        else:
            engine = SimulationEngine(
                package=Package(identity_shortcut=False),
                use_local_apply=False, governor=governor)
        finder = ShorOrderFinder(modulus, base, mode="gates",
                                 strategy=strategy, seed=seed, engine=engine)
        return finder.run().statistics

    return BenchmarkInstance(
        name=f"shor_{modulus}_{base}_{qubits}",
        kind="shor",
        description=f"Shor order finding for N={modulus}, a={base} "
                    f"(Beauregard circuit, {qubits} qubits)",
        _runner=runner,
        metadata={"modulus": modulus, "base": base, "seed": seed},
    )


def shor_dd_construct_statistics(modulus: int, base: int,
                                 seed: int = 7) -> SimulationStatistics:
    """Run the DD-construct realisation of a shor instance (Table II)."""
    finder = ShorOrderFinder(modulus, base, mode="construct", seed=seed)
    return finder.run().statistics


# ----------------------------------------------------------------------
# suites
# ----------------------------------------------------------------------

def grover_suite(profile: str = "default") -> list[BenchmarkInstance]:
    sizes = {"quick": [(8, 77), (10, 311)],
             "default": [(8, 77), (10, 311), (12, 2025), (14, 9001)],
             "full": [(8, 77), (10, 311), (12, 2025), (14, 9001),
                      (16, 41017)]}[profile]
    return [_grover_instance(n, marked) for n, marked in sizes]


def shor_suite(profile: str = "default") -> list[BenchmarkInstance]:
    # (N, a) chosen so the order is even and factors result; this mirrors the
    # paper's shor_N_a naming where N and a strongly affect the runtime.
    pairs = {"quick": [(15, 7), (21, 2)],
             "default": [(15, 7), (21, 2), (33, 5)],
             "full": [(15, 7), (21, 2), (33, 5), (55, 17), (77, 39)]}[profile]
    return [_shor_instance(modulus, base) for modulus, base in pairs]


def supremacy_suite(profile: str = "default") -> list[BenchmarkInstance]:
    grids = {"quick": [(3, 3, 10, 1), (3, 4, 10, 1)],
             "default": [(3, 3, 10, 1), (3, 4, 10, 1), (4, 4, 10, 1)],
             "full": [(3, 3, 10, 1), (3, 4, 10, 1), (4, 4, 10, 1),
                      (4, 4, 12, 1)]}[profile]
    return [_supremacy_instance(*grid) for grid in grids]


def quick_suite() -> list[BenchmarkInstance]:
    """Small instances for CI and pytest-benchmark runs."""
    return (grover_suite("quick") + shor_suite("quick")
            + supremacy_suite("quick"))


def default_suite() -> list[BenchmarkInstance]:
    """The instance set the experiment harness uses by default."""
    return (grover_suite("default") + shor_suite("default")
            + supremacy_suite("default"))


def extended_suite() -> list[BenchmarkInstance]:
    """Extra workload families beyond the paper's three.

    Not used by the paper-artifact experiments, but available for scaling
    studies and strategy comparisons: Bernstein-Vazirani (linear DDs),
    random Clifford circuits (structured randomness) and graph states
    (entanglement mirrors graph connectivity).
    """
    from ..algorithms.clifford import random_clifford_circuit
    from ..algorithms.graph_states import graph_state_circuit
    from ..algorithms.oracles import bernstein_vazirani_circuit
    from ..algorithms.qaoa import grid_graph

    instances = [
        _circuit_instance(
            name="bv_12",
            kind="oracle",
            description="Bernstein-Vazirani with a 12-bit secret",
            build=lambda: bernstein_vazirani_circuit(
                12, 0b101101011010).circuit,
        ),
        _circuit_instance(
            name="clifford_16_10",
            kind="clifford",
            description="random {H,S,CX} circuit, 10 qubits, depth 16",
            build=lambda: random_clifford_circuit(10, 16, seed=2).circuit,
        ),
        _circuit_instance(
            name="graph_state_3x4",
            kind="graph",
            description="graph state of the 3x4 grid",
            build=lambda: graph_state_circuit(grid_graph(3, 4), 12).circuit,
        ),
    ]
    return instances


def get_instance(name: str) -> BenchmarkInstance:
    """Look up any instance from the full suites by its name."""
    for instance in (grover_suite("full") + shor_suite("full")
                     + supremacy_suite("full") + extended_suite()):
        if instance.name == name:
            return instance
    raise KeyError(f"unknown benchmark instance {name!r}")


def instance_from_spec(metadata: dict, name: str) -> BenchmarkInstance:
    """Rebuild a benchmark instance from plain data, in any process.

    Sweep workers cannot receive :class:`BenchmarkInstance` objects (their
    runners close over circuits and engines), so tasks ship
    ``(kind, metadata, name)`` instead and every worker reconstructs the
    instance locally -- which also guarantees the mandatory per-process DD
    isolation.  The three paper workload families are rebuilt from their
    metadata (so custom sizes work too); anything else falls back to the
    registry by name.
    """
    kind = metadata.get("kind")
    if kind == "grover":
        return _grover_instance(metadata["num_data_qubits"],
                                metadata["marked"])
    if kind == "supremacy":
        return _supremacy_instance(metadata["rows"], metadata["cols"],
                                   metadata["depth"], metadata["seed"])
    if kind == "shor":
        return _shor_instance(metadata["modulus"], metadata["base"],
                              metadata.get("seed", 7))
    return get_instance(name)


def instance_task_spec(instance: BenchmarkInstance) -> dict:
    """The ``metadata`` payload :func:`instance_from_spec` rebuilds from."""
    return {"kind": instance.kind, **instance.metadata}


def instance_qasm(name: str) -> str:
    """OpenQASM-2 text of a circuit-backed registry instance.

    The job queue stores circuits as self-contained QASM inside the job
    record (``repro jobs submit --instance grover_8``), so the circuit is
    rebuilt here once, at submission time.  The Shor order finder is not
    circuit-backed (it drives its own engine, with intermediate
    measurements) and cannot be submitted as a job this way.
    """
    from ..circuit.qasm import to_qasm
    instance = get_instance(name)
    if instance.kind == "shor":
        raise ValueError(
            f"instance {name!r} is not circuit-backed (the Shor order "
            f"finder drives its own engine) and cannot run as a job; "
            f"submit a circuit-backed instance or inline QASM instead")
    if instance.kind == "grover":
        circuit = grover_circuit(instance.metadata["num_data_qubits"],
                                 instance.metadata["marked"]).circuit
    elif instance.kind == "supremacy":
        circuit = supremacy_circuit(
            instance.metadata["rows"], instance.metadata["cols"],
            instance.metadata["depth"], instance.metadata["seed"]).circuit
    else:
        # extended-suite instances: rebuild through the registry runner's
        # own builder by simulating nothing -- not possible without the
        # circuit, so reconstruct via a one-off private build
        circuit = _registry_circuit(instance)
    return to_qasm(circuit)


def _registry_circuit(instance: BenchmarkInstance) -> QuantumCircuit:
    """Rebuild an extended-suite instance's circuit from its name."""
    from ..algorithms.clifford import random_clifford_circuit
    from ..algorithms.graph_states import graph_state_circuit
    from ..algorithms.oracles import bernstein_vazirani_circuit
    from ..algorithms.qaoa import grid_graph
    builders = {
        "bv_12": lambda: bernstein_vazirani_circuit(
            12, 0b101101011010).circuit,
        "clifford_16_10": lambda: random_clifford_circuit(
            10, 16, seed=2).circuit,
        "graph_state_3x4": lambda: graph_state_circuit(
            grid_graph(3, 4), 12).circuit,
    }
    if instance.name not in builders:
        raise ValueError(f"no circuit builder known for instance "
                         f"{instance.name!r}")
    return builders[instance.name]()
