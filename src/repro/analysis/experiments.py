"""Experiment runners regenerating every artifact of the paper's evaluation.

* :func:`run_fig8`  -- Fig. 8: speed-up of *k-operations* over the
  sequential baseline as a function of ``k``, per benchmark and on average.
* :func:`run_fig9`  -- Fig. 9: the same for *max-size* over ``s_max``.
* :func:`run_table1` -- Table I: ``t_sota`` / ``t_general`` /
  ``t_DD-repeating`` for the Grover benchmarks.
* :func:`run_table2` -- Table II: ``t_sota`` / ``t_general`` /
  ``t_DD-construct`` for the Shor benchmarks.
* :func:`run_fig5_study` -- the Fig. 5 observation measured: DD sizes and
  multiplication effort with and without combining two operations.
* :func:`run_schedule_report` -- the machine-independent multiplication
  schedule (Eq. 1 / Eq. 2 accounting) of every instance x strategy cell;
  bit-identical across runs, processes, and ``jobs`` counts.

Absolute times differ from the paper (a pure-Python DD package on scaled
instances vs. the authors' C++ package); the reproduced claims are the
*shapes*: who wins, roughly by how much, and where the extremes lose.

Every runner takes ``jobs=``: cells (instance x strategy x repetition) are
executed through :class:`~repro.simulation.sweep.SweepRunner`, serially for
``jobs=1`` and on that many shared-nothing worker processes otherwise.
Each cell constructs its own DD package either way, and rows are assembled
from the merged results in an explicit sorted order -- never in completion
order -- so serial and parallel runs report the same rows in the same
positions (wall-clock *values* jitter run-to-run, as they always did; the
schedule report contains no timing and is byte-identical).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..dd.package import Package
from ..simulation.engine import SimulationEngine
from ..simulation.statistics import SimulationStatistics
from ..simulation.strategies import (KOperationsStrategy, MaxSizeStrategy,
                                     RepeatingBlockStrategy)
from ..simulation.sweep import SweepRunner, SweepTask, task_seed
from .instances import (BenchmarkInstance, default_suite, grover_suite,
                        instance_task_spec, quick_suite, shor_suite)

__all__ = ["ExperimentResult", "ExperimentRow", "run_fig8", "run_fig9",
           "run_table1", "run_table2", "run_fig5_study", "run_reorder_study",
           "run_schedule_report", "DEFAULT_K_VALUES", "DEFAULT_SMAX_VALUES",
           "GENERAL_STRATEGY_CANDIDATES", "SCHEDULE_STRATEGIES"]

#: parameter sweeps matching the x-axes of Fig. 8 / Fig. 9
DEFAULT_K_VALUES = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
DEFAULT_SMAX_VALUES = (1, 4, 16, 64, 256, 1024, 4096)

#: the small strategy sweep whose best result is reported as ``t_general``
GENERAL_STRATEGY_CANDIDATES = (
    KOperationsStrategy(4),
    KOperationsStrategy(16),
    MaxSizeStrategy(64),
    MaxSizeStrategy(256),
)

ExperimentRow = dict


@dataclass
class ExperimentResult:
    """A regenerated table/figure: headers plus one dict per row."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[ExperimentRow] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]

    def sort_rows(self, *columns: str,
                  tail: tuple[str, str] | None = None) -> None:
        """Put rows in an explicit deterministic order.

        Row order used to be an accident of execution order; with cells
        possibly completing on different workers it must be a property of
        the *data*, so serial and parallel runs (and re-runs) of the same
        experiment render byte-identical reports.  Rows sort by the given
        ``columns`` in turn; ``tail=(column, value)`` pins rows whose
        ``column`` equals ``value`` (e.g. the ``"average"`` summary rows)
        after all others that share the preceding key columns.
        """
        def key(row: ExperimentRow) -> tuple:
            parts: list = []
            for column in columns:
                value = row.get(column)
                if tail is not None and column == tail[0]:
                    parts.append(1 if value == tail[1] else 0)
                parts.append(value)
            return tuple(parts)

        self.rows.sort(key=key)


def _suite(profile: str) -> list[BenchmarkInstance]:
    return quick_suite() if profile == "quick" else default_suite()


#: best-of-N repetitions for the table experiments.  Table entries are
#: single numbers the reproduction is judged by; taking the minimum over a
#: couple of runs suppresses the scheduler jitter that dominates sub-100 ms
#: measurements (the figures' sweeps stay single-run: with ten parameter
#: points the shape is already robust).
TABLE_REPEATS = 2

#: the strategy grid enumerated by :func:`run_schedule_report`
SCHEDULE_STRATEGIES = ("sequential", "k=2", "k=4", "k=16", "smax=64",
                       "smax=256", "adaptive", "repeating:sequential")


def _cell(instance: BenchmarkInstance, spec: str,
          repetition: int = 0) -> SweepTask:
    """One experiment cell as a picklable sweep task.

    The paper-artifact experiments compare Eq. 1 against Eq. 2 on the
    paper's cost model: explicit gate DDs and one matrix-vector
    multiplication per gate.  The local-gate fast path is therefore
    disabled here (the kernel benchmark harness measures it instead).
    """
    return SweepTask(name=instance.name, strategy=spec,
                     repetition=repetition,
                     metadata=instance_task_spec(instance),
                     use_local_apply=False,
                     seed=task_seed(0, instance.name, spec, repetition))


def _construct_cell(instance: BenchmarkInstance,
                    repetition: int = 0) -> SweepTask:
    """The DD-construct realisation of a Shor instance (Table II)."""
    return SweepTask(name=instance.name, strategy="dd-construct",
                     repetition=repetition, kind="construct",
                     metadata=dict(instance.metadata),
                     seed=task_seed(0, instance.name, "dd-construct",
                                    repetition))


def _execute(tasks: list[SweepTask],
             jobs: int) -> dict[tuple, SimulationStatistics]:
    """Run experiment cells through the sweep runner; fail loudly.

    The experiment runners regenerate paper artifacts, so a failed cell is
    not survivable the way it is for an exploratory ``repro sweep`` -- a
    table with holes is not the paper's table.  Partial-failure tolerance
    lives in :class:`SweepRunner` / the ``sweep`` CLI instead.
    """
    report = SweepRunner(jobs=jobs).run(tasks)
    failed = report.failed_cells
    if failed:
        first = failed[0]
        raise RuntimeError(
            f"{len(failed)} experiment cell(s) failed; first: "
            f"{first.key()} -> {first.error}")
    return report.stats_by_key()


def _best_of(stats: dict[tuple, SimulationStatistics], name: str,
             spec: str, repeats: int = TABLE_REPEATS) -> SimulationStatistics:
    """Best-of-N lookup over a cell's repetitions (min wall time)."""
    return min((stats[(name, spec, rep)] for rep in range(repeats)),
               key=lambda s: s.wall_time_seconds)


# ----------------------------------------------------------------------
# Fig. 8 and Fig. 9: the general strategies
# ----------------------------------------------------------------------

def _run_parameter_sweep(experiment: str, title: str, parameter_name: str,
                         values, make_strategy, profile: str,
                         instances, jobs: int = 1) -> ExperimentResult:
    instances = instances if instances is not None else _suite(profile)
    specs = {value: make_strategy(value).spec() for value in values}
    tasks = [_cell(instance, spec)
             for instance in instances
             for spec in ["sequential", *specs.values()]]
    stats = _execute(tasks, jobs)
    result = ExperimentResult(
        experiment=experiment, title=title,
        headers=["benchmark", parameter_name, "t_sota", "t_strategy",
                 "speedup", "recursion_speedup"])
    for value in values:
        speedups = []
        for instance in instances:
            base = stats[(instance.name, "sequential", 0)]
            cell = stats[(instance.name, specs[value], 0)]
            speedup = (base.wall_time_seconds / cell.wall_time_seconds
                       if cell.wall_time_seconds > 0 else float("inf"))
            base_rec = base.counters.total_recursions()
            rec = cell.counters.total_recursions()
            rec_speedup = base_rec / rec if rec else float("inf")
            speedups.append(speedup)
            result.rows.append({
                "benchmark": instance.name,
                parameter_name: value,
                "t_sota": round(base.wall_time_seconds, 4),
                "t_strategy": round(cell.wall_time_seconds, 4),
                "speedup": round(speedup, 3),
                "recursion_speedup": round(rec_speedup, 3),
            })
        result.rows.append({
            "benchmark": "average",
            parameter_name: value,
            "t_sota": None,
            "t_strategy": None,
            "speedup": round(sum(speedups) / len(speedups), 3),
            "recursion_speedup": None,
        })
    result.sort_rows(parameter_name, "benchmark",
                     tail=("benchmark", "average"))
    result.notes = ("speedup = t_sota / t_strategy; the 'average' rows are "
                    "the line drawn in the paper's figure")
    return result


def run_fig8(profile: str = "quick", k_values=DEFAULT_K_VALUES,
             instances=None, jobs: int = 1) -> ExperimentResult:
    """Fig. 8: speed-up of the *k-operations* strategy over ``k``."""
    return _run_parameter_sweep(
        "fig8", "Fig. 8 -- speed-up for strategy k-operations", "k",
        k_values, KOperationsStrategy, profile, instances, jobs=jobs)


def run_fig9(profile: str = "quick", smax_values=DEFAULT_SMAX_VALUES,
             instances=None, jobs: int = 1) -> ExperimentResult:
    """Fig. 9: speed-up of the *max-size* strategy over ``s_max``."""
    return _run_parameter_sweep(
        "fig9", "Fig. 9 -- speed-up for strategy max-size", "s_max",
        smax_values, MaxSizeStrategy, profile, instances, jobs=jobs)


# ----------------------------------------------------------------------
# Table I and Table II: the knowledge-based strategies
# ----------------------------------------------------------------------

def _table_tasks(instances, knowledge_specs) -> list[SweepTask]:
    """The table experiments' cell grid, ``TABLE_REPEATS`` deep."""
    specs = (["sequential"]
             + [s.spec() for s in GENERAL_STRATEGY_CANDIDATES]
             + list(knowledge_specs))
    return [_cell(instance, spec, rep)
            for instance in instances
            for spec in specs
            for rep in range(TABLE_REPEATS)]


def _best_general(stats: dict[tuple, SimulationStatistics],
                  name: str) -> tuple[str, float]:
    """``t_general``: the best of the small general-strategy sweep.

    Ties keep the first candidate in ``GENERAL_STRATEGY_CANDIDATES`` order,
    matching the old strict-``<`` scan.
    """
    best_name = ""
    best_time = float("inf")
    for strategy in GENERAL_STRATEGY_CANDIDATES:
        seconds = _best_of(stats, name, strategy.spec()).wall_time_seconds
        if seconds < best_time:
            best_time = seconds
            best_name = strategy.describe()
    return best_name, best_time


def run_table1(profile: str = "quick", instances=None,
               jobs: int = 1) -> ExperimentResult:
    """Table I: Grover benchmarks under sota / general / DD-repeating."""
    instances = instances if instances is not None else grover_suite(profile)
    repeating_spec = RepeatingBlockStrategy().spec()
    stats = _execute(_table_tasks(instances, [repeating_spec]), jobs)
    result = ExperimentResult(
        experiment="table1",
        title="Table I -- results for grover benchmarks "
              "(strategy DD-repeating)",
        headers=["benchmark", "t_sota", "t_general", "t_dd_repeating",
                 "general_strategy", "speedup_vs_general"])
    for instance in instances:
        sota = _best_of(stats, instance.name, "sequential")
        general_name, general_time = _best_general(stats, instance.name)
        repeating = _best_of(stats, instance.name, repeating_spec)
        t_rep = repeating.wall_time_seconds
        result.rows.append({
            "benchmark": instance.name,
            "t_sota": round(sota.wall_time_seconds, 4),
            "t_general": round(general_time, 4),
            "t_dd_repeating": round(t_rep, 4),
            "general_strategy": general_name,
            "speedup_vs_general": round(general_time / t_rep, 2)
            if t_rep > 0 else float("inf"),
        })
    result.sort_rows("benchmark")
    result.notes = ("t_general is the best of a small k/s_max sweep, as in "
                    "the paper; DD-repeating combines each Grover iteration "
                    "once and re-uses the matrix DD")
    return result


def run_table2(profile: str = "quick", instances=None,
               jobs: int = 1) -> ExperimentResult:
    """Table II: Shor benchmarks under sota / general / DD-construct."""
    instances = instances if instances is not None else shor_suite(profile)
    tasks = _table_tasks(instances, [])
    tasks += [_construct_cell(instance, rep)
              for instance in instances for rep in range(TABLE_REPEATS)]
    stats = _execute(tasks, jobs)
    result = ExperimentResult(
        experiment="table2",
        title="Table II -- results for shor benchmarks "
              "(strategy DD-construct)",
        headers=["benchmark", "t_sota", "t_general", "t_dd_construct",
                 "general_strategy", "speedup_vs_general"])
    for instance in instances:
        sota = _best_of(stats, instance.name, "sequential")
        general_name, general_time = _best_general(stats, instance.name)
        construct = _best_of(stats, instance.name, "dd-construct")
        t_con = construct.wall_time_seconds
        result.rows.append({
            "benchmark": instance.name,
            "t_sota": round(sota.wall_time_seconds, 4),
            "t_general": round(general_time, 4),
            "t_dd_construct": round(t_con, 4),
            "general_strategy": general_name,
            "speedup_vs_general": round(general_time / t_con, 1)
            if t_con > 0 else float("inf"),
        })
    result.sort_rows("benchmark")
    result.notes = ("DD-construct builds the modular-multiplication oracles "
                    "directly as permutation DDs on n+1 qubits instead of "
                    "simulating the 2n+3-qubit Beauregard decomposition")
    return result


# ----------------------------------------------------------------------
# The deterministic schedule report
# ----------------------------------------------------------------------

def run_schedule_report(profile: str = "quick", instances=None,
                        strategies=SCHEDULE_STRATEGIES,
                        jobs: int = 1) -> ExperimentResult:
    """The multiplication schedule of every instance x strategy cell.

    Unlike the timing experiments, every reported column is determined by
    the strategy's schedule and the canonical DD structure alone --
    Eq. 1 / Eq. 2 multiplication counts, reused-block applications, and DD
    node sizes.  The report is therefore bit-identical across runs,
    processes, machines, and ``jobs`` counts, which makes it the artifact
    CI diffs between serial and parallel execution.
    """
    instances = instances if instances is not None else _suite(profile)
    tasks = [_cell(instance, spec)
             for instance in instances for spec in strategies]
    stats = _execute(tasks, jobs)
    result = ExperimentResult(
        experiment="schedule",
        title="Multiplication schedules (machine-independent)",
        headers=["benchmark", "strategy", "ops", "mxv", "mxm",
                 "reused_blocks", "final_nodes", "peak_state_nodes",
                 "peak_matrix_nodes"])
    for instance in instances:
        for spec in strategies:
            cell = stats[(instance.name, spec, 0)]
            result.rows.append({
                "benchmark": instance.name,
                "strategy": spec,
                "ops": cell.operations_applied,
                "mxv": cell.matrix_vector_mults,
                "mxm": cell.matrix_matrix_mults,
                "reused_blocks": cell.reused_block_applications,
                "final_nodes": cell.final_state_nodes,
                "peak_state_nodes": cell.peak_state_nodes,
                "peak_matrix_nodes": cell.peak_matrix_nodes,
            })
    result.sort_rows("benchmark", "strategy")
    result.notes = ("every column is schedule-determined: sequential runs "
                    "|G| MxV (Eq. 1); k-operations runs ceil(|G|/k) MxV + "
                    "|G| - ceil(|G|/k) MxM (Eq. 2); wall-clock and "
                    "recursion counters are deliberately excluded because "
                    "they vary across processes")
    return result


# ----------------------------------------------------------------------
# Fig. 5: the size observation behind the whole idea
# ----------------------------------------------------------------------

def run_fig5_study(rows: int = 3, cols: int = 3, depth: int = 8,
                   seed: int = 1) -> ExperimentResult:
    """Measure the Fig. 5 effect on a supremacy-style circuit.

    Finds the point of the simulation where the intermediate state DD is
    largest, then compares computing ``v_{i+2} = M_{i+2} (M_{i+1} v_i)``
    (Eq. 1) against ``v_{i+2} = (M_{i+2} M_{i+1}) v_i`` (Eq. 2) -- in DD
    sizes and in recursive multiplication/addition calls.
    """
    from ..algorithms.supremacy import supremacy_circuit
    from ..dd.gate_building import build_gate_dd

    circuit = supremacy_circuit(rows, cols, depth, seed).circuit
    operations = list(circuit.operations())
    if len(operations) < 3:
        raise ValueError("circuit too shallow for the Fig. 5 study")

    def replay(package: Package, upto: int):
        engine = SimulationEngine(package)
        state = package.basis_state(circuit.num_qubits, 0)
        for op in operations[:upto]:
            state = package.multiply_matrix_vector(
                engine.gate_dd(op, circuit.num_qubits), state)
        return state

    # Pass 1: find the step with the largest intermediate state DD.
    package = Package()
    engine = SimulationEngine(package)
    state = package.basis_state(circuit.num_qubits, 0)
    sizes = []
    for op in operations:
        state = package.multiply_matrix_vector(
            engine.gate_dd(op, circuit.num_qubits), state)
        sizes.append(package.count_nodes(state))
    split = max(range(len(sizes) - 2), key=sizes.__getitem__)

    result = ExperimentResult(
        experiment="fig5",
        title="Fig. 5 -- computational effect of rearranging parentheses",
        headers=["quantity", "eq1 (MxV twice)", "eq2 (MxM first)"])

    def measure(order: str) -> dict:
        package = Package()
        engine = SimulationEngine(package)
        v_i = replay(package, split + 1)
        m1 = engine.gate_dd(operations[split + 1], circuit.num_qubits)
        m2 = engine.gate_dd(operations[split + 2], circuit.num_qubits)
        before = package.counters.snapshot()
        started = time.perf_counter()
        if order == "eq1":
            v_mid = package.multiply_matrix_vector(m1, v_i)
            final = package.multiply_matrix_vector(m2, v_mid)
            mid_nodes = package.count_nodes(v_mid)
        else:
            combined = package.multiply_matrix_matrix(m2, m1)
            final = package.multiply_matrix_vector(combined, v_i)
            mid_nodes = package.count_nodes(combined)
        elapsed = time.perf_counter() - started
        delta = package.counters.delta(before)
        return {
            "v_i_nodes": package.count_nodes(v_i),
            "gate_nodes": (package.count_nodes(m1), package.count_nodes(m2)),
            "intermediate_nodes": mid_nodes,
            "final_nodes": package.count_nodes(final),
            "recursions": delta.total_recursions(),
            "time": elapsed,
        }

    eq1 = measure("eq1")
    eq2 = measure("eq2")
    for key, label in [
            ("v_i_nodes", "state DD |v_i| (nodes)"),
            ("gate_nodes", "gate DDs |M_i+1|,|M_i+2| (nodes)"),
            ("intermediate_nodes", "intermediate DD (nodes)"),
            ("final_nodes", "final state DD (nodes)"),
            ("recursions", "recursive mult/add calls"),
            ("time", "wall time (s)")]:
        result.rows.append({"quantity": label,
                            "eq1 (MxV twice)": eq1[key],
                            "eq2 (MxM first)": eq2[key]})
    result.notes = (f"split chosen at gate {split + 1}/{len(operations)} "
                    "(largest intermediate state DD); eq2's intermediate is "
                    "the combined matrix, eq1's is the intermediate state")
    return result


# ----------------------------------------------------------------------
# The variable-ordering study: ordered vs. sifted node counts
# ----------------------------------------------------------------------

def run_reorder_study(pair_counts=(2, 3, 4, 5, 6),
                      tail_layers: int = 2) -> ExperimentResult:
    """Ordered-vs-sifted DD sizes on the qubit-pairing worst case.

    The Fig. 5 observation was that parenthesisation changes intermediate
    DD sizes; this study measures the same effect for *variable order*:
    the pairing state ``sum_x |x>|x>`` (qubit ``i`` entangled with
    ``i + n/2``) has an exponential state DD under the natural order and a
    linear one once sifting moves the paired qubits adjacent.  Each row
    compares one size simulated twice -- as-is and with an ``every=K``
    reorder policy that sifts right after the entangling stage -- on the
    exact node counts (no wall-clock; the rows are machine-independent).
    """
    from ..algorithms.pairing import pairing_circuit
    from ..simulation.reorder import ReorderPolicy

    result = ExperimentResult(
        experiment="reorder",
        title="Variable-ordering study -- ordered vs. sifted state DDs "
              "(pairing worst case)",
        headers=["pairs", "qubits", "ordered_peak", "ordered_final",
                 "sifted_peak", "sifted_final", "reorders",
                 "final_node_ratio"])
    for pairs in pair_counts:
        circuit = pairing_circuit(pairs, tail_layers=tail_layers).circuit
        ordered = SimulationEngine(package=Package(),
                                   gc_node_limit=None).simulate(circuit)
        # Sift once the entangling stage is complete (2*pairs operations),
        # so the tail runs under the improved order; min_nodes=2 keeps the
        # smallest sizes in the study instead of skipping them as trivial.
        policy = ReorderPolicy(mode="every", every=2 * pairs, min_nodes=2)
        sifted = SimulationEngine(package=Package()).simulate(
            circuit, reorder=policy)
        o_stats, s_stats = ordered.statistics, sifted.statistics
        ratio = (o_stats.final_state_nodes / s_stats.final_state_nodes
                 if s_stats.final_state_nodes else float("inf"))
        result.rows.append({
            "pairs": pairs,
            "qubits": circuit.num_qubits,
            "ordered_peak": o_stats.peak_state_nodes,
            "ordered_final": o_stats.final_state_nodes,
            "sifted_peak": s_stats.peak_state_nodes,
            "sifted_final": s_stats.final_state_nodes,
            "reorders": s_stats.reorders,
            "final_node_ratio": round(ratio, 2),
        })
    result.sort_rows("pairs")
    result.notes = ("ordered runs use the natural variable order (final "
                    "state ~2^pairs nodes); sifted runs reorder mid-run "
                    "with sift() and finish linear in pairs; every column "
                    "is an exact node count, machine-independent")
    return result
