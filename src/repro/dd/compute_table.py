"""Compute tables -- memoisation caches for the recursive DD operations.

Each DD operation (addition, matrix-vector multiplication, matrix-matrix
multiplication, Kronecker product, ...) gets its own cache so that
re-occurring sub-problems are computed only once -- this is precisely the
effect that makes matrix-matrix multiplication competitive on DDs (paper
Sec. III: "re-occurring sub-products only have to be computed once").

Keys are built from node identities plus (for addition) a canonical weight
ratio; values are result edges.  Caches are bounded: when a cache exceeds
``max_entries`` it is cleared wholesale, the classic DD-package policy that
keeps bookkeeping negligible.
"""

from __future__ import annotations

from .edge import Edge

__all__ = ["ComputeTable"]


class ComputeTable:
    """A bounded memoisation cache for one DD operation."""

    def __init__(self, name: str, max_entries: int = 1 << 20) -> None:
        self.name = name
        self.max_entries = max_entries
        self._table: dict[tuple, Edge] = {}
        self.lookups = 0
        self.hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: tuple) -> Edge | None:
        self.lookups += 1
        result = self._table.get(key)
        if result is not None:
            self.hits += 1
        return result

    def put(self, key: tuple, value: Edge) -> None:
        if len(self._table) >= self.max_entries:
            self._table.clear()
            self.evictions += 1
        self._table[key] = value

    def clear(self) -> None:
        self._table.clear()

    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ComputeTable({self.name!r}, entries={len(self)}, "
                f"hit_rate={self.hit_rate():.2%})")
