"""Compute tables -- memoisation caches for the recursive DD operations.

Each DD operation (addition, matrix-vector multiplication, matrix-matrix
multiplication, Kronecker product, ...) gets its own cache so that
re-occurring sub-problems are computed only once -- this is precisely the
effect that makes matrix-matrix multiplication competitive on DDs (paper
Sec. III: "re-occurring sub-products only have to be computed once").

Keys are built from node identities plus (for addition) a canonical weight
ratio; values are result edges (or scalars, for inner products).

The cache is a *fixed-size slot table*, the policy used by the QMDD /
mqt-core packages: ``hash(key)`` selects one of ``slots`` slots, and an
insert simply overwrites whatever lived there before (replace-on-collision).
Compared to the classic grow-then-clear-wholesale dict policy this bounds
memory exactly, never pays a full-table clear in the middle of a hot loop,
and ages out stale entries one at a time instead of dropping the whole
working set.  Per-table hit/miss/collision counters feed
``Package.cache_stats()`` and the benchmark harness.
"""

from __future__ import annotations

__all__ = ["ComputeTable"]

#: Default slot count (power of two).  At one (key, value) tuple per filled
#: slot this bounds each table to a few MB even on the largest workloads.
DEFAULT_SLOTS = 1 << 16


class ComputeTable:
    """A fixed-size, replace-on-collision memoisation cache."""

    __slots__ = ("name", "slots", "_mask", "_entries", "_filled",
                 "lookups", "hits", "collisions", "inserts")

    def __init__(self, name: str, slots: int = DEFAULT_SLOTS) -> None:
        if slots < 1:
            raise ValueError(f"slots must be positive, got {slots}")
        size = 1
        while size < slots:
            size <<= 1
        self.name = name
        self.slots = size
        self._mask = size - 1
        self._entries: list[tuple | None] = [None] * size
        self._filled = 0
        self.lookups = 0
        self.hits = 0
        self.collisions = 0
        self.inserts = 0

    def __len__(self) -> int:
        return self._filled

    def get(self, key: tuple):
        """The cached value for ``key``, or ``None`` on a miss."""
        self.lookups += 1
        entry = self._entries[hash(key) & self._mask]
        if entry is not None and entry[0] == key:
            self.hits += 1
            return entry[1]
        return None

    def put(self, key: tuple, value) -> None:
        """Store ``value``, overwriting any entry sharing the key's slot."""
        index = hash(key) & self._mask
        current = self._entries[index]
        if current is None:
            self._filled += 1
        elif current[0] != key:
            self.collisions += 1
        self._entries[index] = (key, value)
        self.inserts += 1

    def entries(self):
        """Iterate over the occupied ``(key, value)`` slots.

        Used by the integrity auditor (every node referenced from a key or
        value must still be interned) -- not a hot path.
        """
        for entry in self._entries:
            if entry is not None:
                yield entry

    def resize(self, slots: int) -> int:
        """Shrink (or grow) the table to ``slots`` slots, rehashing entries.

        Entries whose new slot collides are dropped (replace-on-collision,
        same policy as :meth:`put`).  Returns the number of entries lost.
        The degradation ladder uses this to trade cache hit rate for
        memory when a run brushes its hard budget.
        """
        if slots < 1:
            raise ValueError(f"slots must be positive, got {slots}")
        size = 1
        while size < slots:
            size <<= 1
        if size == self.slots:
            return 0
        survivors = [entry for entry in self._entries if entry is not None]
        self.slots = size
        self._mask = size - 1
        self._entries = [None] * size
        self._filled = 0
        kept = 0
        for key, value in survivors:
            index = hash(key) & self._mask
            if self._entries[index] is None:
                self._filled += 1
                kept += 1
            self._entries[index] = (key, value)
        return len(survivors) - kept

    def clear(self) -> int:
        """Drop all entries; returns how many were dropped.

        Cumulative statistics are kept.  An already-empty table is a no-op,
        so callers (notably garbage collection) can clear unconditionally
        without paying the slot-array reallocation for idle tables.
        """
        dropped = self._filled
        if dropped:
            self._entries = [None] * self.slots
            self._filled = 0
        return dropped

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def load_factor(self) -> float:
        """Fraction of slots currently occupied."""
        return self._filled / self.slots

    def stats(self) -> dict:
        """Machine-readable counters for ``cache_stats()`` / benchmarks.

        ``entries``/``capacity`` mirror ``filled``/``slots`` under the
        names shared with the iterative kernel's memo stats, so harnesses
        can read every table -- fixed-slot or unbounded -- uniformly.
        """
        return {
            "slots": self.slots,
            "filled": self._filled,
            "entries": self._filled,
            "capacity": self.slots,
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "collisions": self.collisions,
            "inserts": self.inserts,
            "hit_rate": round(self.hit_rate(), 6),
            "load_factor": round(self.load_factor(), 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ComputeTable({self.name!r}, filled={self._filled}/"
                f"{self.slots}, hit_rate={self.hit_rate():.2%})")
