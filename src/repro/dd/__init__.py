"""Quantum decision diagrams (QMDD-style, with edge weights).

This subpackage is the simulation substrate of the reproduction: compact
representations of state vectors and unitary matrices together with the
arithmetic (addition, matrix-vector and matrix-matrix multiplication,
Kronecker products) performed directly on the diagrams.

Typical usage::

    from repro.dd import Package, build_gate_dd

    pkg = Package()
    state = pkg.zero_state(3)
    hadamard = [[2 ** -0.5, 2 ** -0.5], [2 ** -0.5, -(2 ** -0.5)]]
    gate = build_gate_dd(pkg, hadamard, num_qubits=3, target=0)
    state = pkg.multiply_matrix_vector(gate, state)
"""

from .approximation import (ApproximationResult, prune_small_contributions,
                            prune_to_node_budget)
from .complex_table import DEFAULT_TOLERANCE, ComplexTable
from .convert import (matrix_from_numpy, matrix_to_numpy, vector_from_numpy,
                      vector_to_numpy)
from .edge import Edge
from .export import level_histogram, size_report, to_dot
from .function_construction import (build_controlled_permutation_dd,
                                    build_permutation_dd,
                                    controlled_unitary_dd,
                                    modular_multiplication_permutation)
from .gate_building import build_diagonal_dd, build_gate_dd, build_two_level_dd
from .measurement import (all_probabilities, measure_qubit, project_qubit,
                          qubit_probability, sample_bitstring, sample_counts)
from .node import TERMINAL, MatrixNode, Terminal, VectorNode
from .observables import (diagonal_expectation, expectation_value,
                          pauli_expectation, pauli_string_dd)
from .package import DDIntegrityError, GcStats, OperationCounters, Package
from .reordering import (apply_index_permutation, permute_qubits, sift,
                         swap_adjacent_levels)
from .serialization import deserialize_dd, dumps_dd, loads_dd, serialize_dd
from .states import (ghz_state, product_state, random_structured_state,
                     uniform_superposition, w_state)

__all__ = [
    "ApproximationResult",
    "DDIntegrityError",
    "DEFAULT_TOLERANCE",
    "ComplexTable",
    "Edge",
    "MatrixNode",
    "GcStats",
    "OperationCounters",
    "Package",
    "TERMINAL",
    "Terminal",
    "VectorNode",
    "all_probabilities",
    "apply_index_permutation",
    "build_controlled_permutation_dd",
    "build_diagonal_dd",
    "build_gate_dd",
    "build_permutation_dd",
    "build_two_level_dd",
    "controlled_unitary_dd",
    "deserialize_dd",
    "diagonal_expectation",
    "dumps_dd",
    "expectation_value",
    "ghz_state",
    "level_histogram",
    "loads_dd",
    "matrix_from_numpy",
    "matrix_to_numpy",
    "measure_qubit",
    "modular_multiplication_permutation",
    "pauli_expectation",
    "pauli_string_dd",
    "permute_qubits",
    "product_state",
    "project_qubit",
    "prune_small_contributions",
    "prune_to_node_budget",
    "qubit_probability",
    "random_structured_state",
    "sample_bitstring",
    "sample_counts",
    "serialize_dd",
    "sift",
    "size_report",
    "swap_adjacent_levels",
    "uniform_superposition",
    "w_state",
    "to_dot",
    "vector_from_numpy",
    "vector_to_numpy",
]
