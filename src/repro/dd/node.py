"""DD node types.

A decision diagram is built from two node species:

* :class:`VectorNode` -- decomposes a state vector over one qubit; it has two
  successor edges for the *upper* (qubit = |0>) and *lower* (qubit = |1>)
  half of the vector (paper Fig. 2).
* :class:`MatrixNode` -- decomposes a unitary over one qubit; it has four
  successor edges for the quadrants ``M00, M01, M10, M11`` (paper Sec. II-B).

Nodes are immutable after construction and interned in a unique table, so
identity (``is``) equals structural equality.  ``level`` is the qubit index
the node decomposes: level 0 is the least-significant qubit (bottom of the
diagram); the root of an ``n``-qubit DD sits at level ``n - 1``.  The DDs are
*quasi-reduced*: every non-zero edge of a level-``z`` node points to a node
at level ``z - 1`` (or the terminal when ``z == 0``); zero sub-vectors /
sub-matrices are represented by 0-stub edges directly to the terminal.
"""

from __future__ import annotations

from .edge import Edge

__all__ = ["Terminal", "TERMINAL", "VectorNode", "MatrixNode", "DDNode"]


class Terminal:
    """The unique sink of every DD.  Its level is -1 by convention."""

    __slots__ = ()

    level = -1
    serial = -1

    def __repr__(self) -> str:
        return "TERMINAL"


#: Singleton terminal node shared by all packages.
TERMINAL = Terminal()


class VectorNode:
    """A state-vector DD node with two successors (``|0>`` and ``|1>`` halves)."""

    __slots__ = ("level", "edges", "ref_count", "serial", "__weakref__")

    def __init__(self, level: int, edges: tuple[Edge, Edge]) -> None:
        self.level = level
        self.edges = edges
        self.ref_count = 0
        # Interning order, assigned by the unique table.  Used wherever
        # two nodes must be ordered canonically: unlike ``id()``, the
        # creation order is a pure function of the operation stream, so
        # orderings built on it survive ASLR and re-runs (the add cache's
        # operand canonicalisation feeds tolerance rounding, where the
        # ratio direction changes which DD the sum snaps to).
        self.serial = 0

    @property
    def zero(self) -> Edge:
        """Successor for the half where this qubit is ``|0>``."""
        return self.edges[0]

    @property
    def one(self) -> Edge:
        """Successor for the half where this qubit is ``|1>``."""
        return self.edges[1]

    def __repr__(self) -> str:
        return f"VectorNode(level={self.level}, id={id(self):#x})"


class MatrixNode:
    """A matrix DD node with four successors (quadrants M00, M01, M10, M11)."""

    __slots__ = ("level", "edges", "ref_count", "serial", "__weakref__")

    def __init__(self, level: int, edges: tuple[Edge, Edge, Edge, Edge]) -> None:
        self.level = level
        self.edges = edges
        self.ref_count = 0
        self.serial = 0  # interning order; see VectorNode.serial

    def quadrant(self, row_bit: int, col_bit: int) -> Edge:
        """Successor for quadrant ``M[row_bit][col_bit]``."""
        return self.edges[2 * row_bit + col_bit]

    def __repr__(self) -> str:
        return f"MatrixNode(level={self.level}, id={id(self):#x})"


#: Union of everything an edge may point at.
DDNode = VectorNode | MatrixNode | Terminal
