"""Iterative flat-array DD kernel (the ``Package(kernel="iterative")`` path).

The recursive object kernel in :mod:`repro.dd.package` spends most of its
time on Python overhead that has nothing to do with DD arithmetic: one
:class:`~repro.dd.edge.Edge` allocation per visited child, a unique-table
tuple key per node, complex-table probes per weight, and a stack frame per
recursion.  This module re-implements the hot operations (local gate
application, vector addition, matrix-vector multiplication) over a *flat*
struct-of-arrays node store:

* a vector node is an **int index** into five parallel Python lists
  (``lvl``, ``c0``, ``c1``, ``w0``, ``w1``); index 0 is the terminal;
* children are created before parents, so child indices are always smaller
  than parent indices -- garbage collection compacts the arrays in one
  ascending pass and node identity survives as order;
* weights are canonicalised through the package's complex table (attractor
  semantics: the first value seen in a tolerance neighbourhood becomes the
  representative), exactly like the recursive kernel -- see ``_rnd`` for
  why pure grid rounding is not an option;
* traversals are explicit work-stacks, not Python recursion, so a frame is
  a two-slot list instead of an interpreter frame;
* memo tables are plain dicts keyed by ints / small tuples, with the
  cache-key redesign the ISSUE calls for: addition entries are canonical
  modulo weight normalisation *and sign* -- one fused entry answers both
  ``x + r*y`` and ``x - r*y`` (the butterfly pair every Hadamard-like gate
  generates), which is what turns the historical 0% ``add_vec`` hit rate
  into real reuse.

Plain Python lists beat numpy arrays for the *node store*: element access
on a numpy complex array boxes a fresh ``complex`` per read (~90ns) while a
list read returns the cached object (~35ns), and the kernel reads weights
far more often than it writes them.

Numpy earns its keep one level up, as the issue's "edge weights in numpy
complex arrays": when a state's DD becomes dense enough that per-node
Python traversal costs more than touching every amplitude once with
vectorised arithmetic, the kernel *cuts over* to a :class:`DenseState` --
the full amplitude block as one contiguous ``complex128`` array, with gate
application as a handful of numpy slice operations.  The cutover is driven
by a measured cost model (worklist units per apply pass vs. the projected
dense-pass cost, see ``apply_gate``), is capped so large sparse registers
never densify, can be disabled with ``Package(dense_blocks=False)``, and
converts back to a flat DD on demand (``DenseState.to_flat``, vectorised
level-by-level with ``np.unique``).  Supremacy-style workloads whose
states approach maximal DD width spend almost all their time on the dense
path; genuinely sparse workloads (large Grover registers past the cap)
never leave the flat DD path.

State DDs live in the flat store as :class:`FlatEdge` roots; matrix DDs
stay object-based (they are small) and are imported into a flat mirror on
first use by ``mult_mv``.  Results cross back into the object world only
on demand (serialisation, audits, measurements) via
:meth:`FlatKernel.obj_node`, which interns materialised nodes in the
package's ordinary unique table.
"""

from __future__ import annotations

import numpy as np

from .edge import Edge
from .node import TERMINAL

__all__ = ["DenseState", "FlatEdge", "FlatKernel"]

#: Bits reserved for gate/projection spec ids in packed apply-memo keys
#: ``(node_index << _SPEC_BITS) | spec_id``.
_SPEC_BITS = 20
_SPEC_LIMIT = 1 << _SPEC_BITS

#: Gate kinds classified once per prepared gate (see ``prepare_gate``).
_DIAG, _ANTI, _BFLY, _GENERAL = 0, 1, 2, 3


class FlatEdge:
    """Root edge of a DD living in a :class:`FlatKernel`'s flat store.

    Mirrors the :class:`~repro.dd.edge.Edge` interface the engine and the
    serialisation / audit layers rely on (``.node``, ``.level``,
    ``.weight``, ``is_zero``); accessing ``.node`` materialises the flat
    sub-DD into ordinary interned object nodes.  Kernel GC compacts the
    store and *mutates* ``index`` in place, which is why roots must be
    registered with the engine (they are: the engine's GC roots are exactly
    the edges passed to ``Package.garbage_collect``).
    """

    __slots__ = ("kernel", "index", "weight")

    def __init__(self, kernel: "FlatKernel", index: int,
                 weight: complex) -> None:
        self.kernel = kernel
        self.index = index
        self.weight = weight

    @property
    def node(self):
        """Materialise (and intern) the object node for this root."""
        return self.kernel.obj_node(self.index)

    @property
    def level(self) -> int:
        return self.kernel.lvl[self.index]

    def is_zero(self) -> bool:
        return self.weight == 0

    def is_terminal(self) -> bool:
        return self.index == 0

    def __repr__(self) -> str:
        return (f"FlatEdge(index={self.index}, level={self.level}, "
                f"weight={self.weight})")


class DenseState:
    """A state held as one contiguous amplitude block (``complex128``).

    Produced by the iterative kernel's density cutover (see
    :meth:`FlatKernel.apply_gate`); consumed transparently by
    ``Package.apply_gate``, which applies further gates with vectorised
    numpy slice arithmetic instead of DD traversal.  Everything that needs
    DD structure (addition, matrix products, serialisation, audits) goes
    through :meth:`to_flat`, which rebuilds the flat DD level-by-level with
    ``np.unique`` and caches the result.  The cache is tagged with the
    kernel's GC generation: a kernel collection compacts flat indices, so a
    cached root from an older generation is silently rebuilt instead of
    dereferencing remapped slots.

    Amplitude index bit ``q`` is qubit ``q`` (little-endian), matching
    ``Package.basis_state``.
    """

    __slots__ = ("kernel", "amps", "level", "_flat", "_flat_gen")

    def __init__(self, kernel: "FlatKernel", amps, level: int) -> None:
        self.kernel = kernel
        self.amps = amps
        self.level = level
        self._flat = None
        self._flat_gen = -1

    def to_flat(self) -> FlatEdge:
        """The equivalent flat-DD root (cached per kernel GC generation)."""
        if self._flat is None or self._flat_gen != self.kernel.generation:
            self._flat = self.kernel.from_dense(self.amps)
            self._flat_gen = self.kernel.generation
        return self._flat

    @property
    def node(self):
        """Materialise the object node (via the flat store)."""
        return self.to_flat().node

    @property
    def weight(self) -> complex:
        return self.to_flat().weight

    def amplitude(self, basis_index: int) -> complex:
        return complex(self.amps[basis_index])

    def size_proxy(self) -> int:
        """Cheap state-size stand-in: the amplitude-block length.

        Per-step size tracking must not rebuild the DD -- or even scan the
        block (a ``count_nonzero`` pass per gate measurably dents the dense
        fast path) -- so while a state is dense the engine's
        ``peak_state_nodes`` reports the block capacity: the memory the
        dense representation actually holds.  ``final_state_nodes`` is
        exact either way -- the engine solidifies the state back to a DD
        after the timed region.
        """
        return self.amps.size

    def is_zero(self) -> bool:
        return False

    def is_terminal(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"DenseState(level={self.level}, amps={self.amps.size})"


class FlatKernel:
    """Iterative worklist kernel over a flat vector-node store."""

    # -- density-cutover cost model (see apply_gate) -------------------
    #: never densify a register larger than this many amplitudes
    DENSE_MAX_AMPS = 1 << 22
    #: cumulative worklist units before cutover is considered at all --
    #: gives the EWMA a stable estimate and guarantees every run records
    #: a real DD phase (compute-table stats, add_vec reuse) first
    DENSE_WARMUP_UNITS = 512
    #: estimated cost of one worklist unit (frame visit / add probe), us
    DENSE_UNIT_COST = 1.2
    #: estimated fixed + per-amplitude cost of one dense pass, us
    DENSE_FIXED_COST = 10.0
    DENSE_AMP_COST = 0.0015
    #: EWMA smoothing factor for the per-pass unit estimate
    DENSE_EWMA_ALPHA = 0.3
    #: deterministic-mode integer cost model: one worklist unit is deemed
    #: worth this many amplitude touches (= DENSE_UNIT_COST /
    #: DENSE_AMP_COST, with the microseconds cancelled out) ...
    DENSE_DET_UNIT_WEIGHT = 800
    #: ... and a dense pass carries this fixed overhead, in amplitude
    #: touches (= DENSE_FIXED_COST / DENSE_AMP_COST)
    DENSE_DET_FIXED_UNITS = 6667

    def __init__(self, package) -> None:
        self.package = package
        #: cutover decision mode (see apply_gate): False = EWMA-smoothed
        #: cost estimate, True = pure integer rule over the last pass
        self.deterministic = bool(getattr(package, "deterministic", False))
        tol = package.complex_table.tolerance
        self._grid = 1.0 / tol
        #: canonical-representative lookup (attractor semantics, see _rnd)
        self._lookup = package.complex_table.lookup
        # -- flat vector store; slot 0 is the terminal ------------------
        self.lvl: list[int] = [-1]
        self.c0: list[int] = [0]
        self.c1: list[int] = [0]
        self.w0: list[complex] = [0j]
        self.w1: list[complex] = [0j]
        #: hash-consing for flat nodes: (level, i0, q0, i1, q1) -> index
        self.unique: dict[tuple, int] = {}
        # -- memo tables (unbounded dicts; cleared on kernel GC) --------
        #: packed (idx << _SPEC_BITS) | spec_id -> (idx, weight)
        self.apply_memo: dict[int, tuple] = {}
        #: canonical (i, j, rho) -> (plus_i, plus_w, minus_i, minus_w)
        self.pair_memo: dict[tuple, tuple] = {}
        #: (matrix_idx, vector_idx) -> (idx, weight)
        self.mult_memo: dict[tuple, tuple] = {}
        # -- operation statistics (merged into Package.cache_stats) -----
        self.add_lookups = 0
        self.add_hits = 0
        self.apply_lookups = 0
        self.apply_hits = 0
        self.mult_lookups = 0
        self.mult_hits = 0
        # -- flat matrix mirror (populated on demand by mult_mv) --------
        self.mlvl: list[int] = [-1]
        #: per matrix node: (i00, w00, i01, w01, i10, w10, i11, w11)
        self.ment: list[tuple] = [(0, 0j) * 4]
        #: flat matrix indices that are identity DDs (I*v shortcut)
        self.midn: set[int] = set()
        self._m_import: dict[int, int] = {}
        #: keeps imported object nodes alive so their ids cannot be reused
        self._m_keepalive: list = []
        # -- gate prep: package spec ids -> dense kernel spec ids -------
        self._kernel_ids: dict[int, int] = {}
        self._prep: dict[int, tuple] = {}
        # -- materialisation cache: flat index -> interned object node --
        self._obj_cache: dict[int, object] = {}
        # -- dense-block cutover state (see apply_gate) -----------------
        #: whether density cutover is allowed (Package(dense_blocks=...))
        self.dense_blocks = getattr(package, "dense_blocks", True)
        #: GC generation; bumped by collect() so DenseState caches expire
        self.generation = 0
        #: EWMA of worklist units (apply frames + add probes) per pass
        self._dense_ewma: float | None = None
        #: cumulative worklist units since kernel creation (warmup gate)
        self._dense_units = 0
        #: numpy control-selector cache: (kernel_id, num_amps) -> selectors
        self._dense_sel: dict[tuple, tuple] = {}
        #: telemetry: dense passes applied / cutovers taken
        self.dense_applies = 0
        self.dense_cutovers = 0

    # ------------------------------------------------------------------
    # weight canonicalisation and node construction
    # ------------------------------------------------------------------

    def _rnd(self, value: complex) -> complex:
        """Snap ``value`` to its canonical complex-table representative.

        Pure grid rounding is NOT enough here: two runs of the same logical
        amplitude computed through different operation orders differ by a
        few ULPs, and when such a pair straddles a grid boundary they round
        to *different* canonical values, so structurally identical subtrees
        stop unifying and the flat store (and every memo keyed on it) blows
        up combinatorially -- measured 47x node inflation on Grover-10.
        The package's :class:`ComplexTable` gives attractor semantics
        instead (first value in a tolerance neighbourhood becomes the
        representative, with neighbour-bucket probing), and its exact-value
        front cache makes the common repeat-lookup a single dict probe.
        """
        return self._lookup(value)

    def _make(self, level: int, i0: int, a0: complex,
              i1: int, a1: complex) -> tuple:
        """Intern the normalised node ``(level, a0*[i0], a1*[i1])``.

        Returns ``(index, norm)`` with the dominant child weight divided
        out, mirroring ``Package.make_vector_node``'s normalisation rule
        (the magnitude-dominant weight becomes exactly ``1+0j``).  Zero
        (or zero-rounding) children are snapped to the terminal so quasi-
        reducedness holds structurally.
        """
        tol = self.package.complex_table.tolerance
        if abs(a1) > abs(a0) + tol:
            norm = a1
        else:
            norm = a0
        if norm == 0:
            return 0, 0j
        lookup = self._lookup
        if a0 == 0:
            q0 = 0j
            i0 = 0
        elif a0 == norm:
            q0 = 1 + 0j
        else:
            q0 = lookup(a0 / norm)
            if q0 == 0:
                i0 = 0
        if a1 == 0:
            q1 = 0j
            i1 = 0
        elif a1 == norm:
            q1 = 1 + 0j
        else:
            q1 = lookup(a1 / norm)
            if q1 == 0:
                i1 = 0
        if q0 == 0 and q1 == 0:
            return 0, 0j
        key = (level, i0, q0, i1, q1)
        idx = self.unique.get(key)
        if idx is None:
            idx = len(self.lvl)
            self.lvl.append(level)
            self.c0.append(i0)
            self.c1.append(i1)
            self.w0.append(q0)
            self.w1.append(q1)
            self.unique[key] = idx
            self.package.counters.nodes_created += 1
        return idx, lookup(norm)

    # ------------------------------------------------------------------
    # state construction and interop with the object world
    # ------------------------------------------------------------------

    def basis_state(self, num_qubits: int, index: int) -> FlatEdge:
        """Flat computational basis state ``|index>`` (little-endian bits)."""
        idx = 0
        weight = 1 + 0j
        for level in range(num_qubits):
            if (index >> level) & 1:
                idx, w = self._make(level, 0, 0j, idx, weight)
            else:
                idx, w = self._make(level, idx, weight, 0, 0j)
            weight = w
        return FlatEdge(self, idx, weight)

    def import_vector(self, edge: Edge) -> FlatEdge:
        """Copy an object state DD into the flat store."""
        if edge.weight == 0:
            return FlatEdge(self, 0, 0j)
        memo: dict[int, tuple] = {}

        def walk(node) -> tuple:
            if node.level == -1:
                return 0, 1 + 0j
            got = memo.get(id(node))
            if got is not None:
                return got
            e0, e1 = node.edges
            if e0.weight == 0:
                i0, f0 = 0, 0j
            else:
                i0, f0 = walk(e0.node)
                f0 *= e0.weight
            if e1.weight == 0:
                i1, f1 = 0, 0j
            else:
                i1, f1 = walk(e1.node)
                f1 *= e1.weight
            result = self._make(node.level, i0, f0, i1, f1)
            memo[id(node)] = result
            return result

        idx, factor = walk(edge.node)
        return FlatEdge(self, idx, factor * edge.weight)

    def obj_node(self, idx: int):
        """Materialise flat node ``idx`` as an interned object node.

        Flat child weights already satisfy the normalisation invariant
        (dominant weight exactly ``1+0j``), so the nodes are interned via
        the unique table *directly* -- re-normalising through
        ``make_vector_node`` could pick a different representative and
        introduce a root factor, which callers of ``.node`` cannot absorb.
        """
        if idx == 0:
            return TERMINAL
        cache = self._obj_cache
        node = cache.get(idx)
        if node is not None:
            return node
        c0 = self.c0
        c1 = self.c1
        w0 = self.w0
        w1 = self.w1
        need: set[int] = set()
        stack = [idx]
        while stack:
            i = stack.pop()
            if i in need:
                continue
            need.add(i)
            ch = c0[i]
            if ch and w0[i] != 0 and ch not in need and ch not in cache:
                stack.append(ch)
            ch = c1[i]
            if ch and w1[i] != 0 and ch not in need and ch not in cache:
                stack.append(ch)
        pkg = self.package
        zero = pkg.zero
        table = pkg.tables.vectors
        lvl = self.lvl
        # Children always have smaller indices, so one ascending pass
        # materialises every dependency before its parents.
        for i in sorted(need):
            if i in cache:
                continue
            q0 = w0[i]
            q1 = w1[i]
            e0 = zero if q0 == 0 else Edge(cache.get(c0[i], TERMINAL), q0)
            e1 = zero if q1 == 0 else Edge(cache.get(c1[i], TERMINAL), q1)
            node = table.get_or_insert(lvl[i], (e0, e1))
            if table.created:
                pkg.counters.nodes_created += 1
            cache[i] = node
        return cache[idx]

    def amplitude(self, edge: FlatEdge, basis_index: int) -> complex:
        """Amplitude of ``|basis_index>`` (product of flat path weights)."""
        w = edge.weight
        i = edge.index
        lvl = self.lvl
        while i and w != 0:
            if (basis_index >> lvl[i]) & 1:
                w *= self.w1[i]
                i = self.c1[i]
            else:
                w *= self.w0[i]
                i = self.c0[i]
        return w

    def count_nodes(self, idx: int) -> int:
        """Internal flat nodes reachable from ``idx`` (terminal excluded)."""
        if idx == 0:
            return 0
        c0 = self.c0
        c1 = self.c1
        w0 = self.w0
        w1 = self.w1
        seen = {idx}
        seen_add = seen.add
        stack = [idx]
        pop = stack.pop
        push = stack.append
        while stack:
            i = pop()
            ch = c0[i]
            if ch and w0[i] != 0 and ch not in seen:
                seen_add(ch)
                push(ch)
            ch = c1[i]
            if ch and w1[i] != 0 and ch not in seen:
                seen_add(ch)
                push(ch)
        return len(seen)

    @property
    def live_nodes(self) -> int:
        """Flat slots currently allocated (vector + matrix, sans terminals)."""
        return len(self.lvl) - 1 + len(self.mlvl) - 1

    # ------------------------------------------------------------------
    # garbage collection: mark, compact ascending, remap roots
    # ------------------------------------------------------------------

    def collect(self, roots: list[FlatEdge]) -> int:
        """Compact the flat store down to what ``roots`` reach.

        Root edges are remapped *in place* (their ``index`` mutates).  All
        memo tables, the materialisation cache and the flat matrix mirror
        are dropped wholesale -- they key on indices / object ids that the
        compaction invalidates.  Returns the number of slots freed.
        """
        before = len(self.lvl) - 1
        c0 = self.c0
        c1 = self.c1
        w0 = self.w0
        w1 = self.w1
        live: set[int] = set()
        stack = [r.index for r in roots if r.weight != 0 and r.index]
        while stack:
            i = stack.pop()
            if i in live:
                continue
            live.add(i)
            ch = c0[i]
            if ch and w0[i] != 0:
                stack.append(ch)
            ch = c1[i]
            if ch and w1[i] != 0:
                stack.append(ch)
        # Ascending compaction keeps the child-before-parent ordering.
        remap: dict[int, int] = {0: 0}
        lvl = self.lvl
        new_lvl = [-1]
        new_c0 = [0]
        new_c1 = [0]
        new_w0 = [0j]
        new_w1 = [0j]
        new_unique: dict[tuple, int] = {}
        for i in sorted(live):
            new = len(new_lvl)
            remap[i] = new
            level = lvl[i]
            q0 = w0[i]
            q1 = w1[i]
            i0 = remap[c0[i]] if q0 != 0 else 0
            i1 = remap[c1[i]] if q1 != 0 else 0
            new_lvl.append(level)
            new_c0.append(i0)
            new_c1.append(i1)
            new_w0.append(q0)
            new_w1.append(q1)
            new_unique[(level, i0, q0, i1, q1)] = new
        self.lvl = new_lvl
        self.c0 = new_c0
        self.c1 = new_c1
        self.w0 = new_w0
        self.w1 = new_w1
        self.unique = new_unique
        for r in roots:
            if r.weight != 0 and r.index:
                r.index = remap[r.index]
            elif r.index:
                r.index = 0
        freed = before - (len(new_lvl) - 1)
        freed += len(self.mlvl) - 1
        self.clear_memos()
        self._obj_cache.clear()
        self.mlvl = [-1]
        self.ment = [(0, 0j) * 4]
        self.midn.clear()
        self._m_import.clear()
        self._m_keepalive.clear()
        self.generation += 1
        return freed

    def clear_memos(self) -> int:
        """Drop all memo tables; returns total entries dropped."""
        dropped = (len(self.apply_memo) + len(self.pair_memo)
                   + len(self.mult_memo))
        self.apply_memo.clear()
        self.pair_memo.clear()
        self.mult_memo.clear()
        return dropped

    def stats(self) -> dict:
        """Kernel memo statistics, shaped like ``ComputeTable.stats()``."""
        def table(lookups: int, hits: int, entries: int) -> dict:
            return {
                "lookups": lookups,
                "hits": hits,
                "misses": lookups - hits,
                "hit_rate": round(hits / lookups, 6) if lookups else 0.0,
                "entries": entries,
                "capacity": None,  # unbounded dict, cleared on kernel GC
            }

        return {
            "add_vec": table(self.add_lookups, self.add_hits,
                             len(self.pair_memo)),
            "apply_gate": table(self.apply_lookups, self.apply_hits,
                                len(self.apply_memo)),
            "mult_mv": table(self.mult_lookups, self.mult_hits,
                             len(self.mult_memo)),
            "dense": {
                "applies": self.dense_applies,
                "cutovers": self.dense_cutovers,
                "ewma_units": round(self._dense_ewma, 2)
                if self._dense_ewma is not None else None,
            },
        }

    def check_invariants(self, max_violations: int = 100) -> list[str]:
        """Audit the flat store's structural invariants."""
        violations: list[str] = []
        tol = max(self.package.complex_table.tolerance * 8, 1e-12)
        lvl = self.lvl
        for i in range(1, len(lvl)):
            level = lvl[i]
            name = f"flat node {i} (level {level})"
            dominant = 0.0
            for ch, w in ((self.c0[i], self.w0[i]), (self.c1[i], self.w1[i])):
                mag = abs(w)
                if mag > dominant:
                    dominant = mag
                if w == 0:
                    if ch != 0:
                        violations.append(
                            f"{name}: zero-weight child not terminal")
                    continue
                if mag > 1.0 + tol:
                    violations.append(
                        f"{name}: denormalised child weight {w!r}")
                if ch >= i:
                    violations.append(
                        f"{name}: child index {ch} >= parent index")
                elif lvl[ch] != level - 1:
                    violations.append(
                        f"{name}: child at level {lvl[ch]}, "
                        f"expected {level - 1}")
            if dominant and abs(dominant - 1.0) > tol:
                violations.append(
                    f"{name}: dominant child weight magnitude "
                    f"{dominant:.12g}, expected 1")
            if self.unique.get((level, self.c0[i], self.w0[i],
                                self.c1[i], self.w1[i])) != i:
                violations.append(f"{name}: not interned under its own key")
            if len(violations) >= max_violations:
                break
        return violations

    # ------------------------------------------------------------------
    # fused +/- addition with sign-canonical memo keys
    # ------------------------------------------------------------------
    #
    # The memo entry for canonical key ``(i, j, rho)`` (``i < j``, ``rho``
    # sign-positive) is the 4-tuple ``(plus_i, plus_w, minus_i, minus_w)``
    # for *both* ``[i] + rho*[j]`` and ``[i] - rho*[j]`` on weight-1
    # inputs.  Any addition of two distinct nodes reduces to this key:
    # common weights are divided out into ``rho`` (canonical modulo
    # normalisation), operand order is fixed by index (``x + r*y`` ==
    # ``r*(y + (1/r)*x)``), and the ratio's sign is folded into which half
    # of the entry is read.  The butterfly gates (H and friends) produce
    # exactly such +/- sibling pairs, which is what lifts ``add_vec`` off
    # its historical 0% hit rate.
    #
    # Accounting: a fused probe serves two logical additions, so it counts
    # 2 lookups; a miss still counts 1 hit (the entry's other half answers
    # the second addition without recomputation).

    def _canon(self, i: int, j: int, rho: complex) -> tuple:
        """Canonical key + read-back transform for ``[i] + rho*[j]``.

        Returns ``(key, xf)`` where ``xf`` is ``None`` (entry applies
        directly) or ``(plus_scale, minus_scale, swapped)``: the caller's
        plus result is the entry's plus (minus when ``swapped``) scaled by
        ``plus_scale``, and symmetrically for minus.
        """
        if i > j:
            # x + r*y == r*(y + (1/r)*x): swap operands, invert the ratio.
            inv = self._rnd(1 / rho)
            if inv.real < 0 or (inv.real == 0 and inv.imag < 0):
                return (j, i, -inv), (rho, -rho, True)
            return (j, i, inv), (rho, -rho, False)
        if rho.real < 0 or (rho.real == 0 and rho.imag < 0):
            return (i, j, -rho), (1 + 0j, 1 + 0j, True)
        return (i, j, rho), None

    def _pair_compute(self, root_key: tuple) -> None:
        """Compute (and memoise) the fused entry for canonical ``root_key``."""
        memo = self.pair_memo
        lvl = self.lvl
        c0 = self.c0
        c1 = self.c1
        w0 = self.w0
        w1 = self.w1
        counters = self.package.counters
        stack = [[root_key, None]]
        while stack:
            frame = stack[-1]
            key = frame[0]
            if key in memo:
                stack.pop()
                continue
            recs = frame[1]
            if recs is None:
                i, j, rho = key
                recs = []
                missing = []
                pushed = set()
                for xi, xw, yi, yw in ((c0[i], w0[i], c0[j], w0[j]),
                                       (c1[i], w1[i], c1[j], w1[j])):
                    if yw == 0:
                        recs.append((None, xi, xw, xi, xw))
                        continue
                    ryw = rho * yw
                    if xw == 0:
                        recs.append((None, yi, ryw, yi, -ryw))
                        continue
                    if xi == yi:
                        recs.append((None, xi, xw + ryw, xi, xw - ryw))
                        continue
                    sub = self._rnd(ryw / xw)
                    if sub == 0:
                        recs.append((None, xi, xw, xi, xw))
                        continue
                    ck, xf = self._canon(xi, yi, sub)
                    recs.append((ck, xf, xw))
                    self.add_lookups += 2
                    if ck in memo or ck in pushed:
                        self.add_hits += 2
                    else:
                        self.add_hits += 1
                        pushed.add(ck)
                        missing.append(ck)
                frame[1] = recs
                if missing:
                    for ck in missing:
                        stack.append([ck, None])
                continue
            parts = []
            for rec in recs:
                if rec[0] is None:
                    parts.append(rec[1:])
                    continue
                ck, xf, scale = rec
                e = memo[ck]
                if xf is None:
                    parts.append((e[0], e[1] * scale, e[2], e[3] * scale))
                else:
                    ps, ms, swapped = xf
                    if swapped:
                        parts.append((e[2], e[3] * ps * scale,
                                      e[0], e[1] * ms * scale))
                    else:
                        parts.append((e[0], e[1] * ps * scale,
                                      e[2], e[3] * ms * scale))
            (p0i, p0w, m0i, m0w), (p1i, p1w, m1i, m1w) = parts
            level = lvl[key[0]]
            pi, pw = self._make(level, p0i, p0w, p1i, p1w)
            mi, mw = self._make(level, m0i, m0w, m1i, m1w)
            counters.add_recursions += 1
            memo[key] = (pi, pw, mi, mw)
            stack.pop()

    def _pair_both(self, i: int, j: int, rho: complex) -> tuple:
        """Fused ``([i] + rho*[j], [i] - rho*[j])`` on weight-1 inputs.

        Requires ``i != j``, ``rho != 0``.  Returns
        ``(plus_i, plus_w, minus_i, minus_w)``.
        """
        key, xf = self._canon(i, j, rho)
        memo = self.pair_memo
        self.add_lookups += 2
        entry = memo.get(key)
        if entry is None:
            self.add_hits += 1
            self._pair_compute(key)
            entry = memo[key]
        else:
            self.add_hits += 2
        if xf is None:
            return entry
        ps, ms, swapped = xf
        if swapped:
            return entry[2], entry[3] * ps, entry[0], entry[1] * ms
        return entry[0], entry[1] * ps, entry[2], entry[3] * ms

    def _add2(self, xi: int, xw: complex, yi: int, yw: complex) -> tuple:
        """Plain sum ``xw*[xi] + yw*[yi]`` as ``(idx, weight)``."""
        if xw == 0:
            return yi, yw
        if yw == 0:
            return xi, xw
        if xi == yi:
            return xi, xw + yw
        rho = self._rnd(yw / xw)
        if rho == 0:
            return xi, xw
        key, xf = self._canon(xi, yi, rho)
        memo = self.pair_memo
        self.add_lookups += 1
        entry = memo.get(key)
        if entry is None:
            self._pair_compute(key)
            entry = memo[key]
        else:
            self.add_hits += 1
        if xf is None:
            return entry[0], entry[1] * xw
        ps, ms, swapped = xf
        if swapped:
            return entry[2], entry[3] * ps * xw
        return entry[0], entry[1] * ps * xw

    def add(self, x: FlatEdge, y: FlatEdge) -> FlatEdge:
        """Sum of two flat state DDs (public ``add_vectors`` route)."""
        ri, rw = self._add2(x.index, x.weight, y.index, y.weight)
        return FlatEdge(self, ri, rw)

    # ------------------------------------------------------------------
    # gate preparation and application
    # ------------------------------------------------------------------

    def _kernel_id(self, spec_id: int) -> int:
        """Map a package spec id to a dense kernel id < 2**_SPEC_BITS."""
        kid = self._kernel_ids.get(spec_id)
        if kid is None:
            kid = len(self._kernel_ids)
            if kid >= _SPEC_LIMIT:
                raise RuntimeError(
                    f"kernel gate-spec space exhausted ({_SPEC_LIMIT} "
                    "distinct specs); packed memo keys cannot grow further")
            self._kernel_ids[spec_id] = kid
        return kid

    def prepare_gate(self, u: tuple, control_map: dict, lower: dict,
                     gate_id: int, proj_id: int, target: int) -> tuple:
        """Kernel-side gate spec for a package-prepared gate (cached).

        Classifies the 2x2 so application dispatches without re-testing:
        diagonal and anti-diagonal gates are weight-only / child-swap
        (zero additions), *butterflies* (all entries non-zero with
        ``u11/u10 == -u01/u00``, e.g. Hadamard) compute both output
        children from one fused +/- pair, everything else falls back to
        two plain additions.
        """
        prep = self._prep.get(gate_id)
        if prep is not None:
            return prep
        kid = self._kernel_id(gate_id)
        pid = self._kernel_id(proj_id) if proj_id >= 0 else -1
        above = {q: val for q, val in control_map.items() if q > target}
        u00, u01, u10, u11 = u
        if u01 == 0 and u10 == 0:
            kind = _DIAG
        elif u00 == 0 and u11 == 0:
            kind = _ANTI
        elif (u00 != 0 and u01 != 0 and u10 != 0 and u11 != 0
              and abs(u11 / u10 + u01 / u00) < 1e-12):
            kind = _BFLY
        else:
            kind = _GENERAL
        lowest = min(lower) if lower else 0
        prep = (kid, target, above, kind, u, pid, lowest, lower)
        self._prep[gate_id] = prep
        return prep

    def apply_gate(self, edge: FlatEdge, prep: tuple):
        """Apply a prepared gate to a flat state root.

        Tracks a cost model over the DD pass it just ran: ``units`` is the
        number of worklist probes (apply frames plus addition probes) the
        pass consumed, smoothed into an EWMA.  Once past a warmup volume,
        if the estimated DD cost per pass exceeds the projected dense-pass
        cost for this register size (and the register fits the dense cap),
        the state cuts over to a :class:`DenseState` and later gates run as
        vectorised numpy arithmetic instead.  Sparse states stay on the DD
        path forever: their per-pass unit count never approaches the
        amplitude count.

        Under ``Package(deterministic=True)`` the EWMA estimate is replaced
        by an integer rule over the worklist units of the pass just
        completed (same decision boundary, microsecond calibration
        constants cancelled out), making the cutover step -- and every
        scheduling count downstream of it -- a pure function of the
        operation stream.
        """
        if edge.weight == 0:
            return FlatEdge(self, 0, 0j)
        units0 = self.apply_lookups + self.add_lookups
        ri, rw = self._apply_root(edge.index, prep)
        result = FlatEdge(self, ri, rw * edge.weight)
        if not self.dense_blocks or ri == 0:
            return result
        units = self.apply_lookups + self.add_lookups - units0
        self._dense_units += units
        if self.deterministic:
            # Deterministic mode: decide from the single pass just counted,
            # with integer weights -- no smoothing state carried between
            # passes and no float accumulation, so the cutover step is a
            # pure function of (pass units, register size).  Two runs of
            # the same operation stream cut over at the same gate on any
            # machine, under any load, in any worker interleaving.
            if self._dense_units >= self.DENSE_WARMUP_UNITS:
                amps = 1 << (self.lvl[ri] + 1)
                if amps <= self.DENSE_MAX_AMPS \
                        and units * self.DENSE_DET_UNIT_WEIGHT \
                        >= self.DENSE_DET_FIXED_UNITS + amps:
                    self.dense_cutovers += 1
                    return self.to_dense(result)
            return result
        ewma = self._dense_ewma
        if ewma is None:
            ewma = float(units)
        else:
            ewma += self.DENSE_EWMA_ALPHA * (units - ewma)
        self._dense_ewma = ewma
        if self._dense_units >= self.DENSE_WARMUP_UNITS:
            amps = 1 << (self.lvl[ri] + 1)
            if amps <= self.DENSE_MAX_AMPS \
                    and ewma * self.DENSE_UNIT_COST \
                    >= self.DENSE_FIXED_COST + amps * self.DENSE_AMP_COST:
                self.dense_cutovers += 1
                return self.to_dense(result)
        return result

    def _apply_root(self, root: int, prep: tuple) -> tuple:
        kid, target, above, kind, u, pid, lowest, lower = prep
        memo = self.apply_memo
        counters = self.package.counters
        pk = (root << _SPEC_BITS) | kid
        got = memo.get(pk)
        if got is not None:
            self.apply_lookups += 1
            self.apply_hits += 1
            counters.apply_gate_recursions += 1
            return got
        lvl = self.lvl
        c0 = self.c0
        c1 = self.c1
        w0 = self.w0
        w1 = self.w1
        get = above.get
        lookups = 1
        hits = 0
        stack = [[root, False]]
        while stack:
            frame = stack[-1]
            i = frame[0]
            pk_i = (i << _SPEC_BITS) | kid
            if pk_i in memo:
                stack.pop()
                continue
            level = lvl[i]
            if level == target:
                memo[pk_i] = self._apply_target(i, prep)
                stack.pop()
                continue
            # Above the target: structural copy, or control split.
            active = get(level)
            i0 = c0[i]
            a0 = w0[i]
            i1 = c1[i]
            a1 = w1[i]
            counted = frame[1]
            frame[1] = True
            need0 = active != 1 and a0 != 0
            need1 = active != 0 and a1 != 0
            pending = False
            sub0 = sub1 = None
            if need0:
                sub0 = memo.get((i0 << _SPEC_BITS) | kid)
                if not counted:
                    lookups += 1
                    if sub0 is not None:
                        hits += 1
                if sub0 is None:
                    stack.append([i0, False])
                    pending = True
            if need1:
                same = need0 and i1 == i0
                sub1 = memo.get((i1 << _SPEC_BITS) | kid)
                if not counted:
                    lookups += 1
                    if sub1 is not None or same:
                        hits += 1
                if sub1 is None:
                    if not same:
                        stack.append([i1, False])
                    pending = True
            if pending:
                continue
            if active is None:
                t0i, t0w = (sub0[0], sub0[1] * a0) if need0 else (0, 0j)
                t1i, t1w = (sub1[0], sub1[1] * a1) if need1 else (0, 0j)
            elif active == 1:
                t0i, t0w = i0, a0
                t1i, t1w = (sub1[0], sub1[1] * a1) if need1 else (0, 0j)
            else:
                t0i, t0w = (sub0[0], sub0[1] * a0) if need0 else (0, 0j)
                t1i, t1w = i1, a1
            memo[pk_i] = self._make(level, t0i, t0w, t1i, t1w)
            stack.pop()
        self.apply_lookups += lookups
        self.apply_hits += hits
        counters.apply_gate_recursions += lookups
        return memo[pk]

    def _apply_target(self, i: int, prep: tuple) -> tuple:
        """One 2x2 application at the target level of flat node ``i``."""
        kind = prep[3]
        u00, u01, u10, u11 = prep[4]
        target = prep[1]
        i0 = self.c0[i]
        a0 = self.w0[i]
        i1 = self.c1[i]
        a1 = self.w1[i]
        lower = prep[7]
        if lower:
            # Controls below the target: add the gate's correction on the
            # all-controls-active projection -- new0 = v0 + (u00-1)*P(v0)
            # + u01*P(v1) (and symmetrically).  Diagonal 1-entries (the
            # untouched rows of a multi-controlled Z) then cost nothing.
            pid = prep[5]
            lowest = prep[6]
            if a0 != 0:
                p0i, p0w = self._project_root(i0, pid, lower, lowest)
                p0w *= a0
            else:
                p0i, p0w = 0, 0j
            if a1 != 0:
                p1i, p1w = self._project_root(i1, pid, lower, lowest)
                p1w *= a1
            else:
                p1i, p1w = 0, 0j
            d0i, d0w = self._add2(p0i, (u00 - 1) * p0w, p1i, u01 * p1w)
            n0i, n0w = self._add2(i0, a0, d0i, d0w)
            d1i, d1w = self._add2(p0i, u10 * p0w, p1i, (u11 - 1) * p1w)
            n1i, n1w = self._add2(i1, a1, d1i, d1w)
            return self._make(target, n0i, n0w, n1i, n1w)
        if kind == _DIAG:
            return self._make(target, i0, u00 * a0, i1, u11 * a1)
        if kind == _ANTI:
            return self._make(target, i1, u01 * a1, i0, u10 * a0)
        if kind == _BFLY:
            if a0 == 0:
                return self._make(target, i1, u01 * a1, i1, u11 * a1)
            if a1 == 0 or i0 == i1:
                if i0 == i1 and a1 != 0:
                    return self._make(target, i0, u00 * a0 + u01 * a1,
                                      i0, u10 * a0 + u11 * a1)
                return self._make(target, i0, u00 * a0, i0, u10 * a0)
            rho = self._rnd((u01 * a1) / (u00 * a0))
            if rho == 0:
                return self._make(target, i0, u00 * a0, i0, u10 * a0)
            pi, pw, mi, mw = self._pair_both(i0, i1, rho)
            # new1 = u10*a0*(v0 - rho*v1): the butterfly condition makes
            # the minus half of the fused pair the second output child.
            return self._make(target, pi, u00 * a0 * pw, mi, u10 * a0 * mw)
        n0i, n0w = self._add2(i0, u00 * a0, i1, u01 * a1)
        n1i, n1w = self._add2(i0, u10 * a0, i1, u11 * a1)
        return self._make(target, n0i, n0w, n1i, n1w)

    def _project_root(self, root: int, pid: int, lower: dict,
                      lowest: int) -> tuple:
        """Component of ``[root]`` where every control in ``lower`` is active."""
        lvl = self.lvl
        if lvl[root] < lowest:
            return root, 1 + 0j
        memo = self.apply_memo
        counters = self.package.counters
        pk = (root << _SPEC_BITS) | pid
        got = memo.get(pk)
        if got is not None:
            self.apply_lookups += 1
            self.apply_hits += 1
            counters.apply_gate_recursions += 1
            return got
        c0 = self.c0
        c1 = self.c1
        w0 = self.w0
        w1 = self.w1
        get = lower.get
        lookups = 1
        hits = 0
        stack = [[root, False]]
        while stack:
            frame = stack[-1]
            i = frame[0]
            pk_i = (i << _SPEC_BITS) | pid
            if pk_i in memo:
                stack.pop()
                continue
            level = lvl[i]
            active = get(level)
            i0 = c0[i]
            a0 = w0[i]
            i1 = c1[i]
            a1 = w1[i]
            counted = frame[1]
            frame[1] = True
            need0 = active != 1 and a0 != 0
            need1 = active != 0 and a1 != 0
            pending = False
            sub0 = sub1 = None
            if need0:
                if lvl[i0] < lowest:
                    sub0 = (i0, 1 + 0j)
                else:
                    sub0 = memo.get((i0 << _SPEC_BITS) | pid)
                    if not counted:
                        lookups += 1
                        if sub0 is not None:
                            hits += 1
                    if sub0 is None:
                        stack.append([i0, False])
                        pending = True
            if need1:
                if lvl[i1] < lowest:
                    sub1 = (i1, 1 + 0j)
                else:
                    same = need0 and i1 == i0 and lvl[i0] >= lowest
                    sub1 = memo.get((i1 << _SPEC_BITS) | pid)
                    if not counted:
                        lookups += 1
                        if sub1 is not None or same:
                            hits += 1
                    if sub1 is None:
                        if not same:
                            stack.append([i1, False])
                        pending = True
            if pending:
                continue
            t0i, t0w = (sub0[0], sub0[1] * a0) if need0 else (0, 0j)
            t1i, t1w = (sub1[0], sub1[1] * a1) if need1 else (0, 0j)
            memo[pk_i] = self._make(level, t0i, t0w, t1i, t1w)
            stack.pop()
        self.apply_lookups += lookups
        self.apply_hits += hits
        counters.apply_gate_recursions += lookups
        return memo[pk]

    # ------------------------------------------------------------------
    # dense amplitude blocks (density cutover)
    # ------------------------------------------------------------------

    def to_dense(self, edge: FlatEdge) -> DenseState:
        """Expand a flat state root into a :class:`DenseState`.

        Bottom-up over the reachable sub-DAG: each node's dense subvector
        is the weighted concatenation of its children's, memoised per node,
        so the total work is the sum of subvector sizes over *distinct*
        nodes, not over paths.
        """
        lvl = self.lvl
        c0 = self.c0
        c1 = self.c1
        w0 = self.w0
        w1 = self.w1
        root = edge.index
        reach = set()
        stack = [root]
        while stack:
            i = stack.pop()
            if i == 0 or i in reach:
                continue
            reach.add(i)
            stack.append(c0[i])
            stack.append(c1[i])
        vecs: dict[int, np.ndarray] = {}
        for i in sorted(reach):
            half = 1 << lvl[i]
            out = np.zeros(half * 2, dtype=np.complex128)
            q0 = w0[i]
            if q0 != 0:
                lo = c0[i]
                if lo == 0:
                    out[0] = q0
                else:
                    np.multiply(vecs[lo], q0, out=out[:half])
            q1 = w1[i]
            if q1 != 0:
                hi = c1[i]
                if hi == 0:
                    out[half] = q1
                else:
                    np.multiply(vecs[hi], q1, out=out[half:])
            vecs[i] = out
        amps = vecs[root] * edge.weight
        return DenseState(self, amps, lvl[root])

    def from_dense(self, amps) -> FlatEdge:
        """Rebuild a flat DD from an amplitude block, level by level.

        Each pass halves the working arrays: positions are paired into
        ``(child0, child1)`` candidates, normalised with the package's
        dominance rule vectorised over the whole level, grouped with
        ``np.unique`` on tolerance-rounded weight ratios, and only the
        *distinct* groups pay a Python-level ``_make`` call (which runs the
        exact complex-table canonicalisation).  Grouping by rounded ratio
        is a pure optimisation: near-boundary pairs that land in different
        groups still unify inside ``_make``.  Per-position magnitudes stay
        exact because each position keeps its own norm as the upward
        weight; only the ratio inside a shared node is snapped.
        """
        size = int(amps.size)
        n = size.bit_length() - 1
        if size != 1 << n:
            raise ValueError("amplitude block length must be a power of 2")
        tol = self.package.complex_table.tolerance
        grid = self._grid
        idx = np.zeros(size, dtype=np.int64)
        wts = np.asarray(amps, dtype=np.complex128).copy()
        for level in range(n):
            i0 = idx[0::2]
            i1 = idx[1::2]
            a0 = wts[0::2]
            a1 = wts[1::2]
            dominant1 = np.abs(a1) > np.abs(a0) + tol
            norm = np.where(dominant1, a1, a0)
            dead = norm == 0
            safe = np.where(dead, 1, norm)
            q0 = a0 / safe
            q1 = a1 / safe
            rows = np.column_stack((
                i0.astype(np.float64), i1.astype(np.float64),
                np.round(q0.real * grid), np.round(q0.imag * grid),
                np.round(q1.real * grid), np.round(q1.imag * grid)))
            rows[dead] = 0.0
            uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
            inverse = inverse.ravel()
            representative = np.empty(len(uniq), dtype=np.int64)
            representative[inverse] = np.arange(len(inverse))
            group_idx = np.empty(len(uniq), dtype=np.int64)
            for g in range(len(uniq)):
                m = representative[g]
                if dead[m]:
                    group_idx[g] = 0
                    continue
                node, _ = self._make(level, int(i0[m]), complex(a0[m]),
                                     int(i1[m]), complex(a1[m]))
                group_idx[g] = node
            idx = group_idx[inverse]
            wts = np.where(dead, 0j, norm)
            idx[wts == 0] = 0
        return FlatEdge(self, int(idx[0]), complex(wts[0]))

    def _dense_selectors(self, prep: tuple, num_amps: int) -> tuple:
        """Cached ``(low_span, high_sel, low_sel)`` for a prepared gate."""
        kid = prep[0]
        key = (kid, num_amps)
        sel = self._dense_sel.get(key)
        if sel is not None:
            return sel
        target = prep[1]
        above = prep[2]
        lower = prep[7]
        low_span = 1 << target
        high_span = num_amps >> (target + 1)
        hsel = None
        if above:
            bits = np.arange(high_span)
            keep = np.ones(high_span, dtype=bool)
            for q, val in above.items():
                keep &= ((bits >> (q - target - 1)) & 1) == val
            hsel = np.nonzero(keep)[0]
        lsel = None
        if lower:
            bits = np.arange(low_span)
            keep = np.ones(low_span, dtype=bool)
            for q, val in lower.items():
                keep &= ((bits >> q) & 1) == val
            lsel = np.nonzero(keep)[0]
        sel = (low_span, hsel, lsel)
        self._dense_sel[key] = sel
        return sel

    def apply_dense(self, state: DenseState, prep: tuple) -> DenseState:
        """Apply a prepared gate to a dense amplitude block.

        The register reshapes to ``(high, 2, low)`` with the target qubit
        as the middle axis; the 2x2 acts on that axis.  Controls restrict
        the high/low axes through cached index selectors, so a
        multi-controlled gate touches exactly the amplitudes whose control
        bits are active (a 9-control Toffoli-style gate moves just two
        amplitudes).
        """
        amps = state.amps
        kind = prep[3]
        u00, u01, u10, u11 = prep[4]
        low_span, hsel, lsel = self._dense_selectors(prep, amps.size)
        self.dense_applies += 1
        if hsel is None and lsel is None:
            view = amps.reshape(-1, 2, low_span)
            if kind == _DIAG:
                # Phase-type gates scale the two halves in place on a copy
                # -- at most two passes over the block instead of four.
                out = amps.copy()
                ov = out.reshape(-1, 2, low_span)
                if u00 != 1:
                    ov[:, 0, :] *= u00
                if u11 != 1:
                    ov[:, 1, :] *= u11
            elif kind == _ANTI:
                # X-type gates: one reversed-axis copy (a single strided C
                # call) plus at most two in-place coefficient scalings.
                out = np.ascontiguousarray(view[:, ::-1, :]).reshape(-1)
                if u01 != 1 or u10 != 1:
                    if u01 == u10:
                        out *= u01
                    else:
                        ov = out.reshape(-1, 2, low_span)
                        if u01 != 1:
                            ov[:, 0, :] *= u01
                        if u10 != 1:
                            ov[:, 1, :] *= u10
            elif 1 < low_span <= 64:
                # Mid-range strides pay heavy per-row ufunc overhead on the
                # (high, low) slices; gather both halves contiguous first,
                # compute there, and scatter back in one strided assignment.
                tc = np.ascontiguousarray(view.transpose(1, 0, 2))
                a = tc[0]
                b = tc[1]
                res = np.empty_like(tc)
                np.multiply(a, u00, out=res[0])
                res[0] += u01 * b
                np.multiply(a, u10, out=res[1])
                res[1] += u11 * b
                out = np.empty_like(amps)
                out.reshape(-1, 2, low_span)[...] = res.transpose(1, 0, 2)
            else:
                a = view[:, 0, :]
                b = view[:, 1, :]
                out = np.empty_like(amps)
                ov = out.reshape(-1, 2, low_span)
                np.multiply(a, u00, out=ov[:, 0, :])
                ov[:, 0, :] += u01 * b
                np.multiply(a, u10, out=ov[:, 1, :])
                ov[:, 1, :] += u11 * b
            return DenseState(self, out, state.level)
        out = amps.copy()
        ov = out.reshape(-1, 2, low_span)
        if kind == _DIAG:
            # Controlled phase gates touch only the active control block's
            # two target slices, scaled in place (scatter assignment).
            for bit, factor in ((0, u00), (1, u11)):
                if factor == 1:
                    continue
                if hsel is None:
                    ov[:, bit, lsel] *= factor
                elif lsel is None:
                    ov[hsel, bit, :] *= factor
                else:
                    ov[np.ix_(hsel, (bit,), lsel)] *= factor
            return DenseState(self, out, state.level)
        if hsel is None:
            block = ov[:, :, lsel]
        elif lsel is None:
            block = ov[hsel, :, :]
        else:
            block = ov[np.ix_(hsel, np.arange(2), lsel)]
        a = block[:, 0, :]
        b = block[:, 1, :]
        na = u00 * a + u01 * b
        nb = u10 * a + u11 * b
        block[:, 0, :] = na
        block[:, 1, :] = nb
        if hsel is None:
            ov[:, :, lsel] = block
        elif lsel is None:
            ov[hsel, :, :] = block
        else:
            ov[np.ix_(hsel, np.arange(2), lsel)] = block
        return DenseState(self, out, state.level)

    # ------------------------------------------------------------------
    # matrix-vector multiplication (object matrix DD x flat state)
    # ------------------------------------------------------------------

    def import_matrix(self, edge: Edge) -> int:
        """Mirror an object matrix DD into the flat matrix store.

        Matrix DDs are small (gate DDs are linear in qubit count), so a
        per-multiplication import is cheap and memoised by object id.
        Imported object nodes are pinned in ``_m_keepalive`` so their ids
        cannot be reused while the mirror is alive; kernel GC drops the
        whole mirror.
        """
        identity_ids = self.package._mult_identity_ids
        m_import = self._m_import

        def walk(node) -> int:
            if node.level == -1:
                return 0
            mi = m_import.get(id(node))
            if mi is not None:
                return mi
            entry = []
            for child in node.edges:
                if child.weight == 0:
                    entry.append(0)
                    entry.append(0j)
                else:
                    entry.append(walk(child.node))
                    entry.append(child.weight)
            mi = len(self.mlvl)
            self.mlvl.append(node.level)
            self.ment.append(tuple(entry))
            if id(node) in identity_ids:
                self.midn.add(mi)
            m_import[id(node)] = mi
            self._m_keepalive.append(node)
            return mi

        return walk(edge.node)

    def mult_mv(self, m: Edge, v: FlatEdge) -> FlatEdge:
        """Product of an object matrix DD with a flat state DD.

        Level compatibility is validated by the caller
        (``Package.multiply_matrix_vector``); with identity-skipping
        edges the matrix root may sit *below* the state root, in which
        case the skipped levels act as identity (structural copy).
        """
        w = m.weight * v.weight
        if w == 0:
            return FlatEdge(self, 0, 0j)
        mi = self.import_matrix(m)
        ri, rw = self._mult(mi, v.index)
        return FlatEdge(self, ri, rw * w)

    def _mult(self, mroot: int, vroot: int) -> tuple:
        memo = self.mult_memo
        counters = self.package.counters
        key = (mroot, vroot)
        self.mult_lookups += 1
        got = memo.get(key)
        if got is not None:
            self.mult_hits += 1
            counters.mult_mv_recursions += 1
            return got
        lvl = self.lvl
        mlvl = self.mlvl
        ment = self.ment
        c0 = self.c0
        c1 = self.c1
        w0 = self.w0
        w1 = self.w1
        midn = self.midn
        stack = [[key, None]]
        while stack:
            frame = stack[-1]
            k = frame[0]
            if k in memo:
                stack.pop()
                continue
            mi, vi = k
            terms = frame[1]
            if terms is None:
                counters.mult_mv_recursions += 1
                if vi == 0 or mi == 0 or mi in midn:
                    # Terminal product, scalar matrix below an identity
                    # gap, or the I*v shortcut: all resolve to v itself.
                    memo[k] = (vi, 1 + 0j)
                    stack.pop()
                    continue
                vlevel = lvl[vi]
                if mlvl[mi] < vlevel:
                    # Identity-skipped levels: the matrix acts as I here,
                    # so the product is a structural copy one level down.
                    pairs = (((mi, c0[vi]), 0, w0[vi]),
                             ((mi, c1[vi]), 1, w1[vi]))
                else:
                    m00, q00, m01, q01, m10, q10, m11, q11 = ment[mi]
                    va0 = w0[vi]
                    va1 = w1[vi]
                    vc0 = c0[vi]
                    vc1 = c1[vi]
                    pairs = (((m00, vc0), 0, q00 * va0),
                             ((m01, vc1), 0, q01 * va1),
                             ((m10, vc0), 1, q10 * va0),
                             ((m11, vc1), 1, q11 * va1))
                terms = []
                pending = []
                pushed = set()
                for ck, row, tw in pairs:
                    if tw == 0:
                        continue
                    cmi, cvi = ck
                    if cvi == 0 or cmi == 0 or cmi in midn:
                        terms.append((row, None, cvi, tw))
                        continue
                    self.mult_lookups += 1
                    if ck in memo or ck in pushed:
                        self.mult_hits += 1
                    else:
                        pushed.add(ck)
                        pending.append(ck)
                    terms.append((row, ck, 0, tw))
                frame[1] = terms
                if pending:
                    for ck in pending:
                        stack.append([ck, None])
                continue
            r0i = 0
            r0w = 0j
            r1i = 0
            r1w = 0j
            for row, ck, li, tw in terms:
                if ck is None:
                    si, sw = li, tw
                else:
                    e = memo[ck]
                    si = e[0]
                    sw = e[1] * tw
                if row == 0:
                    r0i, r0w = self._add2(r0i, r0w, si, sw)
                else:
                    r1i, r1w = self._add2(r1i, r1w, si, sw)
            memo[k] = self._make(lvl[vi], r0i, r0w, r1i, r1w)
            stack.pop()
        return memo[key]
