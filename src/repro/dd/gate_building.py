"""Linear-size construction of gate DDs.

An elementary quantum operation acts on one target qubit, possibly guarded by
control qubits; every other qubit realises the identity.  The corresponding
``2^n x 2^n`` matrix therefore has a DD of *linear* size -- one node per
qubit (paper Sec. III and ref. [25]).  This module builds those DDs directly,
without ever materialising the exponential matrix:

* below the target, each of the four entry sub-DDs of the 2x2 gate matrix is
  expanded with identity nodes (or control nodes);
* the target level combines the four entry sub-DDs into one node;
* above the target, identity / control nodes are stacked up to the root.

Controls may sit above or below the target and may be *positive* (active on
``|1>``) or *negative* (active on ``|0>``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .edge import Edge
from .package import Package

__all__ = ["build_gate_dd", "build_diagonal_dd", "build_two_level_dd"]


def _as_control_map(controls) -> dict[int, int]:
    """Normalise control specs to ``{qubit: active_value}``."""
    if controls is None:
        return {}
    if isinstance(controls, Mapping):
        result = dict(controls)
    else:
        result = {}
        for item in controls:
            if isinstance(item, tuple):
                qubit, value = item
            else:
                qubit, value = item, 1
            result[int(qubit)] = int(value)
    for qubit, value in result.items():
        if value not in (0, 1):
            raise ValueError(f"control value for qubit {qubit} must be 0 or 1, "
                             f"got {value}")
    return result


def build_gate_dd(package: Package, matrix, num_qubits: int, target: int,
                  controls: Mapping[int, int] | Sequence | None = None) -> Edge:
    """Build the DD of a (multi-)controlled single-qubit gate.

    Parameters
    ----------
    matrix:
        The 2x2 unitary acting on ``target``, as any nested sequence or
        numpy array indexable as ``matrix[row][col]``.
    num_qubits:
        Total qubit count of the resulting DD.
    target:
        Qubit the gate acts on.
    controls:
        Either a mapping ``{qubit: active_value}`` (1 = positive control,
        0 = negative control) or a sequence of qubits / ``(qubit, value)``
        pairs.  Positive is assumed for bare qubit entries.
    """
    control_map = _as_control_map(controls)
    if not 0 <= target < num_qubits:
        raise ValueError(f"target {target} out of range for {num_qubits} qubits")
    if target in control_map:
        raise ValueError(f"qubit {target} cannot be both target and control")
    for qubit in control_map:
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"control {qubit} out of range for "
                             f"{num_qubits} qubits")

    zero = package.zero
    # The four entry sub-DDs of the 2x2 gate, indexed 2*row + col.
    entries = [package.terminal_edge(complex(matrix[r][c]))
               for r in (0, 1) for c in (0, 1)]

    # Levels below the target: expand with identity, or insert controls.
    for level in range(target):
        active = control_map.get(level)
        if active is None:
            entries = [
                e if e.weight == 0
                else package.make_matrix_node(level, (e, zero, zero, e))
                for e in entries
            ]
        else:
            identity_below = package.identity(level)
            new_entries = []
            for index, e in enumerate(entries):
                inactive = identity_below if index in (0, 3) else zero
                if active == 1:
                    children = (inactive, zero, zero, e)
                else:
                    children = (e, zero, zero, inactive)
                new_entries.append(package.make_matrix_node(level, children))
            entries = new_entries

    edge = package.make_matrix_node(
        target, (entries[0], entries[1], entries[2], entries[3]))

    # Levels above the target: identity or control nodes up to the root.
    for level in range(target + 1, num_qubits):
        active = control_map.get(level)
        if active is None:
            edge = package.make_matrix_node(level, (edge, zero, zero, edge))
        else:
            identity_below = package.identity(level)
            if active == 1:
                children = (identity_below, zero, zero, edge)
            else:
                children = (edge, zero, zero, identity_below)
            edge = package.make_matrix_node(level, children)
    return edge


def build_diagonal_dd(package: Package, phases, num_qubits: int) -> Edge:
    """Build the DD of a diagonal matrix from a callable or sequence.

    ``phases`` maps a basis index (``0 .. 2^n - 1``) to the diagonal entry.
    Shared suffix structure is merged automatically by the unique table, so
    e.g. a Grover phase oracle (all entries 1 except one -1) has a DD of
    linear size.
    """
    if callable(phases):
        entry = phases
    else:
        values = list(phases)
        if len(values) != 1 << num_qubits:
            raise ValueError(
                f"need {1 << num_qubits} diagonal entries, got {len(values)}")
        entry = values.__getitem__

    def build(level: int, prefix: int) -> Edge:
        if level < 0:
            return package.terminal_edge(complex(entry(prefix)))
        low = build(level - 1, prefix)
        high = build(level - 1, prefix | (1 << level))
        return package.make_matrix_node(
            level, (low, package.zero, package.zero, high))

    return build(num_qubits - 1, 0)


def build_two_level_dd(package: Package, num_qubits: int, index_a: int,
                       index_b: int, matrix) -> Edge:
    """Build the DD of a two-level unitary mixing basis states ``a`` and ``b``.

    The result acts as ``matrix`` on ``span{|a>, |b>}`` and as identity
    elsewhere -- the textbook building block for arbitrary unitaries and a
    useful test generator.
    """
    if index_a == index_b:
        raise ValueError("two-level unitary needs two distinct basis states")
    if not (0 <= index_a < 1 << num_qubits and 0 <= index_b < 1 << num_qubits):
        raise ValueError("basis indices out of range")
    a, b = sorted((index_a, index_b))
    u = [[complex(matrix[r][c]) for c in (0, 1)] for r in (0, 1)]
    if index_a != a:  # caller listed them in the other order
        u = [[u[1][1], u[1][0]], [u[0][1], u[0][0]]]

    def entry(row: int, col: int) -> complex:
        if row == a and col == a:
            return u[0][0]
        if row == a and col == b:
            return u[0][1]
        if row == b and col == a:
            return u[1][0]
        if row == b and col == b:
            return u[1][1]
        return 1 + 0j if row == col else 0j

    def contains(prefix: int, level: int, index: int) -> bool:
        """Whether basis ``index`` lies in the block selected by ``prefix``."""
        span = 1 << (level + 1)
        return prefix <= index < prefix + span

    def build(level: int, row_prefix: int, col_prefix: int) -> Edge:
        diagonal_block = row_prefix == col_prefix
        touched = (contains(row_prefix, level, a) or contains(row_prefix, level, b)
                   or contains(col_prefix, level, a) or contains(col_prefix, level, b))
        if diagonal_block and not touched:
            return package.identity(level + 1)
        if not diagonal_block:
            crosses = ((contains(row_prefix, level, a) and contains(col_prefix, level, b))
                       or (contains(row_prefix, level, b) and contains(col_prefix, level, a)))
            if not crosses:
                # Off-diagonal block that cannot hold any of the four special
                # entries: it is all zeros.
                return package.zero
        if level < 0:
            return package.terminal_edge(entry(row_prefix, col_prefix))
        children = []
        for row_bit in (0, 1):
            for col_bit in (0, 1):
                children.append(build(level - 1,
                                      row_prefix | (row_bit << level),
                                      col_prefix | (col_bit << level)))
        return package.make_matrix_node(level, tuple(children))

    return build(num_qubits - 1, 0, 0)
