"""State approximation by pruning negligible branches.

The DD simulators this work builds on support *approximate* simulation:
edges whose sub-tree carries almost no probability mass are cut (replaced
by 0-stubs) and the state is renormalised.  This trades a controlled
fidelity loss for (sometimes dramatically) smaller diagrams -- useful when
a simulation's DD grows towards the exponential worst case but the
interesting amplitudes are concentrated.

``prune_small_contributions`` implements the standard scheme: compute each
edge's *contribution* (the total squared magnitude flowing through it) in
one downward pass, cut every edge below the budget, renormalise, and report
the fidelity retained.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from .edge import Edge
from .package import Package

__all__ = ["ApproximationResult", "prune_small_contributions",
           "prune_to_node_budget"]


@dataclass(frozen=True)
class ApproximationResult:
    """Outcome of one approximation pass."""

    state: Edge
    #: squared overlap between the original and the approximated state
    fidelity: float
    nodes_before: int
    nodes_after: int
    edges_cut: int


def _contributions(package: Package, state: Edge) -> dict[tuple[int, int], float]:
    """Probability mass flowing through each (node-id, child-index) edge."""
    # squared norm below each node
    norms: dict[int, float] = {}

    def norm2(node) -> float:
        if node.level == -1:
            return 1.0
        found = norms.get(id(node))
        if found is not None:
            return found
        total = sum(abs(child.weight) ** 2 * norm2(child.node)
                    for child in node.edges if child.weight != 0)
        norms[id(node)] = total
        return total

    # A(node): sum over root-to-node paths of the squared weight product
    # (excluding anything below the node).  Then the probability carried by
    # edge e = (node, child) is A(node) * |w_e|^2 * norm2(child).
    incoming: dict[int, float] = {id(state.node): abs(state.weight) ** 2}
    order: list = []
    seen: set[int] = set()

    def collect(node) -> None:
        if node.level == -1 or id(node) in seen:
            return
        seen.add(id(node))
        order.append(node)
        for child in node.edges:
            if child.weight != 0:
                collect(child.node)

    collect(state.node)
    contributions: dict[tuple[int, int], float] = {}
    # process by descending level so every parent is settled before its
    # children accumulate incoming mass
    for node in sorted(order, key=lambda n: -n.level):
        mass = incoming.get(id(node), 0.0)
        for index, child in enumerate(node.edges):
            if child.weight == 0:
                continue
            through = mass * abs(child.weight) ** 2
            contributions[(id(node), index)] = \
                contributions.get((id(node), index), 0.0) \
                + through * norm2(child.node)
            if child.node.level != -1:
                incoming[id(child.node)] = \
                    incoming.get(id(child.node), 0.0) + through
    return contributions


def prune_small_contributions(package: Package, state: Edge,
                              budget: float) -> ApproximationResult:
    """Cut edges contributing less than ``budget`` total probability.

    Greedily removes the smallest-contribution edges while their cumulative
    mass stays below ``budget``; the result is renormalised.  A ``budget``
    of 0 returns the state unchanged.
    """
    if not 0.0 <= budget < 1.0:
        raise ValueError(f"budget must be in [0, 1), got {budget}")
    if state.weight == 0:
        raise ValueError("cannot approximate the zero state")
    nodes_before = package.count_nodes(state)
    if budget == 0.0:
        return ApproximationResult(state, 1.0, nodes_before, nodes_before, 0)

    contributions = _contributions(package, state)
    candidates = sorted(contributions.items(), key=lambda item: item[1])
    to_cut: set[tuple[int, int]] = set()
    spent = 0.0
    for key, mass in candidates:
        if spent + mass > budget:
            break
        spent += mass
        to_cut.add(key)

    cache: dict[int, Edge] = {}

    def rebuild(node) -> Edge:
        if node.level == -1:
            return package.one
        found = cache.get(id(node))
        if found is not None:
            return found
        children = []
        for index, child in enumerate(node.edges):
            if child.weight == 0 or (id(node), index) in to_cut:
                children.append(package.zero)
            else:
                children.append(package._scaled(rebuild(child.node),
                                                child.weight))
        result = package.make_vector_node(node.level, tuple(children))
        cache[id(node)] = result
        return result

    pruned = package._scaled(rebuild(state.node), state.weight)
    if pruned.weight == 0:
        # budget ate everything that was reachable -- refuse the cut
        return ApproximationResult(state, 1.0, nodes_before, nodes_before, 0)
    norm = sqrt(package.squared_norm(pruned))
    normalised = package._scaled(pruned, 1.0 / norm)
    fidelity = package.fidelity(state, normalised) \
        / max(package.squared_norm(state), 1e-300)
    return ApproximationResult(
        state=normalised,
        fidelity=fidelity,
        nodes_before=nodes_before,
        nodes_after=package.count_nodes(normalised),
        edges_cut=len(to_cut),
    )


def prune_to_node_budget(package: Package, state: Edge, max_nodes: int,
                         min_fidelity: float = 0.9,
                         initial_budget: float = 1e-6,
                         growth: float = 8.0) -> ApproximationResult:
    """Prune ``state`` until it fits ``max_nodes``, bounded by a fidelity floor.

    Runs :func:`prune_small_contributions` passes with a geometrically
    growing mass budget, never letting the *cumulative* fidelity (product
    of the per-pass fidelities) fall below ``min_fidelity``.  This is the
    fallback the simulation engine's degradation ladder uses when a run's
    working set exceeds its hard memory budget: a controlled, accounted
    fidelity loss instead of losing the whole run.

    The returned :class:`ApproximationResult` carries the cumulative
    fidelity and total edges cut over all passes.  The result may still
    exceed ``max_nodes`` when the floor stops further pruning -- callers
    must check ``nodes_after``.
    """
    if max_nodes < 1:
        raise ValueError(f"max_nodes must be positive, got {max_nodes}")
    if not 0.0 < min_fidelity <= 1.0:
        raise ValueError(f"min_fidelity must be in (0, 1], "
                         f"got {min_fidelity}")
    if initial_budget <= 0 or growth <= 1.0:
        raise ValueError("need initial_budget > 0 and growth > 1")
    nodes_before = package.count_nodes(state)
    current = state
    current_nodes = nodes_before
    cumulative = 1.0
    total_cut = 0
    budget = initial_budget
    while current_nodes > max_nodes:
        # Mass we may still drop without the cumulative fidelity (a
        # product of per-pass retained masses) crossing the floor.
        headroom = 1.0 - min_fidelity / cumulative
        if headroom <= 0:
            break
        step = min(budget, headroom, 0.999999)
        result = prune_small_contributions(package, current, step)
        if result.edges_cut == 0:
            if step >= headroom or step >= 0.999999:
                break  # the floor (or the scheme itself) forbids any cut
            budget *= growth
            continue
        current = result.state
        current_nodes = result.nodes_after
        cumulative *= result.fidelity
        total_cut += result.edges_cut
        budget *= growth
    return ApproximationResult(
        state=current,
        fidelity=cumulative,
        nodes_before=nodes_before,
        nodes_after=current_nodes,
        edges_cut=total_cut,
    )
