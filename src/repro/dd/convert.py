"""Conversion between DDs and dense numpy arrays.

Dense conversion is exponential in the qubit count by nature; it exists for
validation, testing and debugging on small systems, and deliberately lives
outside the hot simulation path.
"""

from __future__ import annotations

import numpy as np

from .edge import Edge
from .package import Package

__all__ = [
    "vector_to_numpy",
    "matrix_to_numpy",
    "vector_from_numpy",
    "matrix_from_numpy",
]


def vector_to_numpy(state: Edge, num_qubits: int) -> np.ndarray:
    """Expand a state DD into its dense ``2^n`` amplitude vector."""
    size = 1 << num_qubits
    result = np.zeros(size, dtype=complex)
    if state.weight == 0:
        return result
    if state.node.level != num_qubits - 1:
        raise ValueError(f"state has {state.node.level + 1} qubits, "
                         f"expected {num_qubits}")

    def fill(node, offset: int, weight: complex) -> None:
        if node.level == -1:
            result[offset] = weight
            return
        span = 1 << node.level
        for bit, child in enumerate(node.edges):
            if child.weight != 0:
                fill(child.node, offset + bit * span, weight * child.weight)

    fill(state.node, 0, state.weight)
    return result


def matrix_to_numpy(matrix: Edge, num_qubits: int) -> np.ndarray:
    """Expand a matrix DD into its dense ``2^n x 2^n`` array."""
    size = 1 << num_qubits
    result = np.zeros((size, size), dtype=complex)
    if matrix.weight == 0:
        return result
    if matrix.node.level > num_qubits - 1:
        raise ValueError(f"matrix has {matrix.node.level + 1} qubits, "
                         f"expected {num_qubits}")

    # Identity-skipping DDs (``Package(identity_edges=True)``) may point an
    # edge at a node more than one level down (or at the terminal from any
    # level); the skipped levels are implicit identity factors.  ``expected``
    # tracks the level this position *should* be at; while the node sits
    # lower, expand one implicit I2 level: only the diagonal blocks exist
    # and both reuse the same (node, weight) payload.
    def fill(node, row: int, col: int, weight: complex,
             expected: int) -> None:
        if node.level < expected:
            span = 1 << expected
            fill(node, row, col, weight, expected - 1)
            fill(node, row + span, col + span, weight, expected - 1)
            return
        if node.level == -1:
            result[row, col] = weight
            return
        span = 1 << node.level
        for index, child in enumerate(node.edges):
            if child.weight != 0:
                fill(child.node, row + (index >> 1) * span,
                     col + (index & 1) * span, weight * child.weight,
                     node.level - 1)

    fill(matrix.node, 0, 0, matrix.weight, num_qubits - 1)
    return result


def vector_from_numpy(package: Package, amplitudes) -> Edge:
    """Build a state DD from a dense amplitude vector (length ``2^n``)."""
    amplitudes = np.asarray(amplitudes, dtype=complex)
    size = amplitudes.shape[0]
    num_qubits = size.bit_length() - 1
    if size != 1 << num_qubits or amplitudes.ndim != 1:
        raise ValueError("amplitude vector length must be a power of two")

    def build(level: int, offset: int) -> Edge:
        if level < 0:
            return package.terminal_edge(complex(amplitudes[offset]))
        span = 1 << level
        low = build(level - 1, offset)
        high = build(level - 1, offset + span)
        return package.make_vector_node(level, (low, high))

    return build(num_qubits - 1, 0)


def matrix_from_numpy(package: Package, matrix) -> Edge:
    """Build a matrix DD from a dense square array (side ``2^n``)."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("matrix must be square")
    size = matrix.shape[0]
    num_qubits = size.bit_length() - 1
    if size != 1 << num_qubits:
        raise ValueError("matrix side must be a power of two")

    def build(level: int, row: int, col: int) -> Edge:
        if level < 0:
            return package.terminal_edge(complex(matrix[row, col]))
        span = 1 << level
        children = tuple(
            build(level - 1, row + row_bit * span, col + col_bit * span)
            for row_bit in (0, 1) for col_bit in (0, 1)
        )
        return package.make_matrix_node(level, children)

    return build(num_qubits - 1, 0, 0)
