"""The DD package: construction and manipulation of quantum decision diagrams.

This module is the heart of the reproduction.  It implements the QMDD-style
decision diagrams of the paper's Section II-B:

* state vectors are decomposed qubit by qubit into binary trees with shared
  sub-structure and complex *edge weights* (paper Fig. 2c);
* unitary matrices are decomposed into quadrants, giving nodes with four
  successors (paper Sec. II-B);
* the arithmetic the paper's whole argument rests on -- addition (Fig. 4),
  matrix-vector multiplication (Fig. 3) and matrix-matrix multiplication --
  is carried out directly on the diagrams with memoisation, so re-occurring
  sub-problems are solved once.

All diagrams are *quasi-reduced*: every non-zero edge from level ``z`` points
to level ``z - 1``, zero blocks are 0-stub edges to the terminal, and the
identity on ``m`` qubits costs exactly ``m`` nodes -- the size asymmetry
between gate DDs (linear) and state DDs (potentially huge) that makes
matrix-matrix multiplication attractive (paper Sec. III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .complex_table import DEFAULT_TOLERANCE, ComplexTable
from .compute_table import ComputeTable
from .edge import Edge
from .node import TERMINAL, MatrixNode, VectorNode
from .unique_table import UniqueTable

__all__ = ["Package", "OperationCounters"]


@dataclass
class OperationCounters:
    """Counts of recursive DD-operation calls.

    These are the machine-independent cost metrics behind the paper's
    figures: a matrix-vector product on a large state DD racks up many
    ``mult_mv_recursions``, while combining two small gate DDs costs few
    ``mult_mm_recursions`` -- the trade the combining strategies exploit.
    """

    add_recursions: int = 0
    mult_mv_recursions: int = 0
    mult_mm_recursions: int = 0
    kron_recursions: int = 0
    nodes_created: int = 0

    def snapshot(self) -> "OperationCounters":
        return OperationCounters(self.add_recursions, self.mult_mv_recursions,
                                 self.mult_mm_recursions, self.kron_recursions,
                                 self.nodes_created)

    def delta(self, earlier: "OperationCounters") -> "OperationCounters":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return OperationCounters(
            self.add_recursions - earlier.add_recursions,
            self.mult_mv_recursions - earlier.mult_mv_recursions,
            self.mult_mm_recursions - earlier.mult_mm_recursions,
            self.kron_recursions - earlier.kron_recursions,
            self.nodes_created - earlier.nodes_created,
        )

    def total_recursions(self) -> int:
        return (self.add_recursions + self.mult_mv_recursions
                + self.mult_mm_recursions + self.kron_recursions)


@dataclass
class _Tables:
    """All memoisation state of one package, bundled for easy reset."""

    vectors: UniqueTable = field(default_factory=lambda: UniqueTable(VectorNode))
    matrices: UniqueTable = field(default_factory=lambda: UniqueTable(MatrixNode))
    add_vec: ComputeTable = field(default_factory=lambda: ComputeTable("add_vec"))
    add_mat: ComputeTable = field(default_factory=lambda: ComputeTable("add_mat"))
    mult_mv: ComputeTable = field(default_factory=lambda: ComputeTable("mult_mv"))
    mult_mm: ComputeTable = field(default_factory=lambda: ComputeTable("mult_mm"))
    kron_vec: ComputeTable = field(default_factory=lambda: ComputeTable("kron_vec"))
    kron_mat: ComputeTable = field(default_factory=lambda: ComputeTable("kron_mat"))
    conj_t: ComputeTable = field(default_factory=lambda: ComputeTable("conj_t"))
    inner: ComputeTable = field(default_factory=lambda: ComputeTable("inner"))


class Package:
    """A self-contained DD universe: complex table, unique tables, caches.

    Diagrams from different packages must not be mixed; every simulation run
    owns one package (or shares one deliberately).
    """

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        self.complex_table = ComplexTable(tolerance)
        self.tables = _Tables()
        self.counters = OperationCounters()
        self.zero = Edge(TERMINAL, 0j)
        self.one = Edge(TERMINAL, self.complex_table.lookup(1 + 0j))
        self._identity_cache: list[Edge] = [self.one]

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------

    def terminal_edge(self, weight: complex) -> Edge:
        """A terminal edge carrying ``weight`` (the 1x1 / scalar diagram)."""
        weight = self.complex_table.lookup(weight)
        if weight == 0:
            return self.zero
        return Edge(TERMINAL, weight)

    def _normalise(self, edges: list[Edge]) -> tuple[complex, tuple[Edge, ...]]:
        """Normalise successor edges; return (pushed-up factor, children)."""
        lookup = self.complex_table.lookup
        norm = 0j
        norm_mag = -1.0
        for e in edges:
            mag = abs(e.weight)
            if mag > norm_mag + self.complex_table.tolerance:
                norm_mag = mag
                norm = e.weight
        if norm == 0:
            return 0j, ()
        children = []
        for e in edges:
            if e.weight == 0:
                children.append(self.zero)
                continue
            w = lookup(e.weight / norm)
            children.append(self.zero if w == 0 else Edge(e.node, w))
        return norm, tuple(children)

    def make_vector_node(self, level: int, edges: tuple[Edge, Edge]) -> Edge:
        """Create (or find) the normalised node decomposing a vector at ``level``."""
        norm, children = self._normalise(list(edges))
        if norm == 0:
            return self.zero
        table = self.tables.vectors
        before = len(table)
        node = table.get_or_insert(level, children)
        if len(table) != before:
            self.counters.nodes_created += 1
        return Edge(node, self.complex_table.lookup(norm))

    def make_matrix_node(self, level: int,
                         edges: tuple[Edge, Edge, Edge, Edge]) -> Edge:
        """Create (or find) the normalised node decomposing a matrix at ``level``."""
        norm, children = self._normalise(list(edges))
        if norm == 0:
            return self.zero
        table = self.tables.matrices
        before = len(table)
        node = table.get_or_insert(level, children)
        if len(table) != before:
            self.counters.nodes_created += 1
        return Edge(node, self.complex_table.lookup(norm))

    # ------------------------------------------------------------------
    # elementary state constructors
    # ------------------------------------------------------------------

    def zero_state(self, num_qubits: int) -> Edge:
        """The all-zeros computational basis state ``|0...0>``."""
        return self.basis_state(num_qubits, 0)

    def basis_state(self, num_qubits: int, index: int) -> Edge:
        """Computational basis state ``|index>`` on ``num_qubits`` qubits.

        Bit ``k`` of ``index`` is the value of qubit ``k`` (little-endian).
        """
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        if not 0 <= index < (1 << max(num_qubits, 1)) and num_qubits > 0:
            raise ValueError(f"basis index {index} out of range for "
                             f"{num_qubits} qubits")
        edge = self.one
        for level in range(num_qubits):
            bit = (index >> level) & 1
            children = (edge, self.zero) if bit == 0 else (self.zero, edge)
            edge = self.make_vector_node(level, children)
        return edge

    def identity(self, num_qubits: int) -> Edge:
        """The identity matrix DD on ``num_qubits`` qubits (``num_qubits`` nodes)."""
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        cache = self._identity_cache
        while len(cache) <= num_qubits:
            below = cache[-1]
            cache.append(self.make_matrix_node(
                len(cache) - 1, (below, self.zero, self.zero, below)))
        return cache[num_qubits]

    # ------------------------------------------------------------------
    # addition (paper Fig. 4)
    # ------------------------------------------------------------------

    def add_vectors(self, x: Edge, y: Edge) -> Edge:
        """Sum of two state-vector DDs of equal qubit count."""
        return self._add(x, y, self.tables.add_vec, self.make_vector_node, 2)

    def add_matrices(self, x: Edge, y: Edge) -> Edge:
        """Sum of two matrix DDs of equal qubit count."""
        return self._add(x, y, self.tables.add_mat, self.make_matrix_node, 4)

    def _add(self, x: Edge, y: Edge, cache: ComputeTable,
             make_node, arity: int) -> Edge:
        if x.weight == 0:
            return y
        if y.weight == 0:
            return x
        lookup = self.complex_table.lookup
        if x.node is y.node:
            return self._scaled(x, lookup(x.weight + y.weight) / x.weight
                                if x.weight != 0 else 0)
        self.counters.add_recursions += 1
        # Addition is commutative; order operands for better cache reuse.
        if id(x.node) > id(y.node):
            x, y = y, x
        ratio = lookup(y.weight / x.weight)
        if ratio == 0:
            return x
        key = (x.node, y.node, ratio)
        cached = cache.get(key)
        if cached is None:
            if x.node.level == -1:
                cached = self.terminal_edge(1 + ratio)
            else:
                xs = x.node.edges
                ys = y.node.edges
                children = tuple(
                    self._add(xs[i], ys[i].scaled(ratio), cache, make_node, arity)
                    for i in range(arity)
                )
                cached = make_node(x.node.level, children)
            cache.put(key, cached)
        return self._scaled(cached, x.weight)

    def _scaled(self, edge: Edge, factor: complex) -> Edge:
        """``edge`` scaled by ``factor`` with the weight re-canonicalised."""
        if factor == 0 or edge.weight == 0:
            return self.zero
        w = self.complex_table.lookup(edge.weight * factor)
        if w == 0:
            return self.zero
        return Edge(edge.node, w)

    # ------------------------------------------------------------------
    # multiplication (paper Fig. 3 and Sec. III)
    # ------------------------------------------------------------------

    def multiply_matrix_vector(self, m: Edge, v: Edge) -> Edge:
        """Apply matrix DD ``m`` to state DD ``v`` (one simulation step, Eq. 1)."""
        w = m.weight * v.weight
        if w == 0:
            return self.zero
        if m.node.level != v.node.level:
            raise ValueError(
                f"matrix level {m.node.level} != vector level {v.node.level}; "
                "operands must cover the same qubits")
        result = self._mult_mv(m.node, v.node)
        return self._scaled(result, w)

    def _mult_mv(self, mn, vn) -> Edge:
        if mn.level == -1:
            return self.one
        self.counters.mult_mv_recursions += 1
        key = (mn, vn)
        cache = self.tables.mult_mv
        cached = cache.get(key)
        if cached is not None:
            return cached
        level = mn.level
        me = mn.edges
        ve = vn.edges
        children = []
        for row in (0, 1):
            parts = []
            for col in (0, 1):
                m_child = me[2 * row + col]
                v_child = ve[col]
                w = m_child.weight * v_child.weight
                if w == 0:
                    continue
                sub = self._mult_mv(m_child.node, v_child.node)
                parts.append(self._scaled(sub, w))
            if not parts:
                children.append(self.zero)
            elif len(parts) == 1:
                children.append(parts[0])
            else:
                children.append(self.add_vectors(parts[0], parts[1]))
        result = self.make_vector_node(level, (children[0], children[1]))
        cache.put(key, result)
        return result

    def multiply_matrix_matrix(self, a: Edge, b: Edge) -> Edge:
        """Product ``a @ b`` of two matrix DDs (combining operations, Eq. 2)."""
        w = a.weight * b.weight
        if w == 0:
            return self.zero
        if a.node.level != b.node.level:
            raise ValueError(
                f"matrix levels differ ({a.node.level} vs {b.node.level}); "
                "operands must cover the same qubits")
        result = self._mult_mm(a.node, b.node)
        return self._scaled(result, w)

    def _mult_mm(self, an, bn) -> Edge:
        if an.level == -1:
            return self.one
        self.counters.mult_mm_recursions += 1
        key = (an, bn)
        cache = self.tables.mult_mm
        cached = cache.get(key)
        if cached is not None:
            return cached
        level = an.level
        ae = an.edges
        be = bn.edges
        children = []
        for row in (0, 1):
            for col in (0, 1):
                parts = []
                for k in (0, 1):
                    a_child = ae[2 * row + k]
                    b_child = be[2 * k + col]
                    w = a_child.weight * b_child.weight
                    if w == 0:
                        continue
                    sub = self._mult_mm(a_child.node, b_child.node)
                    parts.append(self._scaled(sub, w))
                if not parts:
                    children.append(self.zero)
                elif len(parts) == 1:
                    children.append(parts[0])
                else:
                    children.append(self.add_matrices(parts[0], parts[1]))
        result = self.make_matrix_node(
            level, (children[0], children[1], children[2], children[3]))
        cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # Kronecker products
    # ------------------------------------------------------------------

    def kron_vectors(self, top: Edge, bottom: Edge) -> Edge:
        """``top (x) bottom``: ``top`` becomes the more-significant qubits."""
        return self._kron(top, bottom, self.tables.kron_vec,
                          self.make_vector_node)

    def kron_matrices(self, top: Edge, bottom: Edge) -> Edge:
        """``top (x) bottom`` for matrix DDs."""
        return self._kron(top, bottom, self.tables.kron_mat,
                          self.make_matrix_node)

    def _kron(self, top: Edge, bottom: Edge, cache: ComputeTable,
              make_node) -> Edge:
        w = top.weight * bottom.weight
        if w == 0:
            return self.zero
        shift = bottom.node.level + 1
        result = self._kron_rec(top.node, bottom.node, shift, cache, make_node)
        return self._scaled(result, w)

    def _kron_rec(self, tn, bn, shift: int, cache: ComputeTable,
                  make_node) -> Edge:
        if tn.level == -1:
            return Edge(bn, self.one.weight) if bn.level != -1 else self.one
        self.counters.kron_recursions += 1
        key = (tn, bn)
        cached = cache.get(key)
        if cached is not None:
            return cached
        children = []
        for e in tn.edges:
            if e.weight == 0:
                children.append(self.zero)
            else:
                sub = self._kron_rec(e.node, bn, shift, cache, make_node)
                children.append(self._scaled(sub, e.weight))
        result = make_node(tn.level + shift, tuple(children))
        cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # adjoint, inner products, amplitudes
    # ------------------------------------------------------------------

    def conjugate_transpose(self, m: Edge) -> Edge:
        """The adjoint (dagger) of a matrix DD -- the inverse for unitaries."""
        if m.weight == 0:
            return self.zero
        result = self._conj_t(m.node)
        return self._scaled(result, m.weight.conjugate())

    def _conj_t(self, mn) -> Edge:
        if mn.level == -1:
            return self.one
        key = (mn,)
        cache = self.tables.conj_t
        cached = cache.get(key)
        if cached is not None:
            return cached
        e = mn.edges
        children = []
        for src in (0, 2, 1, 3):  # transpose swaps the off-diagonal quadrants
            child = e[src]
            if child.weight == 0:
                children.append(self.zero)
            else:
                sub = self._conj_t(child.node)
                children.append(self._scaled(sub, child.weight.conjugate()))
        result = self.make_matrix_node(
            mn.level, (children[0], children[1], children[2], children[3]))
        cache.put(key, result)
        return result

    def outer_product(self, ket: Edge, bra: Edge) -> Edge:
        """``|ket><bra|`` as a matrix DD (rank-1 operator).

        The density matrix of a pure state is ``outer_product(v, v)``;
        combined with a partial trace this yields reduced states and
        entanglement measures directly from a state DD.
        """
        if ket.weight == 0 or bra.weight == 0:
            return self.zero
        if ket.node.level != bra.node.level:
            raise ValueError("outer product of states with different "
                             "qubit counts")
        cache = self.tables.kron_mat  # reuse a matrix cache with a tag
        w = ket.weight * bra.weight.conjugate()

        def build(kn, bn) -> Edge:
            if kn.level == -1:
                return self.one
            key = ("outer", kn, bn)
            cached = cache.get(key)
            if cached is not None:
                return cached
            children = []
            for row in (0, 1):
                for col in (0, 1):
                    k_child = kn.edges[row]
                    b_child = bn.edges[col]
                    weight = k_child.weight * b_child.weight.conjugate()
                    if weight == 0:
                        children.append(self.zero)
                    else:
                        children.append(self._scaled(
                            build(k_child.node, b_child.node), weight))
            result = self.make_matrix_node(kn.level, tuple(children))
            cache.put(key, result)
            return result

        return self._scaled(build(ket.node, bra.node), w)

    def inner_product(self, a: Edge, b: Edge) -> complex:
        """``<a|b>`` of two state DDs of equal qubit count."""
        if a.weight == 0 or b.weight == 0:
            return 0j
        if a.node.level != b.node.level:
            raise ValueError("inner product of states with different qubit counts")
        return (a.weight.conjugate() * b.weight
                * self._inner(a.node, b.node))

    def _inner(self, an, bn) -> complex:
        if an.level == -1:
            return 1 + 0j
        key = (an, bn)
        cache = self.tables.inner
        cached = cache.get(key)
        if cached is not None:
            return cached
        total = 0j
        for ae, be in zip(an.edges, bn.edges):
            if ae.weight == 0 or be.weight == 0:
                continue
            total += (ae.weight.conjugate() * be.weight
                      * self._inner(ae.node, be.node))
        cache.put(key, total)
        return total

    def squared_norm(self, v: Edge) -> float:
        """``<v|v>`` -- 1.0 for a properly normalised quantum state."""
        return self.inner_product(v, v).real

    def fidelity(self, a: Edge, b: Edge) -> float:
        """``|<a|b>|^2``, the standard state-overlap measure."""
        return abs(self.inner_product(a, b)) ** 2

    def amplitude(self, v: Edge, basis_index: int) -> complex:
        """Amplitude of basis state ``|basis_index>`` (product of path weights)."""
        w = v.weight
        node = v.node
        while node.level != -1:
            if w == 0:
                return 0j
            bit = (basis_index >> node.level) & 1
            edge = node.edges[bit]
            w *= edge.weight
            node = edge.node
        return w

    # ------------------------------------------------------------------
    # diagram metrics and housekeeping
    # ------------------------------------------------------------------

    def count_nodes(self, edge: Edge) -> int:
        """Number of internal nodes reachable from ``edge`` (terminal excluded).

        This is the size measure the *max-size* strategy is parametrised on.
        """
        if edge.weight == 0 or edge.node.level == -1:
            return 0
        seen: set[int] = set()
        stack = [edge.node]
        while stack:
            node = stack.pop()
            ident = id(node)
            if ident in seen:
                continue
            seen.add(ident)
            for child in node.edges:
                if child.weight != 0 and child.node.level != -1:
                    stack.append(child.node)
        return len(seen)

    def clear_compute_tables(self) -> None:
        """Drop all memoisation caches (results stay valid; only speed is lost)."""
        t = self.tables
        for cache in (t.add_vec, t.add_mat, t.mult_mv, t.mult_mm,
                      t.kron_vec, t.kron_mat, t.conj_t, t.inner):
            cache.clear()

    def garbage_collect(self, roots: list[Edge]) -> int:
        """Free all nodes not reachable from ``roots``; returns nodes removed.

        Compute tables are cleared first since they pin arbitrary nodes.
        The identity cache is treated as an implicit root.
        """
        self.clear_compute_tables()
        live: set[int] = set()
        stack = [e.node for e in roots if e.weight != 0]
        stack.extend(e.node for e in self._identity_cache if e.weight != 0)
        while stack:
            node = stack.pop()
            if node.level == -1:
                continue
            ident = id(node)
            if ident in live:
                continue
            live.add(ident)
            for child in node.edges:
                if child.weight != 0:
                    stack.append(child.node)
        removed = self.tables.vectors.remove_unreferenced(live)
        removed += self.tables.matrices.remove_unreferenced(live)
        return removed

    def live_node_count(self) -> int:
        """Total nodes currently interned (vector + matrix tables)."""
        return len(self.tables.vectors) + len(self.tables.matrices)

    def reset_counters(self) -> None:
        self.counters = OperationCounters()
