"""The DD package: construction and manipulation of quantum decision diagrams.

This module is the heart of the reproduction.  It implements the QMDD-style
decision diagrams of the paper's Section II-B:

* state vectors are decomposed qubit by qubit into binary trees with shared
  sub-structure and complex *edge weights* (paper Fig. 2c);
* unitary matrices are decomposed into quadrants, giving nodes with four
  successors (paper Sec. II-B);
* the arithmetic the paper's whole argument rests on -- addition (Fig. 4),
  matrix-vector multiplication (Fig. 3) and matrix-matrix multiplication --
  is carried out directly on the diagrams with memoisation, so re-occurring
  sub-problems are solved once.

All diagrams are *quasi-reduced*: every non-zero edge from level ``z`` points
to level ``z - 1``, zero blocks are 0-stub edges to the terminal, and the
identity on ``m`` qubits costs exactly ``m`` nodes -- the size asymmetry
between gate DDs (linear) and state DDs (potentially huge) that makes
matrix-matrix multiplication attractive (paper Sec. III).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .complex_table import DEFAULT_TOLERANCE, ComplexTable
from .compute_table import ComputeTable
from .edge import Edge
from .kernel import DenseState, FlatEdge, FlatKernel
from .node import TERMINAL, MatrixNode, VectorNode
from .unique_table import UniqueTable

__all__ = ["Package", "OperationCounters", "GcStats", "DDIntegrityError"]


class DDIntegrityError(RuntimeError):
    """The DD package violates one of its structural invariants.

    Raised by :meth:`Package.assert_invariants` when the integrity auditor
    finds corruption: denormalised edge weights, duplicate unique-table
    entries, dangling compute-table references, broken level ordering.
    Carries the full list of violations in :attr:`violations`.
    """

    def __init__(self, violations: list[str]) -> None:
        preview = "\n  ".join(violations[:10])
        more = len(violations) - 10
        suffix = f"\n  ... and {more} more" if more > 0 else ""
        super().__init__(
            f"DD integrity audit found {len(violations)} violation(s):\n"
            f"  {preview}{suffix}")
        self.violations = violations


@dataclass
class OperationCounters:
    """Counts of recursive DD-operation calls.

    These are the machine-independent cost metrics behind the paper's
    figures: a matrix-vector product on a large state DD racks up many
    ``mult_mv_recursions``, while combining two small gate DDs costs few
    ``mult_mm_recursions`` -- the trade the combining strategies exploit.
    """

    add_recursions: int = 0
    mult_mv_recursions: int = 0
    mult_mm_recursions: int = 0
    kron_recursions: int = 0
    nodes_created: int = 0
    apply_gate_recursions: int = 0

    def snapshot(self) -> "OperationCounters":
        return OperationCounters(self.add_recursions, self.mult_mv_recursions,
                                 self.mult_mm_recursions, self.kron_recursions,
                                 self.nodes_created,
                                 self.apply_gate_recursions)

    def delta(self, earlier: "OperationCounters") -> "OperationCounters":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return OperationCounters(
            self.add_recursions - earlier.add_recursions,
            self.mult_mv_recursions - earlier.mult_mv_recursions,
            self.mult_mm_recursions - earlier.mult_mm_recursions,
            self.kron_recursions - earlier.kron_recursions,
            self.nodes_created - earlier.nodes_created,
            self.apply_gate_recursions - earlier.apply_gate_recursions,
        )

    def total_recursions(self) -> int:
        return (self.add_recursions + self.mult_mv_recursions
                + self.mult_mm_recursions + self.kron_recursions
                + self.apply_gate_recursions)


@dataclass
class GcStats:
    """Cumulative garbage-collection telemetry for one package.

    Long-running simulations live or die by their memory behaviour; these
    counters make every collection observable (``Package.cache_stats()``,
    ``SimulationStatistics``, ``BENCH_kernel.json``) instead of a silent
    pause.  ``ineffective`` counts collections that freed nothing -- the
    signature of a fully-reachable working set that has outgrown the
    configured node limit (the thrash scenario the engine's
    :class:`~repro.simulation.memory.MemoryGovernor` defuses).
    """

    collections: int = 0
    nodes_freed: int = 0
    pause_seconds: float = 0.0
    compute_entries_dropped: int = 0
    ineffective: int = 0
    flat_slots_freed: int = 0

    def snapshot(self) -> "GcStats":
        return GcStats(self.collections, self.nodes_freed,
                       self.pause_seconds, self.compute_entries_dropped,
                       self.ineffective, self.flat_slots_freed)

    def delta(self, earlier: "GcStats") -> "GcStats":
        """Telemetry accumulated since ``earlier`` (a prior snapshot)."""
        return GcStats(
            self.collections - earlier.collections,
            self.nodes_freed - earlier.nodes_freed,
            self.pause_seconds - earlier.pause_seconds,
            self.compute_entries_dropped - earlier.compute_entries_dropped,
            self.ineffective - earlier.ineffective,
            self.flat_slots_freed - earlier.flat_slots_freed,
        )

    def as_dict(self) -> dict:
        return {
            "collections": self.collections,
            "nodes_freed": self.nodes_freed,
            "pause_seconds": round(self.pause_seconds, 6),
            "compute_entries_dropped": self.compute_entries_dropped,
            "ineffective": self.ineffective,
            "flat_slots_freed": self.flat_slots_freed,
        }


@dataclass
class _Tables:
    """All memoisation state of one package, bundled for easy reset."""

    vectors: UniqueTable = field(default_factory=lambda: UniqueTable(VectorNode))
    matrices: UniqueTable = field(default_factory=lambda: UniqueTable(MatrixNode))
    add_vec: ComputeTable = field(default_factory=lambda: ComputeTable("add_vec"))
    add_mat: ComputeTable = field(default_factory=lambda: ComputeTable("add_mat"))
    mult_mv: ComputeTable = field(default_factory=lambda: ComputeTable("mult_mv"))
    mult_mm: ComputeTable = field(default_factory=lambda: ComputeTable("mult_mm"))
    kron_vec: ComputeTable = field(default_factory=lambda: ComputeTable("kron_vec"))
    kron_mat: ComputeTable = field(default_factory=lambda: ComputeTable("kron_mat"))
    conj_t: ComputeTable = field(default_factory=lambda: ComputeTable("conj_t"))
    inner: ComputeTable = field(default_factory=lambda: ComputeTable("inner"))
    apply_gate: ComputeTable = field(
        default_factory=lambda: ComputeTable("apply_gate"))

    def compute_tables(self) -> dict[str, ComputeTable]:
        """All compute tables by name (stats reporting, bulk clearing)."""
        return {t.name: t for t in (
            self.add_vec, self.add_mat, self.mult_mv, self.mult_mm,
            self.kron_vec, self.kron_mat, self.conj_t, self.inner,
            self.apply_gate)}


class Package:
    """A self-contained DD universe: complex table, unique tables, caches.

    Diagrams from different packages must not be mixed; every simulation run
    owns one package (or shares one deliberately).
    """

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE,
                 identity_shortcut: bool = True,
                 kernel: str = "recursive",
                 identity_edges: bool = False,
                 dense_blocks: bool = True,
                 deterministic: bool = False) -> None:
        if kernel not in ("recursive", "iterative"):
            raise ValueError(f"kernel must be 'recursive' or 'iterative', "
                             f"got {kernel!r}")
        self.complex_table = ComplexTable(tolerance)
        self.tables = _Tables()
        self.counters = OperationCounters()
        self.gc_stats = GcStats()
        self.zero = Edge(TERMINAL, 0j)
        self.one = Edge(TERMINAL, self.complex_table.lookup(1 + 0j))
        self._identity_cache: list[Edge] = [self.one]
        # Node ids of identity DDs, for the I*M = M / I*v = v multiplication
        # shortcut.  The identity cache is a GC root, so ids stay valid.
        self._identity_node_ids: set[int] = set()
        # The multiplication shortcut consults this alias.  Disabling it
        # (identity_shortcut=False) restores the paper's cost model, where
        # multiplications recurse through identity padding like any other
        # sub-matrix -- the paper-artifact experiments depend on those
        # machine-independent recursion counts.
        self.identity_shortcut = identity_shortcut
        self._mult_identity_ids = self._identity_node_ids \
            if identity_shortcut else frozenset()
        # Gate/projection spec tuples interned to small ints so the
        # apply-gate compute-table keys hash two machine words instead of
        # re-hashing a nested tuple at every recursion level.
        self._spec_ids: dict[tuple, int] = {}
        # Fully-prepared apply_gate specs (interned 2x2 entries, control
        # split, spec ids) keyed by the caller's hashable arguments, so a
        # gate repeated thousands of times is prepared once.
        self._gate_prep: dict[tuple, tuple] = {}
        #: which arithmetic core drives state evolution: "recursive" keeps
        #: the per-node object recursion, "iterative" routes states through
        #: the flat-array worklist kernel (:mod:`repro.dd.kernel`).
        self.kernel = kernel
        #: identity-skipping matrix edges (arXiv:2406.11959): matrix nodes
        #: of the form (e, 0, 0, e) collapse to ``e``, so gate DDs and
        #: matrix products never materialise identity padding.  Level gaps
        #: are then legal in matrix DDs and all matrix arithmetic treats a
        #: skipped level as identity.  ``Package.kron_matrices`` is NOT
        #: gap-aware, which is why the flag is opt-in.
        self.identity_edges = identity_edges
        #: iterative-kernel dense blocks: once a state's per-gate DD work
        #: (measured in memo lookups) exceeds the cost of touching every
        #: amplitude, ``apply_gate`` hands the state to a numpy amplitude
        #: array (:class:`~repro.dd.kernel.DenseState`) and gates become
        #: vectorised strided updates.  Purely a representation switch --
        #: ``to_flat``/``from_dense`` round-trip through the same canonical
        #: store, so results are bit-identical to the pure-DD path.
        self.dense_blocks = dense_blocks
        #: deterministic dense-block cutover: replaces the EWMA-smoothed
        #: microsecond cost model with a pure integer rule over counted
        #: worklist units, so the cutover step -- and therefore every
        #: scheduling count downstream of it -- is a function of the input
        #: alone, never of smoothing state or calibration constants tuned
        #: in wall-clock units.  See :meth:`FlatKernel.apply_gate
        #: <repro.dd.kernel.FlatKernel.apply_gate>`.
        self.deterministic = deterministic
        self.flat = FlatKernel(self) if kernel == "iterative" else None

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------

    def terminal_edge(self, weight: complex) -> Edge:
        """A terminal edge carrying ``weight`` (the 1x1 / scalar diagram)."""
        weight = self.complex_table.lookup(weight)
        if weight == 0:
            return self.zero
        return Edge(TERMINAL, weight)

    def _normalise(self, edges: list[Edge]) -> tuple[complex, tuple[Edge, ...]]:
        """Normalise successor edges; return (pushed-up factor, children)."""
        lookup = self.complex_table.lookup
        norm = 0j
        norm_mag = -1.0
        for e in edges:
            mag = abs(e.weight)
            if mag > norm_mag + self.complex_table.tolerance:
                norm_mag = mag
                norm = e.weight
        if norm == 0:
            return 0j, ()
        one = self.one.weight
        children = []
        for e in edges:
            w = e.weight
            if w == 0:
                children.append(self.zero)
            elif w == norm:
                # The norm child divides to exactly 1: skip the lookup.
                children.append(Edge(e.node, one))
            else:
                w = lookup(w / norm)
                children.append(self.zero if w == 0 else Edge(e.node, w))
        return norm, tuple(children)

    def make_vector_node(self, level: int, edges: tuple[Edge, Edge]) -> Edge:
        """Create (or find) the normalised node decomposing a vector at ``level``.

        The binary normalisation of :meth:`_normalise` is inlined here: this
        is the single hottest constructor in sequential simulation, and the
        generic list-based loop showed up prominently in profiles.
        """
        e0, e1 = edges
        w0 = e0.weight
        w1 = e1.weight
        ct = self.complex_table
        norm = w1 if abs(w1) > abs(w0) + ct.tolerance else w0
        if norm == 0:
            return self.zero
        one = self.one.weight
        exact_get = ct._exact.get
        lookup = ct.lookup
        if w0 == 0:
            c0 = self.zero
        elif w0 == norm:
            c0 = Edge(e0.node, one)
        else:
            q = w0 / norm
            w = exact_get(q)
            if w is None:
                w = lookup(q)
            else:
                ct.hits += 1
            c0 = self.zero if w == 0 else Edge(e0.node, w)
        if w1 == 0:
            c1 = self.zero
        elif w1 == norm:
            c1 = Edge(e1.node, one)
        else:
            q = w1 / norm
            w = exact_get(q)
            if w is None:
                w = lookup(q)
            else:
                ct.hits += 1
            c1 = self.zero if w == 0 else Edge(e1.node, w)
        table = self.tables.vectors
        node = table.get_or_insert(level, (c0, c1))
        if table.created:
            self.counters.nodes_created += 1
        # Child weights are canonical already, so ``norm`` (one of them, or
        # their magnitude-dominant representative) usually hits the exact
        # front cache; fall back to a full lookup for external callers.
        w = exact_get(norm)
        if w is None:
            w = lookup(norm)
        else:
            ct.hits += 1
        return Edge(node, w)

    def make_matrix_node(self, level: int,
                         edges: tuple[Edge, Edge, Edge, Edge]) -> Edge:
        """Create (or find) the normalised node decomposing a matrix at ``level``."""
        norm, children = self._normalise(list(edges))
        if norm == 0:
            return self.zero
        if (self.identity_edges and children[1].weight == 0
                and children[2].weight == 0 and children[0] == children[3]):
            # Identity-skipping edge (arXiv:2406.11959): (e, 0, 0, e) is
            # I (x) e -- do not materialise the node, return ``e`` itself
            # and let the level gap denote the skipped identity levels.
            return self._scaled(children[0], norm)
        table = self.tables.matrices
        node = table.get_or_insert(level, children)
        if table.created:
            self.counters.nodes_created += 1
        return Edge(node, self.complex_table.lookup(norm))

    # ------------------------------------------------------------------
    # elementary state constructors
    # ------------------------------------------------------------------

    def zero_state(self, num_qubits: int) -> Edge:
        """The all-zeros computational basis state ``|0...0>``."""
        return self.basis_state(num_qubits, 0)

    def basis_state(self, num_qubits: int, index: int) -> Edge:
        """Computational basis state ``|index>`` on ``num_qubits`` qubits.

        Bit ``k`` of ``index`` is the value of qubit ``k`` (little-endian).
        """
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        if not 0 <= index < (1 << num_qubits):
            raise ValueError(f"basis index {index} out of range for "
                             f"{num_qubits} qubits")
        if self.flat is not None:
            return self.flat.basis_state(num_qubits, index)
        edge = self.one
        for level in range(num_qubits):
            bit = (index >> level) & 1
            children = (edge, self.zero) if bit == 0 else (self.zero, edge)
            edge = self.make_vector_node(level, children)
        return edge

    def identity(self, num_qubits: int) -> Edge:
        """The identity matrix DD on ``num_qubits`` qubits (``num_qubits`` nodes)."""
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        cache = self._identity_cache
        while len(cache) <= num_qubits:
            below = cache[-1]
            edge = self.make_matrix_node(
                len(cache) - 1, (below, self.zero, self.zero, below))
            self._identity_node_ids.add(id(edge.node))
            cache.append(edge)
        return cache[num_qubits]

    # ------------------------------------------------------------------
    # addition (paper Fig. 4)
    # ------------------------------------------------------------------

    def add_vectors(self, x: Edge, y: Edge) -> Edge:
        """Sum of two state-vector DDs of equal qubit count."""
        if type(x) is DenseState:
            x = x.to_flat()
        if type(y) is DenseState:
            y = y.to_flat()
        if type(x) is FlatEdge and type(y) is FlatEdge:
            return self.flat.add(x, y)
        return self._add(x, y, self.tables.add_vec, self.make_vector_node, 2)

    def add_matrices(self, x: Edge, y: Edge) -> Edge:
        """Sum of two matrix DDs of equal qubit count."""
        return self._add(x, y, self.tables.add_mat, self.make_matrix_node, 4)

    def _add(self, x: Edge, y: Edge, cache: ComputeTable,
             make_node, arity: int) -> Edge:
        if x.weight == 0:
            return y
        if y.weight == 0:
            return x
        ct = self.complex_table
        lookup = ct.lookup
        if x.node is y.node:
            # x.weight != 0 is guaranteed by the early return above; the sum
            # may still cancel to zero (x + (-x)), which _scaled maps to the
            # zero edge after the lookup snaps the ratio to 0.
            return self._scaled(x, lookup(x.weight + y.weight) / x.weight)
        self.counters.add_recursions += 1
        # Addition is commutative; order operands for better cache reuse.
        # The order must be run-to-run stable (interning serials, not
        # ``id()``): the ratio below is snapped by the complex table, and
        # ``x + ratio*y`` vs ``y + (1/ratio)*x`` can round to *different*
        # canonical DDs near the tolerance boundary.  With addresses the
        # direction flipped with ASLR, which made node counts -- and the
        # max-size strategy's flush schedule -- vary between identical
        # runs (caught by the schedule byte-identity check).
        if x.node.serial > y.node.serial:
            x, y = y, x
        value = y.weight / x.weight
        ratio = ct._exact.get(value)
        if ratio is None:
            ratio = lookup(value)
        else:
            ct.hits += 1
        if ratio == 0:
            return x
        cache.lookups += 1
        key = (x.node, y.node, ratio)
        entries = cache._entries
        slot = hash(key) & cache._mask
        entry = entries[slot]
        if entry is not None and entry[0] == key:
            cache.hits += 1
            return self._scaled(entry[1], x.weight)
        lx = x.node.level
        ly = y.node.level
        if lx != ly:
            # Identity-skipping matrix DDs: operand levels may differ; the
            # lower operand contributes virtual (e, 0, 0, e) quadrants at
            # every skipped level, so only the diagonal quadrants of the
            # higher operand see it.
            if lx > ly:
                hn, hw = x.node, self.one.weight
                lo = Edge(y.node, ratio)
            else:
                hn, hw = y.node, ratio
                lo = Edge(x.node, self.one.weight)
            he = hn.edges
            add = self._add
            scaled = self._scaled
            children = (
                add(scaled(he[0], hw), lo, cache, make_node, 4),
                scaled(he[1], hw),
                scaled(he[2], hw),
                add(scaled(he[3], hw), lo, cache, make_node, 4),
            )
            cached = make_node(hn.level, children)
        elif lx == -1:
            cached = self.terminal_edge(1 + ratio)
        else:
            xs = x.node.edges
            ys = y.node.edges
            add = self._add
            if arity == 2:
                children = (
                    add(xs[0], ys[0].scaled(ratio), cache, make_node, 2),
                    add(xs[1], ys[1].scaled(ratio), cache, make_node, 2),
                )
            else:
                children = (
                    add(xs[0], ys[0].scaled(ratio), cache, make_node, 4),
                    add(xs[1], ys[1].scaled(ratio), cache, make_node, 4),
                    add(xs[2], ys[2].scaled(ratio), cache, make_node, 4),
                    add(xs[3], ys[3].scaled(ratio), cache, make_node, 4),
                )
            cached = make_node(x.node.level, children)
        current = entries[slot]
        if current is None:
            cache._filled += 1
        elif current[0] != key:
            cache.collisions += 1
        entries[slot] = (key, cached)
        cache.inserts += 1
        return self._scaled(cached, x.weight)

    def _scaled(self, edge: Edge, factor: complex) -> Edge:
        """``edge`` scaled by ``factor`` with the weight re-canonicalised."""
        if factor == 0 or edge.weight == 0:
            return self.zero
        if factor == 1:
            return edge  # package edges already carry canonical weights
        ct = self.complex_table
        value = edge.weight * factor
        w = ct._exact.get(value)
        if w is None:
            w = ct.lookup(value)
        else:
            ct.hits += 1
        if w == 0:
            return self.zero
        return Edge(edge.node, w)

    # ------------------------------------------------------------------
    # multiplication (paper Fig. 3 and Sec. III)
    # ------------------------------------------------------------------

    def multiply_matrix_vector(self, m: Edge, v: Edge) -> Edge:
        """Apply matrix DD ``m`` to state DD ``v`` (one simulation step, Eq. 1)."""
        if type(v) is DenseState:
            v = v.to_flat()
        if type(v) is FlatEdge:
            if m.weight == 0 or v.weight == 0:
                return FlatEdge(self.flat, 0, 0j)
            mlevel = m.node.level
            vlevel = v.level
            if mlevel != vlevel and not (self.identity_edges
                                         and mlevel < vlevel):
                raise ValueError(
                    f"matrix level {mlevel} != vector level {vlevel}; "
                    "operands must cover the same qubits")
            return self.flat.mult_mv(m, v)
        w = m.weight * v.weight
        if w == 0:
            return self.zero
        mlevel = m.node.level
        vlevel = v.node.level
        if mlevel != vlevel and not (self.identity_edges
                                     and mlevel < vlevel):
            # With identity-skipping edges a matrix root below the state
            # root is legal: the skipped top levels act as identity.
            raise ValueError(
                f"matrix level {mlevel} != vector level {vlevel}; "
                "operands must cover the same qubits")
        result = self._mult_mv(m.node, v.node)
        return self._scaled(result, w)

    def _mult_mv(self, mn, vn) -> Edge:
        if mn.level == -1:
            # Scalar matrix: either both operands are terminal, or (with
            # identity-skipping edges) the matrix is identity on every
            # remaining level -- the product is the vector itself.
            return self.one if vn.level == -1 else Edge(vn, self.one.weight)
        self.counters.mult_mv_recursions += 1
        if id(mn) in self._mult_identity_ids:
            # I * v = v: identity padding resolves in this one call instead
            # of recursing through the whole sub-diagram.
            return Edge(vn, self.one.weight)
        key = (mn, vn)
        cache = self.tables.mult_mv
        cached = cache.get(key)
        if cached is not None:
            return cached
        if mn.level < vn.level:
            # Identity-skipped levels: the matrix acts as I here, so the
            # product is a structural copy one level down.
            children = []
            for vchild in vn.edges:
                if vchild.weight == 0:
                    children.append(self.zero)
                else:
                    children.append(self._scaled(
                        self._mult_mv(mn, vchild.node), vchild.weight))
            result = self.make_vector_node(vn.level,
                                           (children[0], children[1]))
            cache.put(key, result)
            return result
        level = mn.level
        me = mn.edges
        ve = vn.edges
        mult = self._mult_mv
        scaled = self._scaled
        children = []
        for row in (0, 1):
            parts = []
            for col in (0, 1):
                m_child = me[2 * row + col]
                v_child = ve[col]
                w = m_child.weight * v_child.weight
                if w == 0:
                    continue
                parts.append(scaled(mult(m_child.node, v_child.node), w))
            if not parts:
                children.append(self.zero)
            elif len(parts) == 1:
                children.append(parts[0])
            else:
                children.append(self.add_vectors(parts[0], parts[1]))
        result = self.make_vector_node(level, (children[0], children[1]))
        cache.put(key, result)
        return result

    def multiply_matrix_matrix(self, a: Edge, b: Edge) -> Edge:
        """Product ``a @ b`` of two matrix DDs (combining operations, Eq. 2)."""
        w = a.weight * b.weight
        if w == 0:
            return self.zero
        if a.node.level != b.node.level and not self.identity_edges:
            raise ValueError(
                f"matrix levels differ ({a.node.level} vs {b.node.level}); "
                "operands must cover the same qubits")
        result = self._mult_mm(a.node, b.node)
        return self._scaled(result, w)

    def _mult_mm(self, an, bn) -> Edge:
        if an.level == -1:
            # Scalar (or, with identity-skipping edges, identity-extended)
            # left operand: the product is the right operand itself.
            return self.one if bn.level == -1 else Edge(bn, self.one.weight)
        if bn.level == -1:
            return Edge(an, self.one.weight)
        self.counters.mult_mm_recursions += 1
        identity_ids = self._mult_identity_ids
        if id(an) in identity_ids:
            # I * B = B (and A * I = A below): combined products of
            # elementary gates are mostly identity padding -- resolve the
            # whole sub-product in this one call.
            return Edge(bn, self.one.weight)
        if id(bn) in identity_ids:
            return Edge(an, self.one.weight)
        key = (an, bn)
        cache = self.tables.mult_mm
        cached = cache.get(key)
        if cached is not None:
            return cached
        if an.level != bn.level:
            # Identity-skipping edges: the lower operand is identity on
            # the levels it skips, so it multiplies straight into each
            # quadrant of the higher operand (block-diagonal product).
            if an.level > bn.level:
                hn, other, a_side = an, bn, True
            else:
                hn, other, a_side = bn, an, False
            children = []
            for hchild in hn.edges:
                if hchild.weight == 0:
                    children.append(self.zero)
                else:
                    sub = self._mult_mm(hchild.node, other) if a_side \
                        else self._mult_mm(other, hchild.node)
                    children.append(self._scaled(sub, hchild.weight))
            result = self.make_matrix_node(
                hn.level,
                (children[0], children[1], children[2], children[3]))
            cache.put(key, result)
            return result
        level = an.level
        ae = an.edges
        be = bn.edges
        mult = self._mult_mm
        scaled = self._scaled
        children = []
        for row in (0, 1):
            for col in (0, 1):
                parts = []
                for k in (0, 1):
                    a_child = ae[2 * row + k]
                    b_child = be[2 * k + col]
                    w = a_child.weight * b_child.weight
                    if w == 0:
                        continue
                    parts.append(scaled(mult(a_child.node, b_child.node), w))
                if not parts:
                    children.append(self.zero)
                elif len(parts) == 1:
                    children.append(parts[0])
                else:
                    children.append(self.add_matrices(parts[0], parts[1]))
        result = self.make_matrix_node(
            level, (children[0], children[1], children[2], children[3]))
        cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # direct local-gate application (fast path for Eq. 1 simulation)
    # ------------------------------------------------------------------

    def apply_gate(self, v: Edge, matrix, target: int,
                   controls=None) -> Edge:
        """Apply a (multi-)controlled single-qubit gate directly to a state DD.

        This is the fast path for sequential (Eq. 1) simulation: instead of
        lifting the 2x2 ``matrix`` to an ``n``-qubit gate DD (identity
        padding on every other qubit) and running a full matrix-vector
        multiplication, the *state* DD is recursed directly.  Levels above
        the target are structural copies (or control splits), the 2x2 gate
        is applied once at the target level, and levels below are only
        touched when a control sits there.  Results are identical to
        ``multiply_matrix_vector(build_gate_dd(...), v)`` up to the complex
        table's tolerance.

        Parameters
        ----------
        v:
            State DD the gate acts on.
        matrix:
            The 2x2 unitary acting on ``target`` (anything indexable as
            ``matrix[row][col]``).
        target:
            Qubit the gate acts on.
        controls:
            Mapping ``{qubit: active_value}`` (1 = positive, 0 = negative)
            or a sequence of qubits / ``(qubit, value)`` pairs.
        """
        prep_key = None
        if type(matrix) is tuple and (controls is None
                                      or type(controls) is tuple):
            prep_key = (matrix, target, controls)
            prep = self._gate_prep.get(prep_key)
        else:
            prep = None
        if prep is None:
            control_map = self._normalise_control_spec(controls)
            if target in control_map:
                raise ValueError(f"qubit {target} cannot be both target "
                                 "and control")
            lookup = self.complex_table.lookup
            u = tuple(lookup(complex(matrix[r][c])) for r in (0, 1)
                      for c in (0, 1))
            lower = {q: val for q, val in control_map.items() if q < target}
            gate_id = self._spec_id(
                (u, target, tuple(sorted(control_map.items()))))
            proj_id = self._spec_id(("proj", tuple(sorted(lower.items())))) \
                if lower else -1
            prep = (u, control_map, lower, gate_id, proj_id)
            if prep_key is not None:
                self._gate_prep[prep_key] = prep
        else:
            u, control_map, lower, gate_id, proj_id = prep
        if type(v) is DenseState:
            # Dense block: stay dense -- the gate is a strided numpy update.
            # This check must precede the weight check below (``weight`` on
            # a DenseState materialises the full DD).
            root_level = v.level
            if not 0 <= target <= root_level:
                raise ValueError(f"target {target} out of range for state of "
                                 f"{root_level + 1} qubits")
            for qubit in control_map:
                if not 0 <= qubit <= root_level:
                    raise ValueError(f"control {qubit} out of range for "
                                     f"state of {root_level + 1} qubits")
            kprep = self.flat.prepare_gate(u, control_map, lower,
                                           gate_id, proj_id, target)
            return self.flat.apply_dense(v, kprep)
        flat = type(v) is FlatEdge
        if v.weight == 0:
            return FlatEdge(self.flat, 0, 0j) if flat else self.zero
        root_level = v.level if flat else v.node.level
        if not 0 <= target <= root_level:
            raise ValueError(f"target {target} out of range for state of "
                             f"{root_level + 1} qubits")
        for qubit in control_map:
            if not 0 <= qubit <= root_level:
                raise ValueError(f"control {qubit} out of range for state of "
                                 f"{root_level + 1} qubits")
        if flat:
            kprep = self.flat.prepare_gate(u, control_map, lower,
                                           gate_id, proj_id, target)
            return self.flat.apply_gate(v, kprep)
        result = self._apply_gate_rec(v.node, u, target, control_map,
                                      lower, gate_id, proj_id)
        return self._scaled(result, v.weight)

    def _spec_id(self, spec: tuple) -> int:
        """Intern a gate/projection spec tuple to a unique small int."""
        sid = self._spec_ids.get(spec)
        if sid is None:
            sid = len(self._spec_ids)
            self._spec_ids[spec] = sid
        return sid

    @staticmethod
    def _normalise_control_spec(controls) -> dict[int, int]:
        """Normalise control specs to ``{qubit: active_value}``."""
        if not controls:
            return {}
        if isinstance(controls, dict):
            result = dict(controls)
        else:
            result = {}
            for item in controls:
                if isinstance(item, tuple):
                    qubit, value = item
                else:
                    qubit, value = item, 1
                result[int(qubit)] = int(value)
        for qubit, value in result.items():
            if value not in (0, 1):
                raise ValueError(f"control value for qubit {qubit} must be "
                                 f"0 or 1, got {value}")
        return result

    def _gate_term(self, factor: complex, edge: Edge) -> Edge:
        """``factor * edge`` with zero short-circuits (one gate-matrix term)."""
        if factor == 0 or edge.weight == 0:
            return self.zero
        return self._scaled(edge, factor)

    def _apply_gate_rec(self, vn, u, target: int, control_map: dict,
                        lower: dict, gate_id: int, proj_id: int) -> Edge:
        """Transform the sub-state below ``vn`` (weight-1 normal form)."""
        self.counters.apply_gate_recursions += 1
        # The compute-table probe is inlined (slot computed once, reused by
        # the store below); counters match ComputeTable.get/put exactly.
        cache = self.tables.apply_gate
        cache.lookups += 1
        key = (vn, gate_id)
        entries = cache._entries
        slot = hash(key) & cache._mask
        entry = entries[slot]
        if entry is not None and entry[0] == key:
            cache.hits += 1
            return entry[1]
        rec = self._apply_gate_rec
        e0, e1 = vn.edges
        level = vn.level
        if level > target:
            # Structural copy above the target.  Weight products stay raw
            # (not re-interned): make_vector_node canonicalises the ratios
            # once, instead of interning here and again after normalising.
            active = control_map.get(level)
            if active is None:
                if e0.weight == 0:
                    t0 = self.zero
                else:
                    sub = rec(e0.node, u, target, control_map,
                              lower, gate_id, proj_id)
                    t0 = Edge(sub.node, sub.weight * e0.weight)
                if e1.weight == 0:
                    t1 = self.zero
                else:
                    sub = rec(e1.node, u, target, control_map,
                              lower, gate_id, proj_id)
                    t1 = Edge(sub.node, sub.weight * e1.weight)
            elif active == 1:
                t0 = e0
                if e1.weight == 0:
                    t1 = self.zero
                else:
                    sub = rec(e1.node, u, target, control_map,
                              lower, gate_id, proj_id)
                    t1 = Edge(sub.node, sub.weight * e1.weight)
            else:
                if e0.weight == 0:
                    t0 = self.zero
                else:
                    sub = rec(e0.node, u, target, control_map,
                              lower, gate_id, proj_id)
                    t0 = Edge(sub.node, sub.weight * e0.weight)
                t1 = e1
            result = self.make_vector_node(level, (t0, t1))
        elif not lower:
            # Target level, gate unconditioned below: one 2x2 application.
            n0 = self.add_vectors(self._gate_term(u[0], e0),
                                  self._gate_term(u[1], e1))
            n1 = self.add_vectors(self._gate_term(u[2], e0),
                                  self._gate_term(u[3], e1))
            result = self.make_vector_node(target, (n0, n1))
        else:
            # Controls below the target: project out the component where
            # all lower controls are active and add the gate's *correction*
            # to it -- new_v0 = v0 + (u00 - 1) P v0 + u01 P v1 (and
            # symmetrically for v1).  Diagonal entries equal to 1 (e.g. the
            # untouched row of a multi-controlled Z) then cost nothing.
            a0 = self._project_lower_controls(e0, lower, proj_id)
            a1 = self._project_lower_controls(e1, lower, proj_id)
            d0 = self.add_vectors(self._gate_term(u[0] - 1, a0),
                                  self._gate_term(u[1], a1))
            d1 = self.add_vectors(self._gate_term(u[2], a0),
                                  self._gate_term(u[3] - 1, a1))
            n0 = self.add_vectors(e0, d0)
            n1 = self.add_vectors(e1, d1)
            result = self.make_vector_node(target, (n0, n1))
        # Re-read the slot: nested recursions may have stored into it.
        current = entries[slot]
        if current is None:
            cache._filled += 1
        elif current[0] != key:
            cache.collisions += 1
        entries[slot] = (key, result)
        cache.inserts += 1
        return result

    def _project_lower_controls(self, edge: Edge, lower: dict,
                                proj_id: int) -> Edge:
        """Component of ``edge`` where every control in ``lower`` is active."""
        if edge.weight == 0:
            return self.zero
        return self._scaled(
            self._project_rec(edge.node, lower, min(lower), proj_id),
            edge.weight)

    def _project_rec(self, vn, lower: dict, lowest: int, proj_id: int) -> Edge:
        level = vn.level
        if level < lowest:
            # No controls remain below: the whole sub-state is active.
            return self.one if level == -1 else Edge(vn, self.one.weight)
        self.counters.apply_gate_recursions += 1
        cache = self.tables.apply_gate
        cache.lookups += 1
        key = (vn, proj_id)
        entries = cache._entries
        slot = hash(key) & cache._mask
        entry = entries[slot]
        if entry is not None and entry[0] == key:
            cache.hits += 1
            return entry[1]
        e0, e1 = vn.edges
        active = lower.get(level)
        rec = self._project_rec
        if active is None:
            if e0.weight == 0:
                t0 = self.zero
            else:
                sub = rec(e0.node, lower, lowest, proj_id)
                t0 = Edge(sub.node, sub.weight * e0.weight)
            if e1.weight == 0:
                t1 = self.zero
            else:
                sub = rec(e1.node, lower, lowest, proj_id)
                t1 = Edge(sub.node, sub.weight * e1.weight)
        elif active == 1:
            t0 = self.zero
            if e1.weight == 0:
                t1 = self.zero
            else:
                sub = rec(e1.node, lower, lowest, proj_id)
                t1 = Edge(sub.node, sub.weight * e1.weight)
        else:
            if e0.weight == 0:
                t0 = self.zero
            else:
                sub = rec(e0.node, lower, lowest, proj_id)
                t0 = Edge(sub.node, sub.weight * e0.weight)
            t1 = self.zero
        result = self.make_vector_node(level, (t0, t1))
        current = entries[slot]
        if current is None:
            cache._filled += 1
        elif current[0] != key:
            cache.collisions += 1
        entries[slot] = (key, result)
        cache.inserts += 1
        return result

    # ------------------------------------------------------------------
    # Kronecker products
    # ------------------------------------------------------------------

    def kron_vectors(self, top: Edge, bottom: Edge) -> Edge:
        """``top (x) bottom``: ``top`` becomes the more-significant qubits."""
        return self._kron(top, bottom, self.tables.kron_vec,
                          self.make_vector_node)

    def kron_matrices(self, top: Edge, bottom: Edge) -> Edge:
        """``top (x) bottom`` for matrix DDs."""
        return self._kron(top, bottom, self.tables.kron_mat,
                          self.make_matrix_node)

    def _kron(self, top: Edge, bottom: Edge, cache: ComputeTable,
              make_node) -> Edge:
        w = top.weight * bottom.weight
        if w == 0:
            return self.zero
        shift = bottom.node.level + 1
        result = self._kron_rec(top.node, bottom.node, shift, cache, make_node)
        return self._scaled(result, w)

    def _kron_rec(self, tn, bn, shift: int, cache: ComputeTable,
                  make_node) -> Edge:
        if tn.level == -1:
            return Edge(bn, self.one.weight) if bn.level != -1 else self.one
        self.counters.kron_recursions += 1
        key = (tn, bn)
        cached = cache.get(key)
        if cached is not None:
            return cached
        children = []
        for e in tn.edges:
            if e.weight == 0:
                children.append(self.zero)
            else:
                sub = self._kron_rec(e.node, bn, shift, cache, make_node)
                children.append(self._scaled(sub, e.weight))
        result = make_node(tn.level + shift, tuple(children))
        cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # adjoint, inner products, amplitudes
    # ------------------------------------------------------------------

    def conjugate_transpose(self, m: Edge) -> Edge:
        """The adjoint (dagger) of a matrix DD -- the inverse for unitaries."""
        if m.weight == 0:
            return self.zero
        result = self._conj_t(m.node)
        return self._scaled(result, m.weight.conjugate())

    def _conj_t(self, mn) -> Edge:
        if mn.level == -1:
            return self.one
        key = (mn,)
        cache = self.tables.conj_t
        cached = cache.get(key)
        if cached is not None:
            return cached
        e = mn.edges
        children = []
        for src in (0, 2, 1, 3):  # transpose swaps the off-diagonal quadrants
            child = e[src]
            if child.weight == 0:
                children.append(self.zero)
            else:
                sub = self._conj_t(child.node)
                children.append(self._scaled(sub, child.weight.conjugate()))
        result = self.make_matrix_node(
            mn.level, (children[0], children[1], children[2], children[3]))
        cache.put(key, result)
        return result

    def outer_product(self, ket: Edge, bra: Edge) -> Edge:
        """``|ket><bra|`` as a matrix DD (rank-1 operator).

        The density matrix of a pure state is ``outer_product(v, v)``;
        combined with a partial trace this yields reduced states and
        entanglement measures directly from a state DD.
        """
        if ket.weight == 0 or bra.weight == 0:
            return self.zero
        if ket.node.level != bra.node.level:
            raise ValueError("outer product of states with different "
                             "qubit counts")
        cache = self.tables.kron_mat  # reuse a matrix cache with a tag
        w = ket.weight * bra.weight.conjugate()

        def build(kn, bn) -> Edge:
            if kn.level == -1:
                return self.one
            key = ("outer", kn, bn)
            cached = cache.get(key)
            if cached is not None:
                return cached
            children = []
            for row in (0, 1):
                for col in (0, 1):
                    k_child = kn.edges[row]
                    b_child = bn.edges[col]
                    weight = k_child.weight * b_child.weight.conjugate()
                    if weight == 0:
                        children.append(self.zero)
                    else:
                        children.append(self._scaled(
                            build(k_child.node, b_child.node), weight))
            result = self.make_matrix_node(kn.level, tuple(children))
            cache.put(key, result)
            return result

        return self._scaled(build(ket.node, bra.node), w)

    def inner_product(self, a: Edge, b: Edge) -> complex:
        """``<a|b>`` of two state DDs of equal qubit count."""
        if type(a) is DenseState:
            a = a.to_flat()
        if type(b) is DenseState:
            b = b.to_flat()
        if a.weight == 0 or b.weight == 0:
            return 0j
        if a.node.level != b.node.level:
            raise ValueError("inner product of states with different qubit counts")
        return (a.weight.conjugate() * b.weight
                * self._inner(a.node, b.node))

    def _inner(self, an, bn) -> complex:
        if an.level == -1:
            return 1 + 0j
        key = (an, bn)
        cache = self.tables.inner
        cached = cache.get(key)
        if cached is not None:
            return cached
        total = 0j
        for ae, be in zip(an.edges, bn.edges):
            if ae.weight == 0 or be.weight == 0:
                continue
            total += (ae.weight.conjugate() * be.weight
                      * self._inner(ae.node, be.node))
        cache.put(key, total)
        return total

    def squared_norm(self, v: Edge) -> float:
        """``<v|v>`` -- 1.0 for a properly normalised quantum state."""
        return self.inner_product(v, v).real

    def fidelity(self, a: Edge, b: Edge) -> float:
        """``|<a|b>|^2``, the standard state-overlap measure."""
        return abs(self.inner_product(a, b)) ** 2

    def amplitude(self, v: Edge, basis_index: int) -> complex:
        """Amplitude of basis state ``|basis_index>`` (product of path weights)."""
        if type(v) is DenseState:
            return v.amplitude(basis_index)
        if type(v) is FlatEdge:
            return self.flat.amplitude(v, basis_index)
        w = v.weight
        node = v.node
        while node.level != -1:
            if w == 0:
                return 0j
            bit = (basis_index >> node.level) & 1
            edge = node.edges[bit]
            w *= edge.weight
            node = edge.node
        return w

    # ------------------------------------------------------------------
    # diagram metrics and housekeeping
    # ------------------------------------------------------------------

    def solidify(self, edge):
        """Materialise a dense block back into its canonical DD form.

        ``DenseState`` results become :class:`~repro.dd.kernel.FlatEdge`
        (through the kernel's canonical store, so the result is identical
        to never having gone dense); every other edge type passes through
        unchanged.  Call this before serialising, auditing, or comparing a
        state that may have taken the dense fast path.
        """
        if type(edge) is DenseState:
            return edge.to_flat()
        return edge

    def count_nodes(self, edge: Edge) -> int:
        """Number of internal nodes reachable from ``edge`` (terminal excluded).

        This is the size measure the *max-size* strategy is parametrised on.
        """
        if type(edge) is DenseState:
            # A dense block has no nodes; report its non-zero amplitude
            # count as a comparable "state size" proxy (materialising the
            # DD just to count it would defeat the dense fast path).
            return edge.size_proxy()
        if type(edge) is FlatEdge:
            return 0 if edge.weight == 0 else self.flat.count_nodes(edge.index)
        if edge.weight == 0 or edge.node.level == -1:
            return 0
        root = edge.node
        seen: set[int] = {id(root)}
        seen_add = seen.add
        stack = [root]
        pop = stack.pop
        push = stack.append
        while stack:
            edges = pop().edges
            # Unrolled for the dominant binary (vector-node) case; this
            # runs after every simulation step, so loop overhead matters.
            if len(edges) == 2:
                c0, c1 = edges
                cn = c0.node
                if c0.weight != 0 and cn.level != -1:
                    ident = id(cn)
                    if ident not in seen:
                        seen_add(ident)
                        push(cn)
                cn = c1.node
                if c1.weight != 0 and cn.level != -1:
                    ident = id(cn)
                    if ident not in seen:
                        seen_add(ident)
                        push(cn)
            else:
                for child in edges:
                    cn = child.node
                    if child.weight != 0 and cn.level != -1:
                        ident = id(cn)
                        if ident not in seen:
                            seen_add(ident)
                            push(cn)
        return len(seen)

    def clear_compute_tables(self) -> int:
        """Drop all memoisation caches; returns total entries dropped.

        Results stay valid; only speed is lost.
        """
        dropped = 0
        for cache in self.tables.compute_tables().values():
            dropped += cache.clear()
        if self.flat is not None:
            dropped += self.flat.clear_memos()
        return dropped

    def cache_stats(self) -> dict:
        """Hit/miss/collision statistics for every cache in the package.

        The ``compute`` section reports the slot-based memoisation tables
        (one per DD operation), ``unique`` the hash-consing tables and
        ``complex`` the weight-interning table.  This is the report the
        benchmark harness persists into ``BENCH_kernel.json``.
        """
        unique = {}
        for name, table in (("vectors", self.tables.vectors),
                            ("matrices", self.tables.matrices)):
            lookups = table.lookups
            unique[name] = {
                "nodes": len(table),
                "lookups": lookups,
                "hits": table.hits,
                "hit_rate": round(table.hits / lookups, 6) if lookups else 0.0,
            }
        ct = self.complex_table
        total = ct.hits + ct.misses
        compute = {name: cache.stats() for name, cache
                   in self.tables.compute_tables().items()}
        stats = {
            "compute": compute,
            "unique": unique,
            "complex": {
                "entries": len(ct),
                "hits": ct.hits,
                "misses": ct.misses,
                "hit_rate": round(ct.hits / total, 6) if total else 0.0,
            },
            "gc": self.gc_stats.as_dict(),
        }
        if self.flat is not None:
            # The kernel's memo traffic is folded into the corresponding
            # compute-table rows (one logical operation, one row -- the
            # bench report reads add_vec/apply_gate/mult_mv by name), and
            # also reported raw under "kernel".
            kernel_stats = self.flat.stats()
            stats["kernel"] = kernel_stats
            for name, k in kernel_stats.items():
                if name not in compute or not k["lookups"]:
                    continue
                base = compute[name]
                lookups = base["lookups"] + k["lookups"]
                hits = base["hits"] + k["hits"]
                merged = dict(base)
                merged["lookups"] = lookups
                merged["hits"] = hits
                merged["misses"] = lookups - hits
                merged["hit_rate"] = round(hits / lookups, 6) \
                    if lookups else 0.0
                merged["entries"] = base.get("entries", 0) + k["entries"]
                compute[name] = merged
        return stats

    def garbage_collect(self, roots: list[Edge]) -> int:
        """Free all nodes not reachable from ``roots``; returns nodes removed.

        The identity cache is treated as an implicit root.  Compute tables
        pin arbitrary nodes, so they are wiped whenever nodes are actually
        removed -- but an *ineffective* collection (everything reachable,
        nothing to free) leaves them untouched: entries can only reference
        live interned nodes then, and keeping them avoids both the wipe
        cost and the cold-cache restart that makes per-step re-collection
        so pathological.  Every collection updates :attr:`gc_stats`.
        """
        started = time.perf_counter()
        flat_freed = 0
        if self.flat is not None:
            # Compact the flat store first: it drops its materialisation
            # cache and matrix mirror, so object twins of dead flat nodes
            # become unreachable before the object mark-sweep below runs.
            # Dense blocks hold no node references at all -- they are
            # simply not roots (their cached flat mirror is invalidated by
            # the kernel's generation bump inside ``collect``).
            flat_roots = [e for e in roots if type(e) is FlatEdge]
            roots = [e for e in roots
                     if type(e) is not FlatEdge and type(e) is not DenseState]
            flat_freed = self.flat.collect(flat_roots)
        live: set[int] = set()
        stack = [e.node for e in roots if e.weight != 0]
        stack.extend(e.node for e in self._identity_cache if e.weight != 0)
        while stack:
            node = stack.pop()
            if node.level == -1:
                continue
            ident = id(node)
            if ident in live:
                continue
            live.add(ident)
            for child in node.edges:
                if child.weight != 0:
                    stack.append(child.node)
        removed = self.tables.vectors.remove_unreferenced(live)
        removed += self.tables.matrices.remove_unreferenced(live)
        dropped = 0
        if removed:
            # Entries may hold (or be keyed by) just-removed nodes; a later
            # hit could resurrect a node whose id has been reused.  Wipe.
            dropped = self.clear_compute_tables()
        stats = self.gc_stats
        stats.collections += 1
        stats.nodes_freed += removed
        stats.flat_slots_freed += flat_freed
        stats.compute_entries_dropped += dropped
        stats.pause_seconds += time.perf_counter() - started
        if not removed and not flat_freed:
            stats.ineffective += 1
        return removed + flat_freed

    def live_node_count(self) -> int:
        """Total nodes currently interned (vector + matrix tables), plus
        allocated flat-kernel slots when the iterative kernel is active."""
        count = len(self.tables.vectors) + len(self.tables.matrices)
        if self.flat is not None:
            count += self.flat.live_nodes
        return count

    def reset_counters(self) -> None:
        self.counters = OperationCounters()

    # ------------------------------------------------------------------
    # integrity auditing
    # ------------------------------------------------------------------

    def interned_node_ids(self) -> set[int]:
        """Ids of every node currently interned (vector and matrix tables)."""
        ids = {id(node) for node in self.tables.vectors.nodes()}
        ids.update(id(node) for node in self.tables.matrices.nodes())
        return ids

    def check_invariants(self, roots: list[Edge] | None = None,
                         max_violations: int = 100) -> list[str]:
        """Audit the package's structural invariants; return violations.

        After thousands of GC cycles, cache overwrites and (with
        degradation enabled) in-place state pruning, a long run has no way
        to *know* its tables are still consistent -- this auditor makes
        the invariants checkable.  It verifies:

        * **unique-table canonicity** -- every interned node is stored
          under the key recomputed from its current ``(level, edges)``,
          and no two interned nodes share that key (no duplicates);
        * **normalisation** -- every node's dominant child weight has
          magnitude 1 (within the complex table's tolerance) and no child
          weight exceeds magnitude 1;
        * **level ordering / quasi-reducedness** -- every non-zero child
          edge of a level-``z`` node points to level ``z - 1`` (the
          terminal for ``z == 0``), zero-weight edges point at the
          terminal, and child nodes are themselves interned;
        * **compute-table liveness** -- every node referenced from a
          compute-table key or value is still interned (a dangling entry
          could resurrect a freed node id);
        * **root reachability** (when ``roots`` is given) -- every node
          reachable from the given roots is interned.

        Returns a list of human-readable violation messages, each naming
        the corruption site; an empty list means the audit passed.  The
        scan stops after ``max_violations`` findings.
        """
        violations: list[str] = []
        tolerance = max(self.complex_table.tolerance * 8, 1e-12)
        if roots:
            roots = [edge.to_flat() if type(edge) is DenseState else edge
                     for edge in roots]
            for edge in roots:
                if type(edge) is FlatEdge and edge.weight != 0:
                    edge.node  # materialise before snapshotting interned ids
        interned = self.interned_node_ids()

        def note(message: str) -> bool:
            violations.append(message)
            return len(violations) >= max_violations

        for species, table, arity in (
                ("vector", self.tables.vectors, 2),
                ("matrix", self.tables.matrices, 4)):
            by_canonical_key: dict[tuple, object] = {}
            for stored_key, node in table.items():
                name = f"{species} node {id(node):#x} (level {node.level})"
                if node.level < 0:
                    if note(f"{name}: interned node has terminal level"):
                        return violations
                    continue
                if len(node.edges) != arity:
                    if note(f"{name}: {len(node.edges)} successors, "
                            f"expected {arity}"):
                        return violations
                    continue
                canonical = table.canonical_key(node)
                if canonical != stored_key:
                    if note(f"{name}: stored under a key that no longer "
                            f"matches its (level, edges) -- edges or "
                            f"weights were mutated after interning"):
                        return violations
                twin = by_canonical_key.get(canonical)
                if twin is not None:
                    if note(f"duplicate unique-table entries: {species} "
                            f"nodes {id(twin):#x} and {id(node):#x} share "
                            f"(level, edges) at level {node.level}"):
                        return violations
                else:
                    by_canonical_key[canonical] = node
                max_magnitude = 0.0
                for position, child in enumerate(node.edges):
                    where = f"{name}, child {position}"
                    weight = child.weight
                    if weight == 0:
                        if child.node.level != -1:
                            if note(f"{where}: zero-weight edge does not "
                                    f"point at the terminal"):
                                return violations
                        continue
                    magnitude = abs(weight)
                    if magnitude > max_magnitude:
                        max_magnitude = magnitude
                    if magnitude > 1.0 + tolerance:
                        if note(f"{where}: denormalised edge weight "
                                f"{weight!r} (|w| = {magnitude:.12g} > 1)"):
                            return violations
                    expected = node.level - 1
                    child_level = child.node.level
                    # Identity-skipping edges make level *gaps* legal in
                    # matrix DDs (the skipped levels act as identity);
                    # children above their parent stay corrupt.
                    gap_ok = (self.identity_edges and species == "matrix"
                              and -1 <= child_level < expected)
                    if child_level != expected and not gap_ok:
                        if note(f"{where}: level ordering broken -- child "
                                f"at level {child_level}, expected "
                                f"{expected}"):
                            return violations
                    elif child_level != -1 and id(child.node) not in interned:
                        if note(f"{where}: child node {id(child.node):#x} "
                                f"is not interned in any unique table"):
                            return violations
                if max_magnitude and abs(max_magnitude - 1.0) > tolerance:
                    if note(f"{name}: denormalised node -- dominant child "
                            f"weight has magnitude {max_magnitude:.12g}, "
                            f"expected 1"):
                        return violations

        for table_name, cache in self.tables.compute_tables().items():
            for key, value in cache.entries():
                referenced = [part for part in key
                              if hasattr(part, "level")
                              and hasattr(part, "edges")]
                if isinstance(value, Edge) and value.weight != 0:
                    referenced.append(value.node)
                for node in referenced:
                    if node.level != -1 and id(node) not in interned:
                        if note(f"compute table {table_name!r}: entry "
                                f"references node {id(node):#x} (level "
                                f"{node.level}) that is no longer interned "
                                f"-- dangling entry could resurrect a "
                                f"freed id"):
                            return violations
                        break

        if roots:
            stack = [edge.node for edge in roots if edge.weight != 0]
            seen: set[int] = set()
            while stack:
                node = stack.pop()
                if node.level == -1 or id(node) in seen:
                    continue
                seen.add(id(node))
                if id(node) not in interned:
                    if note(f"root-reachable node {id(node):#x} (level "
                            f"{node.level}) is not interned"):
                        return violations
                    continue
                stack.extend(child.node for child in node.edges
                             if child.weight != 0)
        if self.flat is not None and len(violations) < max_violations:
            violations.extend(self.flat.check_invariants(
                max_violations - len(violations)))
        return violations

    def assert_invariants(self, roots: list[Edge] | None = None) -> None:
        """Run :meth:`check_invariants`; raise :class:`DDIntegrityError`
        when any violation is found."""
        violations = self.check_invariants(roots)
        if violations:
            raise DDIntegrityError(violations)
