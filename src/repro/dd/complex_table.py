"""Canonicalisation of complex edge weights.

Decision diagrams obtain their compactness from *node sharing*: two sub-DDs
are merged when they are structurally identical, which requires their edge
weights to compare equal.  Floating-point noise would break this sharing
(two weights that are mathematically equal may differ in the last few bits
after long chains of multiplications), blowing the diagram up to exponential
size.  The standard remedy -- used by the QMDD packages this work builds on
(see ref. [21] of the paper) -- is a *complex table* that snaps every weight
to a canonical representative: values closer than a tolerance are mapped to
the same stored complex number.

The table buckets values on a grid of width ``tolerance`` and, on a miss of
the exact bucket, searches the 3x3 neighbourhood so that values straddling a
bucket boundary are still merged.
"""

from __future__ import annotations

import cmath
import math

__all__ = ["ComplexTable", "DEFAULT_TOLERANCE"]

#: Default snapping tolerance.  Large enough to absorb accumulated rounding
#: error over thousands of multiplications, small enough not to distort any
#: amplitude an experiment would report.
DEFAULT_TOLERANCE = 1e-10

_NEIGHBOUR_OFFSETS = (
    (0, 0),
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)


class ComplexTable:
    """Interning table mapping complex values to canonical representatives.

    Parameters
    ----------
    tolerance:
        Two values whose real and imaginary parts each differ by less than
        this amount are considered equal and share one representative.
    """

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.tolerance = tolerance
        self._buckets: dict[tuple[int, int], complex] = {}
        # Exact-value front cache: most lookups repeat bit-identical floats
        # (re-occurring products), so one dict probe answers them without
        # the grid arithmetic and neighbour search.  Bounded by wholesale
        # clearing; representatives never change once interned, so cached
        # answers stay valid until clear().
        self._exact: dict[complex, complex] = {}
        self._exact_limit = 1 << 18
        self.hits = 0
        self.misses = 0
        # Pre-seed the values every simulation touches so they are stable
        # anchors regardless of lookup order.
        for seed in (0j, 1 + 0j, -1 + 0j, 1j, -1j,
                     complex(math.sqrt(0.5), 0), complex(-math.sqrt(0.5), 0),
                     complex(0.5, 0), complex(-0.5, 0)):
            self.lookup(seed)

    def __len__(self) -> int:
        return len(self._buckets)

    def _key(self, value: complex) -> tuple[int, int]:
        tol = self.tolerance
        return (math.floor(value.real / tol), math.floor(value.imag / tol))

    def lookup(self, value: complex) -> complex:
        """Return the canonical representative for ``value``.

        The first value seen in a tolerance neighbourhood becomes the
        representative for all later lookups in that neighbourhood.
        """
        if type(value) is not complex:
            value = complex(value)
        exact = self._exact
        found = exact.get(value)
        if found is not None:
            self.hits += 1
            return found
        if value != value:  # NaN guard: propagating NaN silently corrupts DDs
            raise ValueError("cannot intern NaN complex value")
        kr, ki = self._key(value)
        buckets = self._buckets
        tol = self.tolerance
        if len(exact) >= self._exact_limit:
            exact.clear()
        # Fast path: exact bucket holds a close-enough representative.
        found = buckets.get((kr, ki))
        if found is not None and abs(found.real - value.real) < tol \
                and abs(found.imag - value.imag) < tol:
            self.hits += 1
            exact[value] = found
            return found
        for dr, di in _NEIGHBOUR_OFFSETS[1:]:
            found = buckets.get((kr + dr, ki + di))
            if found is not None and abs(found.real - value.real) < tol \
                    and abs(found.imag - value.imag) < tol:
                self.hits += 1
                exact[value] = found
                return found
        self.misses += 1
        buckets[(kr, ki)] = value
        exact[value] = value
        return value

    def is_zero(self, value: complex) -> bool:
        """Whether ``value`` would canonicalise to (exactly) zero."""
        return abs(value.real) < self.tolerance and abs(value.imag) < self.tolerance

    def is_one(self, value: complex) -> bool:
        """Whether ``value`` would canonicalise to (exactly) one."""
        return (abs(value.real - 1.0) < self.tolerance
                and abs(value.imag) < self.tolerance)

    def approx_equal(self, a: complex, b: complex) -> bool:
        """Tolerance comparison used throughout the package."""
        return (abs(a.real - b.real) < self.tolerance
                and abs(a.imag - b.imag) < self.tolerance)

    def state_dict(self) -> list[list[float]]:
        """All canonical representatives, in insertion order.

        Checkpoints store this so a resumed run's package can replay the
        same representatives: bit-exact resumption requires that every
        value computed after the resume point snaps to the *same* canonical
        float it would have snapped to in the uninterrupted run, and the
        first value seen in a neighbourhood decides that.
        """
        return [[value.real, value.imag]
                for value in self._buckets.values()]

    def load_state_dict(self, values: list) -> None:
        """Replay representatives captured by :meth:`state_dict`.

        Replaying through :meth:`lookup` in insertion order reconstructs
        the bucket map exactly: any two surviving representatives are
        outside each other's tolerance neighbourhood (otherwise the later
        one would have been merged instead of stored), so each replayed
        value re-interns itself.  Values already present (the pre-seeded
        anchors) are no-ops.
        """
        for entry in values:
            self.lookup(complex(entry[0], entry[1]))

    def clear(self) -> None:
        """Drop all interned values (used when resetting a package)."""
        self._buckets.clear()
        self._exact.clear()
        self.hits = 0
        self.misses = 0
        self.lookup(0j)
        self.lookup(1 + 0j)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ComplexTable(entries={len(self)}, hits={self.hits}, "
                f"misses={self.misses}, tol={self.tolerance})")


def polar_str(value: complex) -> str:
    """Human-readable polar form used by the dot exporter."""
    magnitude, angle = cmath.polar(value)
    return f"{magnitude:.4g}∠{angle / math.pi:.4g}π"
