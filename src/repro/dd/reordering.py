"""Variable (qubit) reordering on decision diagrams.

DD sizes depend heavily on the variable order: a state that pairs qubit
``i`` with qubit ``i + n/2`` is exponential under the natural order but
linear once the paired qubits are adjacent.  This module provides the
standard reordering toolkit, adapted to quasi-reduced edge-weighted DDs:

* :func:`swap_adjacent_levels` -- exchange two neighbouring variables in
  time proportional to the number of nodes at or above the swapped levels;
* :func:`permute_qubits` -- realise an arbitrary qubit permutation as a
  bubble-sorted sequence of adjacent swaps;
* :func:`sift` -- Rudell-style sifting: greedily move each variable to its
  locally best position, returning the (possibly much smaller) reordered
  diagram together with the permutation that maps old qubit positions to
  new ones.

Reordering *relabels* which qubit lives on which DD level: the amplitude of
basis state ``x`` in the original diagram equals the amplitude of the
bit-permuted index in the reordered one.  Callers that keep simulating
afterwards must apply the same permutation to their circuits.
"""

from __future__ import annotations

from collections.abc import Sequence

from .edge import Edge
from .node import MatrixNode, VectorNode
from .package import Package

__all__ = ["swap_adjacent_levels", "permute_qubits", "sift",
           "apply_index_permutation"]


def _is_matrix(edge: Edge) -> bool:
    return isinstance(edge.node, MatrixNode)


def _virtual_children(package: Package, edge: Edge, arity: int) -> list[Edge]:
    """Children of ``edge``'s node, treating 0-stubs as all-zero nodes."""
    if edge.weight == 0:
        return [package.zero] * arity
    return [child.scaled(edge.weight) for child in edge.node.edges]


def _swap_vector_block(package: Package, edge: Edge, level: int) -> Edge:
    """Swap levels ``level+1`` / ``level`` under a level-``level+1`` edge."""
    grandchildren = [
        _virtual_children(package, child, 2)
        for child in _virtual_children(package, edge, 2)
    ]
    new_children = []
    for j in (0, 1):
        new_children.append(package.make_vector_node(
            level, (grandchildren[0][j], grandchildren[1][j])))
    return package.make_vector_node(level + 1,
                                    (new_children[0], new_children[1]))


def _swap_matrix_block(package: Package, edge: Edge, level: int) -> Edge:
    grandchildren = [
        _virtual_children(package, child, 4)
        for child in _virtual_children(package, edge, 4)
    ]
    new_children = []
    for outer in range(4):  # (row, col) bits of the variable moving up
        inner_children = tuple(grandchildren[inner][outer]
                               for inner in range(4))
        new_children.append(package.make_matrix_node(level, inner_children))
    return package.make_matrix_node(level + 1, tuple(new_children))


def swap_adjacent_levels(package: Package, edge: Edge, level: int) -> Edge:
    """Exchange the variables at ``level`` and ``level + 1``.

    Works for vector and matrix DDs.  The result represents the same
    object re-indexed: bit ``level`` and bit ``level + 1`` of every basis
    index trade places.
    """
    if edge.weight == 0:
        return edge
    root_level = edge.node.level
    if level < 0 or level + 1 > root_level:
        raise ValueError(f"cannot swap levels {level}/{level + 1} in a DD "
                         f"rooted at level {root_level}")
    matrix = _is_matrix(edge)
    swap_block = _swap_matrix_block if matrix else _swap_vector_block
    make_node = package.make_matrix_node if matrix \
        else package.make_vector_node
    cache: dict[int, Edge] = {}

    def rebuild(node) -> Edge:
        found = cache.get(id(node))
        if found is not None:
            return found
        if node.level == level + 1:
            result = swap_block(package, Edge(node, 1 + 0j), level)
        else:
            children = []
            for child in node.edges:
                if child.weight == 0:
                    children.append(package.zero)
                elif child.node.level == level + 1:
                    children.append(package._scaled(
                        swap_block(package, Edge(child.node, 1 + 0j), level),
                        child.weight))
                else:
                    children.append(package._scaled(rebuild(child.node),
                                                    child.weight))
            result = make_node(node.level, tuple(children))
        cache[id(node)] = result
        return result

    if edge.node.level == level + 1:
        return package._scaled(
            swap_block(package, Edge(edge.node, 1 + 0j), level), edge.weight)
    return package._scaled(rebuild(edge.node), edge.weight)


def apply_index_permutation(index: int, permutation: Sequence[int]) -> int:
    """Move bit ``q`` of ``index`` to position ``permutation[q]``."""
    result = 0
    for source, target in enumerate(permutation):
        if (index >> source) & 1:
            result |= 1 << target
    return result


def permute_qubits(package: Package, edge: Edge,
                   permutation: Sequence[int]) -> Edge:
    """Reorder a DD so the variable at level ``q`` moves to level
    ``permutation[q]``.

    ``permutation`` must be a permutation of ``0 .. root_level``.  The
    returned DD satisfies ``amplitude(new, apply_index_permutation(x, p))
    == amplitude(old, x)`` (and the matrix analogue for both indices).
    """
    if edge.weight == 0:
        return edge
    size = edge.node.level + 1
    permutation = list(permutation)
    if sorted(permutation) != list(range(size)):
        raise ValueError(f"not a permutation of 0..{size - 1}: "
                         f"{permutation}")
    # positions[level] = original variable currently living at `level`
    positions = list(range(size))
    target_of = dict(enumerate(permutation))
    current = edge
    # Selection-sort by adjacent swaps: bubble each variable to its target,
    # processing targets from the top level downward.
    for target in range(size - 1, -1, -1):
        wanted = next(source for source, destination in target_of.items()
                      if destination == target)
        where = positions.index(wanted)
        while where < target:
            current = swap_adjacent_levels(package, current, where)
            positions[where], positions[where + 1] = \
                positions[where + 1], positions[where]
            where += 1
    return current


def sift(package: Package, edge: Edge,
         max_growth: float = 2.0) -> tuple[Edge, list[int]]:
    """Rudell sifting: greedily search a better variable order.

    Each variable is bubbled through every position; it stays at the
    position minimising the total node count.  A move is abandoned early if
    the diagram grows beyond ``max_growth`` times its best size.

    Returns ``(reordered_edge, permutation)`` where ``permutation[q]`` is
    the new level of original qubit ``q``
    (see :func:`apply_index_permutation`).
    """
    if edge.weight == 0 or edge.node.level < 1:
        return edge, list(range(max(edge.node.level + 1, 0)))
    size = edge.node.level + 1
    current = edge
    positions = list(range(size))  # positions[level] = original variable

    def swap_at(diagram: Edge, level: int) -> Edge:
        positions[level], positions[level + 1] = \
            positions[level + 1], positions[level]
        return swap_adjacent_levels(package, diagram, level)

    for variable in range(size):
        best_nodes = package.count_nodes(current)
        level = positions.index(variable)
        best_level = level
        best_diagram = current
        best_positions = list(positions)
        # sweep down to the bottom
        working = current
        for down in range(level, 0, -1):
            working = swap_at(working, down - 1)
            nodes = package.count_nodes(working)
            if nodes < best_nodes:
                best_nodes = nodes
                best_diagram = working
                best_positions = list(positions)
            if nodes > max_growth * best_nodes:
                break
        # back up and sweep to the top
        bottom = positions.index(variable)
        for up in range(bottom, size - 1):
            working = swap_at(working, up)
            nodes = package.count_nodes(working)
            if nodes < best_nodes:
                best_nodes = nodes
                best_diagram = working
                best_positions = list(positions)
            if nodes > max_growth * best_nodes:
                break
        current = best_diagram
        positions = best_positions
        del best_level
    permutation = [0] * size
    for level, variable in enumerate(positions):
        permutation[variable] = level
    return current, permutation
